//! Bench target regenerating experiment E01 (see DESIGN.md).
fn main() {
    let ctx = bench::cli::ExpCtx::from_env();
    print!("{}", bench::exp::e01(&ctx));
}
