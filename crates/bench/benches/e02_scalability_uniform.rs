//! Bench target regenerating experiment E02 (see DESIGN.md).
fn main() {
    let ctx = bench::cli::ExpCtx::from_env();
    print!("{}", bench::exp::e02(&ctx));
}
