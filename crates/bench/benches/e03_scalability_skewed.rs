//! Bench target regenerating experiment E03 (see DESIGN.md).
fn main() {
    let ctx = bench::cli::ExpCtx::from_env();
    print!("{}", bench::exp::e03(&ctx));
}
