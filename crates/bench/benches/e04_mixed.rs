//! Bench target regenerating experiment E04 (see DESIGN.md).
fn main() {
    let ctx = bench::cli::ExpCtx::from_env();
    print!("{}", bench::exp::e04(&ctx));
}
