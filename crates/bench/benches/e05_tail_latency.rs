//! Bench target regenerating experiment E05 (see DESIGN.md).
fn main() {
    let ctx = bench::cli::ExpCtx::from_env();
    print!("{}", bench::exp::e05(&ctx));
}
