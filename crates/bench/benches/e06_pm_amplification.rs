//! Bench target regenerating experiment E06 (see DESIGN.md).
fn main() {
    let ctx = bench::cli::ExpCtx::from_env();
    print!("{}", bench::exp::e06(&ctx));
}
