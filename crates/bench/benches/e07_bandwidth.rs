//! Bench target regenerating experiment E07 (see DESIGN.md).
fn main() {
    let ctx = bench::cli::ExpCtx::from_env();
    print!("{}", bench::exp::e07(&ctx));
}
