//! Bench target regenerating experiment E08 (see DESIGN.md).
fn main() {
    let ctx = bench::cli::ExpCtx::from_env();
    print!("{}", bench::exp::e08(&ctx));
}
