//! Bench target regenerating experiment E09 (see DESIGN.md).
fn main() {
    let ctx = bench::cli::ExpCtx::from_env();
    print!("{}", bench::exp::e09(&ctx));
}
