//! Bench target regenerating experiment E10 (see DESIGN.md).
fn main() {
    let ctx = bench::cli::ExpCtx::from_env();
    print!("{}", bench::exp::e10(&ctx));
}
