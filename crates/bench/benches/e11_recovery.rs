//! Bench target regenerating experiment E11 (see DESIGN.md).
fn main() {
    let ctx = bench::cli::ExpCtx::from_env();
    print!("{}", bench::exp::e11(&ctx));
}
