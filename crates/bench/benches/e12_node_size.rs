//! Bench target regenerating experiment E12 (see DESIGN.md).
fn main() {
    let ctx = bench::cli::ExpCtx::from_env();
    print!("{}", bench::exp::e12(&ctx));
}
