//! Bench target regenerating experiment E13 (see DESIGN.md).
fn main() {
    let ctx = bench::cli::ExpCtx::from_env();
    print!("{}", bench::exp::e13(&ctx));
}
