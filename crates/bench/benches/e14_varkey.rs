//! Bench target regenerating experiment E14 (see DESIGN.md).
fn main() {
    let ctx = bench::cli::ExpCtx::from_env();
    print!("{}", bench::exp::e14(&ctx));
}
