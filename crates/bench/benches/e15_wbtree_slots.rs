//! Bench target regenerating experiment E15 (see DESIGN.md).
fn main() {
    let ctx = bench::cli::ExpCtx::from_env();
    print!("{}", bench::exp::e15(&ctx));
}
