//! Bench target regenerating experiment E16 (see DESIGN.md).
fn main() {
    let ctx = bench::cli::ExpCtx::from_env();
    print!("{}", bench::exp::e16(&ctx));
}
