//! Bench target regenerating experiment E17 (see DESIGN.md).
fn main() {
    let ctx = bench::cli::ExpCtx::from_env();
    print!("{}", bench::exp::e17(&ctx));
}
