//! Bench target regenerating experiment E18 (see DESIGN.md). Needs the
//! `pmserve`/`pmload` binaries built (`cargo build --release --bins`);
//! without them the remote rows degrade to a logged skip.
fn main() {
    let ctx = bench::cli::ExpCtx::from_env();
    print!("{}", bench::exp::e18(&ctx));
}
