//! Bench target regenerating experiment E19 (see DESIGN.md).
fn main() {
    let ctx = bench::cli::ExpCtx::from_env();
    print!("{}", bench::exp::e19(&ctx));
}
