//! Criterion microbenchmarks for the substrates and single-threaded
//! index hot paths. These complement the experiment targets (e01–e13)
//! with statistically rigorous per-operation timings.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use index_api::RangeIndex;
use pibench::keys::mix;
use pmalloc::{AllocMode, PmAllocator};
use pmem::{PmConfig, PmPool};

fn pm_primitives(c: &mut Criterion) {
    let pool = PmPool::new(16 << 20, PmConfig::real());
    let mut g = c.benchmark_group("pmem");
    g.bench_function("read_u64", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 8) % (8 << 20);
            std::hint::black_box(pool.read_u64(4096 + i))
        })
    });
    g.bench_function("write_u64", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 8) % (8 << 20);
            pool.write_u64(4096 + i, i);
        })
    });
    g.bench_function("persist_cacheline", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 64) % (8 << 20);
            pool.write_u64(4096 + i, i);
            pool.persist(4096 + i, 8);
        })
    });
    g.finish();
}

fn allocator(c: &mut Criterion) {
    let mut g = c.benchmark_group("pmalloc");
    for (mode, label) in [
        (AllocMode::General, "general"),
        (AllocMode::Striped, "striped"),
    ] {
        let pool = Arc::new(PmPool::new(256 << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool, mode);
        g.bench_function(format!("alloc_free_256/{label}"), |b| {
            b.iter(|| {
                let off = alloc.alloc(256).unwrap();
                alloc.free(std::hint::black_box(off));
            })
        });
    }
    g.finish();
}

type IndexBuilder = Box<dyn Fn() -> Arc<dyn RangeIndex>>;

fn index_ops(c: &mut Criterion) {
    const N: u64 = 100_000;
    let builders: Vec<(&str, IndexBuilder)> = vec![
        (
            "fptree",
            Box::new(|| {
                let pool = Arc::new(PmPool::new(128 << 20, PmConfig::real()));
                let alloc = PmAllocator::format(pool, AllocMode::General);
                fptree::FpTree::create(alloc, fptree::FpTreeConfig::default()) as _
            }),
        ),
        (
            "nvtree",
            Box::new(|| {
                let pool = Arc::new(PmPool::new(128 << 20, PmConfig::real()));
                let alloc = PmAllocator::format(pool, AllocMode::General);
                nvtree::NvTree::create(alloc, nvtree::NvTreeConfig::default()) as _
            }),
        ),
        (
            "wbtree",
            Box::new(|| {
                let pool = Arc::new(PmPool::new(128 << 20, PmConfig::real()));
                let alloc = PmAllocator::format(pool, AllocMode::General);
                wbtree::WbTree::create(alloc, wbtree::WbTreeConfig::default()) as _
            }),
        ),
        (
            "bztree",
            Box::new(|| {
                let pool = Arc::new(PmPool::new(128 << 20, PmConfig::real()));
                let alloc = PmAllocator::format(pool, AllocMode::General);
                bztree::BzTree::create(alloc, bztree::BzTreeConfig::default()) as _
            }),
        ),
        (
            "dram",
            Box::new(|| Arc::new(dram_index::DramTree::new()) as _),
        ),
    ];
    for (name, make) in builders {
        let idx = make();
        for i in 0..N {
            idx.insert(mix(i), i);
        }
        let mut g = c.benchmark_group(format!("index/{name}"));
        g.bench_function("lookup_hit", |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 7) % N;
                std::hint::black_box(idx.lookup(mix(i)))
            })
        });
        g.bench_function("lookup_miss", |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                std::hint::black_box(idx.lookup(mix((1 << 62) + i)))
            })
        });
        g.bench_function("scan_100", |b| {
            let mut out = Vec::with_capacity(128);
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 13) % N;
                idx.scan(mix(i), 100, &mut out)
            })
        });
        g.bench_function("insert_fresh", |b| {
            let counter = std::cell::Cell::new(N);
            b.iter_batched(
                || {
                    let i = counter.get();
                    counter.set(i + 1);
                    mix(i)
                },
                |k| idx.insert(k, k),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(1)).warm_up_time(std::time::Duration::from_millis(300));
    targets = pm_primitives, allocator, index_ops
}
criterion_main!(benches);
