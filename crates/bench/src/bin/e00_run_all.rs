//! Run every experiment (E1–E20) and write the collected reports to
//! `results/experiments.txt` (and stdout), plus one machine-readable
//! `results/BENCH_E*.json` per experiment so the perf trajectory can be
//! tracked across commits. Scale via `PIBENCH_*` environment variables
//! (see the `bench` crate docs) or `--shards N` / `--only eNN[,eMM...]`
//! flags.
//!
//! Experiments with unmet environment prerequisites (e.g. E18 when the
//! `pmserve`/`pmload` binaries are not built) are skipped with a logged
//! reason instead of erroring out mid-sweep.

use std::io::Write;

fn main() {
    let mut ctx = bench::cli::ExpCtx::from_env();
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--shards" => {
                let v = args.next().expect("--shards needs a value");
                ctx.shards = v
                    .parse::<usize>()
                    .expect("--shards must be a number")
                    .max(1);
            }
            "--only" => only = Some(args.next().expect("--only needs an experiment id")),
            other => {
                eprintln!("unknown flag {other:?} (supported: --shards N, --only eNN[,eMM...])");
                std::process::exit(2);
            }
        }
    }
    let mut all_out = String::new();
    std::fs::create_dir_all("results").expect("create results dir");
    for exp in bench::exp::all() {
        let id = exp.id;
        if only
            .as_deref()
            .is_some_and(|o| !o.split(',').any(|sel| sel.trim() == id))
        {
            continue;
        }
        if let Err(reason) = (exp.prereq)(&ctx) {
            eprintln!(">> skipping {id}: {reason}");
            all_out.push_str(&format!("== {id} skipped: {reason} ==\n\n"));
            continue;
        }
        eprintln!(">> running {id} …");
        let t0 = std::time::Instant::now();
        let out = (exp.f)(&ctx);
        eprintln!("   {id} done in {:.1}s", t0.elapsed().as_secs_f64());
        print!("{out}");
        all_out.push_str(&out.text);
        let json_path = format!("results/BENCH_{}.json", id.to_uppercase());
        std::fs::write(&json_path, format!("{}\n", out.json))
            .unwrap_or_else(|e| panic!("write {json_path}: {e}"));
    }
    let mut f = std::fs::File::create("results/experiments.txt").expect("create results file");
    f.write_all(all_out.as_bytes()).expect("write results");
    eprintln!("results written to results/experiments.txt (+ results/BENCH_E*.json)");
}
