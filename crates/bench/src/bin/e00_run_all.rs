//! Run every experiment (E1–E13) and write the collected reports to
//! `results/experiments.txt` (and stdout). Scale via `PIBENCH_*`
//! environment variables; see the `bench` crate docs.

use std::io::Write;

fn main() {
    let ctx = bench::cli::ExpCtx::from_env();
    let mut all_out = String::new();
    for (id, f) in bench::exp::all() {
        eprintln!(">> running {id} …");
        let t0 = std::time::Instant::now();
        let out = f(&ctx);
        eprintln!("   {id} done in {:.1}s", t0.elapsed().as_secs_f64());
        print!("{out}");
        all_out.push_str(&out);
    }
    std::fs::create_dir_all("results").expect("create results dir");
    let mut f = std::fs::File::create("results/experiments.txt").expect("create results file");
    f.write_all(all_out.as_bytes()).expect("write results");
    eprintln!("results written to results/experiments.txt");
}
