//! The PiBench command-line tool: run one configurable workload
//! against one index and print the full metric set.
//!
//! ```text
//! pibench --index fptree --records 1000000 --threads 8 \
//!         --mix 90,10,0,0,0 --dist uniform --ops 1000000 [--dram] [--csv]
//! ```

use pibench::report::{fmt_bytes, fmt_ns, Table};
use pibench::{prefill, run, BenchConfig, Distribution, KeySpace, OpMix};
use pmem::PmConfig;

fn usage() -> ! {
    eprintln!(
        "usage: pibench --index <fptree|nvtree|wbtree|bztree|dram> \
         [--records N] [--threads N] [--ops N] \
         [--mix L,I,U,R,S] [--dist uniform|selfsimilar|zipfian] \
         [--scan-len N] [--seed N] [--dram] [--csv]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut index_kind = String::new();
    let mut records: u64 = 1_000_000;
    let mut threads: usize = 1;
    let mut ops: u64 = 1_000_000;
    let mut mix = OpMix::pure(pibench::OpKind::Lookup);
    let mut dist = Distribution::Uniform;
    let mut scan_len = 100usize;
    let mut seed = 0x5EEDu64;
    let mut dram_mode = false;
    let mut csv = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().cloned().unwrap_or_else(|| usage());
        match a.as_str() {
            "--index" => index_kind = val(),
            "--records" => records = val().parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = val().parse().unwrap_or_else(|_| usage()),
            "--ops" => ops = val().parse().unwrap_or_else(|_| usage()),
            "--scan-len" => scan_len = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage()),
            "--dram" => dram_mode = true,
            "--csv" => csv = true,
            "--mix" => {
                let v = val();
                let parts: Vec<u8> = v.split(',').filter_map(|p| p.parse().ok()).collect();
                if parts.len() != 5 {
                    usage();
                }
                mix = OpMix {
                    lookup: parts[0],
                    insert: parts[1],
                    update: parts[2],
                    remove: parts[3],
                    scan: parts[4],
                };
            }
            "--dist" => {
                dist = match val().as_str() {
                    "uniform" => Distribution::Uniform,
                    "selfsimilar" => Distribution::self_similar_80_20(),
                    "zipfian" => Distribution::Zipfian { theta: 0.9 },
                    _ => usage(),
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other}");
                usage();
            }
        }
    }
    if index_kind.is_empty() {
        usage();
    }
    mix.validate();

    let pm_cfg = if dram_mode {
        PmConfig::dram()
    } else {
        PmConfig::optane_like()
    };
    eprintln!("building {index_kind} and prefilling {records} records …");
    let built = bench::registry::build(&index_kind, records, pm_cfg);
    let ks = KeySpace::new(records);
    let load = prefill(&*built.index, &ks, threads.max(1));
    eprintln!(
        "prefill took {:.2}s ({:.3} Mops/s)",
        load.as_secs_f64(),
        records as f64 / load.as_secs_f64() / 1e6
    );

    let cfg = BenchConfig {
        threads,
        records,
        ops_per_thread: Some((ops / threads as u64).max(1)),
        duration: None,
        mix,
        distribution: dist,
        scan_len,
        latency_sample_shift: 3,
        seed,
        negative_lookups: false,
    };
    let r = run(&*built.index, &ks, built.pool.as_deref(), &cfg);

    let mut t = Table::new(vec!["metric", "value"]);
    t.row(vec!["index".to_string(), index_kind.clone()]);
    t.row(vec!["threads".to_string(), threads.to_string()]);
    t.row(vec![
        "elapsed".to_string(),
        format!("{:.3}s", r.elapsed.as_secs_f64()),
    ]);
    t.row(vec!["total ops".to_string(), r.total_ops().to_string()]);
    t.row(vec![
        "throughput".to_string(),
        format!("{:.3} Mops/s", r.mops()),
    ]);
    t.row(vec!["misses".to_string(), r.misses.to_string()]);
    for k in pibench::workload::OP_KINDS {
        let n = r.ops[k as usize];
        if n == 0 {
            continue;
        }
        let h = &r.latency[k as usize];
        t.row(vec![
            format!("{} p50/p99/p99.9", k.label()),
            format!(
                "{} / {} / {}",
                fmt_ns(h.percentile(50.0)),
                fmt_ns(h.percentile(99.0)),
                fmt_ns(h.percentile(99.9))
            ),
        ]);
    }
    if built.pool.is_some() {
        t.row(vec![
            "PM media read".to_string(),
            format!(
                "{} ({:.0} B/op)",
                fmt_bytes(r.pm.media_read_bytes),
                r.pm_read_bytes_per_op()
            ),
        ]);
        t.row(vec![
            "PM media write".to_string(),
            format!(
                "{} ({:.0} B/op)",
                fmt_bytes(r.pm.media_write_bytes),
                r.pm_write_bytes_per_op()
            ),
        ]);
        t.row(vec![
            "PM bandwidth".to_string(),
            format!(
                "{:.3} / {:.3} GiB/s (r/w)",
                r.pm_read_gibps(),
                r.pm_write_gibps()
            ),
        ]);
        t.row(vec![
            "clwb / fence".to_string(),
            format!("{} / {}", r.pm.clwb, r.pm.fence),
        ]);
    }
    let f = built.index.footprint();
    t.row(vec![
        "footprint".to_string(),
        format!(
            "PM {} / DRAM {}",
            fmt_bytes(f.pm_bytes),
            fmt_bytes(f.dram_bytes)
        ),
    ]);
    print!("{}", t.to_text());
    if csv {
        print!("{}", t.to_csv());
    }
}
