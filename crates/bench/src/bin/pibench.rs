//! The PiBench command-line tool: run one configurable workload
//! against one index and print the full metric set.
//!
//! ```text
//! pibench --index fptree --records 1000000 --threads 8 --shards 4 \
//!         --mix 90,10,0,0,0 --dist uniform --ops 1000000 \
//!         [--dram] [--csv] [--json out.json]
//! ```

use std::sync::Arc;

use cache::CachedIndex;
use index_api::RangeIndex;
use pibench::report::{fmt_bytes, fmt_ns, JsonObj, Table};
use pibench::{prefill, run, trace, BenchConfig, Distribution, KeySpace, OpMix};
use pmem::{PmConfig, PmStatsSnapshot};

fn usage() -> ! {
    eprintln!(
        "usage: pibench --index <fptree|nvtree|wbtree|bztree|learned|dram> \
         [--records N] [--threads N] [--shards N] [--ops N] \
         [--mix L,I,U,R,S] [--dist uniform|selfsimilar|zipfian|storm] \
         [--scan-len N] [--seed N] [--dram] [--csv] [--json PATH] \
         [--trace PATH] [--sample-ms N] [--cache] [--cache-mb N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut index_kind = String::new();
    let mut records: u64 = 1_000_000;
    let mut threads: usize = 1;
    let mut ops: u64 = 1_000_000;
    let mut mix = OpMix::pure(pibench::OpKind::Lookup);
    let mut dist = Distribution::Uniform;
    let mut scan_len = 100usize;
    let mut seed = 0x5EEDu64;
    let mut shards: usize = 1;
    let mut dram_mode = false;
    let mut csv = false;
    let mut json_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut sample_ms: Option<u64> = None;
    let mut use_cache = false;
    let mut cache_mb: usize = 64;
    let mut storm = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().cloned().unwrap_or_else(|| usage());
        match a.as_str() {
            "--index" => index_kind = val(),
            "--records" => records = val().parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = val().parse().unwrap_or_else(|_| usage()),
            "--ops" => ops = val().parse().unwrap_or_else(|_| usage()),
            "--scan-len" => scan_len = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage()),
            "--shards" => shards = val().parse().unwrap_or_else(|_| usage()),
            "--json" => json_path = Some(val()),
            "--trace" => trace_path = Some(val()),
            "--sample-ms" => sample_ms = Some(val().parse().unwrap_or_else(|_| usage())),
            "--dram" => dram_mode = true,
            "--csv" => csv = true,
            "--cache" => use_cache = true,
            "--cache-mb" => {
                cache_mb = val().parse().unwrap_or_else(|_| usage());
                use_cache = true;
            }
            "--mix" => {
                let v = val();
                let parts: Vec<u8> = v.split(',').filter_map(|p| p.parse().ok()).collect();
                if parts.len() != 5 {
                    usage();
                }
                mix = OpMix {
                    lookup: parts[0],
                    insert: parts[1],
                    update: parts[2],
                    remove: parts[3],
                    scan: parts[4],
                };
            }
            "--dist" => {
                dist = match val().as_str() {
                    "uniform" => Distribution::Uniform,
                    "selfsimilar" => Distribution::self_similar_80_20(),
                    "zipfian" => Distribution::Zipfian { theta: 0.9 },
                    // Resolved after the loop: the hot-window size
                    // depends on --records, which may come later.
                    "storm" => {
                        storm = true;
                        Distribution::Uniform
                    }
                    _ => usage(),
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other}");
                usage();
            }
        }
    }
    if index_kind.is_empty() || shards == 0 {
        usage();
    }
    mix.validate();
    if storm {
        // 90% of accesses hammer a contiguous 1% of the key space —
        // the hot-key storm the DRAM tier is built for.
        dist = Distribution::HotStorm {
            hot: (records / 100).max(1),
            frac: 0.9,
        };
    }

    let pm_cfg = if dram_mode {
        PmConfig::dram()
    } else {
        PmConfig::optane_like()
    };
    eprintln!("building {index_kind} (shards={shards}) and prefilling {records} records …");
    let built = if shards > 1 {
        bench::registry::build_sharded(&index_kind, shards, records, pm_cfg)
    } else {
        bench::registry::build(&index_kind, records, pm_cfg)
    };
    let ks = KeySpace::new(records);
    let load = prefill(&*built.index, &ks, threads.max(1));
    eprintln!(
        "prefill took {:.2}s ({:.3} Mops/s)",
        load.as_secs_f64(),
        records as f64 / load.as_secs_f64() / 1e6
    );
    // The DRAM hot-key tier wraps the built index *after* prefill so
    // the cache starts cold, as a freshly warmed server would.
    let cached: Option<Arc<CachedIndex>> =
        use_cache.then(|| Arc::new(CachedIndex::new(built.index.clone(), cache_mb << 20)));
    let under_test: Arc<dyn RangeIndex> = match &cached {
        Some(c) => c.clone(),
        None => built.index.clone(),
    };

    let cfg = BenchConfig {
        threads,
        records,
        ops_per_thread: Some((ops / threads as u64).max(1)),
        duration: None,
        mix,
        distribution: dist,
        scan_len,
        latency_sample_shift: 3,
        seed,
        negative_lookups: false,
    };
    // Tracing / sampling is scoped to the measured phase: prefill
    // traffic above is not attributed, teardown is not sampled.
    let tracing = trace_path.is_some() || sample_ms.is_some();
    let sampler = if tracing {
        obs::reset();
        obs::set_enabled(true);
        sample_ms.map(|ms| {
            let pools = built.pools.clone();
            obs::Sampler::start(ms, move || {
                let s = PmStatsSnapshot::merged(
                    pools.iter().map(|p| p.stats()).collect::<Vec<_>>().iter(),
                );
                obs::PmCounters {
                    read_bytes: s.read_bytes,
                    write_bytes: s.write_bytes,
                    media_read_bytes: s.media_read_bytes,
                    media_write_bytes: s.media_write_bytes,
                    clwb: s.clwb,
                    ntstore: s.ntstore,
                    fence: s.fence,
                }
            })
        })
    } else {
        None
    };

    let r = run(&*under_test, &ks, &built.pools, &cfg);

    let series = sampler.map(|s| s.stop());
    if tracing {
        obs::set_enabled(false);
    }

    let mut t = Table::new(vec!["metric", "value"]);
    t.row(vec!["index".to_string(), under_test.name().to_string()]);
    t.row(vec!["threads".to_string(), threads.to_string()]);
    t.row(vec!["shards".to_string(), shards.to_string()]);
    t.row(vec![
        "elapsed".to_string(),
        format!("{:.3}s", r.elapsed.as_secs_f64()),
    ]);
    t.row(vec!["total ops".to_string(), r.total_ops().to_string()]);
    t.row(vec![
        "throughput".to_string(),
        format!("{:.3} Mops/s", r.mops()),
    ]);
    t.row(vec!["misses".to_string(), r.misses.to_string()]);
    for k in pibench::workload::OP_KINDS {
        let n = r.ops[k as usize];
        if n == 0 {
            continue;
        }
        let h = &r.latency[k as usize];
        t.row(vec![
            format!("{} p50/p99/p99.9", k.label()),
            format!(
                "{} / {} / {}",
                fmt_ns(h.percentile(50.0)),
                fmt_ns(h.percentile(99.0)),
                fmt_ns(h.percentile(99.9))
            ),
        ]);
    }
    if !built.pools.is_empty() {
        t.row(vec![
            "PM media read".to_string(),
            format!(
                "{} ({:.0} B/op)",
                fmt_bytes(r.pm.media_read_bytes),
                r.pm_read_bytes_per_op()
            ),
        ]);
        t.row(vec![
            "PM media write".to_string(),
            format!(
                "{} ({:.0} B/op)",
                fmt_bytes(r.pm.media_write_bytes),
                r.pm_write_bytes_per_op()
            ),
        ]);
        t.row(vec![
            "PM bandwidth".to_string(),
            format!(
                "{:.3} / {:.3} GiB/s (r/w)",
                r.pm_read_gibps(),
                r.pm_write_gibps()
            ),
        ]);
        t.row(vec![
            "clwb / fence".to_string(),
            format!("{} / {}", r.pm.clwb, r.pm.fence),
        ]);
    }
    let f = under_test.footprint();
    t.row(vec![
        "footprint".to_string(),
        format!(
            "PM {} / DRAM {}",
            fmt_bytes(f.pm_bytes),
            fmt_bytes(f.dram_bytes)
        ),
    ]);
    let cache_counters = cached.as_ref().map(|c| c.counters());
    if let Some(cc) = &cache_counters {
        t.row(vec![
            "cache hits/misses".to_string(),
            format!(
                "{} / {} ({:.1}% hit)",
                cc.hits,
                cc.misses,
                cc.hit_rate() * 100.0
            ),
        ]);
        t.row(vec![
            "cache evict/inval".to_string(),
            format!("{} / {}", cc.evictions, cc.invalidations),
        ]);
    }
    print!("{}", t.to_text());
    if csv {
        print!("{}", t.to_csv());
    }

    let sites = if tracing {
        obs::site_table()
    } else {
        Vec::new()
    };
    if tracing {
        println!("\nper-site PM traffic attribution:");
        print!("{}", trace::site_table(&sites).to_text());
        if let Some(ts) = &series {
            let steady = ts.steady_start();
            println!(
                "sampled {} intervals @ {}ms; steady state from t={}ms: \
                 {:.3} Mops/s (whole run: {:.3})",
                ts.points.len(),
                ts.interval_ms,
                ts.points.get(steady).map_or(0, |p| p.t_ms),
                ts.mops_from(steady),
                ts.mops_from(0),
            );
        }
    }
    if let Some(path) = &trace_path {
        let events = obs::flight_events(usize::MAX);
        let json = trace::chrome_trace_json(&events, &obs::site_names());
        std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("chrome trace ({} events) written to {path}", events.len());
        if let Some(ts) = &series {
            let csv_path = format!("{path}.timeseries.csv");
            std::fs::write(&csv_path, trace::timeseries_csv(ts))
                .unwrap_or_else(|e| panic!("write {csv_path}: {e}"));
            eprintln!("time series written to {csv_path}");
        }
    }
    if let Some(path) = json_path {
        let json = result_json(
            &index_kind,
            shards,
            &cfg,
            &r,
            f,
            &sites,
            series.as_ref(),
            cache_counters.as_ref().map(|cc| (cache_mb, cc)),
        );
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("json written to {path}");
    }
}

/// Machine-readable run summary: parameters, throughput, per-kind tail
/// latency, media traffic per op, and (when tracing) the per-site
/// attribution. Built with the shared [`JsonObj`] helpers (no serde
/// in-tree).
#[allow(clippy::too_many_arguments)]
fn result_json(
    index_kind: &str,
    shards: usize,
    cfg: &BenchConfig,
    r: &pibench::RunResult,
    f: index_api::Footprint,
    sites: &[obs::SiteAgg],
    series: Option<&obs::TimeSeries>,
    cache: Option<(usize, &cache::CacheCounters)>,
) -> String {
    let mut o = JsonObj::new();
    o.str("index", index_kind)
        .u64("shards", shards as u64)
        .u64("threads", cfg.threads as u64)
        .u64("total_ops", r.total_ops())
        .f64("elapsed_s", r.elapsed.as_secs_f64())
        .f64("throughput_mops", r.mops())
        .u64("misses", r.misses);

    let mut latency = JsonObj::new();
    for k in pibench::workload::OP_KINDS {
        if r.ops[k as usize] == 0 {
            continue;
        }
        let h = &r.latency[k as usize];
        let mut pcts = JsonObj::new();
        pcts.u64("p50", h.percentile(50.0))
            .u64("p99", h.percentile(99.0))
            .u64("p999", h.percentile(99.9))
            .f64("mean", h.mean());
        latency.obj(k.label(), pcts);
    }
    o.obj("latency_ns", latency);

    let mut pm = JsonObj::new();
    pm.u64("media_read_bytes", r.pm.media_read_bytes)
        .u64("media_write_bytes", r.pm.media_write_bytes)
        .f64("read_bytes_per_op", r.pm_read_bytes_per_op())
        .f64("write_bytes_per_op", r.pm_write_bytes_per_op())
        .f64("read_amplification", r.pm.read_amplification())
        .f64("write_amplification", r.pm.write_amplification())
        .u64("clwb", r.pm.clwb)
        .u64("fence", r.pm.fence);
    o.obj("pm", pm);

    let mut fp = JsonObj::new();
    fp.u64("pm_bytes", f.pm_bytes)
        .u64("dram_bytes", f.dram_bytes);
    o.obj("footprint", fp);

    if let Some((mb, cc)) = cache {
        let mut c = JsonObj::new();
        c.u64("capacity_mb", mb as u64)
            .u64("hits", cc.hits)
            .u64("misses", cc.misses)
            .f64("hit_rate", cc.hit_rate())
            .u64("fills", cc.fills)
            .u64("evictions", cc.evictions)
            .u64("invalidations", cc.invalidations);
        o.obj("cache", c);
    }

    if !sites.is_empty() {
        o.raw("sites", &trace::site_table_json(sites));
    }
    if let Some(ts) = series {
        let steady = ts.steady_start();
        let mut s = JsonObj::new();
        s.u64("interval_ms", ts.interval_ms)
            .u64("intervals", ts.points.len() as u64)
            .u64(
                "steady_start_ms",
                ts.points.get(steady).map_or(0, |p| p.t_ms),
            )
            .f64("steady_mops", ts.mops_from(steady));
        o.obj("timeseries", s);
    }
    o.finish()
}
