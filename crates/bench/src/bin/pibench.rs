//! The PiBench command-line tool: run one configurable workload
//! against one index and print the full metric set.
//!
//! ```text
//! pibench --index fptree --records 1000000 --threads 8 --shards 4 \
//!         --mix 90,10,0,0,0 --dist uniform --ops 1000000 \
//!         [--dram] [--csv] [--json out.json]
//! ```

use pibench::report::{fmt_bytes, fmt_ns, json_string, Table};
use pibench::{prefill, run, BenchConfig, Distribution, KeySpace, OpMix};
use pmem::PmConfig;

fn usage() -> ! {
    eprintln!(
        "usage: pibench --index <fptree|nvtree|wbtree|bztree|dram> \
         [--records N] [--threads N] [--shards N] [--ops N] \
         [--mix L,I,U,R,S] [--dist uniform|selfsimilar|zipfian] \
         [--scan-len N] [--seed N] [--dram] [--csv] [--json PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut index_kind = String::new();
    let mut records: u64 = 1_000_000;
    let mut threads: usize = 1;
    let mut ops: u64 = 1_000_000;
    let mut mix = OpMix::pure(pibench::OpKind::Lookup);
    let mut dist = Distribution::Uniform;
    let mut scan_len = 100usize;
    let mut seed = 0x5EEDu64;
    let mut shards: usize = 1;
    let mut dram_mode = false;
    let mut csv = false;
    let mut json_path: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().cloned().unwrap_or_else(|| usage());
        match a.as_str() {
            "--index" => index_kind = val(),
            "--records" => records = val().parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = val().parse().unwrap_or_else(|_| usage()),
            "--ops" => ops = val().parse().unwrap_or_else(|_| usage()),
            "--scan-len" => scan_len = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage()),
            "--shards" => shards = val().parse().unwrap_or_else(|_| usage()),
            "--json" => json_path = Some(val()),
            "--dram" => dram_mode = true,
            "--csv" => csv = true,
            "--mix" => {
                let v = val();
                let parts: Vec<u8> = v.split(',').filter_map(|p| p.parse().ok()).collect();
                if parts.len() != 5 {
                    usage();
                }
                mix = OpMix {
                    lookup: parts[0],
                    insert: parts[1],
                    update: parts[2],
                    remove: parts[3],
                    scan: parts[4],
                };
            }
            "--dist" => {
                dist = match val().as_str() {
                    "uniform" => Distribution::Uniform,
                    "selfsimilar" => Distribution::self_similar_80_20(),
                    "zipfian" => Distribution::Zipfian { theta: 0.9 },
                    _ => usage(),
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other}");
                usage();
            }
        }
    }
    if index_kind.is_empty() || shards == 0 {
        usage();
    }
    mix.validate();

    let pm_cfg = if dram_mode {
        PmConfig::dram()
    } else {
        PmConfig::optane_like()
    };
    eprintln!("building {index_kind} (shards={shards}) and prefilling {records} records …");
    let built = if shards > 1 {
        bench::registry::build_sharded(&index_kind, shards, records, pm_cfg)
    } else {
        bench::registry::build(&index_kind, records, pm_cfg)
    };
    let ks = KeySpace::new(records);
    let load = prefill(&*built.index, &ks, threads.max(1));
    eprintln!(
        "prefill took {:.2}s ({:.3} Mops/s)",
        load.as_secs_f64(),
        records as f64 / load.as_secs_f64() / 1e6
    );

    let cfg = BenchConfig {
        threads,
        records,
        ops_per_thread: Some((ops / threads as u64).max(1)),
        duration: None,
        mix,
        distribution: dist,
        scan_len,
        latency_sample_shift: 3,
        seed,
        negative_lookups: false,
    };
    let r = run(&*built.index, &ks, &built.pools, &cfg);

    let mut t = Table::new(vec!["metric", "value"]);
    t.row(vec!["index".to_string(), built.index.name().to_string()]);
    t.row(vec!["threads".to_string(), threads.to_string()]);
    t.row(vec!["shards".to_string(), shards.to_string()]);
    t.row(vec![
        "elapsed".to_string(),
        format!("{:.3}s", r.elapsed.as_secs_f64()),
    ]);
    t.row(vec!["total ops".to_string(), r.total_ops().to_string()]);
    t.row(vec![
        "throughput".to_string(),
        format!("{:.3} Mops/s", r.mops()),
    ]);
    t.row(vec!["misses".to_string(), r.misses.to_string()]);
    for k in pibench::workload::OP_KINDS {
        let n = r.ops[k as usize];
        if n == 0 {
            continue;
        }
        let h = &r.latency[k as usize];
        t.row(vec![
            format!("{} p50/p99/p99.9", k.label()),
            format!(
                "{} / {} / {}",
                fmt_ns(h.percentile(50.0)),
                fmt_ns(h.percentile(99.0)),
                fmt_ns(h.percentile(99.9))
            ),
        ]);
    }
    if !built.pools.is_empty() {
        t.row(vec![
            "PM media read".to_string(),
            format!(
                "{} ({:.0} B/op)",
                fmt_bytes(r.pm.media_read_bytes),
                r.pm_read_bytes_per_op()
            ),
        ]);
        t.row(vec![
            "PM media write".to_string(),
            format!(
                "{} ({:.0} B/op)",
                fmt_bytes(r.pm.media_write_bytes),
                r.pm_write_bytes_per_op()
            ),
        ]);
        t.row(vec![
            "PM bandwidth".to_string(),
            format!(
                "{:.3} / {:.3} GiB/s (r/w)",
                r.pm_read_gibps(),
                r.pm_write_gibps()
            ),
        ]);
        t.row(vec![
            "clwb / fence".to_string(),
            format!("{} / {}", r.pm.clwb, r.pm.fence),
        ]);
    }
    let f = built.index.footprint();
    t.row(vec![
        "footprint".to_string(),
        format!(
            "PM {} / DRAM {}",
            fmt_bytes(f.pm_bytes),
            fmt_bytes(f.dram_bytes)
        ),
    ]);
    print!("{}", t.to_text());
    if csv {
        print!("{}", t.to_csv());
    }
    if let Some(path) = json_path {
        let json = result_json(&index_kind, shards, &cfg, &r, f);
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("json written to {path}");
    }
}

/// Machine-readable run summary: parameters, throughput, per-kind tail
/// latency, media traffic per op. Handwritten JSON (no serde in-tree).
fn result_json(
    index_kind: &str,
    shards: usize,
    cfg: &BenchConfig,
    r: &pibench::RunResult,
    f: index_api::Footprint,
) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("{");
    let _ = write!(
        s,
        "\"index\":{},\"shards\":{},\"threads\":{},\"total_ops\":{},\"elapsed_s\":{:.6},\"throughput_mops\":{:.6},\"misses\":{}",
        json_string(index_kind),
        shards,
        cfg.threads,
        r.total_ops(),
        r.elapsed.as_secs_f64(),
        r.mops(),
        r.misses
    );
    s.push_str(",\"latency_ns\":{");
    let mut first = true;
    for k in pibench::workload::OP_KINDS {
        if r.ops[k as usize] == 0 {
            continue;
        }
        let h = &r.latency[k as usize];
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(
            s,
            "{}:{{\"p50\":{},\"p99\":{},\"p999\":{}}}",
            json_string(k.label()),
            h.percentile(50.0),
            h.percentile(99.0),
            h.percentile(99.9)
        );
    }
    s.push('}');
    let _ = write!(
        s,
        ",\"pm\":{{\"media_read_bytes\":{},\"media_write_bytes\":{},\"read_bytes_per_op\":{:.3},\"write_bytes_per_op\":{:.3},\"read_amplification\":{:.4},\"write_amplification\":{:.4},\"clwb\":{},\"fence\":{}}}",
        r.pm.media_read_bytes,
        r.pm.media_write_bytes,
        r.pm_read_bytes_per_op(),
        r.pm_write_bytes_per_op(),
        r.pm.read_amplification(),
        r.pm.write_amplification(),
        r.pm.clwb,
        r.pm.fence
    );
    let _ = writeln!(
        s,
        ",\"footprint\":{{\"pm_bytes\":{},\"dram_bytes\":{}}}}}",
        f.pm_bytes, f.dram_bytes
    );
    s
}
