//! Experiment scale configuration from the environment.

use pibench::{BenchConfig, Distribution, OpMix};

/// Scale knobs shared by all experiments.
#[derive(Debug, Clone)]
pub struct ExpCtx {
    /// Records prefilled per index.
    pub records: u64,
    /// Operations per data point (split across threads).
    pub ops_per_point: u64,
    /// Largest thread count in sweeps.
    pub max_threads: usize,
    /// Shards per index (1 = classic single-pool build; >1 routes every
    /// build through the range-partitioned [`engine::ShardedIndex`]).
    pub shards: usize,
    /// Also emit CSV blocks.
    pub csv: bool,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl ExpCtx {
    /// Read scale from `PIBENCH_*` environment variables.
    pub fn from_env() -> ExpCtx {
        let quick = std::env::var("PIBENCH_QUICK").is_ok_and(|v| v == "1");
        let base_records = if quick { 30_000 } else { 300_000 };
        let records = env_u64("PIBENCH_RECORDS", base_records);
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ExpCtx {
            records,
            ops_per_point: env_u64("PIBENCH_OPS", records),
            max_threads: env_u64("PIBENCH_THREADS", cores.min(8) as u64) as usize,
            shards: env_u64("PIBENCH_SHARDS", 1).max(1) as usize,
            csv: std::env::var("PIBENCH_CSV").is_ok_and(|v| v == "1"),
        }
    }

    /// Thread sweep: 1, 2, 4, … up to `max_threads` (inclusive).
    pub fn thread_ladder(&self) -> Vec<usize> {
        let mut v = Vec::new();
        let mut t = 1;
        while t < self.max_threads {
            v.push(t);
            t *= 2;
        }
        v.push(self.max_threads);
        v.dedup();
        v
    }

    /// The mid-scale thread count used where the paper reports "20
    /// threads" (half the machine).
    pub fn mid_threads(&self) -> usize {
        (self.max_threads / 2).max(1)
    }

    /// A bench config for one data point.
    pub fn point(&self, threads: usize, mix: OpMix, dist: Distribution) -> BenchConfig {
        BenchConfig {
            threads,
            records: self.records,
            ops_per_thread: Some((self.ops_per_point / threads as u64).max(1)),
            duration: None,
            mix,
            distribution: dist,
            scan_len: 100,
            latency_sample_shift: 3,
            seed: 0x5EED,
            negative_lookups: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_increasing_and_capped() {
        let ctx = ExpCtx {
            records: 1000,
            ops_per_point: 1000,
            max_threads: 6,
            shards: 1,
            csv: false,
        };
        assert_eq!(ctx.thread_ladder(), vec![1, 2, 4, 6]);
        let ctx2 = ExpCtx {
            max_threads: 8,
            ..ctx.clone()
        };
        assert_eq!(ctx2.thread_ladder(), vec![1, 2, 4, 8]);
        let ctx1 = ExpCtx {
            max_threads: 1,
            ..ctx
        };
        assert_eq!(ctx1.thread_ladder(), vec![1]);
        assert_eq!(ctx1.mid_threads(), 1);
    }

    #[test]
    fn point_splits_ops_across_threads() {
        let ctx = ExpCtx {
            records: 10_000,
            ops_per_point: 10_000,
            max_threads: 4,
            shards: 1,
            csv: false,
        };
        let cfg = ctx.point(
            4,
            OpMix::pure(pibench::OpKind::Lookup),
            Distribution::Uniform,
        );
        assert_eq!(cfg.ops_per_thread, Some(2_500));
        assert_eq!(cfg.threads, 4);
    }
}
