//! The experiments (E1–E20), one function per table/figure.
//!
//! Every function returns the rendered report so the `e00_run_all`
//! binary can collect them into a results file; bench targets print to
//! stdout.

use std::path::PathBuf;
use std::sync::Arc;

use pibench::report::{fmt_bytes, fmt_mops, fmt_ns, JsonObj, Table};
use pibench::{prefill, run, trace, BenchConfig, Distribution, KeySpace, OpKind, OpMix, RunResult};
use pmem::{PmConfig, PmPool};

use crate::cli::ExpCtx;
use crate::registry::{self, Built, ALL_KINDS, PM_KINDS};

/// Device config used by the PM experiments: full emulation with the
/// calibrated Optane-like latency model.
pub fn pm_cfg() -> PmConfig {
    PmConfig::optane_like()
}

/// Build + prefill one index, honoring the context's shard axis:
/// `--shards N > 1` routes the build through the range-partitioned
/// engine layer (N pools, N allocators, one `RangeIndex` front-end).
fn fresh(kind: &str, ctx: &ExpCtx, pm: PmConfig) -> (Built, KeySpace) {
    let b = if ctx.shards > 1 {
        registry::build_sharded(kind, ctx.shards, ctx.records, pm)
    } else {
        registry::build(kind, ctx.records, pm)
    };
    let ks = KeySpace::new(ctx.records);
    prefill(&*b.index, &ks, ctx.max_threads);
    (b, ks)
}

fn run_point(b: &Built, ks: &KeySpace, cfg: &BenchConfig) -> RunResult {
    run(&*b.index, ks, &b.pools, cfg)
}

/// One rendered experiment: the human-readable report plus a
/// machine-readable JSON document (for `BENCH_E*.json` trajectory
/// tracking across PRs).
pub struct ExpReport {
    /// Experiment title line.
    pub title: String,
    /// Text table (plus optional CSV block), as printed by the bench
    /// targets.
    pub text: String,
    /// JSON object: run parameters plus the table as row objects.
    pub json: String,
}

impl std::fmt::Display for ExpReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

fn render(title: &str, ctx: &ExpCtx, table: &Table) -> ExpReport {
    render_extra(title, ctx, table, &[])
}

/// Render a report, appending `extra` raw-JSON fields to the document
/// (e.g. E17 attaches the per-index site-attribution arrays). The JSON
/// goes through the shared [`JsonObj`] builder, the same emitter the
/// `pibench --json` path uses.
fn render_extra(title: &str, ctx: &ExpCtx, table: &Table, extra: &[(String, String)]) -> ExpReport {
    let mut out = format!(
        "== {title} ==\n(records={}, ops/point={}, max_threads={}, shards={})\n\n{}",
        ctx.records,
        ctx.ops_per_point,
        ctx.max_threads,
        ctx.shards,
        table.to_text()
    );
    if ctx.csv {
        out.push_str("\n[csv]\n");
        out.push_str(&table.to_csv());
    }
    out.push('\n');
    let mut o = JsonObj::new();
    o.str("title", title)
        .u64("records", ctx.records)
        .u64("ops_per_point", ctx.ops_per_point)
        .u64("max_threads", ctx.max_threads as u64)
        .u64("shards", ctx.shards as u64)
        .raw("rows", &table.to_json());
    for (key, value) in extra {
        o.raw(key, value);
    }
    ExpReport {
        title: title.to_string(),
        text: out,
        json: o.finish(),
    }
}

/// Ops used by the throughput experiments, in run order: read-only
/// first, then mutating (inserts grow the tree, removes run last).
const E1_OPS: [OpKind; 5] = [
    OpKind::Lookup,
    OpKind::Scan,
    OpKind::Update,
    OpKind::Insert,
    OpKind::Remove,
];

/// E1 — single-threaded throughput per operation (uniform).
pub fn e01(ctx: &ExpCtx) -> ExpReport {
    let mut t = Table::new(vec![
        "index", "lookup", "scan", "update", "insert", "remove",
    ]);
    for kind in ALL_KINDS {
        let (b, ks) = fresh(kind, ctx, pm_cfg());
        let mut cells = vec![kind.to_string()];
        for op in E1_OPS {
            let cfg = ctx.point(1, OpMix::pure(op), Distribution::Uniform);
            let r = run_point(&b, &ks, &cfg);
            cells.push(fmt_mops(r.mops()));
        }
        t.row(cells);
    }
    render("E1: single-threaded throughput (Mops/s, uniform)", ctx, &t)
}

/// Shared machinery for the scalability sweeps (E2/E3).
fn scalability(ctx: &ExpCtx, ops: &[OpKind], dist: Distribution, title: &str) -> ExpReport {
    let ladder = ctx.thread_ladder();
    let mut header = vec!["index".to_string(), "op".to_string()];
    header.extend(ladder.iter().map(|t| format!("{t}t")));
    let mut t = Table::new(header);
    for kind in ALL_KINDS {
        for &op in ops {
            // wB+Tree is single-threaded by design; the paper only ran
            // it at one thread. We still sweep it (mutex-serialized) so
            // the flat line is visible in the data.
            let mutating = matches!(op, OpKind::Insert | OpKind::Remove);
            let mut cells = vec![kind.to_string(), op.label().to_string()];
            // Reuse one prefilled index for non-growing ops.
            let mut reuse: Option<(Built, KeySpace)> = if mutating {
                None
            } else {
                Some(fresh(kind, ctx, pm_cfg()))
            };
            for &threads in &ladder {
                let pair;
                let (b, ks) = match &reuse {
                    Some(p) => p,
                    None => {
                        pair = fresh(kind, ctx, pm_cfg());
                        &pair
                    }
                };
                let cfg = ctx.point(threads, OpMix::pure(op), dist);
                let r = run_point(b, ks, &cfg);
                cells.push(fmt_mops(r.mops()));
                if mutating {
                    reuse = None; // rebuilt next iteration
                }
            }
            t.row(cells);
        }
    }
    render(title, ctx, &t)
}

/// E2 — multi-threaded scalability under the uniform distribution.
pub fn e02(ctx: &ExpCtx) -> ExpReport {
    scalability(
        ctx,
        &[OpKind::Lookup, OpKind::Insert, OpKind::Update, OpKind::Scan],
        Distribution::Uniform,
        "E2: scalability, uniform distribution (Mops/s)",
    )
}

/// E3 — multi-threaded scalability under self-similar 80/20 skew.
pub fn e03(ctx: &ExpCtx) -> ExpReport {
    scalability(
        ctx,
        &[OpKind::Lookup, OpKind::Update, OpKind::Scan],
        Distribution::self_similar_80_20(),
        "E3: scalability, self-similar 80/20 skew (Mops/s)",
    )
}

/// E4 — mixed lookup/insert workloads across thread counts.
pub fn e04(ctx: &ExpCtx) -> ExpReport {
    let ladder = ctx.thread_ladder();
    let mut header = vec!["index".to_string(), "mix".to_string()];
    header.extend(ladder.iter().map(|t| format!("{t}t")));
    let mut t = Table::new(header);
    for kind in ALL_KINDS {
        for lookup_pct in [90u8, 50, 10] {
            let mut cells = vec![
                kind.to_string(),
                format!("{lookup_pct}r/{}w", 100 - lookup_pct),
            ];
            for &threads in &ladder {
                let (b, ks) = fresh(kind, ctx, pm_cfg()); // inserts grow: rebuild per point
                let cfg = ctx.point(
                    threads,
                    OpMix::read_insert(lookup_pct),
                    Distribution::Uniform,
                );
                let r = run_point(&b, &ks, &cfg);
                cells.push(fmt_mops(r.mops()));
            }
            t.row(cells);
        }
    }
    render(
        "E4: mixed lookup/insert workloads (Mops/s, uniform)",
        ctx,
        &t,
    )
}

/// E5 — tail latency percentiles.
pub fn e05(ctx: &ExpCtx) -> ExpReport {
    let mut t = Table::new(vec![
        "index", "op", "threads", "p50", "p90", "p99", "p99.9", "p99.99", "max",
    ]);
    for kind in ALL_KINDS {
        let (b, ks) = fresh(kind, ctx, pm_cfg());
        for threads in [1usize, ctx.mid_threads()] {
            for op in [OpKind::Lookup, OpKind::Insert, OpKind::Scan] {
                let mut cfg = ctx.point(threads, OpMix::pure(op), Distribution::Uniform);
                cfg.latency_sample_shift = 3; // ~12.5% sampling, as in the paper's 10%
                let r = run_point(&b, &ks, &cfg);
                let h = &r.latency[op as usize];
                t.row(vec![
                    kind.to_string(),
                    op.label().to_string(),
                    threads.to_string(),
                    fmt_ns(h.percentile(50.0)),
                    fmt_ns(h.percentile(90.0)),
                    fmt_ns(h.percentile(99.0)),
                    fmt_ns(h.percentile(99.9)),
                    fmt_ns(h.percentile(99.99)),
                    fmt_ns(h.max()),
                ]);
            }
        }
    }
    render("E5: tail latency (uniform)", ctx, &t)
}

/// E6 — PM traffic per operation (read/write amplification).
pub fn e06(ctx: &ExpCtx) -> ExpReport {
    let mut t = Table::new(vec![
        "index",
        "op",
        "readB/op",
        "writeB/op",
        "read-amp",
        "write-amp",
        "clwb/op",
        "fence/op",
    ]);
    for kind in PM_KINDS {
        let (b, ks) = fresh(kind, ctx, pm_cfg());
        for op in [OpKind::Lookup, OpKind::Insert, OpKind::Scan] {
            let cfg = ctx.point(ctx.mid_threads(), OpMix::pure(op), Distribution::Uniform);
            let r = run_point(&b, &ks, &cfg);
            let n = r.total_ops().max(1);
            t.row(vec![
                kind.to_string(),
                op.label().to_string(),
                format!("{:.0}", r.pm_read_bytes_per_op()),
                format!("{:.0}", r.pm_write_bytes_per_op()),
                format!("{:.2}", r.pm.read_amplification()),
                format!("{:.2}", r.pm.write_amplification()),
                format!("{:.2}", r.pm.clwb as f64 / n as f64),
                format!("{:.2}", r.pm.fence as f64 / n as f64),
            ]);
        }
    }
    render(
        "E6: PM media traffic per operation (mid thread count)",
        ctx,
        &t,
    )
}

/// E7 — PM bandwidth consumption.
pub fn e07(ctx: &ExpCtx) -> ExpReport {
    let mut t = Table::new(vec!["index", "op", "readGiB/s", "writeGiB/s", "Mops/s"]);
    for kind in PM_KINDS {
        let (b, ks) = fresh(kind, ctx, pm_cfg());
        for op in [OpKind::Lookup, OpKind::Insert, OpKind::Scan] {
            let cfg = ctx.point(ctx.mid_threads(), OpMix::pure(op), Distribution::Uniform);
            let r = run_point(&b, &ks, &cfg);
            t.row(vec![
                kind.to_string(),
                op.label().to_string(),
                format!("{:.3}", r.pm_read_gibps()),
                format!("{:.3}", r.pm_write_gibps()),
                fmt_mops(r.mops()),
            ]);
        }
    }
    render("E7: PM bandwidth during each workload", ctx, &t)
}

/// E8 — memory consumption after loading (the paper's space table).
pub fn e08(ctx: &ExpCtx) -> ExpReport {
    let mut t = Table::new(vec![
        "index",
        "PM",
        "DRAM",
        "PM B/rec",
        "raw data",
        "bound chunks",
    ]);
    let raw = ctx.records * 16;
    for kind in ALL_KINDS {
        let (b, _ks) = fresh(kind, ctx, pm_cfg());
        let f = b.index.footprint();
        let chunks = if b.allocs.is_empty() {
            "-".to_string()
        } else {
            b.allocs
                .iter()
                .map(|a| a.stats().bound_chunks)
                .sum::<u64>()
                .to_string()
        };
        t.row(vec![
            kind.to_string(),
            fmt_bytes(f.pm_bytes),
            fmt_bytes(f.dram_bytes),
            format!("{:.1}", f.pm_bytes as f64 / ctx.records as f64),
            fmt_bytes(raw),
            chunks,
        ]);
    }
    render("E8: memory consumption after prefill", ctx, &t)
}

/// E9 — fingerprinting ablation (FPTree ± fingerprints, positive and
/// negative lookups).
pub fn e09(ctx: &ExpCtx) -> ExpReport {
    let mut t = Table::new(vec!["variant", "lookups", "threads", "Mops/s", "readB/op"]);
    for variant in ["fptree", "fptree-nofp"] {
        let b = registry::build(variant, ctx.records, pm_cfg());
        let ks = KeySpace::new(ctx.records);
        prefill(&*b.index, &ks, ctx.max_threads);
        for negative in [false, true] {
            for threads in [1usize, ctx.mid_threads()] {
                let mut cfg =
                    ctx.point(threads, OpMix::pure(OpKind::Lookup), Distribution::Uniform);
                cfg.negative_lookups = negative;
                let r = run_point(&b, &ks, &cfg);
                t.row(vec![
                    variant.to_string(),
                    if negative { "negative" } else { "positive" }.to_string(),
                    threads.to_string(),
                    fmt_mops(r.mops()),
                    format!("{:.0}", r.pm_read_bytes_per_op()),
                ]);
            }
        }
    }
    render("E9: fingerprinting ablation (FPTree)", ctx, &t)
}

/// E10 — allocator impact on insert throughput (general vs. striped
/// magazines).
pub fn e10(ctx: &ExpCtx) -> ExpReport {
    let ladder = ctx.thread_ladder();
    let mut header = vec!["index".to_string(), "allocator".to_string()];
    header.extend(ladder.iter().map(|t| format!("{t}t")));
    let mut t = Table::new(header);
    for kind in ["fptree", "bztree"] {
        for (mode, label) in [
            (pmalloc::AllocMode::General, "general"),
            (pmalloc::AllocMode::Striped, "striped"),
        ] {
            let mut cells = vec![kind.to_string(), label.to_string()];
            for &threads in &ladder {
                let b = registry::build_with_mode(kind, ctx.records, pm_cfg(), mode);
                let ks = KeySpace::new(ctx.records);
                prefill(&*b.index, &ks, ctx.max_threads);
                let cfg = ctx.point(threads, OpMix::pure(OpKind::Insert), Distribution::Uniform);
                let r = run_point(&b, &ks, &cfg);
                cells.push(fmt_mops(r.mops()));
            }
            t.row(cells);
        }
    }
    render(
        "E10: PM allocator ablation, insert throughput (Mops/s)",
        ctx,
        &t,
    )
}

/// E11 — recovery time vs. data size.
pub fn e11(ctx: &ExpCtx) -> ExpReport {
    let mut t = Table::new(vec!["index", "records", "recovery", "ms/Mrec"]);
    for kind in PM_KINDS {
        for frac in [4u64, 2, 1] {
            let records = (ctx.records / frac).max(1);
            let b = registry::build(kind, records, pm_cfg());
            let ks = KeySpace::new(records);
            prefill(&*b.index, &ks, ctx.max_threads);
            let pool: Arc<PmPool> = b.pool().cloned().expect("pm index has a pool");
            drop(b);
            pool.crash();
            let (b2, took) = registry::recover(kind, pool);
            // Sanity: a few keys must be present after recovery.
            for i in (0..records).step_by((records / 7 + 1) as usize) {
                assert_eq!(
                    b2.index.lookup(ks.key(i)),
                    Some(ks.value_for(ks.key(i))),
                    "{kind} lost key {i} across recovery"
                );
            }
            t.row(vec![
                kind.to_string(),
                records.to_string(),
                format!("{:.2}ms", took.as_secs_f64() * 1e3),
                format!("{:.2}", took.as_secs_f64() * 1e3 / (records as f64 / 1e6)),
            ]);
        }
    }
    render("E11: restart/recovery time vs data size", ctx, &t)
}

/// E12 — node-size sensitivity.
pub fn e12(ctx: &ExpCtx) -> ExpReport {
    let mut t = Table::new(vec!["index", "entries", "lookup", "insert", "scan"]);
    let sweeps: [(&str, &[usize]); 4] = [
        ("fptree", &[16, 32, 64]),
        ("nvtree", &[32, 64, 128]),
        ("wbtree", &[15, 31, 62]),
        ("bztree", &[30, 62, 124]),
    ];
    for (kind, sizes) in sweeps {
        for &entries in sizes {
            let b = registry::build_with_node_size(kind, ctx.records, pm_cfg(), entries);
            let ks = KeySpace::new(ctx.records);
            prefill(&*b.index, &ks, ctx.max_threads);
            let mut cells = vec![kind.to_string(), entries.to_string()];
            for op in [OpKind::Lookup, OpKind::Insert, OpKind::Scan] {
                let cfg = ctx.point(1, OpMix::pure(op), Distribution::Uniform);
                let r = run_point(&b, &ks, &cfg);
                cells.push(fmt_mops(r.mops()));
            }
            t.row(cells);
        }
    }
    render(
        "E12: node-size sensitivity (single thread, Mops/s)",
        ctx,
        &t,
    )
}

/// E13 — PM indexes on DRAM (persistence elided) vs. the volatile
/// baseline.
pub fn e13(ctx: &ExpCtx) -> ExpReport {
    let ladder = ctx.thread_ladder();
    let mut header = vec!["index".to_string(), "op".to_string()];
    header.extend(ladder.iter().map(|t| format!("{t}t")));
    let mut t = Table::new(header);
    let kinds = ["fptree", "nvtree", "wbtree", "bztree", "dram"];
    for kind in kinds {
        for op in [OpKind::Lookup, OpKind::Insert, OpKind::Scan] {
            let mutating = op == OpKind::Insert;
            let mut cells = vec![
                if kind == "dram" {
                    "dram-btree".to_string()
                } else {
                    format!("{kind}@dram")
                },
                op.label().to_string(),
            ];
            let reuse: Option<(Built, KeySpace)> = if mutating {
                None
            } else {
                Some(fresh(kind, ctx, PmConfig::dram()))
            };
            for &threads in &ladder {
                let pair;
                let (b, ks) = match &reuse {
                    Some(p) => p,
                    None => {
                        pair = fresh(kind, ctx, PmConfig::dram());
                        &pair
                    }
                };
                let cfg = ctx.point(threads, OpMix::pure(op), Distribution::Uniform);
                let r = run_point(b, ks, &cfg);
                cells.push(fmt_mops(r.mops()));
            }
            t.row(cells);
        }
    }
    render(
        "E13: PM indexes with persistence elided (DRAM) vs volatile baseline (Mops/s)",
        ctx,
        &t,
    )
}

/// An experiment entry point.
pub type ExpFn = fn(&ExpCtx) -> ExpReport;

/// E14 — variable-length key support: inline vs pointer-stored keys
/// (same 8-byte keys forced through the out-of-line path, as in the
/// paper's var-key methodology).
pub fn e14(ctx: &ExpCtx) -> ExpReport {
    let mut t = Table::new(vec!["variant", "op", "Mops/s", "readB/op"]);
    for variant in ["fptree", "fptree-varkey"] {
        let b = registry::build(variant, ctx.records, pm_cfg());
        let ks = KeySpace::new(ctx.records);
        prefill(&*b.index, &ks, ctx.max_threads);
        for op in [OpKind::Lookup, OpKind::Insert, OpKind::Scan] {
            let cfg = ctx.point(1, OpMix::pure(op), Distribution::Uniform);
            let r = run_point(&b, &ks, &cfg);
            t.row(vec![
                variant.to_string(),
                op.label().to_string(),
                fmt_mops(r.mops()),
                format!("{:.0}", r.pm_read_bytes_per_op()),
            ]);
        }
    }
    render(
        "E14: variable-length key support (inline vs pointer, 1 thread)",
        ctx,
        &t,
    )
}

/// E15 — wB+Tree slot-array ablation: slot+bitmap (binary search, more
/// fences) vs bitmap-only (linear search, fewer fences).
pub fn e15(ctx: &ExpCtx) -> ExpReport {
    let mut t = Table::new(vec!["variant", "op", "Mops/s", "fence/op", "clwb/op"]);
    for variant in ["wbtree", "wbtree-noslots"] {
        let b = registry::build(variant, ctx.records, pm_cfg());
        let ks = KeySpace::new(ctx.records);
        prefill(&*b.index, &ks, ctx.max_threads);
        for op in [OpKind::Lookup, OpKind::Insert] {
            let cfg = ctx.point(1, OpMix::pure(op), Distribution::Uniform);
            let r = run_point(&b, &ks, &cfg);
            let n = r.total_ops().max(1);
            t.row(vec![
                variant.to_string(),
                op.label().to_string(),
                fmt_mops(r.mops()),
                format!("{:.2}", r.pm.fence as f64 / n as f64),
                format!("{:.2}", r.pm.clwb as f64 / n as f64),
            ]);
        }
    }
    render("E15: wB+Tree slot-array ablation (1 thread)", ctx, &t)
}

/// E16 — sharding: shard-count × thread-count sweep through the engine
/// layer. Every shard is an independent pool + allocator, so this
/// isolates how much of the scalability ceiling is shared-resource
/// contention (allocator class locks, pool state) rather than the index
/// algorithm itself.
pub fn e16(ctx: &ExpCtx) -> ExpReport {
    let ladder = ctx.thread_ladder();
    let mut shard_ladder = vec![1usize, 2, 4];
    if !shard_ladder.contains(&ctx.shards) {
        shard_ladder.push(ctx.shards);
        shard_ladder.sort_unstable();
    }
    let mut header = vec!["index".to_string(), "op".to_string(), "shards".to_string()];
    header.extend(ladder.iter().map(|t| format!("{t}t")));
    let mut t = Table::new(header);
    for kind in ["fptree", "bztree"] {
        for op in [OpKind::Insert, OpKind::Lookup] {
            let mutating = op == OpKind::Insert;
            for &shards in &shard_ladder {
                let mut cells = vec![kind.to_string(), op.label().to_string(), shards.to_string()];
                // Reuse one prefilled build for non-growing ops.
                let mut reuse: Option<(Built, KeySpace)> = None;
                for &threads in &ladder {
                    if reuse.is_none() {
                        let b = registry::build_sharded(kind, shards, ctx.records, pm_cfg());
                        let ks = KeySpace::new(ctx.records);
                        prefill(&*b.index, &ks, ctx.max_threads);
                        reuse = Some((b, ks));
                    }
                    let (b, ks) = reuse.as_ref().unwrap();
                    let cfg = ctx.point(threads, OpMix::pure(op), Distribution::Uniform);
                    let r = run_point(b, ks, &cfg);
                    cells.push(fmt_mops(r.mops()));
                    if mutating {
                        reuse = None; // inserts grew the tree: rebuild
                    }
                }
                t.row(cells);
            }
        }
    }
    render(
        "E16: sharded engine, shard-count x thread-count (Mops/s, uniform)",
        ctx,
        &t,
    )
}

/// E17 — per-site PM traffic attribution: FPTree vs BzTree uniform
/// inserts with the `obs` tracing layer enabled around the measured
/// phase. The paper reports *how much* media traffic each index
/// generates (E6); this shows *where* it comes from — leaf appends vs
/// structure modification vs allocator metadata — via the scoped
/// `obs::site(..)` annotations inside the index crates.
pub fn e17(ctx: &ExpCtx) -> ExpReport {
    let mut t = Table::new(vec![
        "index",
        "site",
        "events",
        "clwb",
        "redundant",
        "ntstore",
        "media_write",
        "share%",
    ]);
    let mut extra: Vec<(String, String)> = Vec::new();
    for kind in ["fptree", "bztree"] {
        let (b, ks) = fresh(kind, ctx, pm_cfg());
        // Trace only the measured insert phase: prefill traffic above is
        // deliberately outside the enabled window.
        obs::reset();
        obs::set_enabled(true);
        let cfg = ctx.point(1, OpMix::pure(OpKind::Insert), Distribution::Uniform);
        let _ = run_point(&b, &ks, &cfg);
        obs::set_enabled(false);
        let sites = obs::site_table();
        let total_wr: u64 = sites.iter().map(|s| s.media_write_bytes).sum();
        for s in &sites {
            if s.events == 0 {
                continue;
            }
            let share = if total_wr == 0 {
                0.0
            } else {
                100.0 * s.media_write_bytes as f64 / total_wr as f64
            };
            t.row(vec![
                kind.to_string(),
                s.name.clone(),
                s.events.to_string(),
                s.clwb.to_string(),
                s.clwb_redundant.to_string(),
                s.ntstore.to_string(),
                fmt_bytes(s.media_write_bytes),
                format!("{share:.1}"),
            ]);
        }
        extra.push((format!("{kind}_sites"), trace::site_table_json(&sites)));
    }
    render_extra(
        "E17: per-site PM write attribution, uniform inserts (1 thread)",
        ctx,
        &t,
        &extra,
    )
}

/// The E18 workload mix, shared by the local baseline and the remote
/// driver: 60% lookups, 10% each of insert/update/remove/scan — all
/// five wire op types on every point.
fn e18_mix() -> OpMix {
    let m = OpMix {
        lookup: 60,
        insert: 10,
        update: 10,
        remove: 10,
        scan: 10,
    };
    m.validate();
    m
}

/// Locate the `pmserve`/`pmload` binaries: next to the running
/// executable (workspace bins share `target/<profile>/`) or one
/// directory up (bench targets run from `target/<profile>/deps/`).
fn net_bins() -> Result<(PathBuf, PathBuf), String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut dir = exe.parent();
    while let Some(d) = dir {
        let (s, l) = (d.join("pmserve"), d.join("pmload"));
        if s.is_file() && l.is_file() {
            return Ok((s, l));
        }
        if d.file_name().is_none() || !d.ends_with("deps") {
            break;
        }
        dir = d.parent();
    }
    Err(format!(
        "pmserve/pmload not built next to {} (run `cargo build --release -p net --bins` first)",
        exe.display()
    ))
}

/// Spawn `pmserve` and wait for its readiness line, returning the child
/// and the bound address.
fn spawn_pmserve(
    serve: &std::path::Path,
    ctx: &ExpCtx,
    workers: usize,
    batch_max: usize,
) -> Result<(std::process::Child, String), String> {
    use std::io::{BufRead, BufReader};
    let mut child = std::process::Command::new(serve)
        .args([
            "--index",
            "fptree",
            "--shards",
            &ctx.shards.max(2).to_string(),
            "--records",
            &ctx.records.to_string(),
            "--addr",
            "127.0.0.1:0",
            "--workers",
            &workers.to_string(),
            "--batch-max",
            &batch_max.to_string(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", serve.display()))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .map_err(|e| format!("read pmserve readiness line: {e}"))?;
    match line.trim().strip_prefix("pmserve listening on ") {
        Some(addr) => Ok((child, addr.to_string())),
        None => {
            let _ = child.kill();
            let _ = child.wait();
            Err(format!("unexpected pmserve readiness line {line:?}"))
        }
    }
}

/// One parsed `RESULT` line from a `pmload` run.
struct LoadPoint {
    mops: f64,
    p50: u64,
    p99: u64,
    p999: u64,
    acked: u64,
    errors: u64,
}

/// Run `pmload` against `addr` and parse its `RESULT` line (the flat
/// key=value twin of its JSON document, emitted for exactly this kind
/// of subprocess consumer).
fn run_pmload(
    load: &std::path::Path,
    addr: &str,
    ctx: &ExpCtx,
    conns: usize,
    ops: u64,
    open_loop_qps: Option<f64>,
    shutdown: bool,
) -> Result<LoadPoint, String> {
    let mut cmd = std::process::Command::new(load);
    cmd.args([
        "--addr",
        addr,
        "--records",
        &ctx.records.to_string(),
        "--ops",
        &ops.to_string(),
        "--conns",
        &conns.to_string(),
        "--window",
        "32",
        "--mix",
        "60,10,10,10,10",
    ]);
    if let Some(qps) = open_loop_qps {
        cmd.args(["--open-loop-qps", &qps.to_string()]);
    }
    if shutdown {
        cmd.arg("--shutdown");
    }
    let out = cmd
        .stderr(std::process::Stdio::null())
        .output()
        .map_err(|e| format!("spawn {}: {e}", load.display()))?;
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .rev()
        .find(|l| l.starts_with("RESULT "))
        .ok_or_else(|| format!("no RESULT line in pmload output (status {})", out.status))?;
    let field = |key: &str| -> Result<f64, String> {
        line.split_whitespace()
            .find_map(|kv| kv.strip_prefix(key)?.strip_prefix('=')?.parse().ok())
            .ok_or_else(|| format!("RESULT line missing {key}: {line}"))
    };
    let p = LoadPoint {
        mops: field("mops")?,
        p50: field("p50_ns")? as u64,
        p99: field("p99_ns")? as u64,
        p999: field("p999_ns")? as u64,
        acked: field("acked")? as u64,
        errors: field("errors")? as u64,
    };
    if !out.status.success() && p.errors == 0 {
        return Err(format!("pmload exited with {}: {line}", out.status));
    }
    Ok(p)
}

/// E18 — remote serving layer vs. local direct calls: the same mixed
/// workload through `pmserve`/`pmload` over loopback TCP (closed-loop
/// across batch sizes and connection counts, plus one open-loop Poisson
/// point) against the in-process baseline. The paper benchmarks indexes
/// behind function calls; this measures what the missing deployment
/// path — wire codec, group-durability batching, backpressure — costs.
pub fn e18(ctx: &ExpCtx) -> ExpReport {
    let mut t = Table::new(vec![
        "path", "loop", "conns", "batch", "Mops/s", "p50", "p99", "p99.9", "acked", "errors",
    ]);
    let mix = e18_mix();
    let conn_ladder = [1usize, ctx.max_threads.clamp(2, 4)];

    // Local baseline: the identical sharded build driven by direct
    // in-process calls, one "connection" = one worker thread.
    for &threads in &conn_ladder {
        let b = registry::build_sharded("fptree", ctx.shards.max(2), ctx.records, pm_cfg());
        let ks = KeySpace::new(ctx.records);
        prefill(&*b.index, &ks, ctx.max_threads);
        let cfg = ctx.point(threads, mix, Distribution::Uniform);
        let r = run_point(&b, &ks, &cfg);
        let mut h = pibench::hist::LatencyHistogram::new();
        for hh in &r.latency {
            h.merge(hh);
        }
        t.row(vec![
            "local".to_string(),
            "closed".to_string(),
            threads.to_string(),
            "-".to_string(),
            fmt_mops(r.mops()),
            fmt_ns(h.percentile(50.0)),
            fmt_ns(h.percentile(99.0)),
            fmt_ns(h.percentile(99.9)),
            r.total_ops().to_string(),
            "0".to_string(),
        ]);
    }

    // Remote: restart the server per batch size (it is a server-side
    // knob), sweep connection counts per server, then one open-loop
    // Poisson point at the largest batch.
    match net_bins() {
        Ok((serve, load)) => {
            let remote_ops = ctx.ops_per_point.clamp(1_000, 100_000);
            for (bi, batch) in [1usize, 32, 128].into_iter().enumerate() {
                let point = (|| -> Result<(), String> {
                    let (mut child, addr) = spawn_pmserve(&serve, ctx, conn_ladder[1], batch)?;
                    for &conns in &conn_ladder {
                        let p = run_pmload(&load, &addr, ctx, conns, remote_ops, None, false)?;
                        t.row(vec![
                            "remote".to_string(),
                            "closed".to_string(),
                            conns.to_string(),
                            batch.to_string(),
                            fmt_mops(p.mops),
                            fmt_ns(p.p50),
                            fmt_ns(p.p99),
                            fmt_ns(p.p999),
                            p.acked.to_string(),
                            p.errors.to_string(),
                        ]);
                    }
                    if bi == 2 {
                        // Open loop: Poisson arrivals at a rate the closed
                        // loop sustains comfortably, so the row reads as
                        // latency-under-offered-load, not saturation.
                        let qps = 25_000.0;
                        let p = run_pmload(
                            &load,
                            &addr,
                            ctx,
                            conn_ladder[1],
                            remote_ops.min(50_000),
                            Some(qps),
                            false,
                        )?;
                        t.row(vec![
                            "remote".to_string(),
                            format!("open {qps:.0}qps"),
                            conn_ladder[1].to_string(),
                            batch.to_string(),
                            fmt_mops(p.mops),
                            fmt_ns(p.p50),
                            fmt_ns(p.p99),
                            fmt_ns(p.p999),
                            p.acked.to_string(),
                            p.errors.to_string(),
                        ]);
                    }
                    // Graceful drain over the wire, then reap the child.
                    let _ = run_pmload(&load, &addr, ctx, 1, 1, None, true);
                    let _ = child.wait();
                    Ok(())
                })();
                if let Err(e) = point {
                    t.row(vec![
                        "remote".to_string(),
                        "closed".to_string(),
                        "-".to_string(),
                        batch.to_string(),
                        format!("FAILED: {e}"),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                    ]);
                }
            }
        }
        Err(reason) => {
            t.row(vec![
                "remote".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                format!("skipped: {reason}"),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
        }
    }
    render(
        "E18: remote serving layer vs local direct calls (fptree, mixed 60/10/10/10/10)",
        ctx,
        &t,
    )
}

/// E19 — the learned index against the PM trees on its home turf and
/// off it: pure uniform lookups (one segment predict + ε-window search
/// in DRAM, a single PM value read, no pointer chase), a lookup-heavy
/// 90/10 mix, an insert-heavy 10/90 mix (every insert pays a delta-log
/// append and amortized merges), and a scan-heavy 20/80 mix (the
/// model's sorted run is scan-friendly; the delta overlay is not).
/// The JSON report attaches the trained model's shape — segment count,
/// ε, delta-log occupancy, merge count — from a prefilled
/// default-config instance.
pub fn e19(ctx: &ExpCtx) -> ExpReport {
    let scan_heavy = OpMix {
        lookup: 20,
        insert: 0,
        update: 0,
        remove: 0,
        scan: 80,
    };
    scan_heavy.validate();
    let mixes: [(&str, OpMix); 4] = [
        ("lookup", OpMix::pure(OpKind::Lookup)),
        ("lookup-heavy", OpMix::read_insert(90)),
        ("insert-heavy", OpMix::read_insert(10)),
        ("scan-heavy", scan_heavy),
    ];
    let threads = ctx.mid_threads();
    let mut header = vec!["index".to_string()];
    header.extend(mixes.iter().map(|(name, _)| name.to_string()));
    let mut t = Table::new(header);
    for kind in PM_KINDS {
        let mut cells = vec![kind.to_string()];
        for (_, mix) in &mixes {
            // Fresh per point: the mixes with inserts grow the index.
            let (b, ks) = fresh(kind, ctx, pm_cfg());
            let cfg = ctx.point(threads, *mix, Distribution::Uniform);
            let r = run_point(&b, &ks, &cfg);
            cells.push(fmt_mops(r.mops()));
        }
        t.row(cells);
    }

    // Model-shape sidecar: what the learned index actually trained on
    // this record count (the dyn-erased harness path can't see it).
    let stats = {
        let pool = Arc::new(PmPool::new(registry::pool_bytes(ctx.records), pm_cfg()));
        let alloc = pmalloc::PmAllocator::format(pool.clone(), pmalloc::AllocMode::General);
        let idx = learned::LearnedIndex::create(alloc, learned::LearnedConfig::default());
        let ks = KeySpace::new(ctx.records);
        prefill(&*idx, &ks, ctx.max_threads);
        idx.model_stats()
    };
    let mut model = JsonObj::new();
    model
        .u64("epoch", stats.epoch)
        .u64("model_keys", stats.model_keys as u64)
        .u64("segments", stats.segments as u64)
        .u64("epsilon", stats.epsilon)
        .u64("delta_len", stats.delta_len as u64)
        .u64("delta_cap", stats.delta_cap as u64)
        .u64("merges", stats.merges);
    render_extra(
        &format!("E19: learned index vs PM trees ({threads} threads, Mops/s, uniform)"),
        ctx,
        &t,
        &[("learned_model".to_string(), model.finish())],
    )
}

/// The E20 access pattern: 90% lookups / 10% updates, the read-mostly
/// mix the DRAM hot-key tier targets.
fn e20_mix() -> OpMix {
    let m = OpMix {
        lookup: 90,
        insert: 0,
        update: 10,
        remove: 0,
        scan: 0,
    };
    m.validate();
    m
}

/// Throughput of `threads` workers hammering `engine` with the E20 mix
/// under `sampler` (keys are `index * stride`). Used by the migration
/// ladder, which needs a *contiguous* hot key range — `pibench::run`'s
/// [`KeySpace`] permutes keys across the space, which would smear the
/// hot set over every shard.
fn e20_drive(
    engine: &Arc<engine::ShardedIndex>,
    sampler: &pibench::dist::Sampler,
    stride: u64,
    threads: usize,
    total_ops: u64,
) -> f64 {
    use index_api::RangeIndex;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let per_thread = (total_ops / threads as u64).max(1);
    let t0 = std::time::Instant::now();
    std::thread::scope(|s| {
        for tid in 0..threads as u64 {
            let engine = engine.clone();
            let sampler = *sampler;
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0x20E0 + tid);
                for i in 0..per_thread {
                    let key = sampler.sample(&mut rng) * stride;
                    if i % 10 == 0 {
                        engine.update(key, i);
                    } else {
                        engine.lookup(key);
                    }
                }
            });
        }
    });
    (per_thread * threads as u64) as f64 / t0.elapsed().as_secs_f64() / 1e6
}

/// E20 — the DRAM hot-key tier and online shard-range migration under
/// skew. Three parts: (a) cached vs uncached throughput on the same
/// fptree build under self-similar 80/20 and hot-storm access; (b) tail
/// latency of the cached storm vs the uncached *uniform* baseline (the
/// tier's promise: a hot-key storm should not be worse than an even
/// load); (c) a migration-under-load ladder — throughput before,
/// during, and after an online split of the hot shard, driven through
/// [`engine::Migrator`] while workers hammer a contiguous hot range.
pub fn e20(ctx: &ExpCtx) -> ExpReport {
    use cache::CachedIndex;
    use index_api::RangeIndex;

    let threads = ctx.mid_threads();
    let mix = e20_mix();
    let mut t = Table::new(vec![
        "part", "config", "dist", "Mops/s", "p50", "p99", "hit%",
    ]);
    let storm = Distribution::HotStorm {
        hot: (ctx.records / 100).max(1),
        frac: 0.9,
    };
    let dists: [(&str, Distribution); 2] = [
        ("selfsimilar", Distribution::self_similar_80_20()),
        ("storm", storm),
    ];

    // Part A: cached vs uncached under skew (equal threads, same kind).
    let mut part_a = JsonObj::new();
    let mut storm_cached_p99 = 0u64;
    for (dname, dist) in dists {
        let mut pair = [0.0f64; 2];
        for cached in [false, true] {
            let (b, ks) = fresh("fptree", ctx, pm_cfg());
            let handle = cached.then(|| Arc::new(CachedIndex::new(b.index.clone(), 64 << 20)));
            let under_test: Arc<dyn RangeIndex> = match &handle {
                Some(c) => c.clone(),
                None => b.index.clone(),
            };
            let cfg = ctx.point(threads, mix, dist);
            let r = run(&*under_test, &ks, &b.pools, &cfg);
            let h = &r.latency[OpKind::Lookup as usize];
            pair[cached as usize] = r.mops();
            if cached && dname == "storm" {
                storm_cached_p99 = h.percentile(99.0);
            }
            let hit = handle
                .map(|c| format!("{:.1}", c.counters().hit_rate() * 100.0))
                .unwrap_or_else(|| "-".to_string());
            t.row(vec![
                "A".to_string(),
                if cached { "cached-64MiB" } else { "uncached" }.to_string(),
                dname.to_string(),
                fmt_mops(r.mops()),
                fmt_ns(h.percentile(50.0)),
                fmt_ns(h.percentile(99.0)),
                hit,
            ]);
        }
        part_a
            .f64(&format!("{dname}_uncached_mops"), pair[0])
            .f64(&format!("{dname}_cached_mops"), pair[1])
            .f64(&format!("{dname}_speedup"), pair[1] / pair[0].max(1e-9));
    }

    // Part B: the uncached uniform baseline the storm tail is held to.
    let uniform_p99 = {
        let (b, ks) = fresh("fptree", ctx, pm_cfg());
        let cfg = ctx.point(threads, mix, Distribution::Uniform);
        let r = run(&*b.index, &ks, &b.pools, &cfg);
        let h = &r.latency[OpKind::Lookup as usize];
        t.row(vec![
            "B".to_string(),
            "uncached".to_string(),
            "uniform".to_string(),
            fmt_mops(r.mops()),
            fmt_ns(h.percentile(50.0)),
            fmt_ns(h.percentile(99.0)),
            "-".to_string(),
        ]);
        h.percentile(99.0)
    };

    // Part C: online split of the hot shard while workers hammer a
    // *contiguous* hot range at the bottom of shard 0.
    let kind = "fptree";
    let base_shards = 2usize;
    let stride = u64::MAX / ctx.records;
    let per: Vec<engine::Shard> = (0..base_shards)
        .map(|_| registry::split_shard(kind, ctx.records, base_shards, pm_cfg()))
        .collect();
    let eng = engine::ShardedIndex::from_parts(per);
    for i in 0..ctx.records {
        eng.insert(i * stride, i);
    }
    let hot = (ctx.records / 10).max(2); // hot range: bottom 10%, all in shard 0
    let sampler = Distribution::HotStorm { hot, frac: 0.9 }.sampler(ctx.records);
    let window = ctx.ops_per_point;
    let before = e20_drive(&eng, &sampler, stride, threads, window);
    let split_at = (hot / 2) * stride; // cleave the hot range itself
    let mut mig = eng.begin_migration(
        split_at,
        registry::split_shard(kind, ctx.records, base_shards, pm_cfg()),
    );
    let (during, mig_ms) = std::thread::scope(|s| {
        let h = s.spawn(move || {
            let m0 = std::time::Instant::now();
            mig.run(256);
            m0.elapsed().as_secs_f64() * 1e3
        });
        let d = e20_drive(&eng, &sampler, stride, threads, window);
        (d, h.join().expect("migration thread"))
    });
    let after = e20_drive(&eng, &sampler, stride, threads, window);
    let routes_after = eng.routes().len();
    assert_eq!(routes_after, base_shards + 1, "split must add a route");
    for (phase, mops) in [("before", before), ("during", during), ("after", after)] {
        t.row(vec![
            "C".to_string(),
            format!("migrate-{phase}"),
            "storm(contig)".to_string(),
            fmt_mops(mops),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
    }
    let mut mig_json = JsonObj::new();
    mig_json
        .u64("base_shards", base_shards as u64)
        .u64("hot_keys", hot)
        .f64("before_mops", before)
        .f64("during_mops", during)
        .f64("after_mops", after)
        .f64("migration_ms", mig_ms)
        .u64("routes_after", routes_after as u64);

    let mut tails = JsonObj::new();
    tails
        .u64("storm_p99_cached_ns", storm_cached_p99)
        .u64("uniform_p99_uncached_ns", uniform_p99);

    render_extra(
        &format!(
            "E20: DRAM hot-key tier + online shard split under skew ({threads} threads, fptree)"
        ),
        ctx,
        &t,
        &[
            ("cache_tier".to_string(), part_a.finish()),
            ("tail".to_string(), tails.finish()),
            ("migration".to_string(), mig_json.finish()),
        ],
    )
}

/// One registered experiment: id, entry point, and an environment
/// prerequisite. `e00_run_all` calls `prereq` first and skips the
/// experiment with the returned reason instead of dying mid-sweep.
pub struct Experiment {
    /// Short id (`e01` …), also the `BENCH_E*.json` stem.
    pub id: &'static str,
    /// The experiment entry point.
    pub f: ExpFn,
    /// Environment check; `Err(reason)` ⇒ skip.
    pub prereq: fn(&ExpCtx) -> Result<(), String>,
}

fn no_prereq(_: &ExpCtx) -> Result<(), String> {
    Ok(())
}

fn e18_prereq(_: &ExpCtx) -> Result<(), String> {
    net_bins().map(|_| ())
}

/// All experiments in order, with ids and prerequisites (for
/// `e00_run_all`).
pub fn all() -> Vec<Experiment> {
    let plain = |id, f| Experiment {
        id,
        f,
        prereq: no_prereq,
    };
    vec![
        plain("e01", e01 as ExpFn),
        plain("e02", e02),
        plain("e03", e03),
        plain("e04", e04),
        plain("e05", e05),
        plain("e06", e06),
        plain("e07", e07),
        plain("e08", e08),
        plain("e09", e09),
        plain("e10", e10),
        plain("e11", e11),
        plain("e12", e12),
        plain("e13", e13),
        plain("e14", e14),
        plain("e15", e15),
        plain("e16", e16),
        plain("e17", e17),
        Experiment {
            id: "e18",
            f: e18,
            prereq: e18_prereq,
        },
        plain("e19", e19),
        plain("e20", e20),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpCtx {
        ExpCtx {
            records: 3_000,
            ops_per_point: 2_000,
            max_threads: 2,
            shards: 1,
            csv: true,
        }
    }

    #[test]
    fn e01_smoke() {
        let out = e01(&tiny()).text;
        assert!(out.contains("E1"));
        for kind in ALL_KINDS {
            assert!(out.contains(kind), "{kind} missing:\n{out}");
        }
        assert!(out.contains("[csv]"));
    }

    #[test]
    fn e08_reports_footprints() {
        let out = e08(&tiny()).text;
        assert!(out.contains("PM"));
        assert!(out.contains("dram"));
    }

    #[test]
    fn e11_recovers_all_kinds() {
        let out = e11(&tiny()).text;
        for kind in PM_KINDS {
            assert!(out.contains(kind));
        }
        assert!(out.contains("ms"));
    }

    #[test]
    fn e16_smoke_and_json() {
        let r = e16(&ExpCtx {
            records: 2_000,
            ops_per_point: 1_000,
            max_threads: 2,
            shards: 2,
            csv: false,
        });
        assert!(r.text.contains("E16"));
        assert!(r.text.contains("shards"));
        assert!(r.json.starts_with('{'));
        assert!(r.json.contains("\"shards\":2"));
        assert!(r.json.contains("\"rows\":["));
    }

    #[test]
    fn e19_covers_every_pm_kind_and_attaches_model_stats() {
        let r = e19(&tiny());
        for kind in PM_KINDS {
            assert!(r.text.contains(kind), "{kind} missing:\n{}", r.text);
        }
        assert!(r.text.contains("lookup-heavy"));
        assert!(r.text.contains("scan-heavy"));
        assert!(r.json.contains("\"learned_model\":{"), "{}", r.json);
        assert!(r.json.contains("\"segments\":"), "{}", r.json);
        assert!(r.json.contains("\"merges\":"), "{}", r.json);
    }

    #[test]
    fn e20_smoke_and_json() {
        let r = e20(&tiny());
        assert!(r.text.contains("E20"), "{}", r.text);
        assert!(r.text.contains("cached-64MiB"), "{}", r.text);
        assert!(r.text.contains("migrate-during"), "{}", r.text);
        assert!(r.json.contains("\"cache_tier\":{"), "{}", r.json);
        assert!(r.json.contains("\"storm_speedup\""), "{}", r.json);
        assert!(r.json.contains("\"migration\":{"), "{}", r.json);
        assert!(r.json.contains("\"routes_after\":3"), "{}", r.json);
    }

    #[test]
    fn e17_attributes_insert_traffic() {
        let r = e17(&tiny());
        assert!(r.text.contains("E17"));
        // Both indexes appear with their annotated insert sites.
        assert!(r.text.contains("fptree_insert"), "{}", r.text);
        assert!(r.text.contains("bztree"), "{}", r.text);
        assert!(r.json.contains("\"fptree_sites\":["), "{}", r.json);
        assert!(r.json.contains("\"bztree_sites\":["), "{}", r.json);
        assert!(r.json.contains("\"media_write_share\""), "{}", r.json);
    }

    #[test]
    fn sharded_fresh_runs_experiment_point() {
        let ctx = ExpCtx {
            records: 2_000,
            ops_per_point: 1_000,
            max_threads: 2,
            shards: 3,
            csv: false,
        };
        let (b, ks) = fresh("wbtree", &ctx, pm_cfg());
        assert_eq!(b.pools.len(), 3);
        let cfg = ctx.point(2, OpMix::pure(OpKind::Lookup), Distribution::Uniform);
        let r = run_point(&b, &ks, &cfg);
        assert_eq!(r.misses, 0);
        // The merged PM delta must see traffic (lookups read all shards).
        assert!(r.pm.read_ops > 0);
    }
}
