//! # bench — the experiment harness
//!
//! One bench target per table/figure of the evaluation (see DESIGN.md's
//! experiment index E1–E15). Each experiment is a function in [`exp`]
//! that builds fresh indexes on their own emulated PM pools, drives
//! them with PiBench workloads, and prints the same rows/series the
//! paper's artifact reports.
//!
//! Scale is controlled by environment variables so `cargo bench` works
//! out of the box at laptop scale and can be dialed up toward the
//! paper's 100 M-record runs:
//!
//! | Variable | Default | Meaning |
//! |---|---|---|
//! | `PIBENCH_RECORDS` | 300 000 | records prefilled per index |
//! | `PIBENCH_OPS` | = records | operations per data point |
//! | `PIBENCH_THREADS` | min(8, cores) | max worker threads |
//! | `PIBENCH_QUICK` | unset | `1` shrinks records/ops 10× |
//! | `PIBENCH_CSV` | unset | `1` appends CSV blocks to reports |

pub mod cli;
pub mod exp;
pub mod registry;
