//! Index construction for the experiments.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bztree::{BzTree, BzTreeConfig};
use dram_index::DramTree;
use fptree::{FpTree, FpTreeConfig, KeyMode};
use index_api::RangeIndex;
use nvtree::{NvTree, NvTreeConfig};
use pmalloc::{AllocMode, PmAllocator};
use pmem::{PmConfig, PmPool};
use wbtree::{WbTree, WbTreeConfig};

/// The four evaluated PM indexes.
pub const PM_KINDS: [&str; 4] = ["fptree", "nvtree", "wbtree", "bztree"];
/// PM indexes plus the volatile baseline.
pub const ALL_KINDS: [&str; 5] = ["fptree", "nvtree", "wbtree", "bztree", "dram"];

/// A constructed index with its (optional) backing pool/allocator.
pub struct Built {
    /// The index under test.
    pub index: Arc<dyn RangeIndex>,
    /// Its emulated PM pool (None for the DRAM baseline).
    pub pool: Option<Arc<PmPool>>,
    /// Its allocator (None for the DRAM baseline).
    pub alloc: Option<Arc<PmAllocator>>,
}

/// Pool capacity heuristic: generous per-record budget (nodes are
/// half-full on average, BzTree keeps version chains until
/// consolidation) plus fixed headroom.
pub fn pool_bytes(records: u64) -> usize {
    (records as usize) * 320 + (64 << 20)
}

/// Build a fresh index of `kind` sized for `records`, on a pool with
/// the given device config. PM indexes default to the PMDK-like
/// general allocator; see [`build_with_mode`] for the ablation.
pub fn build(kind: &str, records: u64, pm: PmConfig) -> Built {
    build_with_mode(kind, records, pm, AllocMode::General)
}

/// Like [`build`], with an explicit allocation mode (E10).
pub fn build_with_mode(kind: &str, records: u64, pm: PmConfig, mode: AllocMode) -> Built {
    if kind == "dram" {
        return Built {
            index: Arc::new(DramTree::new()),
            pool: None,
            alloc: None,
        };
    }
    let pool = Arc::new(PmPool::new(pool_bytes(records), pm));
    let alloc = PmAllocator::format(pool.clone(), mode);
    let index: Arc<dyn RangeIndex> = match kind {
        "fptree" => FpTree::create(alloc.clone(), FpTreeConfig::default()),
        "fptree-nofp" => FpTree::create(
            alloc.clone(),
            FpTreeConfig {
                use_fingerprints: false,
                ..FpTreeConfig::default()
            },
        ),
        "fptree-varkey" => FpTree::create(
            alloc.clone(),
            FpTreeConfig {
                key_mode: KeyMode::Pointer,
                ..FpTreeConfig::default()
            },
        ),
        "nvtree" => NvTree::create(alloc.clone(), NvTreeConfig::default()),
        "wbtree" => WbTree::create(alloc.clone(), WbTreeConfig::default()),
        "wbtree-noslots" => WbTree::create(
            alloc.clone(),
            WbTreeConfig {
                use_slot_array: false,
                ..WbTreeConfig::default()
            },
        ),
        "bztree" => BzTree::create(alloc.clone(), BzTreeConfig::default()),
        other => panic!("unknown index kind {other:?}"),
    };
    Built {
        index,
        pool: Some(pool),
        alloc: Some(alloc),
    }
}

/// Build with a custom node size (E12). `entries` is the leaf/node
/// record count; each index clamps to its own legal range.
pub fn build_with_node_size(kind: &str, records: u64, pm: PmConfig, entries: usize) -> Built {
    let pool = Arc::new(PmPool::new(pool_bytes(records), pm));
    let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
    let index: Arc<dyn RangeIndex> = match kind {
        "fptree" => FpTree::create(
            alloc.clone(),
            FpTreeConfig {
                leaf_entries: entries.min(64),
                ..FpTreeConfig::default()
            },
        ),
        "nvtree" => NvTree::create(
            alloc.clone(),
            NvTreeConfig {
                leaf_entries: entries,
                ..NvTreeConfig::default()
            },
        ),
        "wbtree" => WbTree::create(
            alloc.clone(),
            WbTreeConfig {
                node_entries: entries.min(62),
                ..WbTreeConfig::default()
            },
        ),
        "bztree" => BzTree::create(
            alloc.clone(),
            BzTreeConfig {
                node_entries: entries,
                ..BzTreeConfig::default()
            },
        ),
        other => panic!("unknown index kind {other:?}"),
    };
    Built {
        index,
        pool: Some(pool),
        alloc: Some(alloc),
    }
}

/// Reopen a crashed pool as `kind`, timing the full restart path
/// (allocator recovery + index recovery, including any DRAM rebuild).
pub fn recover(kind: &str, pool: Arc<PmPool>) -> (Built, Duration) {
    let t0 = Instant::now();
    let alloc = PmAllocator::recover(pool.clone(), AllocMode::General);
    let index: Arc<dyn RangeIndex> = match kind {
        "fptree" => FpTree::recover(alloc.clone(), FpTreeConfig::default()),
        "nvtree" => NvTree::recover(alloc.clone(), NvTreeConfig::default()),
        "wbtree" => WbTree::recover(alloc.clone(), WbTreeConfig::default()),
        "bztree" => BzTree::recover(alloc.clone(), BzTreeConfig::default()),
        other => panic!("unknown index kind {other:?}"),
    };
    let elapsed = t0.elapsed();
    (
        Built {
            index,
            pool: Some(pool),
            alloc: Some(alloc),
        },
        elapsed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_and_serves() {
        for kind in ALL_KINDS {
            let b = build(kind, 10_000, PmConfig::real());
            assert!(b.index.insert(42, 1), "{kind}");
            assert_eq!(b.index.lookup(42), Some(1), "{kind}");
            assert_eq!(b.pool.is_some(), kind != "dram");
        }
    }

    #[test]
    fn recovery_roundtrip_for_all_pm_kinds() {
        for kind in PM_KINDS {
            let b = build(kind, 10_000, PmConfig::real());
            for k in 0..500u64 {
                b.index.insert(k, k + 1);
            }
            let pool = b.pool.clone().unwrap();
            drop(b);
            pool.crash();
            let (b2, took) = recover(kind, pool);
            for k in 0..500u64 {
                assert_eq!(b2.index.lookup(k), Some(k + 1), "{kind} key {k}");
            }
            assert!(took.as_nanos() > 0);
        }
    }

    #[test]
    fn node_size_variants_build() {
        for kind in PM_KINDS {
            let b = build_with_node_size(kind, 1_000, PmConfig::real(), 16);
            for k in 0..200u64 {
                assert!(b.index.insert(k, k), "{kind}");
            }
            let mut out = Vec::new();
            assert_eq!(b.index.scan(0, 200, &mut out), 200, "{kind}");
        }
    }
}
