//! Index construction for the experiments.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bztree::{BzTree, BzTreeConfig};
use dram_index::DramTree;
use engine::{Shard, ShardedIndex};
use fptree::{FpTree, FpTreeConfig, KeyMode};
use index_api::RangeIndex;
use learned::{LearnedConfig, LearnedIndex};
use nvtree::{NvTree, NvTreeConfig};
use pmalloc::{AllocMode, PmAllocator};
use pmem::{PmConfig, PmPool, ROOT_AREA};
use wbtree::{WbTree, WbTreeConfig};

/// The five evaluated PM indexes.
pub const PM_KINDS: [&str; 5] = ["fptree", "nvtree", "wbtree", "bztree", "learned"];
/// PM indexes plus the volatile baseline.
pub const ALL_KINDS: [&str; 6] = ["fptree", "nvtree", "wbtree", "bztree", "learned", "dram"];

/// One row of the kind-dispatch table: everything the harness needs to
/// construct, reopen, or reshape one index kind (default
/// configuration). Adding a kind — or a config variant like
/// `fptree-nofp` — is one new row here plus membership in the KIND
/// lists above; nothing else in the crate matches on kind strings.
type MakeFn = fn(&Arc<PmAllocator>) -> Arc<dyn RangeIndex>;
type MakeSizedFn = fn(&Arc<PmAllocator>, usize) -> Arc<dyn RangeIndex>;

struct KindSpec {
    name: &'static str,
    /// Fresh index on a formatted allocator.
    make: MakeFn,
    /// Reopen from a recovered allocator.
    reopen: MakeFn,
    /// Fresh index with an explicit node/granule size (E12); `None`
    /// for variants whose shape knob is fixed by definition.
    with_node_size: Option<MakeSizedFn>,
}

/// The dispatch table. Non-capturing closures coerce to `fn` pointers,
/// so each row is declarative.
const KIND_TABLE: &[KindSpec] = &[
    KindSpec {
        name: "fptree",
        make: |a| FpTree::create(a.clone(), FpTreeConfig::default()),
        reopen: |a| FpTree::recover(a.clone(), FpTreeConfig::default()),
        with_node_size: Some(|a, e| {
            FpTree::create(
                a.clone(),
                FpTreeConfig {
                    leaf_entries: e.min(64),
                    ..FpTreeConfig::default()
                },
            )
        }),
    },
    KindSpec {
        name: "fptree-nofp",
        make: |a| {
            FpTree::create(
                a.clone(),
                FpTreeConfig {
                    use_fingerprints: false,
                    ..FpTreeConfig::default()
                },
            )
        },
        reopen: |a| {
            FpTree::recover(
                a.clone(),
                FpTreeConfig {
                    use_fingerprints: false,
                    ..FpTreeConfig::default()
                },
            )
        },
        with_node_size: None,
    },
    KindSpec {
        name: "fptree-varkey",
        make: |a| {
            FpTree::create(
                a.clone(),
                FpTreeConfig {
                    key_mode: KeyMode::Pointer,
                    ..FpTreeConfig::default()
                },
            )
        },
        reopen: |a| {
            FpTree::recover(
                a.clone(),
                FpTreeConfig {
                    key_mode: KeyMode::Pointer,
                    ..FpTreeConfig::default()
                },
            )
        },
        with_node_size: None,
    },
    KindSpec {
        name: "nvtree",
        make: |a| NvTree::create(a.clone(), NvTreeConfig::default()),
        reopen: |a| NvTree::recover(a.clone(), NvTreeConfig::default()),
        with_node_size: Some(|a, e| {
            NvTree::create(
                a.clone(),
                NvTreeConfig {
                    leaf_entries: e,
                    ..NvTreeConfig::default()
                },
            )
        }),
    },
    KindSpec {
        name: "wbtree",
        make: |a| WbTree::create(a.clone(), WbTreeConfig::default()),
        reopen: |a| WbTree::recover(a.clone(), WbTreeConfig::default()),
        with_node_size: Some(|a, e| {
            WbTree::create(
                a.clone(),
                WbTreeConfig {
                    node_entries: e.min(62),
                    ..WbTreeConfig::default()
                },
            )
        }),
    },
    KindSpec {
        name: "wbtree-noslots",
        make: |a| {
            WbTree::create(
                a.clone(),
                WbTreeConfig {
                    use_slot_array: false,
                    ..WbTreeConfig::default()
                },
            )
        },
        reopen: |a| {
            WbTree::recover(
                a.clone(),
                WbTreeConfig {
                    use_slot_array: false,
                    ..WbTreeConfig::default()
                },
            )
        },
        with_node_size: None,
    },
    KindSpec {
        name: "bztree",
        make: |a| BzTree::create(a.clone(), BzTreeConfig::default()),
        reopen: |a| BzTree::recover(a.clone(), BzTreeConfig::default()),
        with_node_size: Some(|a, e| {
            BzTree::create(
                a.clone(),
                BzTreeConfig {
                    node_entries: e,
                    ..BzTreeConfig::default()
                },
            )
        }),
    },
    KindSpec {
        name: "learned",
        make: |a| LearnedIndex::create(a.clone(), LearnedConfig::default()),
        reopen: |a| LearnedIndex::recover(a.clone(), LearnedConfig::default()),
        // The learned index's "node size" analogue is the ε search
        // window the trained segments guarantee.
        with_node_size: Some(|a, e| {
            LearnedIndex::create(
                a.clone(),
                LearnedConfig {
                    epsilon: (e as u64).clamp(4, 1024),
                    ..LearnedConfig::default()
                },
            )
        }),
    },
];

fn spec(kind: &str) -> &'static KindSpec {
    KIND_TABLE
        .iter()
        .find(|s| s.name == kind)
        .unwrap_or_else(|| panic!("unknown index kind {kind:?}"))
}

/// A constructed index with its backing pools/allocators (one per
/// shard; empty for the DRAM baseline).
pub struct Built {
    /// The index under test.
    pub index: Arc<dyn RangeIndex>,
    /// Its emulated PM pools, in shard order (empty for DRAM).
    pub pools: Vec<Arc<PmPool>>,
    /// Its allocators, in shard order (empty for DRAM).
    pub allocs: Vec<Arc<PmAllocator>>,
}

impl Built {
    /// Back-compat single-shard accessor: the first (usually only) pool.
    pub fn pool(&self) -> Option<&Arc<PmPool>> {
        self.pools.first()
    }

    /// Back-compat single-shard accessor: the first (usually only)
    /// allocator.
    pub fn alloc(&self) -> Option<&Arc<PmAllocator>> {
        self.allocs.first()
    }
}

/// Fixed per-pool overhead that exists regardless of record count: the
/// reserved root area plus allocator metadata (chunk directory, bitmaps,
/// in-flight slots) and first-chunk slack. Charged once per pool so N
/// small shard pools don't under-provision at low record counts.
pub const POOL_FIXED_OVERHEAD: usize = ROOT_AREA as usize + (4 << 20);

/// Per-record capacity budget: generous per-record bytes (nodes are
/// half-full on average, BzTree keeps version chains until
/// consolidation) plus growth headroom for insert-heavy phases.
fn record_budget(records: u64) -> usize {
    (records as usize) * 320 + (64 << 20)
}

/// Pool capacity heuristic for a single-pool index.
pub fn pool_bytes(records: u64) -> usize {
    pool_bytes_for_shard(records, 1)
}

/// Capacity of ONE of `shards` pools jointly holding `total_records`:
/// the record budget (and its growth headroom) splits across shards,
/// the fixed overhead does not.
pub fn pool_bytes_for_shard(total_records: u64, shards: usize) -> usize {
    assert!(shards >= 1);
    record_budget(total_records).div_ceil(shards) + POOL_FIXED_OVERHEAD
}

/// Fresh inner index of `kind` on an already-formatted allocator.
fn make_index(kind: &str, alloc: &Arc<PmAllocator>) -> Arc<dyn RangeIndex> {
    (spec(kind).make)(alloc)
}

/// Recover the inner index of `kind` from an already-recovered
/// allocator.
fn reopen_index(kind: &str, alloc: &Arc<PmAllocator>) -> Arc<dyn RangeIndex> {
    (spec(kind).reopen)(alloc)
}

/// Build a fresh index of `kind` sized for `records`, on a pool with
/// the given device config. PM indexes default to the PMDK-like
/// general allocator; see [`build_with_mode`] for the ablation.
pub fn build(kind: &str, records: u64, pm: PmConfig) -> Built {
    build_with_mode(kind, records, pm, AllocMode::General)
}

/// Like [`build`], with an explicit allocation mode (E10).
pub fn build_with_mode(kind: &str, records: u64, pm: PmConfig, mode: AllocMode) -> Built {
    if kind == "dram" {
        return Built {
            index: Arc::new(DramTree::new()),
            pools: Vec::new(),
            allocs: Vec::new(),
        };
    }
    let pool = Arc::new(PmPool::new(pool_bytes(records), pm));
    let alloc = PmAllocator::format(pool.clone(), mode);
    let index = make_index(kind, &alloc);
    Built {
        index,
        pools: vec![pool],
        allocs: vec![alloc],
    }
}

/// Build a range-partitioned index: `shards` independent inner indexes
/// of `kind`, each on its own pool + allocator, behind one
/// [`ShardedIndex`]. `shards == 1` still wraps, so the shard axis is
/// uniform in reports (`sharded-<kind>`).
pub fn build_sharded(kind: &str, shards: usize, records: u64, pm: PmConfig) -> Built {
    assert!(shards >= 1);
    let per_shard: Vec<Shard> = (0..shards)
        .map(|_| {
            if kind == "dram" {
                Shard {
                    index: Arc::new(DramTree::new()),
                    pool: None,
                    alloc: None,
                }
            } else {
                let pool = Arc::new(PmPool::new(
                    pool_bytes_for_shard(records, shards),
                    pm.clone(),
                ));
                let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
                Shard {
                    index: make_index(kind, &alloc),
                    pool: Some(pool),
                    alloc: Some(alloc),
                }
            }
        })
        .collect();
    let sharded = ShardedIndex::from_parts(per_shard);
    let pools = sharded.pools();
    let allocs = sharded.allocs();
    Built {
        index: sharded,
        pools,
        allocs,
    }
}

/// A fresh, empty shard of `kind` on its own pool — the destination of
/// an online shard-range split ([`engine::Migrator`]). Sized like one
/// shard of a `shards`-way build over `records`.
pub fn split_shard(kind: &str, records: u64, shards: usize, pm: PmConfig) -> Shard {
    let pool = Arc::new(PmPool::new(
        pool_bytes_for_shard(records, shards.max(1)),
        pm,
    ));
    let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
    Shard {
        index: make_index(kind, &alloc),
        pool: Some(pool),
        alloc: Some(alloc),
    }
}

/// Build with a custom node size (E12). `entries` is the leaf/node
/// record count; each index clamps to its own legal range.
pub fn build_with_node_size(kind: &str, records: u64, pm: PmConfig, entries: usize) -> Built {
    let pool = Arc::new(PmPool::new(pool_bytes(records), pm));
    let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
    let s = spec(kind);
    let with = s
        .with_node_size
        .unwrap_or_else(|| panic!("kind {kind:?} has no node-size knob"));
    let index = with(&alloc, entries);
    Built {
        index,
        pools: vec![pool],
        allocs: vec![alloc],
    }
}

/// Reopen a crashed pool as `kind`, timing the full restart path
/// (allocator recovery + index recovery, including any DRAM rebuild).
pub fn recover(kind: &str, pool: Arc<PmPool>) -> (Built, Duration) {
    let t0 = Instant::now();
    let alloc = PmAllocator::recover(pool.clone(), AllocMode::General);
    let index = reopen_index(kind, &alloc);
    let elapsed = t0.elapsed();
    (
        Built {
            index,
            pools: vec![pool],
            allocs: vec![alloc],
        },
        elapsed,
    )
}

/// Reopen all shards of a crashed sharded index, timing the restart.
/// `parallel` selects the one-thread-per-shard fast path.
pub fn recover_sharded(kind: &str, pools: Vec<Arc<PmPool>>, parallel: bool) -> (Built, Duration) {
    let t0 = Instant::now();
    let sharded = ShardedIndex::recover_with(pools, parallel, |_, pool| {
        let alloc = PmAllocator::try_recover(pool, AllocMode::General)?;
        Ok((reopen_index(kind, &alloc), alloc))
    })
    .expect("shard recovery hit a media error");
    let elapsed = t0.elapsed();
    let pools = sharded.pools();
    let allocs = sharded.allocs();
    (
        Built {
            index: sharded,
            pools,
            allocs,
        },
        elapsed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_table_covers_every_pm_kind_exactly_once() {
        for kind in PM_KINDS {
            assert!(KIND_TABLE.iter().any(|s| s.name == kind), "{kind}");
        }
        let mut names: Vec<_> = KIND_TABLE.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), KIND_TABLE.len(), "duplicate table rows");
    }

    #[test]
    fn config_variants_build_and_reopen_via_the_table() {
        for kind in ["fptree-nofp", "fptree-varkey", "wbtree-noslots"] {
            let b = build(kind, 5_000, PmConfig::real());
            for k in 0..300u64 {
                assert!(b.index.insert(k, k + 9), "{kind}");
            }
            let pool = b.pool().unwrap().clone();
            drop(b);
            pool.crash();
            let (b2, _) = recover(kind, pool);
            for k in 0..300u64 {
                assert_eq!(b2.index.lookup(k), Some(k + 9), "{kind} key {k}");
            }
        }
    }

    #[test]
    fn every_kind_builds_and_serves() {
        for kind in ALL_KINDS {
            let b = build(kind, 10_000, PmConfig::real());
            assert!(b.index.insert(42, 1), "{kind}");
            assert_eq!(b.index.lookup(42), Some(1), "{kind}");
            assert_eq!(b.pool().is_some(), kind != "dram");
        }
    }

    #[test]
    fn recovery_roundtrip_for_all_pm_kinds() {
        for kind in PM_KINDS {
            let b = build(kind, 10_000, PmConfig::real());
            for k in 0..500u64 {
                b.index.insert(k, k + 1);
            }
            let pool = b.pool().unwrap().clone();
            drop(b);
            pool.crash();
            let (b2, took) = recover(kind, pool);
            for k in 0..500u64 {
                assert_eq!(b2.index.lookup(k), Some(k + 1), "{kind} key {k}");
            }
            assert!(took.as_nanos() > 0);
        }
    }

    #[test]
    fn node_size_variants_build() {
        for kind in PM_KINDS {
            let b = build_with_node_size(kind, 1_000, PmConfig::real(), 16);
            for k in 0..200u64 {
                assert!(b.index.insert(k, k), "{kind}");
            }
            let mut out = Vec::new();
            assert_eq!(b.index.scan(0, 200, &mut out), 200, "{kind}");
        }
    }

    #[test]
    fn sharded_pool_budget_charges_overhead_per_pool() {
        let single = pool_bytes(1_000);
        let per_shard = pool_bytes_for_shard(1_000, 8);
        // Splitting must not divide the fixed overhead with the records.
        assert!(per_shard > single / 8);
        assert!(per_shard >= POOL_FIXED_OVERHEAD);
        assert_eq!(pool_bytes_for_shard(1_000, 1), single);
    }

    #[test]
    fn sharded_build_and_recovery_roundtrip() {
        let shards = 4;
        let b = build_sharded("wbtree", shards, 2_000, PmConfig::real());
        assert_eq!(b.pools.len(), shards);
        assert_eq!(b.index.name(), "sharded-wbtree");
        let stride = u64::MAX / 600;
        for i in 0..600u64 {
            assert!(b.index.insert(i * stride, i));
        }
        let pools = b.pools.clone();
        drop(b);
        for p in &pools {
            p.crash();
        }
        for parallel in [false, true] {
            let (b2, took) = recover_sharded("wbtree", pools.clone(), parallel);
            for i in 0..600u64 {
                assert_eq!(b2.index.lookup(i * stride), Some(i), "key {i}");
            }
            assert!(took.as_nanos() > 0);
        }
    }

    #[test]
    fn sharded_dram_builds() {
        let b = build_sharded("dram", 3, 1_000, PmConfig::real());
        assert!(b.pools.is_empty());
        assert!(b.index.insert(7, 7));
        assert_eq!(b.index.lookup(7), Some(7));
    }
}
