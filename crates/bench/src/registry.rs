//! Index construction for the experiments.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bztree::{BzTree, BzTreeConfig};
use dram_index::DramTree;
use engine::{Shard, ShardedIndex};
use fptree::{FpTree, FpTreeConfig, KeyMode};
use index_api::RangeIndex;
use nvtree::{NvTree, NvTreeConfig};
use pmalloc::{AllocMode, PmAllocator};
use pmem::{PmConfig, PmPool, ROOT_AREA};
use wbtree::{WbTree, WbTreeConfig};

/// The four evaluated PM indexes.
pub const PM_KINDS: [&str; 4] = ["fptree", "nvtree", "wbtree", "bztree"];
/// PM indexes plus the volatile baseline.
pub const ALL_KINDS: [&str; 5] = ["fptree", "nvtree", "wbtree", "bztree", "dram"];

/// A constructed index with its backing pools/allocators (one per
/// shard; empty for the DRAM baseline).
pub struct Built {
    /// The index under test.
    pub index: Arc<dyn RangeIndex>,
    /// Its emulated PM pools, in shard order (empty for DRAM).
    pub pools: Vec<Arc<PmPool>>,
    /// Its allocators, in shard order (empty for DRAM).
    pub allocs: Vec<Arc<PmAllocator>>,
}

impl Built {
    /// Back-compat single-shard accessor: the first (usually only) pool.
    pub fn pool(&self) -> Option<&Arc<PmPool>> {
        self.pools.first()
    }

    /// Back-compat single-shard accessor: the first (usually only)
    /// allocator.
    pub fn alloc(&self) -> Option<&Arc<PmAllocator>> {
        self.allocs.first()
    }
}

/// Fixed per-pool overhead that exists regardless of record count: the
/// reserved root area plus allocator metadata (chunk directory, bitmaps,
/// in-flight slots) and first-chunk slack. Charged once per pool so N
/// small shard pools don't under-provision at low record counts.
pub const POOL_FIXED_OVERHEAD: usize = ROOT_AREA as usize + (4 << 20);

/// Per-record capacity budget: generous per-record bytes (nodes are
/// half-full on average, BzTree keeps version chains until
/// consolidation) plus growth headroom for insert-heavy phases.
fn record_budget(records: u64) -> usize {
    (records as usize) * 320 + (64 << 20)
}

/// Pool capacity heuristic for a single-pool index.
pub fn pool_bytes(records: u64) -> usize {
    pool_bytes_for_shard(records, 1)
}

/// Capacity of ONE of `shards` pools jointly holding `total_records`:
/// the record budget (and its growth headroom) splits across shards,
/// the fixed overhead does not.
pub fn pool_bytes_for_shard(total_records: u64, shards: usize) -> usize {
    assert!(shards >= 1);
    record_budget(total_records).div_ceil(shards) + POOL_FIXED_OVERHEAD
}

/// Fresh inner index of `kind` on an already-formatted allocator.
fn make_index(kind: &str, alloc: &Arc<PmAllocator>) -> Arc<dyn RangeIndex> {
    match kind {
        "fptree" => FpTree::create(alloc.clone(), FpTreeConfig::default()),
        "fptree-nofp" => FpTree::create(
            alloc.clone(),
            FpTreeConfig {
                use_fingerprints: false,
                ..FpTreeConfig::default()
            },
        ),
        "fptree-varkey" => FpTree::create(
            alloc.clone(),
            FpTreeConfig {
                key_mode: KeyMode::Pointer,
                ..FpTreeConfig::default()
            },
        ),
        "nvtree" => NvTree::create(alloc.clone(), NvTreeConfig::default()),
        "wbtree" => WbTree::create(alloc.clone(), WbTreeConfig::default()),
        "wbtree-noslots" => WbTree::create(
            alloc.clone(),
            WbTreeConfig {
                use_slot_array: false,
                ..WbTreeConfig::default()
            },
        ),
        "bztree" => BzTree::create(alloc.clone(), BzTreeConfig::default()),
        other => panic!("unknown index kind {other:?}"),
    }
}

/// Recover the inner index of `kind` from an already-recovered
/// allocator.
fn reopen_index(kind: &str, alloc: &Arc<PmAllocator>) -> Arc<dyn RangeIndex> {
    match kind {
        "fptree" => FpTree::recover(alloc.clone(), FpTreeConfig::default()),
        "nvtree" => NvTree::recover(alloc.clone(), NvTreeConfig::default()),
        "wbtree" => WbTree::recover(alloc.clone(), WbTreeConfig::default()),
        "bztree" => BzTree::recover(alloc.clone(), BzTreeConfig::default()),
        other => panic!("unknown index kind {other:?}"),
    }
}

/// Build a fresh index of `kind` sized for `records`, on a pool with
/// the given device config. PM indexes default to the PMDK-like
/// general allocator; see [`build_with_mode`] for the ablation.
pub fn build(kind: &str, records: u64, pm: PmConfig) -> Built {
    build_with_mode(kind, records, pm, AllocMode::General)
}

/// Like [`build`], with an explicit allocation mode (E10).
pub fn build_with_mode(kind: &str, records: u64, pm: PmConfig, mode: AllocMode) -> Built {
    if kind == "dram" {
        return Built {
            index: Arc::new(DramTree::new()),
            pools: Vec::new(),
            allocs: Vec::new(),
        };
    }
    let pool = Arc::new(PmPool::new(pool_bytes(records), pm));
    let alloc = PmAllocator::format(pool.clone(), mode);
    let index = make_index(kind, &alloc);
    Built {
        index,
        pools: vec![pool],
        allocs: vec![alloc],
    }
}

/// Build a range-partitioned index: `shards` independent inner indexes
/// of `kind`, each on its own pool + allocator, behind one
/// [`ShardedIndex`]. `shards == 1` still wraps, so the shard axis is
/// uniform in reports (`sharded-<kind>`).
pub fn build_sharded(kind: &str, shards: usize, records: u64, pm: PmConfig) -> Built {
    assert!(shards >= 1);
    let per_shard: Vec<Shard> = (0..shards)
        .map(|_| {
            if kind == "dram" {
                Shard {
                    index: Arc::new(DramTree::new()),
                    pool: None,
                    alloc: None,
                }
            } else {
                let pool = Arc::new(PmPool::new(
                    pool_bytes_for_shard(records, shards),
                    pm.clone(),
                ));
                let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
                Shard {
                    index: make_index(kind, &alloc),
                    pool: Some(pool),
                    alloc: Some(alloc),
                }
            }
        })
        .collect();
    let sharded = ShardedIndex::from_parts(per_shard);
    let pools = sharded.pools();
    let allocs = sharded.allocs();
    Built {
        index: sharded,
        pools,
        allocs,
    }
}

/// Build with a custom node size (E12). `entries` is the leaf/node
/// record count; each index clamps to its own legal range.
pub fn build_with_node_size(kind: &str, records: u64, pm: PmConfig, entries: usize) -> Built {
    let pool = Arc::new(PmPool::new(pool_bytes(records), pm));
    let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
    let index: Arc<dyn RangeIndex> = match kind {
        "fptree" => FpTree::create(
            alloc.clone(),
            FpTreeConfig {
                leaf_entries: entries.min(64),
                ..FpTreeConfig::default()
            },
        ),
        "nvtree" => NvTree::create(
            alloc.clone(),
            NvTreeConfig {
                leaf_entries: entries,
                ..NvTreeConfig::default()
            },
        ),
        "wbtree" => WbTree::create(
            alloc.clone(),
            WbTreeConfig {
                node_entries: entries.min(62),
                ..WbTreeConfig::default()
            },
        ),
        "bztree" => BzTree::create(
            alloc.clone(),
            BzTreeConfig {
                node_entries: entries,
                ..BzTreeConfig::default()
            },
        ),
        other => panic!("unknown index kind {other:?}"),
    };
    Built {
        index,
        pools: vec![pool],
        allocs: vec![alloc],
    }
}

/// Reopen a crashed pool as `kind`, timing the full restart path
/// (allocator recovery + index recovery, including any DRAM rebuild).
pub fn recover(kind: &str, pool: Arc<PmPool>) -> (Built, Duration) {
    let t0 = Instant::now();
    let alloc = PmAllocator::recover(pool.clone(), AllocMode::General);
    let index = reopen_index(kind, &alloc);
    let elapsed = t0.elapsed();
    (
        Built {
            index,
            pools: vec![pool],
            allocs: vec![alloc],
        },
        elapsed,
    )
}

/// Reopen all shards of a crashed sharded index, timing the restart.
/// `parallel` selects the one-thread-per-shard fast path.
pub fn recover_sharded(kind: &str, pools: Vec<Arc<PmPool>>, parallel: bool) -> (Built, Duration) {
    let t0 = Instant::now();
    let sharded = ShardedIndex::recover_with(pools, parallel, |_, pool| {
        let alloc = PmAllocator::try_recover(pool, AllocMode::General)?;
        Ok((reopen_index(kind, &alloc), alloc))
    })
    .expect("shard recovery hit a media error");
    let elapsed = t0.elapsed();
    let pools = sharded.pools();
    let allocs = sharded.allocs();
    (
        Built {
            index: sharded,
            pools,
            allocs,
        },
        elapsed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_and_serves() {
        for kind in ALL_KINDS {
            let b = build(kind, 10_000, PmConfig::real());
            assert!(b.index.insert(42, 1), "{kind}");
            assert_eq!(b.index.lookup(42), Some(1), "{kind}");
            assert_eq!(b.pool().is_some(), kind != "dram");
        }
    }

    #[test]
    fn recovery_roundtrip_for_all_pm_kinds() {
        for kind in PM_KINDS {
            let b = build(kind, 10_000, PmConfig::real());
            for k in 0..500u64 {
                b.index.insert(k, k + 1);
            }
            let pool = b.pool().unwrap().clone();
            drop(b);
            pool.crash();
            let (b2, took) = recover(kind, pool);
            for k in 0..500u64 {
                assert_eq!(b2.index.lookup(k), Some(k + 1), "{kind} key {k}");
            }
            assert!(took.as_nanos() > 0);
        }
    }

    #[test]
    fn node_size_variants_build() {
        for kind in PM_KINDS {
            let b = build_with_node_size(kind, 1_000, PmConfig::real(), 16);
            for k in 0..200u64 {
                assert!(b.index.insert(k, k), "{kind}");
            }
            let mut out = Vec::new();
            assert_eq!(b.index.scan(0, 200, &mut out), 200, "{kind}");
        }
    }

    #[test]
    fn sharded_pool_budget_charges_overhead_per_pool() {
        let single = pool_bytes(1_000);
        let per_shard = pool_bytes_for_shard(1_000, 8);
        // Splitting must not divide the fixed overhead with the records.
        assert!(per_shard > single / 8);
        assert!(per_shard >= POOL_FIXED_OVERHEAD);
        assert_eq!(pool_bytes_for_shard(1_000, 1), single);
    }

    #[test]
    fn sharded_build_and_recovery_roundtrip() {
        let shards = 4;
        let b = build_sharded("wbtree", shards, 2_000, PmConfig::real());
        assert_eq!(b.pools.len(), shards);
        assert_eq!(b.index.name(), "sharded-wbtree");
        let stride = u64::MAX / 600;
        for i in 0..600u64 {
            assert!(b.index.insert(i * stride, i));
        }
        let pools = b.pools.clone();
        drop(b);
        for p in &pools {
            p.crash();
        }
        for parallel in [false, true] {
            let (b2, took) = recover_sharded("wbtree", pools.clone(), parallel);
            for i in 0..600u64 {
                assert_eq!(b2.index.lookup(i * stride), Some(i), "key {i}");
            }
            assert!(took.as_nanos() > 0);
        }
    }

    #[test]
    fn sharded_dram_builds() {
        let b = build_sharded("dram", 3, 1_000, PmConfig::real());
        assert!(b.pools.is_empty());
        assert!(b.index.insert(7, 7));
        assert_eq!(b.index.lookup(7), Some(7));
    }
}
