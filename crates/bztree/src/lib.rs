//! # bztree — BzTree (Arulraj et al., PVLDB 2018)
//!
//! A latch-free, PM-only B+-tree built entirely on persistent
//! multi-word CAS (the `pmwcas` crate). The design trades the custom
//! flush-ordering protocols of its contemporaries for one powerful
//! primitive: every state transition — record visibility, node freeze,
//! child-pointer swap, root replacement — is a durable PMwCAS, so the
//! tree is always recoverable by replaying descriptor state alone
//! (instant recovery, no inner-node rebuild).
//!
//! * **Node = sorted base + unsorted append area.** A consolidated node
//!   starts with its records sorted (binary-searchable). Inserts,
//!   updates (new versions) and logical deletes append to the free
//!   space, coordinated by a per-record metadata word: `FREE →
//!   RESERVED → VISIBLE` (or `ABORTED`), with a fingerprint byte to
//!   skip key probes. Lookups scan the append area newest-first, then
//!   binary-search the base.
//! * **Copy-on-write SMOs.** A full node is *frozen* (PMwCAS on its
//!   status word), compacted or split into fresh nodes, and swapped
//!   into its parent with a PMwCAS that simultaneously verifies the
//!   parent is not itself frozen. Replaced nodes are reclaimed after an
//!   epoch grace period; a crash at any point leaves either the old or
//!   the new node installed, plus possibly an unreachable node that
//!   recovery garbage-collects by reachability.
//! * **Helping, not blocking.** Threads that encounter an in-flight
//!   PMwCAS help complete it; threads that encounter a frozen node
//!   perform the pending consolidation themselves and retry. A stuck
//!   `RESERVED` record (crashed or preempted writer) is aborted by the
//!   thread that needs the slot resolved.
//!
//! The concurrency control here is what the evaluation measures: no
//! locks anywhere, at the price of extra PM writes for descriptors and
//! dirty-bit maintenance.

mod node;
mod tree;

pub use node::BzLayout;
pub use tree::BzTree;

/// Tuning knobs. Default 62 record slots per node (~1.5 KiB nodes).
#[derive(Debug, Clone, Copy)]
pub struct BzTreeConfig {
    /// Record slots per node (sorted base + append area combined).
    pub node_entries: usize,
    /// Consolidation keeps nodes at most this fraction full (percent);
    /// denser nodes are split instead.
    pub split_threshold_pct: usize,
}

impl Default for BzTreeConfig {
    fn default() -> Self {
        Self {
            node_entries: 62,
            split_threshold_pct: 70,
        }
    }
}

/// One-byte key fingerprint stored in record metadata.
#[inline]
pub(crate) fn fingerprint(key: u64) -> u8 {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as u8
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_config() {
        let c = super::BzTreeConfig::default();
        assert_eq!(c.node_entries, 62);
        assert!(c.split_threshold_pct < 100);
    }
}
