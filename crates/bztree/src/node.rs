//! BzTree node format.
//!
//! ```text
//! +0        status u64   PMwCAS-managed: bits 0..20 used-slot count,
//!                        bit 21 frozen
//! +8        info   u64   immutable: bit 63 is_leaf, bits 0..20 sorted count
//! +16       meta[m] u64  PMwCAS-managed per record: bits 56..58 state,
//!                        bits 0..7 key fingerprint
//! +16+8m    records m × (key u64, val u64)
//!                        leaf: val = user value (never PMwCAS-managed);
//!                        inner: val = child offset (PMwCAS-managed)
//! ```

use pmwcas::PmwCas;

/// Record-metadata states (bits 56..58 of the meta word).
pub const ST_FREE: u64 = 0;
pub const ST_RESERVED: u64 = 1 << 56;
pub const ST_VISIBLE: u64 = 2 << 56;
pub const ST_DELETED: u64 = 3 << 56;
pub const ST_ABORTED: u64 = 4 << 56;
pub const ST_STATE_MASK: u64 = 7 << 56;

/// Status word: frozen flag and used-count mask.
pub const FROZEN: u64 = 1 << 21;
pub const COUNT_MASK: u64 = (1 << 21) - 1;

/// Info word: leaf flag and sorted-count mask.
pub const INFO_LEAF: u64 = 1 << 63;

/// Runtime node layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BzLayout {
    /// Record slots per node.
    pub entries: usize,
    /// Offset of the record array.
    pub recs_off: u64,
    /// Node size in bytes.
    pub size: usize,
}

impl BzLayout {
    /// Layout for `entries` record slots.
    pub fn new(entries: usize) -> BzLayout {
        assert!((4..=1024).contains(&entries));
        let recs_off = 16 + 8 * entries as u64;
        BzLayout {
            entries,
            recs_off,
            size: (recs_off + 16 * entries as u64) as usize,
        }
    }

    /// Offset of the status word.
    #[inline]
    pub fn status(&self, node: u64) -> u64 {
        node
    }

    /// Offset of the info word.
    #[inline]
    pub fn info(&self, node: u64) -> u64 {
        node + 8
    }

    /// Offset of record `i`'s metadata word.
    #[inline]
    pub fn meta(&self, node: u64, i: usize) -> u64 {
        node + 16 + 8 * i as u64
    }

    /// Offset of record `i`'s key.
    #[inline]
    pub fn key(&self, node: u64, i: usize) -> u64 {
        node + self.recs_off + 16 * i as u64
    }

    /// Offset of record `i`'s value / child pointer.
    #[inline]
    pub fn val(&self, node: u64, i: usize) -> u64 {
        self.key(node, i) + 8
    }
}

/// Decoded status word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    pub raw: u64,
    pub frozen: bool,
    pub count: usize,
}

/// Read and decode a node's status word.
pub fn read_status(mw: &PmwCas, layout: &BzLayout, node: u64) -> Status {
    let raw = mw.read(layout.status(node));
    Status {
        raw,
        frozen: raw & FROZEN != 0,
        count: (raw & COUNT_MASK) as usize,
    }
}

/// Whether a node is a leaf, and its sorted-base record count.
pub fn read_info(mw: &PmwCas, layout: &BzLayout, node: u64) -> (bool, usize) {
    let info = mw.pool().read_u64(layout.info(node));
    (info & INFO_LEAF != 0, (info & COUNT_MASK) as usize)
}

/// Build a fully persisted node from sorted records. All records start
/// `VISIBLE`; the remaining slots are `FREE`. Returns nothing — the
/// node is unreachable until the caller installs it.
pub fn build_node(
    mw: &PmwCas,
    layout: &BzLayout,
    node: u64,
    is_leaf: bool,
    records: &[(u64, u64)],
) {
    let pool = mw.pool();
    debug_assert!(records.len() <= layout.entries);
    debug_assert!(
        records.windows(2).all(|w| w[0].0 < w[1].0),
        "unsorted build: {records:?}"
    );
    pool.write_u64(layout.status(node), records.len() as u64);
    let leaf_flag = if is_leaf { INFO_LEAF } else { 0 };
    pool.write_u64(layout.info(node), leaf_flag | records.len() as u64);
    for i in 0..layout.entries {
        let m = if i < records.len() {
            ST_VISIBLE | crate::fingerprint(records[i].0) as u64
        } else {
            ST_FREE
        };
        pool.write_u64(layout.meta(node, i), m);
    }
    for (i, &(k, v)) in records.iter().enumerate() {
        pool.write_u64(layout.key(node, i), k);
        pool.write_u64(layout.val(node, i), v);
    }
    pool.persist(node, layout.size);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmalloc::{AllocMode, PmAllocator};
    use pmem::{PmConfig, PmPool};
    use std::sync::Arc;

    #[test]
    fn layout_offsets() {
        let l = BzLayout::new(8);
        assert_eq!(l.recs_off, 16 + 64);
        assert_eq!(l.size, 16 + 64 + 128);
        let base = 4096;
        assert_eq!(l.meta(base, 2), base + 32);
        assert_eq!(l.key(base, 2), base + 80 + 32);
        assert_eq!(l.val(base, 2), base + 80 + 40);
    }

    #[test]
    fn build_and_decode() {
        let pool = Arc::new(PmPool::new(1 << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        let mw = pmwcas::PmwCas::create(&alloc);
        let l = BzLayout::new(8);
        let off = alloc.alloc(l.size).unwrap();
        build_node(&mw, &l, off, true, &[(10, 100), (20, 200)]);
        let st = read_status(&mw, &l, off);
        assert!(!st.frozen);
        assert_eq!(st.count, 2);
        let (leaf, sorted) = read_info(&mw, &l, off);
        assert!(leaf);
        assert_eq!(sorted, 2);
        assert_eq!(mw.read(l.meta(off, 0)) & ST_STATE_MASK, ST_VISIBLE);
        assert_eq!(mw.read(l.meta(off, 5)) & ST_STATE_MASK, ST_FREE);
        assert_eq!(pool.read_u64(l.key(off, 1)), 20);
        // Fully persisted: survives a crash.
        pool.crash();
        assert_eq!(read_status(&mw, &l, off).count, 2);
    }
}
