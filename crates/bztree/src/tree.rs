//! The BzTree proper: latch-free operations and copy-on-write SMOs.

use std::collections::HashSet;
use std::sync::Arc;

use crossbeam_epoch as epoch;
use index_api::{Footprint, Key, RangeIndex, Value};
use pmalloc::PmAllocator;
use pmem::MediaError;
use pmwcas::{PmwCas, WordDescriptor};

use crate::node::{
    build_node, read_info, read_status, BzLayout, FROZEN, ST_ABORTED, ST_DELETED, ST_FREE,
    ST_RESERVED, ST_STATE_MASK, ST_VISIBLE,
};
use crate::{fingerprint, BzTreeConfig};

// Root-area slots owned by BzTree (the PMwCAS area uses slot 32).
const SLOT_ROOT: u64 = 33;
const SLOT_CFG: u64 = 34;

const ROOT_WORD: u64 = SLOT_ROOT * 8;

/// Spins before a stuck `RESERVED`/`FREE` slot is forcibly aborted.
const STEAL_SPINS: usize = 1 << 14;

#[inline]
fn wd(addr: u64, old: u64, new: u64) -> WordDescriptor {
    WordDescriptor { addr, old, new }
}

/// Result of a leaf probe.
enum Found {
    /// Newest entry is visible: its meta word (address + value) and value.
    Live {
        meta_off: u64,
        meta: u64,
        value: Value,
    },
    /// Newest entry is a delete tombstone.
    Dead,
    /// No entry for the key.
    Absent,
}

struct Descent {
    leaf: u64,
    path: Vec<u64>,
    /// Exclusive upper bound of the leaf's key range (None = rightmost).
    upper: Option<Key>,
}

/// BzTree: latch-free PM-only B+-tree over PMwCAS (see crate docs).
pub struct BzTree {
    alloc: Arc<PmAllocator>,
    mw: Arc<PmwCas>,
    layout: BzLayout,
    cfg: BzTreeConfig,
}

impl BzTree {
    /// Create a fresh tree (and PMwCAS descriptor area) on a formatted
    /// allocator/pool.
    pub fn create(alloc: Arc<PmAllocator>, cfg: BzTreeConfig) -> Arc<BzTree> {
        let mw = PmwCas::create(&alloc);
        let layout = BzLayout::new(cfg.node_entries);
        let t = BzTree {
            alloc,
            mw,
            layout,
            cfg,
        };
        let root = t.alloc_node(true, &[]);
        t.mw.init_word(ROOT_WORD, root);
        let pool = t.alloc.pool();
        pool.write_u64(SLOT_CFG * 8, cfg.node_entries as u64);
        pool.persist(SLOT_CFG * 8, 8);
        Arc::new(t)
    }

    /// Reopen after a crash: PMwCAS recovery makes every word
    /// consistent (instant recovery — no index rebuild), then a
    /// reachability sweep reclaims nodes leaked by interrupted SMOs.
    /// Panics on a media error; use [`BzTree::try_recover`] to handle
    /// poisoned lines gracefully.
    pub fn recover(alloc: Arc<PmAllocator>, cfg: BzTreeConfig) -> Arc<BzTree> {
        let _site = obs::site("bztree_recovery");
        Self::try_recover(alloc, cfg).unwrap_or_else(|e| panic!("BzTree recovery failed: {e}"))
    }

    /// Fallible recovery: probes the root/config slots and every node
    /// visited by the reachability sweep for media errors before
    /// reading it, so a poisoned line surfaces as a reported
    /// [`MediaError`], never as garbage routing entries.
    pub fn try_recover(
        alloc: Arc<PmAllocator>,
        cfg: BzTreeConfig,
    ) -> Result<Arc<BzTree>, MediaError> {
        let mw = PmwCas::try_recover(&alloc)?;
        let layout = BzLayout::new(cfg.node_entries);
        alloc
            .pool()
            .check_readable(SLOT_ROOT * 8, 16)
            .map_err(|e| e.context("BzTree root slots"))?;
        assert_eq!(
            alloc.pool().read_u64(SLOT_CFG * 8) as usize,
            cfg.node_entries,
            "config/layout mismatch"
        );
        let t = BzTree {
            alloc,
            mw,
            layout,
            cfg,
        };
        // Reachability GC from the root.
        let mut reachable: HashSet<u64> = HashSet::new();
        reachable.insert(t.mw.descriptor_area());
        let root = t.mw.read(ROOT_WORD);
        assert!(root != 0, "recover() on an unformatted tree");
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            if !reachable.insert(n) {
                continue;
            }
            t.alloc
                .pool()
                .check_readable(n, t.layout.size)
                .map_err(|e| e.context("BzTree node"))?;
            let (is_leaf, sorted) = read_info(&t.mw, &t.layout, n);
            if !is_leaf {
                for i in 0..sorted {
                    stack.push(t.mw.read(t.layout.val(n, i)));
                }
            }
        }
        let mut leaked = Vec::new();
        t.alloc.for_each_allocated(|off| {
            if !reachable.contains(&off) {
                leaked.push(off);
            }
        });
        for off in leaked {
            t.alloc.free(off);
        }
        Ok(Arc::new(t))
    }

    /// The PMwCAS runtime (exposed for experiments).
    pub fn pmwcas(&self) -> &Arc<PmwCas> {
        &self.mw
    }

    fn pool(&self) -> &pmem::PmPool {
        self.alloc.pool()
    }

    fn alloc_node(&self, is_leaf: bool, records: &[(Key, u64)]) -> u64 {
        let off = self
            .alloc
            .alloc(self.layout.size)
            .expect("PM pool exhausted");
        build_node(&self.mw, &self.layout, off, is_leaf, records);
        off
    }

    /// Free `off` after a grace period. The closure captures a `Weak`
    /// allocator handle: if the tree (and its allocator) are gone by the
    /// time the callback runs — e.g. a simulated crash already replaced
    /// them — the free is skipped, leaving an unreachable block for
    /// recovery GC instead of corrupting the successor allocator's
    /// bitmaps in the shared pool.
    fn defer_free(&self, off: u64, guard: &epoch::Guard) {
        let alloc = Arc::downgrade(&self.alloc);
        guard.defer(move || {
            if let Some(a) = alloc.upgrade() {
                a.free(off);
            }
        });
    }

    // ----- traversal ---------------------------------------------------------

    fn inner_route(&self, node: u64, sorted: usize, key: Key) -> usize {
        let pool = self.pool();
        let mut lo = 0usize;
        let mut hi = sorted;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if pool.read_u64(self.layout.key(node, mid)) <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo.saturating_sub(1)
    }

    fn descend(&self, key: Key) -> Descent {
        let mut node = self.mw.read(ROOT_WORD);
        let mut path = Vec::new();
        let mut upper = None;
        loop {
            let (is_leaf, sorted) = read_info(&self.mw, &self.layout, node);
            if is_leaf {
                return Descent {
                    leaf: node,
                    path,
                    upper,
                };
            }
            let idx = self.inner_route(node, sorted, key);
            if idx + 1 < sorted {
                upper = Some(self.pool().read_u64(self.layout.key(node, idx + 1)));
            }
            path.push(node);
            node = self.mw.read(self.layout.val(node, idx));
        }
    }

    // ----- leaf probing --------------------------------------------------------

    fn find_in_leaf(&self, leaf: u64, key: Key) -> Found {
        let (_, sorted) = read_info(&self.mw, &self.layout, leaf);
        let st = read_status(&self.mw, &self.layout, leaf);
        let fp = fingerprint(key) as u64;
        // Append area, newest first.
        for i in (sorted..st.count).rev() {
            let meta_off = self.layout.meta(leaf, i);
            let m = self.mw.read(meta_off);
            let state = m & ST_STATE_MASK;
            if (state == ST_VISIBLE || state == ST_DELETED)
                && m & 0xFF == fp
                && self.pool().read_u64(self.layout.key(leaf, i)) == key
            {
                return if state == ST_VISIBLE {
                    Found::Live {
                        meta_off,
                        meta: m,
                        value: self.pool().read_u64(self.layout.val(leaf, i)),
                    }
                } else {
                    Found::Dead
                };
            }
        }
        // Sorted base: binary search.
        let pool = self.pool();
        let mut lo = 0usize;
        let mut hi = sorted;
        while lo < hi {
            let mid = (lo + hi) / 2;
            match pool.read_u64(self.layout.key(leaf, mid)).cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    let meta_off = self.layout.meta(leaf, mid);
                    let m = self.mw.read(meta_off);
                    return match m & ST_STATE_MASK {
                        ST_VISIBLE => Found::Live {
                            meta_off,
                            meta: m,
                            value: pool.read_u64(self.layout.val(leaf, mid)),
                        },
                        ST_DELETED => Found::Dead,
                        _ => Found::Absent,
                    };
                }
            }
        }
        Found::Absent
    }

    /// Duplicate re-check for an insert that reserved `my_slot`: is a
    /// live entry for `key` visible below it? Waits out (and eventually
    /// aborts) unresolved in-flight slots.
    fn dup_below(&self, leaf: u64, key: Key, my_slot: usize) -> bool {
        let (_, sorted) = read_info(&self.mw, &self.layout, leaf);
        let fp = fingerprint(key) as u64;
        for i in (sorted..my_slot).rev() {
            let meta_off = self.layout.meta(leaf, i);
            let mut spins = 0usize;
            loop {
                let m = self.mw.read(meta_off);
                let state = m & ST_STATE_MASK;
                match state {
                    ST_FREE => {
                        // Reserved in the status word but meta not yet
                        // claimed: must resolve before we can decide.
                        spins += 1;
                        if spins > STEAL_SPINS {
                            let _ = self.mw.mwcas(&[wd(meta_off, m, ST_ABORTED)]);
                        }
                        std::hint::spin_loop();
                    }
                    ST_RESERVED if m & 0xFF == fp => {
                        spins += 1;
                        if spins > STEAL_SPINS {
                            let _ = self.mw.mwcas(&[wd(meta_off, m, ST_ABORTED | fp)]);
                        }
                        std::hint::spin_loop();
                    }
                    ST_VISIBLE | ST_DELETED
                        if m & 0xFF == fp
                            && self.pool().read_u64(self.layout.key(leaf, i)) == key =>
                    {
                        return state == ST_VISIBLE;
                    }
                    _ => break,
                }
            }
        }
        // Sorted base.
        matches!(self.find_sorted(leaf, key), Some(true))
    }

    /// Sorted-base probe: `Some(visible?)` when the key is present.
    fn find_sorted(&self, leaf: u64, key: Key) -> Option<bool> {
        let (_, sorted) = read_info(&self.mw, &self.layout, leaf);
        let pool = self.pool();
        let mut lo = 0usize;
        let mut hi = sorted;
        while lo < hi {
            let mid = (lo + hi) / 2;
            match pool.read_u64(self.layout.key(leaf, mid)).cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    let m = self.mw.read(self.layout.meta(leaf, mid));
                    return Some(m & ST_STATE_MASK == ST_VISIBLE);
                }
            }
        }
        None
    }

    // ----- appends -----------------------------------------------------------

    /// Reserve a slot and publish `(key, value)`; shared by insert and
    /// update. Returns `Ok(true)` on success, `Ok(false)` when a
    /// duplicate blocks an insert, `Err(())` to retry from the root.
    fn append(&self, leaf: u64, key: Key, value: Value, dedup: bool) -> Result<bool, ()> {
        let _site = obs::site("bztree_append");
        let st = read_status(&self.mw, &self.layout, leaf);
        if st.frozen || st.count == self.layout.entries {
            return Err(());
        }
        if !self
            .mw
            .mwcas(&[wd(self.layout.status(leaf), st.raw, st.raw + 1)])
        {
            return Err(());
        }
        let slot = st.count;
        let fp = fingerprint(key) as u64;
        let meta_off = self.layout.meta(leaf, slot);
        if !self.mw.mwcas(&[wd(meta_off, ST_FREE, ST_RESERVED | fp)]) {
            // A dup-checker stole our slot before we claimed it.
            return Err(());
        }
        let pool = self.pool();
        pool.write_u64(self.layout.key(leaf, slot), key);
        pool.write_u64(self.layout.val(leaf, slot), value);
        pool.clwb(self.layout.key(leaf, slot), 16);
        pool.sfence();
        if dedup && self.dup_below(leaf, key, slot) {
            let _ = self
                .mw
                .mwcas(&[wd(meta_off, ST_RESERVED | fp, ST_ABORTED | fp)]);
            return Ok(false);
        }
        // Make visible, re-verifying the node is not frozen.
        loop {
            let st2 = read_status(&self.mw, &self.layout, leaf);
            if st2.frozen {
                let _ = self
                    .mw
                    .mwcas(&[wd(meta_off, ST_RESERVED | fp, ST_ABORTED | fp)]);
                return Err(());
            }
            if self.mw.mwcas(&[
                wd(self.layout.status(leaf), st2.raw, st2.raw),
                wd(meta_off, ST_RESERVED | fp, ST_VISIBLE | fp),
            ]) {
                return Ok(true);
            }
            if self.mw.read(meta_off) & ST_STATE_MASK == ST_ABORTED {
                // A dup-checker aborted us while we were preempted.
                return Err(());
            }
        }
    }

    // ----- SMOs ----------------------------------------------------------------

    /// Live records of a node. Leaves apply newest-wins and drop
    /// tombstones; inner nodes return `(separator, current child)`.
    fn live_records(&self, node: u64) -> Vec<(Key, u64)> {
        let (is_leaf, sorted) = read_info(&self.mw, &self.layout, node);
        let st = read_status(&self.mw, &self.layout, node);
        let pool = self.pool();
        if !is_leaf {
            return (0..sorted)
                .map(|i| {
                    (
                        pool.read_u64(self.layout.key(node, i)),
                        self.mw.read(self.layout.val(node, i)),
                    )
                })
                .collect();
        }
        let mut seen: HashSet<Key> = HashSet::new();
        let mut out: Vec<(Key, u64)> = Vec::new();
        for i in (sorted..st.count).rev() {
            let m = self.mw.read(self.layout.meta(node, i));
            let state = m & ST_STATE_MASK;
            if state != ST_VISIBLE && state != ST_DELETED {
                continue;
            }
            let k = pool.read_u64(self.layout.key(node, i));
            if seen.insert(k) && state == ST_VISIBLE {
                out.push((k, pool.read_u64(self.layout.val(node, i))));
            }
        }
        for i in 0..sorted {
            let k = pool.read_u64(self.layout.key(node, i));
            if seen.contains(&k) {
                continue;
            }
            let m = self.mw.read(self.layout.meta(node, i));
            if m & ST_STATE_MASK == ST_VISIBLE {
                out.push((k, pool.read_u64(self.layout.val(node, i))));
            }
        }
        out.sort_unstable();
        out
    }

    /// Freeze `node` (if not already) and complete its SMO.
    fn freeze_and_smo(&self, node: u64, path: &[u64], guard: &epoch::Guard) {
        let _site = obs::site("bztree_smo");
        let st = read_status(&self.mw, &self.layout, node);
        if !st.frozen
            && !self
                .mw
                .mwcas(&[wd(self.layout.status(node), st.raw, st.raw | FROZEN)])
        {
            return; // someone else froze or mutated; retry from root
        }
        self.complete_smo(node, path, guard);
    }

    /// Complete the SMO of a frozen node: consolidate in place or split.
    /// Failure is benign — the caller re-descends and retries. When an
    /// ancestor is itself frozen, this helps complete the ancestor's
    /// SMO first (the topmost frozen node can always make progress via
    /// the root word, so the system never wedges).
    fn complete_smo(&self, node: u64, path: &[u64], guard: &epoch::Guard) {
        let (is_leaf, _) = read_info(&self.mw, &self.layout, node);
        if let Some((&parent, rest)) = path.split_last() {
            let pst = read_status(&self.mw, &self.layout, parent);
            if pst.frozen {
                self.complete_smo(parent, rest, guard);
                return;
            }
        }
        let live = self.live_records(node);
        let threshold = self.layout.entries * self.cfg.split_threshold_pct / 100;
        if live.len() <= threshold {
            // Consolidate: swap in a compacted copy.
            let new = self.alloc_node(is_leaf, &live);
            if self.swap_child(path, node, new) {
                self.defer_free(node, guard);
            } else {
                self.alloc.free(new);
            }
            return;
        }
        // Split.
        let mid = live.len() / 2;
        let sep = live[mid].0;
        match path.split_last() {
            None => {
                let n1 = self.alloc_node(is_leaf, &live[..mid]);
                let n2 = self.alloc_node(is_leaf, &live[mid..]);
                let new_root = self.alloc_node(false, &[(live[0].0, n1), (sep, n2)]);
                if self.mw.mwcas(&[wd(ROOT_WORD, node, new_root)]) {
                    self.defer_free(node, guard);
                } else {
                    self.alloc.free(n1);
                    self.alloc.free(n2);
                    self.alloc.free(new_root);
                }
            }
            Some((&parent, rest)) => {
                // Freeze the parent *before* copying its entries, so a
                // concurrent consolidation of a sibling cannot be
                // overwritten by a stale clone.
                let pst = read_status(&self.mw, &self.layout, parent);
                if pst.frozen
                    || !self
                        .mw
                        .mwcas(&[wd(self.layout.status(parent), pst.raw, pst.raw | FROZEN)])
                {
                    return; // retry from the root
                }
                let pentries = self.live_records(parent);
                if pentries.len() + 1 > self.layout.entries {
                    // No room for the new separator: the (now frozen)
                    // parent must split first.
                    self.complete_smo(parent, rest, guard);
                    return;
                }
                let Some(pos) = pentries.iter().position(|&(_, c)| c == node) else {
                    // Stale path; unfreeze the parent by consolidating it.
                    self.complete_smo(parent, rest, guard);
                    return;
                };
                let n1 = self.alloc_node(is_leaf, &live[..mid]);
                let n2 = self.alloc_node(is_leaf, &live[mid..]);
                let mut new_entries = pentries.clone();
                // A leftmost child absorbs underflow keys (routing
                // clamps to entry 0), so its live minimum can undercut
                // the stored separator; lower it to keep order strict.
                new_entries[pos] = (new_entries[pos].0.min(live[0].0), n1);
                new_entries.insert(pos + 1, (sep, n2));
                let p2 = self.alloc_node(false, &new_entries);
                if self.swap_child(rest, parent, p2) {
                    self.defer_free(parent, guard);
                    self.defer_free(node, guard);
                } else {
                    self.alloc.free(n1);
                    self.alloc.free(n2);
                    self.alloc.free(p2);
                    // The parent is frozen and stuck; unfreeze it by
                    // consolidating (clone-swap).
                    self.complete_smo(parent, rest, guard);
                }
            }
        }
    }

    /// Swap `old` → `new` in `old`'s parent (or the root word),
    /// verifying the parent is not frozen in the same PMwCAS.
    fn swap_child(&self, path: &[u64], old: u64, new: u64) -> bool {
        match path.split_last() {
            None => self.mw.mwcas(&[wd(ROOT_WORD, old, new)]),
            Some((&p, _)) => {
                let pst = read_status(&self.mw, &self.layout, p);
                if pst.frozen {
                    return false;
                }
                let (_, sorted) = read_info(&self.mw, &self.layout, p);
                let Some(idx) = (0..sorted).find(|&i| self.mw.read(self.layout.val(p, i)) == old)
                else {
                    return false;
                };
                self.mw.mwcas(&[
                    wd(self.layout.status(p), pst.raw, pst.raw),
                    wd(self.layout.val(p, idx), old, new),
                ])
            }
        }
    }
}

impl RangeIndex for BzTree {
    fn insert(&self, key: Key, value: Value) -> bool {
        let _site = obs::site("bztree_insert");
        let guard = epoch::pin();
        loop {
            let d = self.descend(key);
            if let Found::Live { .. } = self.find_in_leaf(d.leaf, key) {
                return false;
            }
            let st = read_status(&self.mw, &self.layout, d.leaf);
            if st.frozen || st.count == self.layout.entries {
                self.freeze_and_smo(d.leaf, &d.path, &guard);
                continue;
            }
            match self.append(d.leaf, key, value, true) {
                Ok(r) => return r,
                Err(()) => continue,
            }
        }
    }

    fn lookup(&self, key: Key) -> Option<Value> {
        let _site = obs::site("bztree_lookup");
        let _guard = epoch::pin();
        let d = self.descend(key);
        match self.find_in_leaf(d.leaf, key) {
            Found::Live { value, .. } => Some(value),
            _ => None,
        }
    }

    fn update(&self, key: Key, value: Value) -> bool {
        let _site = obs::site("bztree_update");
        let guard = epoch::pin();
        loop {
            let d = self.descend(key);
            let Found::Live { .. } = self.find_in_leaf(d.leaf, key) else {
                return false;
            };
            let st = read_status(&self.mw, &self.layout, d.leaf);
            if st.frozen || st.count == self.layout.entries {
                self.freeze_and_smo(d.leaf, &d.path, &guard);
                continue;
            }
            match self.append(d.leaf, key, value, false) {
                Ok(_) => return true,
                Err(()) => continue,
            }
        }
    }

    fn remove(&self, key: Key) -> bool {
        let _site = obs::site("bztree_remove");
        let guard = epoch::pin();
        loop {
            let d = self.descend(key);
            let Found::Live { meta_off, meta, .. } = self.find_in_leaf(d.leaf, key) else {
                return false;
            };
            let st = read_status(&self.mw, &self.layout, d.leaf);
            if st.frozen {
                self.freeze_and_smo(d.leaf, &d.path, &guard);
                continue;
            }
            // Tombstone the newest version, verifying the freeze bit.
            if self.mw.mwcas(&[
                wd(self.layout.status(d.leaf), st.raw, st.raw),
                wd(meta_off, meta, (meta & !ST_STATE_MASK) | ST_DELETED),
            ]) {
                return true;
            }
        }
    }

    fn scan(&self, start: Key, count: usize, out: &mut Vec<(Key, Value)>) -> usize {
        let _site = obs::site("bztree_scan");
        out.clear();
        if count == 0 {
            return 0;
        }
        let _guard = epoch::pin();
        let mut cursor = start;
        loop {
            let d = self.descend(cursor);
            let mut batch = self.live_records(d.leaf);
            batch.retain(|&(k, _)| k >= cursor);
            out.extend(batch);
            if out.len() >= count {
                out.truncate(count);
                return count;
            }
            match d.upper {
                Some(ub) if ub > cursor => cursor = ub,
                _ => return out.len(),
            }
        }
    }

    fn name(&self) -> &'static str {
        "bztree"
    }

    fn footprint(&self) -> Footprint {
        Footprint {
            pm_bytes: self.alloc.live_bytes(),
            dram_bytes: 0, // PM-only design
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use index_api::oracle;
    use pmalloc::AllocMode;
    use pmem::{PmConfig, PmPool};

    fn fresh(pool_mib: usize, cfg: BzTreeConfig) -> Arc<BzTree> {
        let pool = Arc::new(PmPool::new(pool_mib << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool, AllocMode::General);
        BzTree::create(alloc, cfg)
    }

    fn small_cfg() -> BzTreeConfig {
        BzTreeConfig {
            node_entries: 8,
            split_threshold_pct: 70,
        }
    }

    #[test]
    fn basic_ops() {
        let t = fresh(8, BzTreeConfig::default());
        assert!(t.insert(1, 10));
        assert!(!t.insert(1, 11));
        assert_eq!(t.lookup(1), Some(10));
        assert!(t.update(1, 12));
        assert!(!t.update(2, 0));
        assert_eq!(t.lookup(1), Some(12));
        assert!(t.remove(1));
        assert!(!t.remove(1));
        assert_eq!(t.lookup(1), None);
        assert!(t.insert(1, 13), "re-insert after delete");
        assert_eq!(t.lookup(1), Some(13));
    }

    #[test]
    fn consolidation_and_splits() {
        let t = fresh(32, small_cfg());
        for k in 0..2_000u64 {
            assert!(t.insert((k * 911) % 2_000, k), "insert {k}");
        }
        for k in 0..2_000u64 {
            assert!(t.lookup(k).is_some(), "lookup {k}");
        }
    }

    #[test]
    fn update_versions_consolidate() {
        let t = fresh(16, small_cfg());
        t.insert(7, 0);
        for i in 1..500u64 {
            assert!(t.update(7, i));
            assert_eq!(t.lookup(7), Some(i));
        }
    }

    #[test]
    fn conformance_against_oracle() {
        let t = fresh(64, small_cfg());
        oracle::check_conformance(&*t, 0xB2, 20_000, 3_000);
    }

    #[test]
    fn scan_via_redescent() {
        let t = fresh(32, small_cfg());
        for k in (0..600u64).rev() {
            t.insert(k, k * 5);
        }
        let mut out = Vec::new();
        assert_eq!(t.scan(100, 80, &mut out), 80);
        let want: Vec<(u64, u64)> = (100..180).map(|k| (k, k * 5)).collect();
        assert_eq!(out, want);
        assert_eq!(t.scan(590, 100, &mut out), 10);
    }

    #[test]
    fn instant_recovery_after_crash() {
        let pool = Arc::new(PmPool::new(64 << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        let cfg = small_cfg();
        let t = BzTree::create(alloc, cfg);
        for k in 0..2_000u64 {
            t.insert(k, k + 9);
        }
        for k in (0..2_000u64).step_by(4) {
            t.remove(k);
        }
        drop(t);
        pool.crash();
        let alloc = PmAllocator::recover(pool, AllocMode::General);
        let t = BzTree::recover(alloc, cfg);
        for k in 0..2_000u64 {
            let want = if k % 4 == 0 { None } else { Some(k + 9) };
            assert_eq!(t.lookup(k), want, "key {k}");
        }
        let mut out = Vec::new();
        t.scan(0, 3_000, &mut out);
        assert_eq!(out.len(), 1_500);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn recovery_gc_reclaims_smo_leaks() {
        let pool = Arc::new(PmPool::new(64 << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        let cfg = small_cfg();
        let t = BzTree::create(alloc.clone(), cfg);
        for k in 0..1_000u64 {
            t.insert(k, k);
        }
        // Simulate an interrupted SMO: allocate unreachable nodes.
        for _ in 0..8 {
            alloc.alloc(BzLayout::new(cfg.node_entries).size).unwrap();
        }
        let before = alloc.live_bytes();
        drop(t);
        pool.crash();
        let alloc = PmAllocator::recover(pool, AllocMode::General);
        let t = BzTree::recover(alloc.clone(), cfg);
        assert!(alloc.live_bytes() < before, "GC should reclaim leaks");
        for k in 0..1_000u64 {
            assert_eq!(t.lookup(k), Some(k));
        }
    }

    #[test]
    fn concurrent_inserts_all_land() {
        let t = fresh(128, BzTreeConfig::default());
        std::thread::scope(|s| {
            for tid in 0..8u64 {
                let t = &t;
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        let k = tid * 100_000 + i;
                        assert!(t.insert(k, k + 1));
                    }
                });
            }
        });
        for tid in 0..8u64 {
            for i in 0..2_000u64 {
                let k = tid * 100_000 + i;
                assert_eq!(t.lookup(k), Some(k + 1), "key {k}");
            }
        }
    }

    #[test]
    fn concurrent_duplicate_inserts_only_one_wins() {
        let t = fresh(64, BzTreeConfig::default());
        use std::sync::atomic::{AtomicUsize, Ordering};
        let wins = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let t = &t;
                let wins = &wins;
                s.spawn(move || {
                    for k in 0..500u64 {
                        if t.insert(k, k) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(
            wins.load(Ordering::Relaxed),
            500,
            "each key must be inserted exactly once"
        );
    }

    #[test]
    fn concurrent_mixed_ops() {
        let t = fresh(128, small_cfg());
        std::thread::scope(|s| {
            for tid in 0..6u64 {
                let t = &t;
                s.spawn(move || {
                    let mut x = tid + 31;
                    for i in 0..2_000u64 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let k = x % 1_024;
                        match i % 5 {
                            0 | 1 => {
                                t.insert(k, i);
                            }
                            2 => {
                                t.lookup(k);
                            }
                            3 => {
                                t.update(k, i);
                            }
                            _ => {
                                let mut out = Vec::new();
                                t.scan(k, 10, &mut out);
                                assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
                            }
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn footprint_is_pm_only() {
        let t = fresh(16, small_cfg());
        for k in 0..300u64 {
            t.insert(k, k);
        }
        let f = t.footprint();
        assert!(f.pm_bytes > 0);
        assert_eq!(f.dram_bytes, 0);
    }
}
