//! # cache — a lock-free DRAM hot-key tier for PM range indexes
//!
//! Production traffic is skewed: a small hot set absorbs most point
//! lookups. On the emulated PM substrate every lookup pays the media
//! latency model, so a DRAM front fed by the hot set converts most of
//! that cost into a few nanoseconds of DRAM probing — *without*
//! weakening durability, because the cache is strictly write-through:
//!
//! * **Lookups** are read-through. A hit is served from DRAM; a miss
//!   consults the inner PM index and (on success) installs the entry.
//! * **Mutations** go to the inner index FIRST. Only after the inner
//!   operation returns — i.e. after the PM store + fence that makes it
//!   durable — does the cache invalidate. The durable-ack oracle
//!   (`crashpoint`, `net::explore_net`) therefore sees exactly the same
//!   persistence-event stream with or without the cache.
//!
//! ## Coherence: generation-stamped fills
//!
//! The cache is an array of fixed-size buckets, each with a 64-bit
//! **generation counter** and eight seqlock-guarded slots. The rules:
//!
//! 1. Every *successful* mutation of key `k` bumps `k`'s bucket
//!    generation — after the inner index acknowledged, before the
//!    wrapper returns. (Writers never install values: a writer's value
//!    can already be stale relative to a concurrent, later-acked
//!    writer.)
//! 2. A fill captures the bucket generation **before** issuing the
//!    inner lookup, and stamps the slot with that value.
//! 3. A hit is only valid if the slot's stamp equals the bucket
//!    generation loaded at probe start.
//!
//! If a mutation raced a fill, the mutation's bump makes the fill's
//! stamp stale, so the filled entry is dead on arrival: no stale value
//! can be observed after its overwrite was acknowledged. The
//! linearization point of a cached mutation is the wrapper's return
//! (inner ack happens-before the bump, bump happens-before return).
//!
//! Slots are seqlocked (odd = writer active) so readers never see torn
//! key/value pairs; fill claims use a single CAS and simply *skip* the
//! fill on contention — it is only a cache. Eviction prefers a slot
//! holding the same key, then any dead slot (stamp ≠ generation), then
//! CLOCK second-chance over the bucket's reference bits.
//!
//! Scans bypass the cache entirely (the inner index is the only source
//! of ordered truth). [`SkewEstimator`] provides the windowed hot-range
//! detection that drives `engine`'s online shard splitting.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use index_api::{Footprint, Key, RangeIndex, Value};

pub mod skew;
pub use skew::SkewEstimator;

/// Slots per bucket (set-associativity of the cache).
pub const WAYS: usize = 8;

/// An empty/never-valid stamp. Bucket generations start at 0 and only
/// increment, so a slot stamped `DEAD_STAMP` never matches.
const DEAD_STAMP: u64 = u64::MAX;

/// One cache entry, guarded by a per-slot seqlock (`seq` odd = a writer
/// owns the slot; readers retry/reject on instability).
struct Slot {
    seq: AtomicU64,
    key: AtomicU64,
    value: AtomicU64,
    /// Bucket generation captured before the fill's inner lookup.
    stamp: AtomicU64,
    /// CLOCK reference bit (set on hit, cleared by the sweeping hand).
    refbit: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            key: AtomicU64::new(0),
            value: AtomicU64::new(0),
            stamp: AtomicU64::new(DEAD_STAMP),
            refbit: AtomicU64::new(0),
        }
    }
}

/// One set of [`WAYS`] slots plus the bucket generation and CLOCK hand.
struct Bucket {
    gen: AtomicU64,
    hand: AtomicUsize,
    slots: [Slot; WAYS],
}

impl Bucket {
    fn new() -> Bucket {
        Bucket {
            gen: AtomicU64::new(0),
            hand: AtomicUsize::new(0),
            slots: std::array::from_fn(|_| Slot::new()),
        }
    }
}

/// Monotonic counters for the cache's behaviour. All relaxed: these are
/// statistics, not synchronization.
#[derive(Default)]
pub struct CacheStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub fills: AtomicU64,
    /// Fills abandoned because the slot CAS lost a race.
    pub fill_skips: AtomicU64,
    /// Fills that displaced a *live* (stamp == generation) entry.
    pub evictions: AtomicU64,
    /// Generation bumps issued by acknowledged mutations.
    pub invalidations: AtomicU64,
}

/// A point-in-time copy of [`CacheStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheCounters {
    pub hits: u64,
    pub misses: u64,
    pub fills: u64,
    pub fill_skips: u64,
    pub evictions: u64,
    pub invalidations: u64,
}

impl CacheCounters {
    /// Hit rate over all probes, in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        let probes = self.hits + self.misses;
        if probes == 0 {
            0.0
        } else {
            self.hits as f64 / probes as f64
        }
    }
}

/// Fibonacci-style 64-bit hash: full-width multiply spreads low-entropy
/// keys (sequential, strided) across the bucket array.
#[inline]
fn hash64(k: u64) -> u64 {
    k.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_right(29)
}

/// The lock-free DRAM hot-key cache. See the module docs for the
/// coherence protocol.
pub struct HotCache {
    buckets: Box<[Bucket]>,
    mask: usize,
    stats: CacheStats,
}

impl HotCache {
    /// A cache budgeted to roughly `bytes` of DRAM (bucket count is the
    /// largest power of two fitting the budget; at least one bucket).
    pub fn with_capacity(bytes: usize) -> HotCache {
        let per_bucket = std::mem::size_of::<Bucket>().max(1);
        let want = (bytes / per_bucket).max(1);
        let n = if want.is_power_of_two() {
            want
        } else {
            (want.next_power_of_two()) >> 1
        }
        .max(1);
        HotCache {
            buckets: (0..n).map(|_| Bucket::new()).collect(),
            mask: n - 1,
            stats: CacheStats::default(),
        }
    }

    /// DRAM consumed by the bucket array.
    pub fn footprint_bytes(&self) -> u64 {
        (self.buckets.len() * std::mem::size_of::<Bucket>()) as u64
    }

    /// Number of entries the cache can hold.
    pub fn capacity(&self) -> usize {
        self.buckets.len() * WAYS
    }

    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Snapshot the counters.
    pub fn counters(&self) -> CacheCounters {
        let s = &self.stats;
        CacheCounters {
            hits: s.hits.load(Ordering::Relaxed),
            misses: s.misses.load(Ordering::Relaxed),
            fills: s.fills.load(Ordering::Relaxed),
            fill_skips: s.fill_skips.load(Ordering::Relaxed),
            evictions: s.evictions.load(Ordering::Relaxed),
            invalidations: s.invalidations.load(Ordering::Relaxed),
        }
    }

    #[inline]
    fn bucket(&self, key: Key) -> &Bucket {
        &self.buckets[(hash64(key) as usize) & self.mask]
    }

    /// Probe for `key`. Returns the cached value and, on miss, the
    /// bucket generation to stamp a subsequent [`Self::fill`] with.
    /// The returned generation was loaded *before* the probe, so a fill
    /// stamped with it is invalidated by any mutation that completes
    /// after this call began — exactly the coherence rule we need.
    pub fn probe(&self, key: Key) -> Result<Value, u64> {
        let b = self.bucket(key);
        let gen = b.gen.load(Ordering::Acquire);
        for slot in &b.slots {
            let s0 = slot.seq.load(Ordering::Acquire);
            if s0 & 1 != 0 {
                continue; // writer active
            }
            let k = slot.key.load(Ordering::Relaxed);
            let v = slot.value.load(Ordering::Relaxed);
            let st = slot.stamp.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != s0 {
                continue; // torn read; treat as miss for this slot
            }
            if st == gen && k == key {
                slot.refbit.store(1, Ordering::Relaxed);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(v);
            }
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        Err(gen)
    }

    /// Install `key → value` stamped with `gen` (the generation
    /// returned by the miss [`Self::probe`], i.e. loaded before the
    /// inner lookup ran). Contention is resolved by giving up: a
    /// skipped fill only costs a future miss.
    pub fn fill(&self, key: Key, value: Value, gen: u64) {
        let b = self.bucket(key);
        let victim = self.pick_victim(b, key);
        let slot = &b.slots[victim];
        let s0 = slot.seq.load(Ordering::Acquire);
        if s0 & 1 != 0
            || slot
                .seq
                .compare_exchange(s0, s0 + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
        {
            self.stats.fill_skips.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // We own the slot (seq is odd). Count live displacements.
        let cur_gen = b.gen.load(Ordering::Acquire);
        let old_stamp = slot.stamp.load(Ordering::Relaxed);
        if old_stamp == cur_gen && slot.key.load(Ordering::Relaxed) != key {
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
        slot.key.store(key, Ordering::Relaxed);
        slot.value.store(value, Ordering::Relaxed);
        slot.stamp.store(gen, Ordering::Relaxed);
        slot.refbit.store(1, Ordering::Relaxed);
        slot.seq.store(s0 + 2, Ordering::Release);
        self.stats.fills.fetch_add(1, Ordering::Relaxed);
    }

    /// Victim choice: same key (refresh) → dead slot (stamp stale) →
    /// CLOCK second-chance over the reference bits.
    fn pick_victim(&self, b: &Bucket, key: Key) -> usize {
        let gen = b.gen.load(Ordering::Acquire);
        let mut dead = None;
        for (i, slot) in b.slots.iter().enumerate() {
            let st = slot.stamp.load(Ordering::Relaxed);
            if st == gen && slot.key.load(Ordering::Relaxed) == key {
                return i;
            }
            if st != gen && dead.is_none() {
                dead = Some(i);
            }
        }
        if let Some(i) = dead {
            return i;
        }
        // CLOCK: clear refbits until one comes up already clear. Bounded
        // at two sweeps so a racing refbit-setter cannot spin us.
        let mut hand = b.hand.load(Ordering::Relaxed);
        for _ in 0..(2 * WAYS) {
            let i = hand % WAYS;
            hand = hand.wrapping_add(1);
            if b.slots[i].refbit.swap(0, Ordering::Relaxed) == 0 {
                b.hand.store(hand, Ordering::Relaxed);
                return i;
            }
        }
        b.hand.store(hand, Ordering::Relaxed);
        hand % WAYS
    }

    /// Invalidate every cached entry for `key`'s bucket: bump the
    /// generation so all current stamps (and any in-flight fill whose
    /// generation was captured earlier) go stale. Called by the
    /// write-through wrapper *after* the inner index acknowledged.
    pub fn invalidate(&self, key: Key) {
        self.bucket(key).gen.fetch_add(1, Ordering::SeqCst);
        self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
    }
}

/// Static `name()` table so the wrapped index still returns a
/// `&'static str` (required by the trait).
fn cached_name(inner: &'static str) -> &'static str {
    match inner {
        "fptree" => "cached-fptree",
        "fptree-nofp" => "cached-fptree-nofp",
        "fptree-varkey" => "cached-fptree-varkey",
        "nvtree" => "cached-nvtree",
        "wbtree" => "cached-wbtree",
        "wbtree-noslots" => "cached-wbtree-noslots",
        "bztree" => "cached-bztree",
        "learned" => "cached-learned",
        "dram-btree" => "cached-dram-btree",
        "sharded-fptree" => "cached-sharded-fptree",
        "sharded-nvtree" => "cached-sharded-nvtree",
        "sharded-wbtree" => "cached-sharded-wbtree",
        "sharded-bztree" => "cached-sharded-bztree",
        "sharded-learned" => "cached-sharded-learned",
        _ => "cached",
    }
}

/// Read-through / write-through wrapper: [`HotCache`] in front of any
/// [`RangeIndex`]. Durability semantics are the inner index's,
/// unchanged — see the module docs.
pub struct CachedIndex {
    inner: Arc<dyn RangeIndex>,
    cache: HotCache,
    name: &'static str,
}

impl CachedIndex {
    /// Wrap `inner` with a cache budgeted to `cache_bytes` of DRAM.
    pub fn new(inner: Arc<dyn RangeIndex>, cache_bytes: usize) -> CachedIndex {
        let name = cached_name(inner.name());
        CachedIndex {
            inner,
            cache: HotCache::with_capacity(cache_bytes),
            name,
        }
    }

    pub fn cache(&self) -> &HotCache {
        &self.cache
    }

    pub fn inner(&self) -> &Arc<dyn RangeIndex> {
        &self.inner
    }

    pub fn counters(&self) -> CacheCounters {
        self.cache.counters()
    }
}

impl RangeIndex for CachedIndex {
    fn insert(&self, key: Key, value: Value) -> bool {
        // Inner first: the PM fence inside the inner index is the ack.
        let ok = self.inner.insert(key, value);
        if ok {
            self.cache.invalidate(key);
        }
        ok
    }

    fn lookup(&self, key: Key) -> Option<Value> {
        match self.cache.probe(key) {
            Ok(v) => Some(v),
            Err(gen) => {
                let _site = obs::site("cache_miss");
                let got = self.inner.lookup(key);
                if let Some(v) = got {
                    self.cache.fill(key, v, gen);
                }
                got
            }
        }
    }

    fn update(&self, key: Key, value: Value) -> bool {
        let ok = self.inner.update(key, value);
        if ok {
            self.cache.invalidate(key);
        }
        ok
    }

    fn remove(&self, key: Key) -> bool {
        let ok = self.inner.remove(key);
        if ok {
            self.cache.invalidate(key);
        }
        ok
    }

    fn scan(&self, start: Key, count: usize, out: &mut Vec<(Key, Value)>) -> usize {
        // Ordered truth lives only in the inner index.
        self.inner.scan(start, count, out)
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn footprint(&self) -> Footprint {
        let mut f = self.inner.footprint();
        f.dram_bytes += self.cache.footprint_bytes();
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use index_api::testing::MapIndex;
    use std::sync::atomic::AtomicBool;

    fn cached(bytes: usize) -> CachedIndex {
        CachedIndex::new(Arc::new(MapIndex::new()), bytes)
    }

    #[test]
    fn read_through_hit_and_miss() {
        let c = cached(1 << 16);
        assert!(c.insert(7, 70));
        assert_eq!(c.lookup(7), Some(70)); // miss + fill
        assert_eq!(c.lookup(7), Some(70)); // hit
        let s = c.counters();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.fills, 1);
        assert_eq!(c.lookup(999), None);
        assert_eq!(c.counters().fills, 1, "absent keys are not cached");
    }

    #[test]
    fn write_through_invalidates() {
        let c = cached(1 << 16);
        assert!(c.insert(1, 10));
        assert_eq!(c.lookup(1), Some(10));
        assert!(c.update(1, 11));
        assert_eq!(c.lookup(1), Some(11), "update must kill the cached 10");
        assert!(c.remove(1));
        assert_eq!(c.lookup(1), None);
        assert!(!c.update(1, 12), "update of removed key fails");
        assert!(c.counters().invalidations >= 3);
    }

    #[test]
    fn stale_fill_is_dead_on_arrival() {
        // Manually interleave: capture gen, mutate, then fill with the
        // stale gen — the fill must not produce a hit.
        let inner: Arc<dyn RangeIndex> = Arc::new(MapIndex::new());
        inner.insert(5, 50);
        let cache = HotCache::with_capacity(1 << 14);
        let gen = match cache.probe(5) {
            Err(g) => g,
            Ok(_) => panic!("cold cache cannot hit"),
        };
        // A mutation completes between the probe and the fill.
        inner.update(5, 51);
        cache.invalidate(5);
        cache.fill(5, 50, gen); // stale value, stale stamp
        assert!(cache.probe(5).is_err(), "stale fill must not be served");
    }

    #[test]
    fn eviction_under_pressure() {
        let c = cached(1); // single bucket: WAYS entries max
        for k in 0..(WAYS as u64 * 4) {
            c.insert(k, k);
        }
        // Read-only pressure: the generation is stable, so once the
        // bucket's slots are all live, further fills must displace.
        for k in 0..(WAYS as u64 * 4) {
            c.lookup(k);
        }
        let s = c.counters();
        assert!(s.evictions > 0, "overfull bucket must evict: {s:?}");
        assert!(c.cache.capacity() >= WAYS);
        // Everything still reads correctly through the inner index.
        for k in 0..(WAYS as u64 * 4) {
            assert_eq!(c.lookup(k), Some(k));
        }
    }

    #[test]
    fn scan_bypasses_cache() {
        let c = cached(1 << 14);
        for k in [3u64, 1, 2] {
            c.insert(k, k * 10);
        }
        let mut out = Vec::new();
        assert_eq!(c.scan(0, 10, &mut out), 3);
        assert_eq!(out, vec![(1, 10), (2, 20), (3, 30)]);
    }

    #[test]
    fn names_and_footprint() {
        let c = cached(1 << 16);
        assert_eq!(c.name(), "cached");
        assert!(c.footprint().dram_bytes >= c.cache.footprint_bytes());
        assert_eq!(cached_name("fptree"), "cached-fptree");
        assert_eq!(cached_name("sharded-learned"), "cached-sharded-learned");
    }

    #[test]
    fn concurrent_readers_never_see_stale_after_ack() {
        // Each key is owned by exactly one writer thread, which bumps
        // its value monotonically and raises a shared "floor" only
        // after the update was acknowledged. Readers check that a
        // (possibly cached) lookup never lands below an acked floor —
        // i.e. no stale value is observable after its overwrite's ack.
        let c = Arc::new(cached(1 << 14));
        const KEYS: u64 = 8;
        const WRITERS: u64 = 4;
        for k in 0..KEYS {
            c.insert(k, 0);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let floors: Arc<Vec<AtomicU64>> = Arc::new((0..KEYS).map(|_| AtomicU64::new(0)).collect());
        std::thread::scope(|s| {
            for t in 0..WRITERS {
                let c = c.clone();
                let stop = stop.clone();
                let floors = floors.clone();
                s.spawn(move || {
                    let mut k = t;
                    while !stop.load(Ordering::Relaxed) {
                        let f = &floors[k as usize];
                        let next = f.load(Ordering::SeqCst) + 1;
                        assert!(c.update(k, next));
                        // Ack happened inside update(); now publish it.
                        f.store(next, Ordering::SeqCst);
                        k = (k + WRITERS) % KEYS;
                    }
                });
            }
            for _ in 0..4 {
                let c = c.clone();
                let stop = stop.clone();
                let floors = floors.clone();
                s.spawn(move || {
                    let mut k = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        k = (k + 1) % KEYS;
                        let floor = floors[k as usize].load(Ordering::SeqCst);
                        let got = c.lookup(k).expect("hot keys never removed");
                        assert!(
                            got >= floor,
                            "stale read: key {k} returned {got} after floor {floor} was acked"
                        );
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(120));
            stop.store(true, Ordering::Relaxed);
        });
        let s = c.counters();
        assert!(s.hits > 0, "the hot set must actually hit: {s:?}");
    }
}
