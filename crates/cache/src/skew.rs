//! Windowed online skew detection over the u64 keyspace.
//!
//! The estimator folds every observed key into a 256-slot histogram by
//! its top byte (`key >> 56`), so each slot covers a contiguous
//! `2^56`-wide key range — the same granularity the engine's
//! multiplicative range partition speaks. Counters are plain relaxed
//! atomics; when the window fills, every counter is halved (exponential
//! decay) so the estimate tracks *recent* traffic. The halving races
//! with concurrent `record()`s, which at worst miscounts a handful of
//! events — acceptable for a heuristic that only decides when a hot
//! shard is worth splitting.

use std::sync::atomic::{AtomicU64, Ordering};

use index_api::Key;

/// Number of histogram slots (fixed: one per top key byte).
pub const SLOTS: usize = 256;

/// One observed hot range: `[start, last]` inclusive, with its share of
/// the current window's traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotRange {
    pub start: Key,
    pub last: Key,
    /// Fraction of windowed traffic that landed in this range, [0, 1].
    pub share: f64,
    /// Raw windowed count.
    pub count: u64,
}

/// Lock-free windowed top-k hot-range estimator.
pub struct SkewEstimator {
    counts: Box<[AtomicU64; SLOTS]>,
    total: AtomicU64,
    window: u64,
}

impl SkewEstimator {
    /// An estimator that decays once `window` events accumulate.
    pub fn new(window: u64) -> SkewEstimator {
        SkewEstimator {
            counts: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            total: AtomicU64::new(0),
            window: window.max(SLOTS as u64),
        }
    }

    #[inline]
    fn slot_of(key: Key) -> usize {
        (key >> 56) as usize
    }

    /// Key range covered by histogram slot `i` (inclusive bounds).
    pub fn slot_range(i: usize) -> (Key, Key) {
        let start = (i as u64) << 56;
        let last = if i == SLOTS - 1 {
            u64::MAX
        } else {
            (((i as u64) + 1) << 56) - 1
        };
        (start, last)
    }

    /// Observe one access to `key`.
    #[inline]
    pub fn record(&self, key: Key) {
        self.counts[Self::slot_of(key)].fetch_add(1, Ordering::Relaxed);
        let t = self.total.fetch_add(1, Ordering::Relaxed) + 1;
        if t >= self.window {
            self.decay();
        }
    }

    /// Halve every counter (concurrent-safe in the racy-but-harmless
    /// sense; see module docs).
    fn decay(&self) {
        let mut kept = 0u64;
        for c in self.counts.iter() {
            let v = c.load(Ordering::Relaxed) / 2;
            c.store(v, Ordering::Relaxed);
            kept += v;
        }
        self.total.store(kept, Ordering::Relaxed);
    }

    /// Events currently in the window.
    pub fn window_total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// The `k` hottest ranges, hottest first, skipping empty slots.
    pub fn top_k(&self, k: usize) -> Vec<HotRange> {
        let total = self.window_total().max(1);
        let mut rows: Vec<(usize, u64)> = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.load(Ordering::Relaxed)))
            .filter(|&(_, c)| c > 0)
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.truncate(k);
        rows.into_iter()
            .map(|(i, count)| {
                let (start, last) = Self::slot_range(i);
                HotRange {
                    start,
                    last,
                    share: count as f64 / total as f64,
                    count,
                }
            })
            .collect()
    }

    /// The single hottest range, if any traffic was observed.
    pub fn hottest(&self) -> Option<HotRange> {
        self.top_k(1).into_iter().next()
    }

    /// True when the hottest range absorbs at least `threshold`
    /// (fraction) of the window — the engine's "worth splitting" gate.
    pub fn is_skewed(&self, threshold: f64) -> bool {
        self.hottest().is_some_and(|h| h.share >= threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_traffic_is_not_skewed() {
        let e = SkewEstimator::new(1 << 16);
        let mut x = 0x12345u64;
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            e.record(x);
        }
        assert!(!e.is_skewed(0.3), "{:?}", e.hottest());
        assert!(e.window_total() > 0);
    }

    #[test]
    fn hot_range_is_detected() {
        let e = SkewEstimator::new(1 << 16);
        let hot = 7u64 << 56; // everything in slot 7
        let mut x = 1u64;
        for i in 0..10_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if i % 10 < 9 {
                e.record(hot + (x % (1 << 20)));
            } else {
                e.record(x);
            }
        }
        let h = e.hottest().expect("traffic recorded");
        assert_eq!(h.start, 7u64 << 56);
        assert_eq!(h.last, (8u64 << 56) - 1);
        assert!(h.share > 0.5, "{h:?}");
        assert!(e.is_skewed(0.5));
        let top = e.top_k(3);
        assert!(!top.is_empty() && top[0].count >= top.last().unwrap().count);
    }

    #[test]
    fn decay_keeps_window_bounded() {
        let e = SkewEstimator::new(512);
        for i in 0..50_000u64 {
            e.record(i << 32);
        }
        assert!(e.window_total() <= 1024, "{}", e.window_total());
    }

    #[test]
    fn slot_ranges_tile_the_keyspace() {
        let mut expect = 0u64;
        for i in 0..SLOTS {
            let (s, l) = SkewEstimator::slot_range(i);
            assert_eq!(s, expect);
            assert!(l >= s);
            expect = l.wrapping_add(1);
        }
        assert_eq!(expect, 0, "last slot must end at u64::MAX");
    }
}
