//! Access distributions over logical key indexes.

use rand::rngs::SmallRng;
use rand::Rng;

/// Which logical index the next point operation targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Every index equally likely.
    Uniform,
    /// Self-similar (Gray et al., SIGMOD '94): a fraction `h` of
    /// accesses hits a fraction `h` of the key space, recursively.
    /// `h = 0.2` gives the paper's "80% of accesses on 20% of keys".
    SelfSimilar {
        /// Skew parameter in (0, 0.5).
        skew: f64,
    },
    /// Zipfian with parameter `theta` (YCSB-style).
    Zipfian {
        /// Skew parameter in (0, 1).
        theta: f64,
    },
    /// Hot-key storm: a fraction `frac` of accesses hammers a
    /// *contiguous* window of `hot` indexes at the front of the key
    /// space; the rest are uniform over everything. Unlike
    /// [`Distribution::SelfSimilar`], the hot set is a single dense
    /// range, which is what drives one shard (and one cache region)
    /// hot — the worst case the DRAM tier and online shard-range
    /// migration are built for.
    HotStorm {
        /// Hot-window size in indexes (clamped to the key space).
        hot: u64,
        /// Fraction of accesses aimed at the hot window, in (0, 1).
        frac: f64,
    },
}

impl Distribution {
    /// The paper's default skewed workload.
    pub fn self_similar_80_20() -> Distribution {
        Distribution::SelfSimilar { skew: 0.2 }
    }

    /// Build a sampler for indexes in `[0, n)`.
    pub fn sampler(&self, n: u64) -> Sampler {
        assert!(n > 0);
        match *self {
            Distribution::Uniform => Sampler::Uniform { n },
            Distribution::SelfSimilar { skew } => {
                assert!(skew > 0.0 && skew < 0.5, "skew must be in (0, 0.5)");
                Sampler::SelfSimilar {
                    n,
                    exp: skew.ln() / (1.0 - skew).ln(),
                }
            }
            Distribution::Zipfian { theta } => {
                assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
                // YCSB's rejection-free Zipfian generator.
                let zetan = zeta(n, theta);
                let zeta2 = zeta(2, theta);
                Sampler::Zipfian {
                    n,
                    theta,
                    zetan,
                    alpha: 1.0 / (1.0 - theta),
                    eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
                }
            }
            Distribution::HotStorm { hot, frac } => {
                assert!(hot > 0, "hot window must be non-empty");
                assert!(frac > 0.0 && frac < 1.0, "frac must be in (0, 1)");
                Sampler::HotStorm {
                    n,
                    hot: hot.min(n),
                    frac,
                }
            }
        }
    }
}

fn zeta(n: u64, theta: f64) -> f64 {
    // Direct sum; cached per sampler. For very large n this is the
    // dominant setup cost, so benchmarks construct samplers once.
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

/// A concrete sampler (one per thread; cheap to copy).
#[derive(Debug, Clone, Copy)]
pub enum Sampler {
    /// See [`Distribution::Uniform`].
    Uniform {
        /// Key-space size.
        n: u64,
    },
    /// See [`Distribution::SelfSimilar`].
    SelfSimilar {
        /// Key-space size.
        n: u64,
        /// Precomputed exponent `ln(h) / ln(1-h)`.
        exp: f64,
    },
    /// See [`Distribution::Zipfian`].
    Zipfian {
        /// Key-space size.
        n: u64,
        /// Skew.
        theta: f64,
        /// `zeta(n, theta)`.
        zetan: f64,
        /// `1 / (1 - theta)`.
        alpha: f64,
        /// YCSB eta constant.
        eta: f64,
    },
    /// See [`Distribution::HotStorm`].
    HotStorm {
        /// Key-space size.
        n: u64,
        /// Hot-window size (≤ n).
        hot: u64,
        /// Hot-window access fraction.
        frac: f64,
    },
}

impl Sampler {
    /// Draw a logical index in `[0, n)`.
    #[inline]
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        match *self {
            Sampler::Uniform { n } => rng.gen_range(0..n),
            Sampler::SelfSimilar { n, exp } => {
                let u: f64 = rng.gen();
                let v = (n as f64 * u.powf(exp)) as u64;
                v.min(n - 1)
            }
            Sampler::Zipfian {
                n,
                theta,
                zetan,
                alpha,
                eta,
            } => {
                let u: f64 = rng.gen();
                let uz = u * zetan;
                if uz < 1.0 {
                    return 0;
                }
                if uz < 1.0 + 0.5f64.powf(theta) {
                    return 1;
                }
                let v = (n as f64 * (eta * u - eta + 1.0).powf(alpha)) as u64;
                v.min(n - 1)
            }
            Sampler::HotStorm { n, hot, frac } => {
                if rng.gen::<f64>() < frac {
                    rng.gen_range(0..hot)
                } else {
                    rng.gen_range(0..n)
                }
            }
        }
    }
}

/// Open-loop arrival-time generator: a Poisson process at `target_qps`,
/// produced by sampling exponential inter-arrival gaps. Used by remote
/// drivers (`pmload --open-loop`) where each request's latency is
/// measured from its *intended* arrival instant, so queueing delay shows
/// up in the tail instead of being absorbed by a closed loop.
#[derive(Debug, Clone)]
pub struct Arrivals {
    mean_ns: f64,
    next_ns: f64,
}

impl Arrivals {
    /// A Poisson arrival process averaging `target_qps` events/second.
    pub fn poisson(target_qps: f64) -> Arrivals {
        assert!(target_qps > 0.0, "target qps must be positive");
        Arrivals {
            mean_ns: 1e9 / target_qps,
            next_ns: 0.0,
        }
    }

    /// Nanoseconds (from schedule start) of the next arrival.
    #[inline]
    pub fn next(&mut self, rng: &mut SmallRng) -> u64 {
        let at = self.next_ns as u64;
        // Inverse-CDF exponential gap; clamp u away from 1.0 so ln()
        // stays finite.
        let u: f64 = rng.gen::<f64>().min(0.999_999_999);
        self.next_ns += -(1.0 - u).ln() * self.mean_ns;
        at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn hits(dist: Distribution, n: u64, draws: usize) -> Vec<u64> {
        let s = dist.sampler(n);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            counts[s.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn uniform_is_roughly_flat() {
        let counts = hits(Distribution::Uniform, 100, 100_000);
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*min > 700 && *max < 1_300, "min={min} max={max}");
    }

    #[test]
    fn self_similar_is_80_20() {
        let n = 10_000u64;
        let counts = hits(Distribution::self_similar_80_20(), n, 200_000);
        let hot: u64 = counts[..(n as usize / 5)].iter().sum();
        let total: u64 = counts.iter().sum();
        let frac = hot as f64 / total as f64;
        assert!(
            (0.75..=0.85).contains(&frac),
            "hot fraction {frac} should be ~0.8"
        );
    }

    #[test]
    fn zipfian_head_is_heavy() {
        let n = 10_000u64;
        let counts = hits(Distribution::Zipfian { theta: 0.99 }, n, 200_000);
        let total: u64 = counts.iter().sum();
        // Rank 0 alone takes a sizeable share under theta=0.99.
        assert!(counts[0] as f64 / total as f64 > 0.05);
        // And all samples are in range (implicitly: no panic).
        assert_eq!(total, 200_000);
    }

    #[test]
    fn hot_storm_hammers_the_window() {
        let n = 10_000u64;
        let counts = hits(
            Distribution::HotStorm {
                hot: 100,
                frac: 0.9,
            },
            n,
            200_000,
        );
        let hot: u64 = counts[..100].iter().sum();
        let total: u64 = counts.iter().sum();
        let frac = hot as f64 / total as f64;
        // 90% aimed + ~1% of the uniform remainder lands inside too.
        assert!(
            (0.88..=0.94).contains(&frac),
            "hot fraction {frac} should be ~0.9"
        );
        assert_eq!(total, 200_000);
    }

    #[test]
    fn poisson_arrivals_average_out() {
        let mut arr = Arrivals::poisson(1_000_000.0); // 1 µs mean gap
        let mut rng = SmallRng::seed_from_u64(7);
        let mut last = 0u64;
        for _ in 0..100_000 {
            let t = arr.next(&mut rng);
            assert!(t >= last, "arrival times must be monotone");
            last = t;
        }
        // 100k arrivals at 1M qps should span ~100ms (±20%).
        let ms = last as f64 / 1e6;
        assert!((80.0..120.0).contains(&ms), "span {ms} ms");
    }

    #[test]
    fn samples_stay_in_range() {
        for dist in [
            Distribution::Uniform,
            Distribution::self_similar_80_20(),
            Distribution::Zipfian { theta: 0.5 },
            Distribution::HotStorm {
                hot: 1_000,
                frac: 0.9,
            },
        ] {
            let s = dist.sampler(7);
            let mut rng = SmallRng::seed_from_u64(1);
            for _ in 0..10_000 {
                assert!(s.sample(&mut rng) < 7);
            }
        }
    }
}
