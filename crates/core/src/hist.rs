//! Mergeable log-scale latency histograms.
//!
//! Tail-latency reporting needs percentiles up to p99.99 from millions
//! of samples without unbounded memory. Buckets grow geometrically
//! (4 sub-buckets per power of two ⇒ ≤ ~19% relative error), which is
//! plenty to reproduce the *shape* of the paper's latency figures.

/// Sub-buckets per power of two.
const SUBS: usize = 4;
/// Total buckets: 64 exponents × 4 sub-buckets.
const BUCKETS: usize = 64 * SUBS;

/// A fixed-size log-scale histogram of `u64` samples (nanoseconds).
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as usize;
    let sub = ((v >> (exp - 2)) & 3) as usize;
    exp * SUBS + sub
}

/// Lower bound of bucket `b` (inverse of [`bucket_of`]).
#[inline]
fn bucket_floor(b: usize) -> u64 {
    let exp = b / SUBS;
    let sub = (b % SUBS) as u64;
    if exp == 0 {
        return sub;
    }
    (1u64 << exp) | (sub << (exp - 2))
}

/// Representative value of bucket `b` for mean estimation: the
/// geometric mean of the bucket's bounds (log-scale buckets ⇒ the
/// geometric midpoint halves the worst-case relative error vs. using
/// the floor). Width-1 buckets are exact; the top bucket has no upper
/// bound, so fall back to its floor.
#[inline]
fn bucket_mid(b: usize) -> f64 {
    if b < SUBS {
        return b as f64; // exponent-0 buckets hold one exact value each
    }
    if b < 2 * SUBS {
        return 0.0; // exponent-1 buckets are unreachable (bucket_of maps 4.. to exp ≥ 2)
    }
    let lo = bucket_floor(b);
    if b + 1 >= BUCKETS {
        return lo as f64;
    }
    let hi = bucket_floor(b + 1);
    if hi - lo <= 1 {
        lo as f64
    } else {
        (lo as f64 * hi as f64).sqrt()
    }
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self {
            counts: Box::new([0; BUCKETS]),
            total: 0,
            max: 0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.total += 1;
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Largest recorded sample (exact).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
    }

    /// Value at percentile `p` in `[0, 100]` (bucket lower bound; the
    /// max is exact for `p = 100`).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        if p >= 100.0 {
            return self.max;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(b);
            }
        }
        self.max
    }

    /// Approximate average latency: the count-weighted mean of bucket
    /// midpoints. (Summing bucket *floors* would systematically
    /// underestimate by up to one bucket width, ~19% here.)
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(b, &c)| c as f64 * bucket_mid(b))
            .sum();
        sum / self.total as f64
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LatencyHistogram {{ n: {}, p50: {}, p99: {}, max: {} }}",
            self.total,
            self.percentile(50.0),
            self.percentile(99.0),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_invertible() {
        let mut last = 0;
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 100, 1000, 1 << 20, u64::MAX / 2] {
            let b = bucket_of(v);
            assert!(b >= last, "bucket order violated at {v}");
            last = b;
            assert!(bucket_floor(b) <= v, "floor({b}) > {v}");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in (4u64..1_000_000).step_by(37) {
            let floor = bucket_floor(bucket_of(v));
            assert!(floor <= v);
            assert!(
                (v - floor) as f64 / v as f64 <= 0.25,
                "error too large at {v}: floor={floor}"
            );
        }
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 100); // 100ns .. 1ms
        }
        assert_eq!(h.len(), 10_000);
        let p50 = h.percentile(50.0);
        assert!((400_000..=600_000).contains(&p50), "p50={p50}");
        let p99 = h.percentile(99.0);
        assert!((900_000..=1_000_000).contains(&p99), "p99={p99}");
        assert_eq!(h.percentile(100.0), 1_000_000);
    }

    #[test]
    fn mean_is_unbiased_on_uniform_ramp() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 100); // 100ns .. 1ms, true mean 500_050
        }
        let true_mean = 500_050.0;
        let err = (h.mean() - true_mean).abs() / true_mean;
        // Geometric-midpoint estimate: well inside one bucket width
        // (~9.5% half-width); the old floor-sum sat ~9% *below* truth.
        assert!(err < 0.03, "mean={} err={err}", h.mean());

        // Width-1 buckets are exact.
        let mut small = LatencyHistogram::new();
        for v in [0u64, 1, 2, 3] {
            small.record(v);
        }
        assert_eq!(small.mean(), 1.5);

        // The top (unbounded) bucket must not overflow the estimate.
        let mut top = LatencyHistogram::new();
        top.record(u64::MAX);
        assert!(top.mean().is_finite());
    }

    #[test]
    fn merge_combines_totals() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in 0..100 {
            a.record(v);
            b.record(v + 1_000_000);
        }
        a.merge(&b);
        assert_eq!(a.len(), 200);
        assert!(a.percentile(25.0) < 1_000);
        assert!(a.percentile(75.0) >= 1_000_000 * 3 / 4);
        assert_eq!(a.max(), 1_000_099);
    }

    #[test]
    fn bimodal_distribution_keeps_both_modes_apart() {
        // The learned index's op latencies are strongly bimodal: most
        // ops are a DRAM model walk plus one PM read (~hundreds of ns),
        // but the op that trips a merge retrains and rewrites the whole
        // model (~ms). The log-scale buckets must keep the modes apart
        // without overflow: p50 reports the fast mode, p99/p99.9 the
        // slow one, and neither mode's value collapses into the other's
        // bucket range.
        let mut h = LatencyHistogram::new();
        for i in 0..98_000u64 {
            h.record(180 + i % 60); // fast mode: 180–239 ns
        }
        for i in 0..2_000u64 {
            h.record(2_000_000 + (i % 16) * 50_000); // merge mode: 2.0–2.75 ms
        }
        assert_eq!(h.len(), 100_000, "samples lost to bucket overflow");
        let p50 = h.percentile(50.0);
        assert!((128..=256).contains(&p50), "p50 left the fast mode: {p50}");
        let p99 = h.percentile(99.0);
        assert!(
            (1_600_000..=2_800_000).contains(&p99),
            "p99 missed the merge mode: {p99}"
        );
        assert!(h.percentile(99.9) >= p99);
        assert_eq!(h.percentile(100.0), 2_750_000, "max must stay exact");
        // The mean must sit between the modes, pulled up by the tail
        // (true mean ≈ 47 µs; allow the ±19% bucket error).
        let mean = h.mean();
        assert!(
            (35_000.0..=60_000.0).contains(&mean),
            "mean lost a mode: {mean}"
        );

        // Per-thread merge (the pibench --json path merges per-thread
        // histograms before printing p50/p99) preserves both modes.
        let mut merged = LatencyHistogram::new();
        for _ in 0..4 {
            merged.merge(&h);
        }
        assert_eq!(merged.len(), 400_000);
        assert_eq!(merged.percentile(50.0), p50);
        assert_eq!(merged.percentile(99.0), p99);
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        h.record(u64::MAX / 2);
        assert_eq!(h.len(), 3);
        assert_eq!(h.percentile(100.0), u64::MAX);
        assert!(h.percentile(1.0) <= h.percentile(99.0));
    }

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
