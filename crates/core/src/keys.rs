//! Key-space management.
//!
//! Benchmarks address a *logical* dense key space `0..n` (easy to
//! enumerate, easy to partition across threads) but indexes should see
//! keys spread over the whole `u64` range, like the paper's random
//! 8-byte integer keys. A bijective mixer (a finalizer-style hash with
//! an exact inverse) maps between the two, so:
//!
//! * prefill can insert exactly the keys `mix(0) .. mix(n-1)`,
//! * the workload can draw a logical index from any distribution and
//!   address the corresponding existing key,
//! * inserts during measurement extend the space at `mix(n + seq)`
//!   without ever colliding with an existing key.

/// SplitMix64 finalizer: a bijection on `u64`.
#[inline]
pub fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Inverse of [`mix`] (for debugging and tests).
#[inline]
pub fn unmix(z: u64) -> u64 {
    // Invert each step of mix(): xorshifts and odd-constant multiplies
    // are both invertible.
    let mut x = z;
    x ^= x >> 31 ^ x >> 62;
    x = x.wrapping_mul(0x319642B2_D24D8EC3);
    x ^= x >> 27 ^ x >> 54;
    x = x.wrapping_mul(0x96DE1B17_3F119089);
    x ^= x >> 30 ^ x >> 60;
    x.wrapping_sub(0x9E37_79B9_7F4A_7C15)
}

/// A logical key space of `n` prefilled keys plus an insert frontier.
#[derive(Debug)]
pub struct KeySpace {
    prefilled: u64,
    frontier: std::sync::atomic::AtomicU64,
}

impl KeySpace {
    /// Key space with `n` prefilled records.
    pub fn new(n: u64) -> KeySpace {
        KeySpace {
            prefilled: n,
            frontier: std::sync::atomic::AtomicU64::new(n),
        }
    }

    /// Number of prefilled records.
    pub fn prefilled(&self) -> u64 {
        self.prefilled
    }

    /// The physical key of logical index `i`.
    #[inline]
    pub fn key(&self, i: u64) -> u64 {
        mix(i)
    }

    /// The value stored for a key (derived, so reads can be verified).
    #[inline]
    pub fn value_for(&self, key: u64) -> u64 {
        key.wrapping_mul(0x5851_F42D_4C95_7F2D) | 1
    }

    /// Claim a fresh, never-used key for an insert operation.
    #[inline]
    pub fn next_insert_key(&self) -> u64 {
        let i = self
            .frontier
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        mix(i)
    }

    /// A key guaranteed absent from the index (negative-lookup
    /// workloads): drawn from the upper half of the logical space,
    /// unreachable by any realistic insert frontier.
    #[inline]
    pub fn negative_key(&self, i: u64) -> u64 {
        mix((1u64 << 63) | i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_bijective_on_sample() {
        for i in (0..1_000_000u64).step_by(997) {
            assert_eq!(unmix(mix(i)), i);
        }
        assert_eq!(unmix(mix(u64::MAX)), u64::MAX);
    }

    #[test]
    fn mixed_keys_are_distinct() {
        let mut keys: Vec<u64> = (0..100_000).map(mix).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 100_000);
    }

    #[test]
    fn insert_frontier_never_collides() {
        let ks = KeySpace::new(1000);
        let mut seen: std::collections::HashSet<u64> = (0..1000).map(|i| ks.key(i)).collect();
        for _ in 0..1000 {
            assert!(seen.insert(ks.next_insert_key()), "frontier collision");
        }
    }

    #[test]
    fn values_are_nonzero() {
        let ks = KeySpace::new(10);
        for i in 0..10 {
            assert_ne!(ks.value_for(ks.key(i)), 0);
        }
    }
}
