//! # pibench — a unified benchmarking framework for PM range indexes
//!
//! The paper's primary contribution: one harness that stress-tests any
//! index implementing the common [`index_api::RangeIndex`] interface
//! under identical, reproducible workloads, and reports the metrics the
//! evaluation is built on.
//!
//! * **Workloads** ([`workload`]): synthetic operation streams over a
//!   dense logical key space mapped through a bijective mixer (so keys
//!   are uniformly spread over `u64` but enumerable), with configurable
//!   operation mixes (lookup/insert/update/remove/scan) and access
//!   distributions ([`dist`]): uniform, self-similar (the paper's
//!   80/20 skew) and Zipfian.
//! * **Execution** ([`runner`]): multi-threaded prefill + timed or
//!   fixed-op measurement phases; per-thread deterministic RNG streams;
//!   sampled latency capture.
//! * **Metrics**: throughput per operation type, tail-latency
//!   percentiles from mergeable log-scale histograms ([`hist`]), PM
//!   media traffic / bandwidth / amplification (from the `pmem`
//!   device counters) and index memory footprints.
//! * **Reporting** ([`report`]): aligned text tables and CSV rows, the
//!   same series the paper's figures plot.
//! * **Tracing** ([`trace`]): exporters for the `obs` observability
//!   subsystem — Chrome-trace/Perfetto JSON, time-series CSV and the
//!   per-site traffic attribution table.

pub mod dist;
pub mod hist;
pub mod keys;
pub mod report;
pub mod runner;
pub mod trace;
pub mod workload;

pub use dist::Distribution;
pub use hist::LatencyHistogram;
pub use keys::KeySpace;
pub use runner::{prefill, run, run_avg_mops, BenchConfig, RunResult};
pub use workload::{OpKind, OpMix};
