//! Plain-text and CSV reporting: the series the paper's figures plot.

use std::fmt::Write as _;

/// A simple aligned table builder.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render as an aligned text table.
    pub fn to_text(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:>width$}", c, width = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Render as a JSON array of row objects keyed by column header
    /// (handwritten — the workspace deliberately has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (ri, row) in self.rows.iter().enumerate() {
            if ri > 0 {
                out.push(',');
            }
            out.push('{');
            for (ci, cell) in row.iter().enumerate() {
                if ci > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{}:{}",
                    json_string(&self.header[ci]),
                    json_string(cell)
                );
            }
            out.push('}');
        }
        out.push(']');
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Incremental JSON object builder (handwritten — the workspace
/// deliberately has no serde). Shared by every emitter in the tree:
/// `pibench --json`, the `e00_run_all` result files, and the obs
/// trace/time-series exporters.
///
/// ```
/// # use pibench::report::{JsonArr, JsonObj};
/// let mut o = JsonObj::new();
/// o.str("index", "fptree").u64("threads", 8).f64("mops", 1.25);
/// assert_eq!(o.finish(), r#"{"index":"fptree","threads":8,"mops":1.25}"#);
/// ```
#[derive(Default)]
pub struct JsonObj {
    buf: String,
}

impl JsonObj {
    pub fn new() -> JsonObj {
        JsonObj::default()
    }

    /// Append `key: value` with `value` already JSON-encoded.
    pub fn raw(&mut self, key: &str, value: &str) -> &mut Self {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        let _ = write!(self.buf, "{}:{}", json_string(key), value);
        self
    }

    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        let v = json_string(value);
        self.raw(key, &v)
    }

    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.raw(key, &value.to_string())
    }

    /// Floats render shortest-roundtrip; non-finite values become
    /// `null` (JSON has no NaN/inf).
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        let v = if value.is_finite() {
            value.to_string()
        } else {
            "null".to_string()
        };
        self.raw(key, &v)
    }

    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// Append a nested object.
    pub fn obj(&mut self, key: &str, value: JsonObj) -> &mut Self {
        let v = value.finish();
        self.raw(key, &v)
    }

    /// Append a nested array.
    pub fn arr(&mut self, key: &str, value: JsonArr) -> &mut Self {
        let v = value.finish();
        self.raw(key, &v)
    }

    pub fn finish(&self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Incremental JSON array builder, companion to [`JsonObj`].
#[derive(Default)]
pub struct JsonArr {
    buf: String,
}

impl JsonArr {
    pub fn new() -> JsonArr {
        JsonArr::default()
    }

    /// Append an element that is already JSON-encoded.
    pub fn push_raw(&mut self, value: &str) -> &mut Self {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push_str(value);
        self
    }

    pub fn push_obj(&mut self, value: JsonObj) -> &mut Self {
        let v = value.finish();
        self.push_raw(&v)
    }

    pub fn push_str(&mut self, value: &str) -> &mut Self {
        let v = json_string(value);
        self.push_raw(&v)
    }

    pub fn push_u64(&mut self, value: u64) -> &mut Self {
        let v = value.to_string();
        self.push_raw(&v)
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn finish(&self) -> String {
        format!("[{}]", self.buf)
    }
}

/// Quote and escape a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an ops/s figure the way the paper's axes do (Mops/s).
pub fn fmt_mops(v: f64) -> String {
    format!("{v:.3}")
}

/// Format nanoseconds human-readably.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{:.1}ms", ns as f64 / 1e6)
    }
}

/// Format a byte count with binary units.
pub fn fmt_bytes(b: u64) -> String {
    if b < 1024 {
        format!("{b}B")
    } else if b < 1024 * 1024 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else if b < 1024 * 1024 * 1024 {
        format!("{:.2}MiB", b as f64 / (1 << 20) as f64)
    } else {
        format!("{:.2}GiB", b as f64 / (1 << 30) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_csv() {
        let mut t = Table::new(vec!["index", "threads", "mops"]);
        t.row(vec!["fptree", "1", "1.234"]);
        t.row(vec!["bztree", "40", "0.567"]);
        let text = t.to_text();
        assert!(text.contains("index"));
        assert!(text.lines().count() == 4);
        // Columns right-aligned to equal width per column.
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0].len(), lines[2].len());
        let csv = t.to_csv();
        assert_eq!(csv.lines().next().unwrap(), "index,threads,mops");
        assert!(csv.contains("bztree,40,0.567"));
    }

    #[test]
    fn json_rows_and_escaping() {
        let mut t = Table::new(vec!["index", "mops"]);
        t.row(vec!["fptree", "1.234"]);
        t.row(vec!["a\"b", "x\ny"]);
        assert_eq!(
            t.to_json(),
            r#"[{"index":"fptree","mops":"1.234"},{"index":"a\"b","mops":"x\ny"}]"#
        );
        assert_eq!(Table::new(vec!["a"]).to_json(), "[]");
        assert_eq!(json_string("p\\q"), r#""p\\q""#);
    }

    #[test]
    fn json_builders_nest_and_escape() {
        let mut inner = JsonObj::new();
        inner.u64("p50", 120).u64("p99", 4096);
        let mut arr = JsonArr::new();
        arr.push_str("a\"b").push_u64(7);
        let mut o = JsonObj::new();
        o.str("index", "fptree")
            .f64("mops", 0.5)
            .f64("bad", f64::NAN)
            .bool("dram", false)
            .obj("latency", inner)
            .arr("tags", arr);
        assert_eq!(
            o.finish(),
            r#"{"index":"fptree","mops":0.5,"bad":null,"dram":false,"latency":{"p50":120,"p99":4096},"tags":["a\"b",7]}"#
        );
        assert_eq!(JsonObj::new().finish(), "{}");
        assert_eq!(JsonArr::new().finish(), "[]");
        assert!(JsonArr::new().is_empty());
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["x,y"]);
        assert!(t.to_csv().contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        Table::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(50_000), "50.0us");
        assert_eq!(fmt_ns(50_000_000), "50.0ms");
        assert_eq!(fmt_bytes(100), "100B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00MiB");
        assert_eq!(fmt_bytes(5 << 30), "5.00GiB");
        assert_eq!(fmt_mops(1.23456), "1.235");
    }
}
