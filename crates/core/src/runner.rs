//! The multi-threaded benchmark runner: prefill + measured phase.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use index_api::RangeIndex;
use pmem::{PmPool, PmStatsSnapshot};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::dist::Distribution;
use crate::hist::LatencyHistogram;
use crate::keys::KeySpace;
use crate::workload::{Op, OpMix, OpStream, OP_KINDS};

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Worker threads.
    pub threads: usize,
    /// Records to prefill before measuring.
    pub records: u64,
    /// Measured phase length: fixed op count per thread, …
    pub ops_per_thread: Option<u64>,
    /// …or a wall-clock duration (exactly one must be set).
    pub duration: Option<Duration>,
    /// Operation mix.
    pub mix: OpMix,
    /// Access distribution for existing-key operations.
    pub distribution: Distribution,
    /// Records per scan.
    pub scan_len: usize,
    /// Sample one in `2^latency_sample_shift` operations for latency
    /// (the paper samples 10%; 3 ⇒ 12.5%).
    pub latency_sample_shift: u32,
    /// RNG seed (per-thread streams derive from it).
    pub seed: u64,
    /// Lookups target absent keys (fingerprint experiment E9).
    pub negative_lookups: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            threads: 1,
            records: 100_000,
            ops_per_thread: Some(100_000),
            duration: None,
            mix: OpMix::pure(crate::OpKind::Lookup),
            distribution: Distribution::Uniform,
            scan_len: 100,
            latency_sample_shift: 3,
            seed: 0x5EED,
            negative_lookups: false,
        }
    }
}

/// Result of one measured run.
pub struct RunResult {
    /// Wall time of the measured phase.
    pub elapsed: Duration,
    /// Completed operations by kind (indexed by `OpKind as usize`).
    pub ops: [u64; 5],
    /// Operations whose boolean/option result was "miss" (not an error:
    /// e.g. removes of absent keys under skew).
    pub misses: u64,
    /// Sampled latency histograms by kind.
    pub latency: [LatencyHistogram; 5],
    /// PM counter delta over the measured phase (zeros if no pool was
    /// supplied).
    pub pm: PmStatsSnapshot,
}

impl RunResult {
    /// Total completed operations.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().sum()
    }

    /// Overall throughput in operations per second.
    pub fn mops(&self) -> f64 {
        self.total_ops() as f64 / self.elapsed.as_secs_f64() / 1e6
    }

    /// PM read bandwidth during the run (GiB/s, media traffic).
    pub fn pm_read_gibps(&self) -> f64 {
        self.pm.media_read_bytes as f64 / self.elapsed.as_secs_f64() / (1u64 << 30) as f64
    }

    /// PM write bandwidth during the run (GiB/s, media traffic).
    pub fn pm_write_gibps(&self) -> f64 {
        self.pm.media_write_bytes as f64 / self.elapsed.as_secs_f64() / (1u64 << 30) as f64
    }

    /// Media bytes read per completed operation.
    pub fn pm_read_bytes_per_op(&self) -> f64 {
        self.pm.media_read_bytes as f64 / self.total_ops().max(1) as f64
    }

    /// Media bytes written per completed operation.
    pub fn pm_write_bytes_per_op(&self) -> f64 {
        self.pm.media_write_bytes as f64 / self.total_ops().max(1) as f64
    }
}

/// Prefill `records` keys with `threads` workers. Returns the load time.
pub fn prefill(index: &dyn RangeIndex, keyspace: &KeySpace, threads: usize) -> Duration {
    let n = keyspace.prefilled();
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let index = &index;
            s.spawn(move || {
                let mut i = t;
                while i < n {
                    let k = keyspace.key(i);
                    let inserted = index.insert(k, keyspace.value_for(k));
                    debug_assert!(inserted, "prefill key collision at {i}");
                    i += threads as u64;
                }
            });
        }
    });
    start.elapsed()
}

/// Run the measured phase described by `cfg` against `index`.
///
/// The index must already be prefilled with `keyspace` (see
/// [`prefill`]). `pools` holds the index's backing pools — one for a
/// single-pool index, one per shard for a sharded one, empty for DRAM.
/// Every pool's counters are reset at the start and the counter-wise
/// sum of the deltas is reported in the result, so amplification and
/// bandwidth figures aggregate transparently across shards.
pub fn run(
    index: &dyn RangeIndex,
    keyspace: &KeySpace,
    pools: &[Arc<PmPool>],
    cfg: &BenchConfig,
) -> RunResult {
    cfg.mix.validate();
    assert!(
        cfg.ops_per_thread.is_some() ^ cfg.duration.is_some(),
        "exactly one of ops_per_thread / duration must be set"
    );
    let sampler = cfg.distribution.sampler(keyspace.prefilled());
    let stop = AtomicBool::new(false);
    let misses = AtomicU64::new(0);
    let sample_mask = (1u64 << cfg.latency_sample_shift) - 1;

    for p in pools {
        p.reset_stats();
    }
    let start = Instant::now();

    struct ThreadOut {
        ops: [u64; 5],
        hist: [LatencyHistogram; 5],
    }

    let outs: Vec<ThreadOut> = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(cfg.threads);
        for t in 0..cfg.threads {
            let index = &index;
            let stop = &stop;
            let misses = &misses;
            let stream = OpStream::new(cfg.mix, sampler, keyspace, cfg.scan_len)
                .with_negative_lookups(cfg.negative_lookups);
            let seed = cfg.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let budget = cfg.ops_per_thread;
            handles.push(s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut out = ThreadOut {
                    ops: [0; 5],
                    hist: std::array::from_fn(|_| LatencyHistogram::new()),
                };
                let mut scan_buf: Vec<(u64, u64)> = Vec::with_capacity(256);
                let mut local_misses = 0u64;
                let mut seq = 0u64;
                loop {
                    if let Some(b) = budget {
                        if seq >= b {
                            break;
                        }
                    } else if seq & 0xFF == 0 && stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let op = stream.next_op(&mut rng);
                    let kind = op.kind() as usize;
                    let sampled = seq & sample_mask == 0;
                    let t0 = if sampled { Some(Instant::now()) } else { None };
                    let hit = match op {
                        Op::Lookup(k) => index.lookup(k).is_some(),
                        Op::Insert(k, v) => index.insert(k, v),
                        Op::Update(k, v) => index.update(k, v),
                        Op::Remove(k) => index.remove(k),
                        Op::Scan(k, n) => index.scan(k, n, &mut scan_buf) > 0,
                    };
                    if let Some(t0) = t0 {
                        let dur = t0.elapsed().as_nanos() as u64;
                        out.hist[kind].record(dur);
                        obs::op_complete(kind as u8, dur);
                    }
                    obs::count_op();
                    out.ops[kind] += 1;
                    if !hit {
                        local_misses += 1;
                    }
                    seq += 1;
                }
                misses.fetch_add(local_misses, Ordering::Relaxed);
                out
            }));
        }
        if let Some(d) = cfg.duration {
            std::thread::sleep(d);
            stop.store(true, Ordering::Relaxed);
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let elapsed = start.elapsed();
    let snaps: Vec<PmStatsSnapshot> = pools.iter().map(|p| p.stats()).collect();
    let pm = PmStatsSnapshot::merged(snaps.iter());

    let mut ops = [0u64; 5];
    let mut latency: [LatencyHistogram; 5] = std::array::from_fn(|_| LatencyHistogram::new());
    for o in &outs {
        for k in OP_KINDS {
            ops[k as usize] += o.ops[k as usize];
            latency[k as usize].merge(&o.hist[k as usize]);
        }
    }
    RunResult {
        elapsed,
        ops,
        misses: misses.load(Ordering::Relaxed),
        latency,
        pm,
    }
}

/// Convenience: averaged throughput over `repeats` runs (the paper
/// averages three).
pub fn run_avg_mops(
    index: &dyn RangeIndex,
    keyspace: &KeySpace,
    pools: &[Arc<PmPool>],
    cfg: &BenchConfig,
    repeats: usize,
) -> f64 {
    let mut total = 0.0;
    for _ in 0..repeats {
        total += run(index, keyspace, pools, cfg).mops();
    }
    total / repeats as f64
}

/// Shared handle wrapper so factories can hand out `Arc<dyn RangeIndex>`.
pub type IndexHandle = Arc<dyn RangeIndex>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpKind;
    use index_api::testing::MapIndex;

    #[test]
    fn prefill_then_lookups_all_hit() {
        let idx = MapIndex::new();
        let ks = KeySpace::new(10_000);
        prefill(&idx, &ks, 4);
        let cfg = BenchConfig {
            threads: 4,
            records: 10_000,
            ops_per_thread: Some(5_000),
            mix: OpMix::pure(OpKind::Lookup),
            ..Default::default()
        };
        let r = run(&idx, &ks, &[], &cfg);
        assert_eq!(r.total_ops(), 20_000);
        assert_eq!(r.misses, 0, "every prefilled key must be found");
        assert!(r.ops[OpKind::Lookup as usize] == 20_000);
        assert!(!r.latency[OpKind::Lookup as usize].is_empty());
        assert!(r.mops() > 0.0);
    }

    #[test]
    fn insert_phase_has_no_collisions() {
        let idx = MapIndex::new();
        let ks = KeySpace::new(1_000);
        prefill(&idx, &ks, 2);
        let cfg = BenchConfig {
            threads: 4,
            records: 1_000,
            ops_per_thread: Some(2_000),
            mix: OpMix::pure(OpKind::Insert),
            ..Default::default()
        };
        let r = run(&idx, &ks, &[], &cfg);
        assert_eq!(r.misses, 0, "insert keys must be fresh");
        assert_eq!(idx.len(), 1_000 + 8_000);
    }

    #[test]
    fn duration_mode_stops() {
        let idx = MapIndex::new();
        let ks = KeySpace::new(100);
        prefill(&idx, &ks, 1);
        let cfg = BenchConfig {
            threads: 2,
            records: 100,
            ops_per_thread: None,
            duration: Some(Duration::from_millis(100)),
            mix: OpMix::pure(OpKind::Lookup),
            ..Default::default()
        };
        let t0 = Instant::now();
        let r = run(&idx, &ks, &[], &cfg);
        assert!(t0.elapsed() < Duration::from_secs(5));
        assert!(r.total_ops() > 0);
    }

    #[test]
    fn mixed_workload_counts_by_kind() {
        let idx = MapIndex::new();
        let ks = KeySpace::new(5_000);
        prefill(&idx, &ks, 2);
        let cfg = BenchConfig {
            threads: 2,
            records: 5_000,
            ops_per_thread: Some(10_000),
            mix: OpMix::read_insert(90),
            ..Default::default()
        };
        let r = run(&idx, &ks, &[], &cfg);
        let lookups = r.ops[OpKind::Lookup as usize];
        let inserts = r.ops[OpKind::Insert as usize];
        assert_eq!(lookups + inserts, 20_000);
        assert!(
            (0.85..=0.95).contains(&(lookups as f64 / 20_000.0)),
            "lookup share {lookups}"
        );
    }

    #[test]
    #[should_panic(expected = "exactly one")]
    fn config_must_choose_one_phase_length() {
        let idx = MapIndex::new();
        let ks = KeySpace::new(10);
        let cfg = BenchConfig {
            ops_per_thread: None,
            duration: None,
            ..Default::default()
        };
        run(&idx, &ks, &[], &cfg);
    }
}
