//! Exporters for the `obs` observability subsystem.
//!
//! * [`chrome_trace_json`] — the merged event tail as a Chrome-trace /
//!   Perfetto "traceEvents" document (op spans as `X` complete events,
//!   PM events as `i` instants with offset/length/media args).
//! * [`timeseries_csv`] — the sampler's [`obs::TimeSeries`] as CSV.
//! * [`site_table`] — per-site traffic attribution (events, media
//!   bytes, share of total media writes), ready for text/CSV/JSON
//!   rendering via [`Table`].
//!
//! All JSON goes through the shared [`JsonObj`]/[`JsonArr`] builders.

use crate::report::{fmt_bytes, JsonArr, JsonObj, Table};
use obs::{Event, EventKind, SiteAgg, TimeSeries};

fn event_json(e: &Event, site_names: &[String]) -> JsonObj {
    let site = site_names
        .get(e.site as usize)
        .map(|s| s.as_str())
        .unwrap_or("?");
    let ts_us = e.ts_ns as f64 / 1e3;
    let mut o = JsonObj::new();
    match e.kind {
        EventKind::OpSpan => {
            let name = obs::OP_LABELS.get(e.len as usize).copied().unwrap_or("op");
            o.str("name", name)
                .str("cat", "op")
                .str("ph", "X")
                .f64("ts", ts_us)
                .f64("dur", e.dur_ns as f64 / 1e3)
                .u64("pid", 0)
                .u64("tid", e.thread as u64);
            let mut args = JsonObj::new();
            args.str("site", site);
            o.obj("args", args);
        }
        kind => {
            o.str("name", kind.label())
                .str("cat", "pm")
                .str("ph", "i")
                .str("s", "t")
                .f64("ts", ts_us)
                .u64("pid", 0)
                .u64("tid", e.thread as u64);
            let mut args = JsonObj::new();
            args.str("site", site)
                .u64("off", e.off)
                .u64("len", e.len as u64)
                .u64("media_bytes", e.media_bytes as u64);
            o.obj("args", args);
        }
    }
    o
}

/// Render the event tail as a Chrome-trace JSON document (loadable in
/// `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)).
pub fn chrome_trace_json(events: &[Event], site_names: &[String]) -> String {
    let mut arr = JsonArr::new();
    for e in events {
        arr.push_obj(event_json(e, site_names));
    }
    let mut doc = JsonObj::new();
    doc.arr("traceEvents", arr).str("displayTimeUnit", "ns");
    doc.finish()
}

/// Render a sampled [`TimeSeries`] as CSV: one row per interval with
/// both raw deltas and the derived rates the figures plot.
pub fn timeseries_csv(ts: &TimeSeries) -> String {
    let mut t = Table::new(vec![
        "t_ms",
        "dt_ms",
        "ops",
        "mops",
        "media_read_bytes",
        "media_write_bytes",
        "read_gibps",
        "write_gibps",
        "write_amplification",
        "clwb",
        "ntstore",
        "fence",
        "fence_per_s",
    ]);
    for p in &ts.points {
        t.row(vec![
            p.t_ms.to_string(),
            p.dt_ms.to_string(),
            p.ops.to_string(),
            format!("{:.4}", p.mops()),
            p.media_read_bytes.to_string(),
            p.media_write_bytes.to_string(),
            format!("{:.4}", p.read_gibps()),
            format!("{:.4}", p.write_gibps()),
            format!("{:.3}", p.write_amplification()),
            p.clwb.to_string(),
            p.ntstore.to_string(),
            p.fence.to_string(),
            format!("{:.0}", p.fence_rate()),
        ]);
    }
    t.to_csv()
}

/// Per-site attribution table. `share%` is each site's fraction of all
/// media write bytes in `sites`; rows arrive media-write-heavy first
/// (the order [`obs::site_table`] produces). Zero-traffic sites are
/// dropped.
pub fn site_table(sites: &[SiteAgg]) -> Table {
    let total_wr: u64 = sites.iter().map(|s| s.media_write_bytes).sum();
    let mut t = Table::new(vec![
        "site",
        "events",
        "clwb",
        "redundant",
        "ntstore",
        "fence",
        "media_read",
        "media_write",
        "share%",
    ]);
    for s in sites {
        if s.events == 0 {
            continue;
        }
        let share = if total_wr == 0 {
            0.0
        } else {
            100.0 * s.media_write_bytes as f64 / total_wr as f64
        };
        t.row(vec![
            s.name.clone(),
            s.events.to_string(),
            s.clwb.to_string(),
            s.clwb_redundant.to_string(),
            s.ntstore.to_string(),
            s.fence.to_string(),
            fmt_bytes(s.media_read_bytes),
            fmt_bytes(s.media_write_bytes),
            format!("{share:.1}"),
        ]);
    }
    t
}

/// The site table as JSON rows with raw byte counts (for result files).
pub fn site_table_json(sites: &[SiteAgg]) -> String {
    let total_wr: u64 = sites.iter().map(|s| s.media_write_bytes).sum();
    let mut arr = JsonArr::new();
    for s in sites {
        if s.events == 0 {
            continue;
        }
        let mut o = JsonObj::new();
        o.str("site", &s.name)
            .u64("events", s.events)
            .u64("read_bytes", s.read_bytes)
            .u64("write_bytes", s.write_bytes)
            .u64("media_read_bytes", s.media_read_bytes)
            .u64("media_write_bytes", s.media_write_bytes)
            .u64("clwb", s.clwb)
            .u64("clwb_redundant", s.clwb_redundant)
            .u64("ntstore", s.ntstore)
            .u64("fence", s.fence)
            .f64(
                "media_write_share",
                if total_wr == 0 {
                    0.0
                } else {
                    s.media_write_bytes as f64 / total_wr as f64
                },
            );
        arr.push_obj(o);
    }
    arr.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind) -> Event {
        Event {
            ts_ns: 1_500,
            thread: 0,
            site: 1,
            kind,
            off: 4096,
            len: 64,
            media_bytes: 256,
            dur_ns: 0,
        }
    }

    #[test]
    fn chrome_trace_shape() {
        let names = vec!["other".to_string(), "leaf_split".to_string()];
        let span = Event {
            kind: EventKind::OpSpan,
            len: 1, // insert
            dur_ns: 2_000,
            ..ev(EventKind::OpSpan)
        };
        let json = chrome_trace_json(&[ev(EventKind::Clwb), span], &names);
        assert!(json.starts_with(r#"{"traceEvents":["#), "{json}");
        assert!(json.contains(r#""name":"clwb""#));
        assert!(json.contains(r#""ph":"i""#));
        assert!(json.contains(r#""site":"leaf_split""#));
        assert!(json.contains(r#""name":"insert""#));
        assert!(json.contains(r#""ph":"X""#));
        assert!(json.contains(r#""dur":2"#));
        assert!(json.ends_with(r#""displayTimeUnit":"ns"}"#));
    }

    #[test]
    fn timeseries_csv_has_header_and_rows() {
        let ts = TimeSeries {
            interval_ms: 100,
            points: vec![obs::SamplePoint {
                t_ms: 100,
                dt_ms: 100,
                ops: 50_000,
                media_write_bytes: 1 << 20,
                clwb: 10,
                fence: 10,
                ..Default::default()
            }],
        };
        let csv = timeseries_csv(&ts);
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("t_ms,dt_ms,ops,mops"));
        let row = lines.next().unwrap();
        assert!(row.starts_with("100,100,50000,0.5000"), "{row}");
    }

    #[test]
    fn site_table_shares_sum_to_100() {
        let sites = vec![
            SiteAgg {
                name: "leaf_split".into(),
                events: 10,
                media_write_bytes: 3 << 10,
                ..Default::default()
            },
            SiteAgg {
                name: "other".into(),
                events: 5,
                media_write_bytes: 1 << 10,
                ..Default::default()
            },
            SiteAgg {
                name: "silent".into(),
                ..Default::default()
            },
        ];
        let t = site_table(&sites);
        let text = t.to_text();
        assert!(text.contains("leaf_split"));
        assert!(text.contains("75.0"));
        assert!(text.contains("25.0"));
        assert!(!text.contains("silent"));
        let json = site_table_json(&sites);
        assert!(json.contains(r#""media_write_share":0.75"#));
        assert!(!json.contains("silent"));
    }
}
