//! Operation mixes and per-thread operation streams.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::dist::Sampler;
use crate::keys::KeySpace;

/// Operation types, in the order metrics are reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Point lookup.
    Lookup = 0,
    /// Insert of a fresh key.
    Insert = 1,
    /// Value update of an existing key.
    Update = 2,
    /// Delete.
    Remove = 3,
    /// Range scan.
    Scan = 4,
}

/// All op kinds, for iteration/reporting.
pub const OP_KINDS: [OpKind; 5] = [
    OpKind::Lookup,
    OpKind::Insert,
    OpKind::Update,
    OpKind::Remove,
    OpKind::Scan,
];

impl OpKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Lookup => "lookup",
            OpKind::Insert => "insert",
            OpKind::Update => "update",
            OpKind::Remove => "remove",
            OpKind::Scan => "scan",
        }
    }
}

/// An operation mix as percentages summing to 100.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Percent lookups.
    pub lookup: u8,
    /// Percent inserts.
    pub insert: u8,
    /// Percent updates.
    pub update: u8,
    /// Percent removes.
    pub remove: u8,
    /// Percent scans.
    pub scan: u8,
}

impl OpMix {
    /// A single-operation workload.
    pub fn pure(kind: OpKind) -> OpMix {
        let mut m = OpMix {
            lookup: 0,
            insert: 0,
            update: 0,
            remove: 0,
            scan: 0,
        };
        match kind {
            OpKind::Lookup => m.lookup = 100,
            OpKind::Insert => m.insert = 100,
            OpKind::Update => m.update = 100,
            OpKind::Remove => m.remove = 100,
            OpKind::Scan => m.scan = 100,
        }
        m
    }

    /// Lookup/insert mix (the paper's mixed workloads: 90/10, 50/50,
    /// 10/90).
    pub fn read_insert(lookup: u8) -> OpMix {
        OpMix {
            lookup,
            insert: 100 - lookup,
            update: 0,
            remove: 0,
            scan: 0,
        }
    }

    /// Validate that percentages sum to 100.
    pub fn validate(&self) {
        let sum = self.lookup as u32
            + self.insert as u32
            + self.update as u32
            + self.remove as u32
            + self.scan as u32;
        assert_eq!(sum, 100, "op mix must sum to 100, got {sum}");
    }

    /// Draw the next op kind.
    #[inline]
    pub fn draw(&self, rng: &mut SmallRng) -> OpKind {
        let r = rng.gen_range(0..100u32);
        let mut acc = self.lookup as u32;
        if r < acc {
            return OpKind::Lookup;
        }
        acc += self.insert as u32;
        if r < acc {
            return OpKind::Insert;
        }
        acc += self.update as u32;
        if r < acc {
            return OpKind::Update;
        }
        acc += self.remove as u32;
        if r < acc {
            return OpKind::Remove;
        }
        OpKind::Scan
    }
}

/// A fully resolved operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Point lookup of a key.
    Lookup(u64),
    /// Insert `key → value`.
    Insert(u64, u64),
    /// Update `key → value`.
    Update(u64, u64),
    /// Remove a key.
    Remove(u64),
    /// Scan `count` records from a start key.
    Scan(u64, usize),
}

impl Op {
    /// The kind of this op.
    pub fn kind(&self) -> OpKind {
        match self {
            Op::Lookup(_) => OpKind::Lookup,
            Op::Insert(..) => OpKind::Insert,
            Op::Update(..) => OpKind::Update,
            Op::Remove(_) => OpKind::Remove,
            Op::Scan(..) => OpKind::Scan,
        }
    }
}

/// Per-thread operation generator.
pub struct OpStream<'a> {
    mix: OpMix,
    sampler: Sampler,
    keyspace: &'a KeySpace,
    scan_len: usize,
    negative_lookups: bool,
}

impl<'a> OpStream<'a> {
    /// New stream drawing existing-key indexes from `sampler`.
    pub fn new(mix: OpMix, sampler: Sampler, keyspace: &'a KeySpace, scan_len: usize) -> Self {
        mix.validate();
        OpStream {
            mix,
            sampler,
            keyspace,
            scan_len,
            negative_lookups: false,
        }
    }

    /// Make lookups target keys guaranteed to be absent (the
    /// fingerprint-effectiveness experiment).
    pub fn with_negative_lookups(mut self, negative: bool) -> Self {
        self.negative_lookups = negative;
        self
    }

    /// Generate the next operation.
    #[inline]
    pub fn next_op(&self, rng: &mut SmallRng) -> Op {
        match self.mix.draw(rng) {
            OpKind::Lookup => {
                let i = self.sampler.sample(rng);
                let k = if self.negative_lookups {
                    self.keyspace.negative_key(i)
                } else {
                    self.keyspace.key(i)
                };
                Op::Lookup(k)
            }
            OpKind::Insert => {
                let k = self.keyspace.next_insert_key();
                Op::Insert(k, self.keyspace.value_for(k))
            }
            OpKind::Update => {
                let k = self.keyspace.key(self.sampler.sample(rng));
                Op::Update(k, self.keyspace.value_for(k) ^ rng.gen::<u64>() | 1)
            }
            OpKind::Remove => Op::Remove(self.keyspace.key(self.sampler.sample(rng))),
            OpKind::Scan => Op::Scan(self.keyspace.key(self.sampler.sample(rng)), self.scan_len),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;
    use rand::SeedableRng;

    #[test]
    fn pure_mixes_draw_only_their_kind() {
        let mut rng = SmallRng::seed_from_u64(5);
        for kind in OP_KINDS {
            let m = OpMix::pure(kind);
            m.validate();
            for _ in 0..100 {
                assert_eq!(m.draw(&mut rng), kind);
            }
        }
    }

    #[test]
    fn mixed_ratios_are_respected() {
        let m = OpMix::read_insert(90);
        m.validate();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut lookups = 0;
        for _ in 0..10_000 {
            if m.draw(&mut rng) == OpKind::Lookup {
                lookups += 1;
            }
        }
        assert!((8_700..=9_300).contains(&lookups), "lookups={lookups}");
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn invalid_mix_rejected() {
        OpMix {
            lookup: 50,
            insert: 10,
            update: 0,
            remove: 0,
            scan: 0,
        }
        .validate();
    }

    #[test]
    fn stream_produces_resolved_ops() {
        let ks = KeySpace::new(1_000);
        let s = OpStream::new(
            OpMix {
                lookup: 20,
                insert: 20,
                update: 20,
                remove: 20,
                scan: 20,
            },
            Distribution::Uniform.sampler(1_000),
            &ks,
            100,
        );
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let op = s.next_op(&mut rng);
            seen[op.kind() as usize] = true;
            if let Op::Scan(_, n) = op {
                assert_eq!(n, 100);
            }
        }
        assert!(seen.iter().all(|&s| s), "all op kinds generated");
    }
}
