//! # crashpoint — systematic crash-point exploration for PM indexes
//!
//! The crash tests in the workspace pull the plug *between* operations;
//! the interleavings that actually break persistent-memory indexes are
//! the ones *inside* an operation, between one persistence event and
//! the next (cf. RECIPE, SOSP 2019, and pmemcheck). This crate drives
//! [`pmem`]'s crash-point injection over every such window:
//!
//! 1. **Probe**: run a deterministic mixed workload once, counting the
//!    persistence events (`clwb` / `ntstore` / `sfence`) it generates.
//! 2. **Sweep**: for every boundary `1..=N` (optionally strided), replay
//!    the identical workload on a fresh pool armed to lose power at that
//!    exact event. The in-flight operation unwinds via a
//!    [`pmem::CrashPointHit`] panic with the persisted image frozen.
//! 3. **Recover & verify**: discard the volatile image, run
//!    [`PmAllocator::recover`] plus the index's recovery procedure, and
//!    check the oracle invariant — *exactly the acknowledged operations
//!    survive; the unacknowledged in-flight operation is atomic (fully
//!    applied or fully absent)* — plus index well-formedness (sorted,
//!    duplicate-free scans) and post-recovery usability.
//!
//! ## Residual-image models
//!
//! The frozen image (only explicitly flushed lines survive) is one
//! legal outcome of a power cut; on real hardware, any subset of the
//! dirty-but-unflushed cache lines may also have reached media. Each
//! boundary can therefore be verified under several residual images
//! without replaying the workload — the harness snapshots the persisted
//! image and the dirty-line candidates at the trip instant, then per
//! sample restores the snapshot and applies a [`ResidualPolicy`]-chosen
//! subset (see [`ResidualConfig`]):
//!
//! * **Frozen** — the pessimistic baseline above, always included.
//! * **Sampled** — seeded random subsets, each dirty line persisting
//!   independently with probability `p`; any failure replays from its
//!   printed seed.
//! * **Exhaustive** — all `2^j` subsets of the `j` most-recently-written
//!   lines (candidates are recency-ordered), the complete torn-write
//!   space of the in-flight operation's write frontier.
//!
//! With `poison` set, one line that *failed* to persist comes back
//! unreadable (an emulated media error): recovery must detect it via
//! the fallible `try_recover` paths and report a [`MediaError`] —
//! returning garbage, or letting the raw [`PoisonedRead`] machine-check
//! escape, is a failure.
//!
//! The [`mt`] module arms the same injection while 2–8 threads hammer
//! one shared index (halt-on-crash cuts the survivors down), then
//! checks a relaxed oracle: acknowledged operations survive, each
//! thread's in-flight operation is atomic, no torn values.
//!
//! A durability audit rides along: each crash snapshots the number of
//! written-but-unflushed words/lines and the cumulative redundant-flush
//! count, so acknowledged-but-unflushed state is caught even when it
//! happens not to change the recovered image.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Once};

use bztree::{BzTree, BzTreeConfig};
use fptree::{FpTree, FpTreeConfig};
use index_api::RangeIndex;
use pmalloc::{AllocMode, PmAllocator};
use pmem::{
    CrashPointHit, CrashReport, MediaError, PersistEventKind, PmConfig, PmPool, PoisonedRead,
    ResidualPolicy,
};

use learned::{LearnedConfig, LearnedIndex};
use nvtree::{NvTree, NvTreeConfig};
use wbtree::{WbTree, WbTreeConfig};

pub mod migration;
pub mod mt;
pub mod sharded;

/// The five persistent indexes the explorer knows how to build.
pub const PM_KINDS: [&str; 5] = ["fptree", "nvtree", "wbtree", "bztree", "learned"];

/// Small learned-index shape for crash exploration: tiny ε and delta
/// capacity so 1k-op sweeps cross many merge/retrain/publish windows,
/// and small chunks so the model spans multiple chunks + directories.
fn small_learned_cfg() -> LearnedConfig {
    LearnedConfig {
        epsilon: 4,
        delta_min_cap: 24,
        chunk_entries: 64,
    }
}

/// Build a fresh index with deliberately small nodes so short workloads
/// exercise splits and other structure-modifying operations (the same
/// configs the integration tests use).
pub fn build_index(kind: &str, alloc: Arc<PmAllocator>) -> Arc<dyn RangeIndex> {
    match kind {
        "fptree" => FpTree::create(
            alloc,
            FpTreeConfig {
                leaf_entries: 16,
                inner_fanout: 8,
                ..FpTreeConfig::default()
            },
        ),
        "nvtree" => NvTree::create(
            alloc,
            NvTreeConfig {
                leaf_entries: 16,
                pln_entries: 16,
            },
        ),
        "wbtree" => WbTree::create(
            alloc,
            WbTreeConfig {
                node_entries: 8,
                use_slot_array: true,
            },
        ),
        "bztree" => BzTree::create(
            alloc,
            BzTreeConfig {
                node_entries: 16,
                split_threshold_pct: 70,
            },
        ),
        "learned" => LearnedIndex::create(alloc, small_learned_cfg()),
        other => panic!("unknown PM index kind: {other}"),
    }
}

/// Recovery entry point matching [`build_index`]. Panics on a media
/// error; see [`try_recover_index`].
pub fn recover_index(kind: &str, alloc: Arc<PmAllocator>) -> Arc<dyn RangeIndex> {
    try_recover_index(kind, alloc).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible recovery entry point matching [`build_index`]: a poisoned
/// line on the recovery path comes back as a reported [`MediaError`]
/// instead of garbage or a raw [`PoisonedRead`] panic.
pub fn try_recover_index(
    kind: &str,
    alloc: Arc<PmAllocator>,
) -> Result<Arc<dyn RangeIndex>, MediaError> {
    Ok(match kind {
        "fptree" => FpTree::try_recover(
            alloc,
            FpTreeConfig {
                leaf_entries: 16,
                inner_fanout: 8,
                ..FpTreeConfig::default()
            },
        )? as Arc<dyn RangeIndex>,
        "nvtree" => NvTree::try_recover(
            alloc,
            NvTreeConfig {
                leaf_entries: 16,
                pln_entries: 16,
            },
        )?,
        "wbtree" => WbTree::try_recover(
            alloc,
            WbTreeConfig {
                node_entries: 8,
                use_slot_array: true,
            },
        )?,
        "bztree" => BzTree::try_recover(
            alloc,
            BzTreeConfig {
                node_entries: 16,
                split_threshold_pct: 70,
            },
        )?,
        "learned" => LearnedIndex::try_recover(alloc, small_learned_cfg())?,
        other => panic!("unknown PM index kind: {other}"),
    })
}

/// Recover the full stack (allocator + index) from the pool's persisted
/// image, reporting the first media error hit on either layer.
pub fn try_recover_stack(kind: &str, pool: Arc<PmPool>) -> Result<Arc<dyn RangeIndex>, MediaError> {
    let alloc = PmAllocator::try_recover(pool, AllocMode::General)?;
    try_recover_index(kind, alloc)
}

// ---------------------------------------------------------------------------
// Deterministic workload
// ---------------------------------------------------------------------------

/// One generated operation (the value is fixed by the op index, so the
/// oracle can predict every acknowledged effect).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadOp {
    Insert(u64, u64),
    Update(u64, u64),
    Remove(u64),
}

impl WorkloadOp {
    /// The key the operation targets.
    pub fn key(&self) -> u64 {
        match *self {
            WorkloadOp::Insert(k, _) | WorkloadOp::Update(k, _) | WorkloadOp::Remove(k) => k,
        }
    }

    /// Short label for reports.
    pub fn kind_str(&self) -> &'static str {
        match self {
            WorkloadOp::Insert(..) => "insert",
            WorkloadOp::Update(..) => "update",
            WorkloadOp::Remove(..) => "remove",
        }
    }
}

/// The deterministic mixed workload (same LCG and op mix as the
/// `crash_recovery` integration tests: 60% insert / 20% update / 20%
/// remove over a narrow key range to force collisions and splits).
pub fn workload(seed: u64, n_ops: u64, key_range: u64) -> Vec<WorkloadOp> {
    let mut ops = Vec::with_capacity(n_ops as usize);
    let mut x = seed | 1;
    for i in 0..n_ops {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let k = (x >> 16) % key_range;
        ops.push(match x % 10 {
            0..=5 => WorkloadOp::Insert(k, i),
            6..=7 => WorkloadOp::Update(k, i + 1),
            _ => WorkloadOp::Remove(k),
        });
    }
    ops
}

/// Apply one op, returning whether it was acknowledged, and fold the
/// acknowledged effect into the oracle model.
pub(crate) fn apply_op(
    idx: &dyn RangeIndex,
    model: &mut BTreeMap<u64, u64>,
    op: WorkloadOp,
) -> bool {
    match op {
        WorkloadOp::Insert(k, v) => {
            let acked = idx.insert(k, v);
            if acked {
                model.insert(k, v);
            }
            acked
        }
        WorkloadOp::Update(k, v) => {
            let acked = idx.update(k, v);
            if acked {
                model.insert(k, v);
            }
            acked
        }
        WorkloadOp::Remove(k) => {
            let acked = idx.remove(k);
            if acked {
                model.remove(&k);
            }
            acked
        }
    }
}

// ---------------------------------------------------------------------------
// Quiet panic hook
// ---------------------------------------------------------------------------

/// Install a process-wide panic hook that silences the intentional
/// [`CrashPointHit`] unwinds (an exploration fires thousands of them)
/// while delegating every real panic to the previous hook. Idempotent.
pub fn install_quiet_crash_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashPointHit>().is_none() {
                prev(info);
            }
        }));
    });
}

// ---------------------------------------------------------------------------
// Exploration
// ---------------------------------------------------------------------------

/// How the post-crash image is constructed at each explored boundary.
///
/// `Frozen` is the PR-1 model: only flushed lines survive. `Sampled`
/// draws `samples` independent residual images per boundary, each
/// persisting every dirty-but-unflushed line with probability
/// `p_per_256 / 256` (torn multi-line structures). `Exhaustive`
/// enumerates *all* `2^j` subsets of the `j = min(k, max_lines)`
/// most-recently-written dirty lines (the in-flight operation's write
/// frontier) — the complete torn-write space when `k <= max_lines` —
/// plus seeded samples over the full set when older lines remain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResidualConfig {
    /// Only flushed lines survive (the frozen persisted image).
    Frozen,
    /// `samples` seeded random subsets per boundary (plus the frozen
    /// baseline), each line kept with probability `p_per_256 / 256`.
    Sampled { samples: u32, p_per_256: u32 },
    /// All `2^j` subsets of the `j = min(k, max_lines)` most recent
    /// dirty lines; when `k > max_lines`, also `fallback_samples`
    /// seeded 50% samples over the full candidate set.
    Exhaustive {
        max_lines: u32,
        fallback_samples: u32,
    },
}

/// Derive the per-sample seed from the sweep seed, boundary and sample
/// index (splitmix64 finalizer — decorrelates consecutive inputs).
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The residual policies to run for one boundary with `k` dirty-line
/// candidates. Returns the policy list and whether it is exhaustive.
pub(crate) fn sample_policies(
    cfg: ResidualConfig,
    sweep_seed: u64,
    boundary: u64,
    k: usize,
) -> (Vec<ResidualPolicy>, bool) {
    let seeded = |n: u32, p: u32| -> Vec<ResidualPolicy> {
        let mut v = vec![ResidualPolicy::Frozen];
        v.extend((0..n).map(|s| ResidualPolicy::Sampled {
            seed: mix64(sweep_seed ^ mix64(boundary) ^ s as u64),
            p_per_256: p,
        }));
        v
    };
    match cfg {
        ResidualConfig::Frozen => (vec![ResidualPolicy::Frozen], false),
        ResidualConfig::Sampled { samples, p_per_256 } => (seeded(samples, p_per_256), false),
        ResidualConfig::Exhaustive {
            max_lines,
            fallback_samples,
        } => {
            // Candidates are recency-ordered (pmem sorts them most
            // recently written first), so enumerating masks over the
            // first j lines covers every residual image of the write
            // frontier. With k <= j that is the complete torn-write
            // space; beyond that, seeded samples stress the older
            // (long-unflushed) lines too.
            let j = k.min(max_lines.min(16) as usize);
            let mut v: Vec<ResidualPolicy> = (0..(1u64 << j))
                .map(|mask| ResidualPolicy::Subset { mask })
                .collect();
            if k > j {
                v.extend(seeded(fallback_samples, 128).into_iter().skip(1));
            }
            (v, true)
        }
    }
}

/// Parameters of one exploration sweep.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Index kind (see [`PM_KINDS`]).
    pub kind: String,
    /// Number of workload operations.
    pub ops: u64,
    /// Key range (small ranges force collisions and splits).
    pub key_range: u64,
    /// Workload seed.
    pub seed: u64,
    /// Pool size in MiB.
    pub pool_mib: usize,
    /// Eviction-chaos seed overlay (None = off).
    pub chaos_seed: Option<u64>,
    /// Explore every `stride`-th boundary (1 = every boundary).
    pub stride: u64,
    /// Cap on explored boundaries (None = all).
    pub max_boundaries: Option<u64>,
    /// Post-crash image model (see [`ResidualConfig`]).
    pub residual: ResidualConfig,
    /// Additionally poison one lost line per sampled image, and require
    /// recovery to either succeed without touching it or report a
    /// [`MediaError`] — never return garbage.
    pub poison: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            kind: "wbtree".to_string(),
            ops: 1000,
            key_range: 512,
            seed: 1,
            pool_mib: 32,
            chaos_seed: None,
            stride: 1,
            max_boundaries: None,
            residual: ResidualConfig::Frozen,
            poison: false,
        }
    }
}

/// Persistence-event footprint of one operation type, from the probe.
#[derive(Debug, Default, Clone, Copy)]
pub struct OpEventStats {
    /// Operations of this type in the workload.
    pub count: u64,
    /// Persistence events they generated (crash windows they expose).
    pub events: u64,
}

/// A boundary+sample whose recovered state violated the oracle
/// invariant. `policy` and `poisoned_off` pin down the exact residual
/// image, so `--seed` + boundary + policy reproduce the failure.
#[derive(Debug, Clone)]
pub struct BoundaryFailure {
    /// The armed boundary (1-based persistence-event index after setup).
    pub boundary: u64,
    /// The residual policy of the failing sample.
    pub policy: ResidualPolicy,
    /// Line poisoned in the failing sample, if any.
    pub poisoned_off: Option<u64>,
    /// Crash audit at the trip, if the crash fired.
    pub report: Option<CrashReport>,
    /// Human-readable description of the violation.
    pub detail: String,
    /// The `obs` flight-recorder tail captured at the trip instant (the
    /// last PM events before power was cut), when tracing was enabled.
    pub flight_tail: Option<String>,
}

/// Outcome of a full sweep over one index configuration.
#[derive(Debug, Clone)]
pub struct ExploreSummary {
    /// Index kind explored.
    pub kind: String,
    /// Whether eviction chaos was overlaid.
    pub chaos: bool,
    /// Total persistence events of the probe run (the boundary space).
    pub total_events: u64,
    /// Boundaries actually explored (after stride / cap).
    pub boundaries_tested: u64,
    /// Boundaries where the injected crash fired mid-run.
    pub crashes_fired: u64,
    /// Boundary runs that completed without tripping (event-sequence
    /// divergence; still verified for exact equality).
    pub completed_runs: u64,
    /// Crashes per trigger kind \[clwb, ntstore, sfence\].
    pub trigger_histogram: [u64; 3],
    /// Largest dirty-line count observed at any crash point.
    pub max_dirty_lines: u64,
    /// Largest dirty-word count observed at any crash point.
    pub max_dirty_words: u64,
    /// Redundant flushes over the whole probe run.
    pub probe_redundant_clwb: u64,
    /// Probe-run event footprint per op type.
    pub per_op: BTreeMap<&'static str, OpEventStats>,
    /// Residual samples recovered and verified (≥ boundaries when
    /// sampling is on).
    pub samples_run: u64,
    /// Boundaries that received exhaustive subset enumeration of the
    /// write frontier (all `2^j` masks over the most recent lines).
    pub exhaustive_boundaries: u64,
    /// Largest residual candidate set (dirty lines) at any crash.
    pub max_residual_candidates: u64,
    /// Samples that had a line poisoned.
    pub poison_injected: u64,
    /// Poisoned samples where recovery reported the media error (the
    /// rest recovered without ever touching the poisoned line).
    pub poison_reported: u64,
    /// Oracle violations (empty = the index survived every window).
    pub failures: Vec<BoundaryFailure>,
    /// Flight-recorder tail of the first fired crash (tracing only):
    /// demonstrates what the recorder would pin down on a violation.
    pub first_crash_flight_tail: Option<String>,
}

impl ExploreSummary {
    /// True when every explored boundary recovered correctly.
    pub fn is_green(&self) -> bool {
        self.failures.is_empty()
    }
}

struct Env {
    pool: Arc<PmPool>,
    idx: Arc<dyn RangeIndex>,
}

fn fresh_env(opts: &ExploreOptions) -> Env {
    let cfg = match opts.chaos_seed {
        Some(s) => PmConfig::real().with_eviction_chaos(s),
        None => PmConfig::real(),
    };
    let pool = Arc::new(PmPool::new(opts.pool_mib << 20, cfg));
    let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
    let idx = build_index(&opts.kind, alloc);
    Env { pool, idx }
}

/// What the in-flight (unacknowledged) operation is allowed to have
/// done to its key: nothing (`pre`) or everything (`post`).
#[derive(Debug, Clone, Copy)]
pub struct InflightAllowance {
    /// The key the cut operation targeted.
    pub key: u64,
    /// State of the key before the operation started.
    pub pre: Option<u64>,
    /// State of the key had the operation completed.
    pub post: Option<u64>,
}

impl InflightAllowance {
    /// Compute the allowance for `op` against the pre-crash model.
    pub fn for_op(op: WorkloadOp, model: &BTreeMap<u64, u64>) -> Self {
        let key = op.key();
        let pre = model.get(&key).copied();
        let post = match op {
            // Insert acks only if absent; on an occupied key it is a
            // no-op, so "fully applied" equals the pre-state.
            WorkloadOp::Insert(_, v) => Some(pre.unwrap_or(v)),
            WorkloadOp::Update(_, v) => pre.map(|_| v),
            WorkloadOp::Remove(_) => None,
        };
        InflightAllowance { key, pre, post }
    }

    /// Whether `observed` is an atomic outcome of the cut operation.
    pub fn allows(&self, observed: Option<u64>) -> bool {
        observed == self.pre || observed == self.post
    }
}

/// Verify the recovered index against the oracle model.
///
/// `inflight` holds the operations that were cut mid-flight — one per
/// workload thread at most (empty when the run completed). Each
/// in-flight key may be in either its pre- or post-state, every other
/// key must match the model exactly, and the index must remain
/// well-formed and writable.
pub fn verify_recovered(
    idx: &dyn RangeIndex,
    model: &BTreeMap<u64, u64>,
    inflight: &[InflightAllowance],
) -> Result<(), String> {
    let allowance = |k: u64| inflight.iter().find(|a| a.key == k);
    // Point lookups: every acknowledged record must be present.
    for (&k, &v) in model {
        if allowance(k).is_some() {
            continue;
        }
        let got = idx.lookup(k);
        if got != Some(v) {
            return Err(format!(
                "acknowledged key {k} lost or corrupt: expected {v:?}, found {got:?}"
            ));
        }
    }
    for a in inflight {
        let got = idx.lookup(a.key);
        if !a.allows(got) {
            return Err(format!(
                "in-flight key {} not atomic: found {:?}, allowed {:?} (pre) or {:?} (post)",
                a.key, got, a.pre, a.post
            ));
        }
    }

    // Full scan: well-formed (sorted, unique) and free of ghosts.
    let mut out = Vec::new();
    idx.scan(0, usize::MAX >> 1, &mut out);
    if !out.windows(2).all(|w| w[0].0 < w[1].0) {
        return Err("scan output not strictly sorted".to_string());
    }
    let observed: BTreeMap<u64, u64> = out.into_iter().collect();
    for (&k, &v) in &observed {
        match allowance(k) {
            Some(a) => {
                if !a.allows(Some(v)) {
                    return Err(format!(
                        "scan ghost at in-flight key {k}: value {v} not an allowed state"
                    ));
                }
            }
            None => {
                if model.get(&k) != Some(&v) {
                    return Err(format!(
                        "scan ghost: key {k} -> {v} not in acknowledged state ({:?})",
                        model.get(&k)
                    ));
                }
            }
        }
    }
    for &k in model.keys() {
        if allowance(k).is_some() {
            continue;
        }
        if !observed.contains_key(&k) {
            return Err(format!("scan lost acknowledged key {k}"));
        }
    }

    // The recovered tree must remain usable.
    let probe_key = u64::MAX - 3;
    if !idx.insert(probe_key, 7) {
        return Err("recovered index rejected a fresh insert".to_string());
    }
    if idx.lookup(probe_key) != Some(7) {
        return Err("recovered index lost a fresh insert".to_string());
    }
    if !idx.remove(probe_key) {
        return Err("recovered index failed to remove a fresh insert".to_string());
    }
    Ok(())
}

/// Probe run: execute the whole workload once, uninjected, and return
/// the total persistence-event count plus per-op-type event stats.
fn probe(
    opts: &ExploreOptions,
    ops: &[WorkloadOp],
) -> (u64, u64, BTreeMap<&'static str, OpEventStats>) {
    let env = fresh_env(opts);
    let base = env.pool.persist_event_count();
    let mut model = BTreeMap::new();
    let mut per_op: BTreeMap<&'static str, OpEventStats> = BTreeMap::new();
    let mut last = base;
    for &op in ops {
        apply_op(&*env.idx, &mut model, op);
        let now = env.pool.persist_event_count();
        let entry = per_op.entry(op.kind_str()).or_default();
        entry.count += 1;
        entry.events += now - last;
        last = now;
    }
    let redundant = env.pool.stats().clwb_redundant;
    (last - base, redundant, per_op)
}

/// Run the workload against a fresh armed environment. Returns the
/// oracle model of acknowledged ops, the in-flight allowance if the
/// crash fired, and the environment for recovery.
fn armed_run(
    opts: &ExploreOptions,
    ops: &[WorkloadOp],
    boundary: u64,
) -> (Env, BTreeMap<u64, u64>, Option<InflightAllowance>) {
    let env = fresh_env(opts);
    env.pool.arm_crash_after(boundary);
    let mut model = BTreeMap::new();
    let mut inflight = None;
    for &op in ops {
        let allowance = InflightAllowance::for_op(op, &model);
        let result = catch_unwind(AssertUnwindSafe(|| {
            apply_op(&*env.idx, &mut model, op);
        }));
        if let Err(payload) = result {
            if payload.downcast_ref::<CrashPointHit>().is_none() {
                resume_unwind(payload);
            }
            inflight = Some(allowance);
            break;
        }
    }
    if inflight.is_none() {
        env.pool.disarm_crash();
    }
    (env, model, inflight)
}

/// Everything one explored boundary produced, across all its samples.
#[derive(Debug, Default)]
pub(crate) struct BoundaryOutcome {
    pub report: Option<CrashReport>,
    pub flight_tail: Option<String>,
    pub candidates: u64,
    pub samples_run: u64,
    pub exhaustive: bool,
    pub poison_injected: u64,
    pub poison_reported: u64,
    pub failures: Vec<BoundaryFailure>,
}

/// Recover one residual sample and verify it, classifying every way it
/// can end: oracle pass/violation, reported media error, a raw
/// [`PoisonedRead`] escaping (garbage surfaced — always a failure), or
/// a recovery panic under the torn image (also a failure: a correct PM
/// index must tolerate any subset of unflushed lines persisting).
///
/// Shared by the single-threaded sweep and the multi-threaded runner.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_sample(
    kind: &str,
    pool: &Arc<PmPool>,
    model: &BTreeMap<u64, u64>,
    inflight: &[InflightAllowance],
    poisoned_off: Option<u64>,
    out: &mut BoundaryOutcome,
    boundary: u64,
    policy: ResidualPolicy,
    report: Option<CrashReport>,
    flight_tail: Option<&str>,
) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        try_recover_stack(kind, pool.clone()).map(|idx| verify_recovered(&*idx, model, inflight))
    }));
    out.samples_run += 1;
    let detail = match outcome {
        Ok(Ok(Ok(()))) => return,
        Ok(Ok(Err(detail))) => detail,
        Ok(Err(media)) => {
            if poisoned_off.is_some() {
                // Graceful degradation: the poisoned line was on the
                // recovery path and got reported, not read.
                out.poison_reported += 1;
                return;
            }
            format!("media error reported with no poison injected: {media}")
        }
        Err(payload) => {
            if let Some(p) = payload.downcast_ref::<PoisonedRead>() {
                format!(
                    "poisoned line {:#x} surfaced as a raw read at {:#x} instead of a \
                     reported media error",
                    poisoned_off.unwrap_or(0),
                    p.off
                )
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                format!("panic during recovery/verify: {s}")
            } else if let Some(s) = payload.downcast_ref::<String>() {
                format!("panic during recovery/verify: {s}")
            } else {
                "panic during recovery/verify (non-string payload)".to_string()
            }
        }
    };
    out.failures.push(BoundaryFailure {
        boundary,
        policy,
        poisoned_off,
        report,
        detail,
        flight_tail: flight_tail.map(str::to_string),
    });
}

/// Apply `policy` to the snapshotted crash image and optionally poison
/// one lost line; returns the poisoned offset. Shared image-building
/// step for every sample of a boundary.
pub(crate) fn build_sample_image(
    pool: &Arc<PmPool>,
    persisted: &[u64],
    candidates: &[pmem::ResidualLine],
    policy: ResidualPolicy,
    poison: bool,
    poison_seed: u64,
) -> Option<u64> {
    pool.restore_persisted(persisted);
    let keep = policy.select(candidates.len());
    let kept: Vec<pmem::ResidualLine> = candidates
        .iter()
        .zip(keep.iter())
        .filter(|(_, &k)| k)
        .map(|(l, _)| *l)
        .collect();
    pool.apply_residual_lines(&kept);
    if !poison {
        return None;
    }
    // Media failure at the torn location: one of the lines that did
    // NOT make it to media comes back unreadable instead of stale.
    let lost: Vec<u64> = candidates
        .iter()
        .zip(keep.iter())
        .filter(|(_, &k)| !k)
        .map(|(l, _)| l.off)
        .collect();
    if lost.is_empty() {
        return None;
    }
    let victim = lost[(mix64(poison_seed) % lost.len() as u64) as usize];
    pool.poison_line(victim);
    Some(victim)
}

/// Explore one boundary: replay armed, then recover and verify every
/// residual sample of the crash image (restore → apply subset →
/// optional poison → recover → oracle).
fn explore_boundary(opts: &ExploreOptions, ops: &[WorkloadOp], boundary: u64) -> BoundaryOutcome {
    let (env, model, inflight) = armed_run(opts, ops, boundary);
    let Env { pool, idx } = env;
    let report = pool.crash_report();
    // Snapshot the flight recorder at the trip instant, before the
    // recovery attempts below overwrite the ring with their own events.
    let flight_tail = (obs::enabled() && report.is_some()).then(|| obs::flight_tail_text(16));
    // Capture the crash image before any front-end destructor runs:
    // the candidate set was frozen at the trip instant, the persisted
    // image is immune to post-crash writes.
    let candidates = pool.residual_candidates();
    let persisted = pool.snapshot_persisted();
    drop(idx);

    let mut out = BoundaryOutcome {
        report,
        flight_tail,
        candidates: candidates.len() as u64,
        ..BoundaryOutcome::default()
    };
    let inflight_slice: Vec<InflightAllowance> = inflight.into_iter().collect();
    let (policies, exhaustive) = if report.is_some() {
        sample_policies(opts.residual, opts.seed, boundary, candidates.len())
    } else {
        // The run completed (event-sequence divergence): verify exact
        // equality of the cleanly-persisted image once.
        (vec![ResidualPolicy::Frozen], false)
    };
    out.exhaustive = exhaustive;
    for (s, &policy) in policies.iter().enumerate() {
        let poisoned_off = build_sample_image(
            &pool,
            &persisted,
            &candidates,
            policy,
            // The frozen baseline stays poison-free so the pure torn-
            // write model is always covered too.
            opts.poison && policy != ResidualPolicy::Frozen,
            opts.seed ^ mix64(boundary) ^ (s as u64).rotate_left(32),
        );
        if poisoned_off.is_some() {
            out.poison_injected += 1;
        }
        let tail = out.flight_tail.clone();
        run_sample(
            &opts.kind,
            &pool,
            &model,
            &inflight_slice,
            poisoned_off,
            &mut out,
            boundary,
            policy,
            report,
            tail.as_deref(),
        );
    }
    out
}

/// Run a full crash-point exploration sweep.
///
/// Installs the quiet panic hook, probes the workload's event count,
/// then for each selected boundary replays the workload with an
/// injected power failure and verifies recovery. Never panics on an
/// oracle violation: failures are collected in the summary so a CLI can
/// report all of them.
pub fn explore(opts: &ExploreOptions) -> ExploreSummary {
    install_quiet_crash_hook();
    let ops = workload(opts.seed, opts.ops, opts.key_range);
    let (total_events, probe_redundant_clwb, per_op) = probe(opts, &ops);

    let mut summary = ExploreSummary {
        kind: opts.kind.clone(),
        chaos: opts.chaos_seed.is_some(),
        total_events,
        boundaries_tested: 0,
        crashes_fired: 0,
        completed_runs: 0,
        trigger_histogram: [0; 3],
        max_dirty_lines: 0,
        max_dirty_words: 0,
        probe_redundant_clwb,
        per_op,
        samples_run: 0,
        exhaustive_boundaries: 0,
        max_residual_candidates: 0,
        poison_injected: 0,
        poison_reported: 0,
        failures: Vec::new(),
        first_crash_flight_tail: None,
    };

    let stride = opts.stride.max(1);
    let mut boundary = 1;
    while boundary <= total_events {
        if let Some(cap) = opts.max_boundaries {
            if summary.boundaries_tested >= cap {
                break;
            }
        }
        let outcome = explore_boundary(opts, &ops, boundary);
        summary.boundaries_tested += 1;
        match &outcome.report {
            Some(r) => {
                summary.crashes_fired += 1;
                let slot = match r.trigger {
                    PersistEventKind::Clwb => 0,
                    PersistEventKind::Ntstore => 1,
                    PersistEventKind::Sfence => 2,
                };
                summary.trigger_histogram[slot] += 1;
                summary.max_dirty_lines = summary.max_dirty_lines.max(r.dirty_lines);
                summary.max_dirty_words = summary.max_dirty_words.max(r.dirty_words);
            }
            None => summary.completed_runs += 1,
        }
        if summary.first_crash_flight_tail.is_none() {
            summary.first_crash_flight_tail = outcome.flight_tail.clone();
        }
        summary.samples_run += outcome.samples_run;
        summary.exhaustive_boundaries += outcome.exhaustive as u64;
        summary.max_residual_candidates = summary.max_residual_candidates.max(outcome.candidates);
        summary.poison_injected += outcome.poison_injected;
        summary.poison_reported += outcome.poison_reported;
        summary.failures.extend(outcome.failures);
        boundary += stride;
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_mixed() {
        let a = workload(9, 500, 128);
        let b = workload(9, 500, 128);
        assert_eq!(a, b);
        let inserts = a
            .iter()
            .filter(|o| matches!(o, WorkloadOp::Insert(..)))
            .count();
        let updates = a
            .iter()
            .filter(|o| matches!(o, WorkloadOp::Update(..)))
            .count();
        let removes = a
            .iter()
            .filter(|o| matches!(o, WorkloadOp::Remove(..)))
            .count();
        assert!(inserts > updates && updates > 0 && removes > 0);
    }

    #[test]
    fn inflight_allowance_covers_all_op_shapes() {
        let mut model = BTreeMap::new();
        model.insert(5, 50);
        // Insert on an occupied key is a no-op either way.
        let a = InflightAllowance::for_op(WorkloadOp::Insert(5, 99), &model);
        assert!(a.allows(Some(50)) && !a.allows(Some(99)) && !a.allows(None));
        // Insert on a fresh key: absent or fully inserted.
        let a = InflightAllowance::for_op(WorkloadOp::Insert(6, 60), &model);
        assert!(a.allows(None) && a.allows(Some(60)) && !a.allows(Some(61)));
        // Update of an existing key: old or new value, never absent.
        let a = InflightAllowance::for_op(WorkloadOp::Update(5, 51), &model);
        assert!(a.allows(Some(50)) && a.allows(Some(51)) && !a.allows(None));
        // Remove: present-with-old-value or gone.
        let a = InflightAllowance::for_op(WorkloadOp::Remove(5), &model);
        assert!(a.allows(Some(50)) && a.allows(None) && !a.allows(Some(51)));
    }

    #[test]
    fn sample_policies_enumerate_small_sets_and_frontier_large_ones() {
        // k <= max_lines: the full 2^k subset space, nothing else.
        let (p, exhaustive) = sample_policies(
            ResidualConfig::Exhaustive {
                max_lines: 6,
                fallback_samples: 2,
            },
            1,
            10,
            3,
        );
        assert!(exhaustive);
        assert_eq!(p.len(), 8);
        for (mask, pol) in p.iter().enumerate() {
            assert_eq!(*pol, ResidualPolicy::Subset { mask: mask as u64 });
        }
        // k > max_lines: all 2^j masks over the j most recent lines,
        // plus the seeded fallback samples over the full set.
        let (p, exhaustive) = sample_policies(
            ResidualConfig::Exhaustive {
                max_lines: 4,
                fallback_samples: 2,
            },
            1,
            10,
            40,
        );
        assert!(exhaustive);
        assert_eq!(p.len(), 16 + 2);
        assert!(matches!(p[15], ResidualPolicy::Subset { mask: 15 }));
        assert!(matches!(p[16], ResidualPolicy::Sampled { .. }));
        // Seeds differ per boundary so no two boundaries share a sample.
        let (q, _) = sample_policies(
            ResidualConfig::Exhaustive {
                max_lines: 4,
                fallback_samples: 2,
            },
            1,
            11,
            40,
        );
        assert_ne!(p[16], q[16]);
    }

    #[test]
    fn probe_counts_events_for_every_kind() {
        for kind in PM_KINDS {
            let opts = ExploreOptions {
                kind: kind.to_string(),
                ops: 60,
                key_range: 32,
                pool_mib: 16,
                ..ExploreOptions::default()
            };
            let ops = workload(opts.seed, opts.ops, opts.key_range);
            let (events, _, per_op) = probe(&opts, &ops);
            assert!(events > 0, "{kind}: no persistence events?");
            assert!(per_op.contains_key("insert"), "{kind}: no insert stats");
        }
    }

    #[test]
    fn smoke_sweep_is_green_for_every_kind() {
        // A bounded sweep (strided) across all four indexes; the full
        // boundary-by-boundary matrix lives in the integration tests
        // and the CLI.
        for kind in PM_KINDS {
            let opts = ExploreOptions {
                kind: kind.to_string(),
                ops: 40,
                key_range: 24,
                pool_mib: 16,
                stride: 7,
                ..ExploreOptions::default()
            };
            let summary = explore(&opts);
            assert!(summary.total_events > 0);
            assert!(summary.boundaries_tested > 0);
            assert!(
                summary.is_green(),
                "{kind}: {} oracle violations, first: {:?}",
                summary.failures.len(),
                summary.failures.first()
            );
            assert!(summary.crashes_fired > 0, "{kind}: injection never fired");
        }
    }
}
