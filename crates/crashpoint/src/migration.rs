//! Crash-point exploration of the engine's online shard-range
//! migration (copy → single fenced routing publish → GC).
//!
//! A deterministic single-threaded scenario interleaves the standard
//! workload with a scripted migration of the tail half of shard 0's
//! range into a fresh destination shard:
//!
//! 1. first quarter of the workload on the base engine,
//! 2. `begin_migration` (destination pool formatted + claim written),
//! 3. copy chunks interleaved with the second workload quarter,
//! 4. `publish` (the single fenced commit word + routing flip),
//! 5. third workload quarter served by the new routing table,
//! 6. `gc` of the source leftovers,
//! 7. the final quarter.
//!
//! The sweep arms ONE pool (each base pool and the destination) at
//! every `stride`-th persistence boundary, replays the scenario until
//! the armed pool trips, restores every pool to its power-cut image,
//! recovers with [`engine::ShardedIndex::recover_routed`], and checks:
//!
//! * **the durability oracle** ([`crate::verify_recovered`]): every
//!   acked op survives, the one in-flight op is atomic, scans are
//!   sorted and ghost-free — copies and half-finished migration steps
//!   must be logically invisible;
//! * **the routing invariant**: the destination appears in the routing
//!   table *iff* its persisted claim is `ACTIVE`/`SETTLED` — the table
//!   never points at a half-copied range;
//! * **idempotence**: crash-recover a second time and require an
//!   identical routing table and a still-green oracle.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use engine::{
    shard_start, Migrator, RouteEntry, Shard, ShardedIndex, MIG_ACTIVE, MIG_MAGIC, MIG_SETTLED,
    SLOT_MIG_MAGIC, SLOT_MIG_STATE,
};
use pmalloc::{AllocMode, PmAllocator};
use pmem::{CrashPointHit, PmConfig, PmPool};

use crate::sharded::spread_op;
use crate::{build_index, try_recover_index, verify_recovered, workload, InflightAllowance};

/// Scale knobs for one migration exploration sweep.
#[derive(Debug, Clone)]
pub struct MigrationExploreOptions {
    /// Inner index kind (`fptree` / `nvtree` / `wbtree` / `bztree` /
    /// `learned`).
    pub kind: String,
    /// Base shards (the destination adds one more pool to the sweep).
    pub base_shards: usize,
    /// Operations in the deterministic workload.
    pub ops: u64,
    /// Distinct keys before spreading (small = collisions + splits).
    pub key_range: u64,
    /// Workload seed.
    pub seed: u64,
    /// Capacity of EACH pool, in MiB.
    pub pool_mib: usize,
    /// Records copied per migration chunk.
    pub chunk: usize,
    /// Workload ops interleaved between copy chunks.
    pub ops_per_chunk: usize,
    /// Test every `stride`-th boundary of the armed pool (1 = all).
    pub stride: u64,
    /// Cap on boundaries tested per armed pool (0 = no cap).
    pub max_boundaries: u64,
    /// Which pools to arm: `0..base_shards` are the base pools,
    /// `base_shards` is the destination (empty = all of them).
    pub arm_pools: Vec<usize>,
}

impl Default for MigrationExploreOptions {
    fn default() -> Self {
        MigrationExploreOptions {
            kind: "wbtree".to_string(),
            base_shards: 2,
            ops: 400,
            key_range: 96,
            seed: 0xC0FFEE,
            pool_mib: 8,
            chunk: 24,
            ops_per_chunk: 4,
            stride: 1,
            max_boundaries: 0,
            arm_pools: Vec::new(),
        }
    }
}

impl MigrationExploreOptions {
    /// The migration splits shard 0's range at its midpoint.
    fn split_at(&self) -> u64 {
        let end = if self.base_shards == 1 {
            u64::MAX
        } else {
            shard_start(1, self.base_shards) - 1
        };
        end / 2 + 1
    }
}

/// One oracle/routing violation found by the sweep.
#[derive(Debug, Clone)]
pub struct MigrationBoundaryFailure {
    /// Armed pool (base shard id, or `base_shards` = destination).
    pub pool: usize,
    /// The persistence-event boundary the crash fired after.
    pub boundary: u64,
    /// What went wrong.
    pub detail: String,
}

/// Aggregate result of a migration exploration sweep.
#[derive(Debug)]
pub struct MigrationExploreSummary {
    pub kind: String,
    pub base_shards: usize,
    /// Per-pool persistence-event totals from the uninjected probe run
    /// (base pools first, destination last).
    pub probe_events: Vec<u64>,
    /// Boundaries actually tested (across all armed pools).
    pub boundaries_tested: u64,
    /// Boundaries whose armed run tripped mid-scenario.
    pub crashes_fired: u64,
    /// Boundaries whose armed run completed without tripping.
    pub completed_runs: u64,
    /// Runs that crashed before the publish word landed (destination
    /// dropped at recovery).
    pub preparing_recoveries: u64,
    /// Runs recovered with the destination claimed (`ACTIVE`/`SETTLED`).
    pub claimed_recoveries: u64,
    pub failures: Vec<MigrationBoundaryFailure>,
}

impl MigrationExploreSummary {
    /// Whether the sweep found zero violations.
    pub fn is_green(&self) -> bool {
        self.failures.is_empty()
    }
}

struct RunEnv {
    base_pools: Vec<Arc<PmPool>>,
    dst_pool: Arc<PmPool>,
}

fn fresh_pools(opts: &MigrationExploreOptions) -> RunEnv {
    let mk = || Arc::new(PmPool::new(opts.pool_mib << 20, PmConfig::real()));
    RunEnv {
        base_pools: (0..opts.base_shards).map(|_| mk()).collect(),
        dst_pool: mk(),
    }
}

/// Outcome of one scenario replay: the acked-op model and the (at most
/// one) in-flight allowance when the armed pool tripped.
struct RunOutcome {
    model: BTreeMap<u64, u64>,
    inflight: Vec<InflightAllowance>,
    fired: bool,
}

/// Run one scenario step, converting a [`CrashPointHit`] unwind into
/// `false` (any other panic propagates).
fn crash_step(fired: &mut bool, f: impl FnOnce()) -> bool {
    debug_assert!(!*fired);
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(()) => true,
        Err(payload) => {
            if payload.downcast_ref::<CrashPointHit>().is_none() {
                std::panic::resume_unwind(payload);
            }
            *fired = true;
            false
        }
    }
}

/// Build the base engine on the base pools (formatting them). Done
/// before arming, like the other sweeps: the boundary space starts at
/// the first workload op.
fn build_base(env: &RunEnv, opts: &MigrationExploreOptions) -> Arc<ShardedIndex> {
    let parts: Vec<Shard> = env
        .base_pools
        .iter()
        .map(|p| {
            let alloc = PmAllocator::format(Arc::clone(p), AllocMode::General);
            Shard {
                index: build_index(&opts.kind, alloc.clone()),
                pool: Some(Arc::clone(p)),
                alloc: Some(alloc),
            }
        })
        .collect();
    ShardedIndex::from_parts(parts)
}

/// Replay the deterministic workload+migration scenario until a
/// [`CrashPointHit`] unwinds out of a step (or the run completes).
/// Single-threaded, so the persistence-event stream per pool is
/// reproducible across replays.
fn run_scenario(
    env: &RunEnv,
    engine: &Arc<ShardedIndex>,
    opts: &MigrationExploreOptions,
    ops: &[crate::WorkloadOp],
) -> RunOutcome {
    let mut model = BTreeMap::new();
    let mut inflight: Vec<InflightAllowance> = Vec::new();
    let mut fired = false;
    let mut cursor = 0usize;
    let q = (ops.len() / 4).max(1);

    macro_rules! bail {
        () => {
            return RunOutcome {
                model,
                inflight,
                fired,
            }
        };
    }

    // Apply up to `n` workload ops; false when the armed pool tripped
    // (the cut op's allowance is recorded).
    let run_ops = |n: usize,
                   cursor: &mut usize,
                   fired: &mut bool,
                   model: &mut BTreeMap<u64, u64>,
                   inflight: &mut Vec<InflightAllowance>|
     -> bool {
        for _ in 0..n {
            if *cursor >= ops.len() {
                break;
            }
            let op = ops[*cursor];
            *cursor += 1;
            let allowance = InflightAllowance::for_op(op, model);
            match catch_unwind(AssertUnwindSafe(|| crate::apply_op(&**engine, model, op))) {
                Ok(_) => {}
                Err(payload) => {
                    if payload.downcast_ref::<CrashPointHit>().is_none() {
                        std::panic::resume_unwind(payload);
                    }
                    inflight.push(allowance);
                    *fired = true;
                    return false;
                }
            }
        }
        true
    };

    // Phase 1: first quarter on the base layout.
    if !run_ops(q, &mut cursor, &mut fired, &mut model, &mut inflight) {
        bail!();
    }

    // Phase 2: destination stack + begin_migration (claim write).
    let mut migrator_slot: Option<Migrator> = None;
    if !crash_step(&mut fired, || {
        let alloc = PmAllocator::format(Arc::clone(&env.dst_pool), AllocMode::General);
        let shard = Shard {
            index: build_index(&opts.kind, alloc.clone()),
            pool: Some(Arc::clone(&env.dst_pool)),
            alloc: Some(alloc),
        };
        migrator_slot = Some(engine.begin_migration(opts.split_at(), shard));
    }) {
        bail!();
    }
    let mut migrator = migrator_slot.expect("begun above");

    // Phase 3: copy chunks interleaved with the second quarter.
    let mut copied_all = false;
    let mut served = 0usize;
    while !copied_all {
        if !crash_step(&mut fired, || {
            copied_all = migrator.copy_chunk(opts.chunk);
        }) {
            bail!();
        }
        if served < q {
            let n = opts.ops_per_chunk.min(q - served);
            served += n;
            if !run_ops(n, &mut cursor, &mut fired, &mut model, &mut inflight) {
                bail!();
            }
        }
    }
    if served < q
        && !run_ops(
            q - served,
            &mut cursor,
            &mut fired,
            &mut model,
            &mut inflight,
        )
    {
        bail!();
    }

    // Phase 4: publish (the commit word + routing flip).
    if !crash_step(&mut fired, || migrator.publish()) {
        bail!();
    }

    // Phase 5: third quarter through the new routing table.
    if !run_ops(q, &mut cursor, &mut fired, &mut model, &mut inflight) {
        bail!();
    }

    // Phase 6: GC the source leftovers.
    if !crash_step(&mut fired, || migrator.gc()) {
        bail!();
    }

    // Phase 7: the rest of the workload.
    run_ops(
        ops.len(),
        &mut cursor,
        &mut fired,
        &mut model,
        &mut inflight,
    );
    RunOutcome {
        model,
        inflight,
        fired,
    }
}

/// Recover the whole routed engine from the restored pool images.
fn recover_engine(
    opts: &MigrationExploreOptions,
    env: &RunEnv,
) -> Result<Arc<ShardedIndex>, String> {
    let kind = opts.kind.clone();
    ShardedIndex::recover_routed(
        env.base_pools.clone(),
        vec![Arc::clone(&env.dst_pool)],
        false,
        move |_, pool| {
            let alloc = PmAllocator::try_recover(pool, AllocMode::General)?;
            Ok((try_recover_index(&kind, alloc.clone())?, alloc))
        },
    )
    .map_err(|e| format!("recovery failed: {e:?}"))
}

/// Check the routing invariant: the destination shard is routed iff its
/// persisted claim is `ACTIVE`/`SETTLED`, and the routed ranges exactly
/// match the claim (or the arithmetic base partition when dropped).
fn check_routes(
    opts: &MigrationExploreOptions,
    env: &RunEnv,
    routes: &[RouteEntry],
) -> Result<(), String> {
    let n = opts.base_shards;
    let claimed = env.dst_pool.read_root(SLOT_MIG_MAGIC) == MIG_MAGIC
        && matches!(
            env.dst_pool.read_root(SLOT_MIG_STATE),
            MIG_ACTIVE | MIG_SETTLED
        );
    let mut want: Vec<RouteEntry> = (0..n)
        .map(|i| RouteEntry {
            start: shard_start(i, n),
            last: if i + 1 == n {
                u64::MAX
            } else {
                shard_start(i + 1, n) - 1
            },
            shard: i,
        })
        .collect();
    if claimed {
        let split = opts.split_at();
        let end = want[0].last;
        want[0].last = split - 1;
        want.insert(
            1,
            RouteEntry {
                start: split,
                last: end,
                shard: n,
            },
        );
    }
    if routes != want.as_slice() {
        return Err(format!(
            "routing table mismatch (claimed={claimed}): got {routes:?}, want {want:?}"
        ));
    }
    Ok(())
}

/// Explore one (armed pool, boundary) point.
fn explore_point(
    opts: &MigrationExploreOptions,
    ops: &[crate::WorkloadOp],
    armed: usize,
    boundary: u64,
    summary: &mut MigrationExploreSummary,
) -> (Vec<MigrationBoundaryFailure>, bool) {
    let fail = |detail: String| MigrationBoundaryFailure {
        pool: armed,
        boundary,
        detail,
    };
    let env = fresh_pools(opts);
    let engine = build_base(&env, opts);
    let all_pools: Vec<Arc<PmPool>> = env
        .base_pools
        .iter()
        .cloned()
        .chain(std::iter::once(Arc::clone(&env.dst_pool)))
        .collect();
    all_pools[armed].arm_crash_after(boundary);

    let outcome = run_scenario(&env, &engine, opts, ops);
    if !outcome.fired {
        all_pools[armed].disarm_crash();
    }

    // Power-cut-instant images on every device, captured before any
    // front-end destructor can issue further flushes, then recovery.
    let cut_images: Vec<Vec<u64>> = all_pools.iter().map(|p| p.snapshot_persisted()).collect();
    drop(engine);
    for (p, img) in all_pools.iter().zip(&cut_images) {
        p.restore_persisted(img);
    }

    let mut failures = Vec::new();
    let recovered = match recover_engine(opts, &env) {
        Ok(e) => e,
        Err(e) => {
            failures.push(fail(e));
            return (failures, outcome.fired);
        }
    };
    let claimed = env.dst_pool.read_root(SLOT_MIG_MAGIC) == MIG_MAGIC
        && matches!(
            env.dst_pool.read_root(SLOT_MIG_STATE),
            MIG_ACTIVE | MIG_SETTLED
        );
    if claimed {
        summary.claimed_recoveries += 1;
    } else {
        summary.preparing_recoveries += 1;
    }
    if let Err(e) = check_routes(opts, &env, &recovered.routes()) {
        failures.push(fail(e));
    }
    if let Err(e) = verify_recovered(&*recovered, &outcome.model, &outcome.inflight) {
        failures.push(fail(e));
    }
    let routes_first = recovered.routes();
    drop(recovered);

    // Double recovery: power-cycle every pool again (recovery's own
    // writes that were persisted survive; its volatile state is lost)
    // and require the identical routing table and a green oracle.
    for p in &all_pools {
        p.crash();
    }
    let recovered2 = match recover_engine(opts, &env) {
        Ok(e) => e,
        Err(e) => {
            failures.push(fail(format!("second {e}")));
            return (failures, outcome.fired);
        }
    };
    if recovered2.routes() != routes_first {
        failures.push(fail(format!(
            "double recovery changed the routing table: {:?} then {:?}",
            routes_first,
            recovered2.routes()
        )));
    }
    if let Err(e) = verify_recovered(&*recovered2, &outcome.model, &outcome.inflight) {
        failures.push(fail(format!("after second recovery: {e}")));
    }
    (failures, outcome.fired)
}

/// Uninjected probe: per-pool persistence-event totals for the
/// scenario (counted from the post-build arming point), sizing each
/// armed pool's boundary sweep.
fn probe(opts: &MigrationExploreOptions, ops: &[crate::WorkloadOp]) -> Vec<u64> {
    let env = fresh_pools(opts);
    let engine = build_base(&env, opts);
    let at_arm: Vec<u64> = env
        .base_pools
        .iter()
        .map(|p| p.persist_event_count())
        .collect();
    let outcome = run_scenario(&env, &engine, opts, ops);
    assert!(!outcome.fired, "probe run must not crash");
    env.base_pools
        .iter()
        .zip(&at_arm)
        .map(|(p, &base)| p.persist_event_count() - base)
        .chain(std::iter::once(env.dst_pool.persist_event_count()))
        .collect()
}

/// Run the full sweep: arm each pool (base shards, then the migration
/// destination) at every `stride`-th persistence boundary and verify
/// oracle + routing invariant + double-recovery idempotence.
pub fn explore_migration(opts: &MigrationExploreOptions) -> MigrationExploreSummary {
    assert!(opts.base_shards >= 1, "need at least one base shard");
    crate::install_quiet_crash_hook();
    let ops: Vec<crate::WorkloadOp> = workload(opts.seed, opts.ops, opts.key_range)
        .into_iter()
        .map(|op| spread_op(op, opts.key_range))
        .collect();
    let probe_events = probe(opts, &ops);

    let armed_pools: Vec<usize> = if opts.arm_pools.is_empty() {
        (0..=opts.base_shards).collect()
    } else {
        opts.arm_pools.clone()
    };

    let mut summary = MigrationExploreSummary {
        kind: opts.kind.clone(),
        base_shards: opts.base_shards,
        probe_events: probe_events.clone(),
        boundaries_tested: 0,
        crashes_fired: 0,
        completed_runs: 0,
        preparing_recoveries: 0,
        claimed_recoveries: 0,
        failures: Vec::new(),
    };

    for &armed in &armed_pools {
        assert!(armed <= opts.base_shards, "armed pool {armed} out of range");
        let total = probe_events[armed];
        let mut tested = 0u64;
        let mut boundary = 1u64;
        while boundary <= total {
            if opts.max_boundaries > 0 && tested >= opts.max_boundaries {
                break;
            }
            let (failures, fired) = explore_point(opts, &ops, armed, boundary, &mut summary);
            summary.boundaries_tested += 1;
            if fired {
                summary.crashes_fired += 1;
            } else {
                summary.completed_runs += 1;
            }
            summary.failures.extend(failures);
            tested += 1;
            boundary += opts.stride.max(1);
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts(kind: &str) -> MigrationExploreOptions {
        MigrationExploreOptions {
            kind: kind.to_string(),
            ops: 120,
            key_range: 48,
            stride: 131,
            ..MigrationExploreOptions::default()
        }
    }

    #[test]
    fn uninjected_scenario_is_green_end_to_end() {
        crate::install_quiet_crash_hook();
        let opts = quick_opts("wbtree");
        let ops: Vec<crate::WorkloadOp> = workload(opts.seed, opts.ops, opts.key_range)
            .into_iter()
            .map(|op| spread_op(op, opts.key_range))
            .collect();
        let env = fresh_pools(&opts);
        let engine = build_base(&env, &opts);
        let outcome = run_scenario(&env, &engine, &opts, &ops);
        assert!(!outcome.fired);
        // The migration completed: claim must be SETTLED.
        assert_eq!(env.dst_pool.read_root(SLOT_MIG_MAGIC), MIG_MAGIC);
        assert_eq!(env.dst_pool.read_root(SLOT_MIG_STATE), MIG_SETTLED);
        // And a plain recovery reproduces the model.
        let cut: Vec<Vec<u64>> = env
            .base_pools
            .iter()
            .chain(std::iter::once(&env.dst_pool))
            .map(|p| p.snapshot_persisted())
            .collect();
        drop(engine);
        for (p, img) in env
            .base_pools
            .iter()
            .chain(std::iter::once(&env.dst_pool))
            .zip(&cut)
        {
            p.restore_persisted(img);
        }
        let rec = recover_engine(&opts, &env).expect("clean recovery");
        assert_eq!(rec.routes().len(), opts.base_shards + 1);
        verify_recovered(&*rec, &outcome.model, &outcome.inflight).expect("oracle green");
    }

    #[test]
    fn strided_migration_sweep_is_green_for_wbtree() {
        let summary = explore_migration(&quick_opts("wbtree"));
        assert!(
            summary.is_green(),
            "{:?}",
            &summary.failures[..summary.failures.len().min(3)]
        );
        assert!(summary.crashes_fired > 0, "no boundary tripped");
        assert!(
            summary.preparing_recoveries > 0,
            "sweep must hit pre-publish boundaries"
        );
        assert!(
            summary.claimed_recoveries > 0,
            "sweep must hit post-publish boundaries"
        );
        assert_eq!(summary.probe_events.len(), summary.base_shards + 1);
    }

    #[test]
    fn strided_migration_sweep_is_green_for_learned() {
        let mut opts = quick_opts("learned");
        opts.stride = 211;
        let summary = explore_migration(&opts);
        assert!(
            summary.is_green(),
            "{:?}",
            &summary.failures[..summary.failures.len().min(3)]
        );
        assert!(summary.crashes_fired > 0);
    }
}
