//! Multi-threaded crash consistency: arm a crash while 2–8 threads
//! hammer one index, halt the device at the trip so every thread
//! unwinds, then recover each sampled residual image and check the
//! relaxed oracle:
//!
//! * every **acknowledged** operation survives;
//! * each thread's **unacknowledged in-flight** operation is atomic
//!   (fully applied or fully absent);
//! * no torn values are ever returned.
//!
//! Threads write disjoint key stripes, so the union of the per-thread
//! models is an exact oracle and each in-flight key has exactly one
//! owner. The crash may land inside any thread's operation; the other
//! threads are cut by the device halt (see
//! [`pmem::PmPool::set_halt_on_crash`]) at their next PM access, which
//! also unwedges threads spinning on a leaf lock the crashed thread
//! still holds.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use pmalloc::{AllocMode, PmAllocator};
use pmem::{CrashPointHit, CrashReport, PmConfig, PmPool, ResidualPolicy};

use crate::{
    apply_op, build_index, build_sample_image, install_quiet_crash_hook, mix64, run_sample,
    sample_policies, workload, BoundaryOutcome, InflightAllowance, ResidualConfig, WorkloadOp,
};

/// Parameters of one multi-threaded crash-consistency run.
#[derive(Debug, Clone)]
pub struct MtOptions {
    /// Index kind (see [`crate::PM_KINDS`]).
    pub kind: String,
    /// Concurrent workload threads (2–8).
    pub threads: usize,
    /// Operations each thread attempts.
    pub ops_per_thread: u64,
    /// Width of each thread's private key stripe.
    pub stripe: u64,
    /// Base seed (workloads, boundary picks, residual samples).
    pub seed: u64,
    /// Pool size in MiB.
    pub pool_mib: usize,
    /// Number of pseudo-random crash boundaries to test.
    pub boundaries: u64,
    /// Post-crash image model.
    pub residual: ResidualConfig,
    /// Poison one lost line per sampled image.
    pub poison: bool,
}

impl Default for MtOptions {
    fn default() -> Self {
        MtOptions {
            kind: "wbtree".to_string(),
            threads: 4,
            ops_per_thread: 250,
            stripe: 128,
            seed: 1,
            pool_mib: 32,
            boundaries: 8,
            residual: ResidualConfig::Sampled {
                samples: 3,
                p_per_256: 128,
            },
            poison: false,
        }
    }
}

/// Outcome of a multi-threaded crash-consistency run.
#[derive(Debug, Clone)]
pub struct MtSummary {
    /// Index kind exercised.
    pub kind: String,
    /// Workload threads per boundary.
    pub threads: usize,
    /// Boundaries armed and run.
    pub boundaries_tested: u64,
    /// Boundaries where the armed crash fired mid-run.
    pub crashes_fired: u64,
    /// Threads cut mid-operation across all boundaries (each
    /// contributes one in-flight allowance to its oracle check).
    pub threads_cut: u64,
    /// Residual samples recovered and verified.
    pub samples_run: u64,
    /// Largest residual candidate set at any crash.
    pub max_residual_candidates: u64,
    /// Samples that had a line poisoned.
    pub poison_injected: u64,
    /// Poisoned samples where recovery reported the media error.
    pub poison_reported: u64,
    /// Oracle violations (empty = green).
    pub failures: Vec<crate::BoundaryFailure>,
}

impl MtSummary {
    /// True when every boundary and sample recovered correctly.
    pub fn is_green(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The workload of one thread: the shared generator, with every key
/// shifted into the thread's private stripe.
fn thread_workload(opts: &MtOptions, tid: usize) -> Vec<WorkloadOp> {
    let base = tid as u64 * opts.stripe;
    workload(
        mix64(opts.seed ^ (tid as u64)),
        opts.ops_per_thread,
        opts.stripe,
    )
    .into_iter()
    .map(|op| match op {
        WorkloadOp::Insert(k, v) => WorkloadOp::Insert(base + k, v),
        WorkloadOp::Update(k, v) => WorkloadOp::Update(base + k, v),
        WorkloadOp::Remove(k) => WorkloadOp::Remove(base + k),
    })
    .collect()
}

/// What one worker thread saw before it stopped: its acknowledged
/// model, the op it was cut inside (if any), and a real bug if it
/// panicked for any reason other than the injected crash.
struct ThreadOutcome {
    model: BTreeMap<u64, u64>,
    inflight: Option<InflightAllowance>,
    bug: Option<String>,
}

fn run_worker(idx: &dyn index_api::RangeIndex, pool: &PmPool, ops: &[WorkloadOp]) -> ThreadOutcome {
    let mut model = BTreeMap::new();
    let mut inflight = None;
    let mut bug = None;
    for &op in ops {
        let allowance = InflightAllowance::for_op(op, &model);
        match catch_unwind(AssertUnwindSafe(|| apply_op(idx, &mut model, op))) {
            Ok(_) => {
                if pool.crash_fired() {
                    // The cut landed inside or immediately after this
                    // op (its tail needed no PM access, so the halt
                    // could not unwind it). The acknowledgement never
                    // escaped the dying machine; hold the op to the
                    // atomic present-or-absent allowance instead.
                    inflight = Some(allowance);
                    break;
                }
            }
            Err(payload) => {
                // CrashPointHit is the armed trip or the halt cutting
                // this thread. Any other panic raced the power cut
                // (e.g. an expect on volatile state another cut thread
                // abandoned) only if the crash really fired; otherwise
                // it is a genuine concurrency bug.
                if payload.downcast_ref::<CrashPointHit>().is_some() || pool.crash_fired() {
                    inflight = Some(allowance);
                } else if let Some(s) = payload.downcast_ref::<&str>() {
                    bug = Some(format!("worker panic: {s}"));
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    bug = Some(format!("worker panic: {s}"));
                } else {
                    bug = Some("worker panic (non-string payload)".to_string());
                }
                break;
            }
        }
    }
    ThreadOutcome {
        model,
        inflight,
        bug,
    }
}

/// Run one armed boundary with `opts.threads` concurrent workers.
fn run_boundary(opts: &MtOptions, boundary: u64) -> (BoundaryOutcome, u64) {
    let pool = Arc::new(PmPool::new(opts.pool_mib << 20, PmConfig::real()));
    let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
    let idx = build_index(&opts.kind, alloc);
    let per_thread: Vec<Vec<WorkloadOp>> = (0..opts.threads)
        .map(|tid| thread_workload(opts, tid))
        .collect();

    pool.set_halt_on_crash(true);
    pool.arm_crash_after(boundary);
    let outcomes: Vec<ThreadOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = per_thread
            .iter()
            .map(|ops| {
                let idx = &idx;
                let pool = &pool;
                s.spawn(move || run_worker(&**idx, pool, ops))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker catch_unwind never re-panics"))
            .collect()
    });
    let report: Option<CrashReport> = pool.crash_report();
    // Snapshot the merged flight recorder at the trip instant, before
    // recovery traffic overwrites the per-thread rings.
    let flight_tail = (obs::enabled() && report.is_some()).then(|| obs::flight_tail_text(16));
    if report.is_none() {
        pool.disarm_crash();
    }
    // Capture the crash image, then un-halt so the front-end
    // destructors can touch the pool again.
    let candidates = pool.residual_candidates();
    let persisted = pool.snapshot_persisted();
    pool.set_halt_on_crash(false);
    drop(idx);

    let mut model = BTreeMap::new();
    let mut inflight: Vec<InflightAllowance> = Vec::new();
    let mut out = BoundaryOutcome {
        report,
        flight_tail,
        candidates: candidates.len() as u64,
        ..BoundaryOutcome::default()
    };
    for (tid, t) in outcomes.iter().enumerate() {
        model.extend(&t.model);
        if let Some(a) = t.inflight {
            inflight.push(a);
        }
        if let Some(bug) = &t.bug {
            out.failures.push(crate::BoundaryFailure {
                boundary,
                policy: ResidualPolicy::Frozen,
                poisoned_off: None,
                report,
                detail: format!("thread {tid}: {bug}"),
                flight_tail: out.flight_tail.clone(),
            });
        }
    }
    let threads_cut = inflight.len() as u64;

    let (policies, exhaustive) = if report.is_some() {
        sample_policies(opts.residual, opts.seed, boundary, candidates.len())
    } else {
        (vec![ResidualPolicy::Frozen], false)
    };
    out.exhaustive = exhaustive;
    for (s, &policy) in policies.iter().enumerate() {
        let poisoned_off = build_sample_image(
            &pool,
            &persisted,
            &candidates,
            policy,
            opts.poison && policy != ResidualPolicy::Frozen,
            opts.seed ^ mix64(boundary) ^ (s as u64).rotate_left(32),
        );
        if poisoned_off.is_some() {
            out.poison_injected += 1;
        }
        let tail = out.flight_tail.clone();
        run_sample(
            &opts.kind,
            &pool,
            &model,
            &inflight,
            poisoned_off,
            &mut out,
            boundary,
            policy,
            report,
            tail.as_deref(),
        );
    }
    (out, threads_cut)
}

/// Run the full multi-threaded crash matrix: probe the event count of
/// one uninjected concurrent run, then arm `opts.boundaries`
/// pseudo-random boundaries within it and verify every residual sample
/// of each crash.
pub fn mt_crash_run(opts: &MtOptions) -> MtSummary {
    assert!(
        (2..=8).contains(&opts.threads),
        "threads must be in 2..=8, got {}",
        opts.threads
    );
    install_quiet_crash_hook();

    // Probe: one full concurrent run without injection, to size the
    // boundary space. Concurrent schedules make the event count only
    // an estimate — boundaries past the actual count simply complete
    // and are verified for exact equality.
    let total_events = {
        let pool = Arc::new(PmPool::new(opts.pool_mib << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        let idx = build_index(&opts.kind, alloc);
        let per_thread: Vec<Vec<WorkloadOp>> = (0..opts.threads)
            .map(|tid| thread_workload(opts, tid))
            .collect();
        std::thread::scope(|s| {
            for ops in &per_thread {
                let idx = &idx;
                s.spawn(move || {
                    let mut model = BTreeMap::new();
                    for &op in ops {
                        apply_op(&**idx, &mut model, op);
                    }
                });
            }
        });
        pool.persist_event_count().max(1)
    };

    let mut summary = MtSummary {
        kind: opts.kind.clone(),
        threads: opts.threads,
        boundaries_tested: 0,
        crashes_fired: 0,
        threads_cut: 0,
        samples_run: 0,
        max_residual_candidates: 0,
        poison_injected: 0,
        poison_reported: 0,
        failures: Vec::new(),
    };
    for b in 0..opts.boundaries {
        // Spread boundaries over the probed event space, seeded so the
        // whole matrix replays from `--seed` alone.
        let boundary = 1 + mix64(opts.seed ^ mix64(b)) % total_events;
        let (out, threads_cut) = run_boundary(opts, boundary);
        summary.boundaries_tested += 1;
        summary.crashes_fired += out.report.is_some() as u64;
        summary.threads_cut += threads_cut;
        summary.samples_run += out.samples_run;
        summary.max_residual_candidates = summary.max_residual_candidates.max(out.candidates);
        summary.poison_injected += out.poison_injected;
        summary.poison_reported += out.poison_reported;
        summary.failures.extend(out.failures);
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_threads_survive_sampled_crashes() {
        let opts = MtOptions {
            kind: "wbtree".to_string(),
            threads: 4,
            ops_per_thread: 120,
            boundaries: 4,
            seed: 11,
            ..MtOptions::default()
        };
        let s = mt_crash_run(&opts);
        assert_eq!(s.boundaries_tested, 4);
        assert!(s.crashes_fired > 0, "no boundary tripped mid-run");
        assert!(s.samples_run >= s.boundaries_tested);
        assert!(
            s.is_green(),
            "{} violations, first: {:?}",
            s.failures.len(),
            s.failures.first()
        );
    }

    #[test]
    fn two_threads_with_poison_never_surface_garbage() {
        let opts = MtOptions {
            kind: "fptree".to_string(),
            threads: 2,
            ops_per_thread: 100,
            boundaries: 3,
            seed: 23,
            poison: true,
            ..MtOptions::default()
        };
        let s = mt_crash_run(&opts);
        assert!(
            s.is_green(),
            "{} violations, first: {:?}",
            s.failures.len(),
            s.failures.first()
        );
    }
}
