//! Sharded crash-point exploration: the cross-shard durability oracle.
//!
//! A [`engine::ShardedIndex`] runs N independent inner indexes on N
//! independent pools. A real power cut hits the whole machine at once,
//! but the interesting failure modes are *per shard*: one shard's pool
//! stops mid-operation while the others were quiescent at the cut. This
//! module arms the crash injector on ONE shard's pool at a time, replays
//! the deterministic workload through the sharded front-end, and on the
//! trip verifies two things:
//!
//! 1. **The cross-shard oracle**: every operation acknowledged through
//!    the sharded front-end — regardless of which shard it routed to —
//!    survives recovery; the single in-flight op on the armed shard is
//!    atomic (pre- or post-state); scans across all shards are sorted
//!    and ghost-free; the recovered index stays writable.
//! 2. **Shard isolation**: untouched shards' persisted images are
//!    bit-identical to their power-cut-instant snapshots *after the
//!    armed shard has fully recovered*. Recovery of one shard must not
//!    write a sibling's media — each shard owns its pool and allocator
//!    outright, and this check proves it at the byte level.
//!
//! The workload keys are spread across the full u64 keyspace with a
//! fixed stride (`u64::MAX / key_range`), which is injective and
//! order-preserving: collisions, updates, and removes hit the same
//! spread key, while the engine's multiplicative partitioning routes the
//! stream uniformly across every shard.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use engine::{Shard, ShardedIndex};
use pmalloc::{AllocMode, PmAllocator};
use pmem::{CrashPointHit, MediaError, PmConfig, PmPool};

use crate::{
    apply_op, build_index, try_recover_index, verify_recovered, workload, InflightAllowance,
    WorkloadOp,
};

/// Scale knobs for one sharded exploration sweep.
#[derive(Debug, Clone)]
pub struct ShardedExploreOptions {
    /// Inner index kind (`fptree` / `nvtree` / `wbtree` / `bztree`).
    pub kind: String,
    /// Number of shards (each on its own pool + allocator).
    pub shards: usize,
    /// Operations in the deterministic workload.
    pub ops: u64,
    /// Distinct keys before spreading (small = collisions + splits).
    pub key_range: u64,
    /// Workload seed.
    pub seed: u64,
    /// Capacity of EACH shard's pool, in MiB.
    pub pool_mib: usize,
    /// Test every `stride`-th boundary of the armed shard (1 = all).
    pub stride: u64,
    /// Cap on boundaries tested per armed shard (0 = no cap).
    pub max_boundaries: u64,
    /// Which shards to arm (empty = every shard).
    pub arm_shards: Vec<usize>,
}

impl Default for ShardedExploreOptions {
    fn default() -> Self {
        ShardedExploreOptions {
            kind: "wbtree".to_string(),
            shards: 4,
            ops: 400,
            key_range: 96,
            seed: 0xC0FFEE,
            pool_mib: 8,
            stride: 1,
            max_boundaries: 0,
            arm_shards: Vec::new(),
        }
    }
}

/// One oracle or isolation violation found by the sweep.
#[derive(Debug, Clone)]
pub struct ShardedBoundaryFailure {
    /// The shard whose pool was armed.
    pub shard: usize,
    /// The persistence-event boundary the crash fired after.
    pub boundary: u64,
    /// What went wrong.
    pub detail: String,
}

/// Aggregate result of a sharded exploration sweep.
#[derive(Debug)]
pub struct ShardedExploreSummary {
    /// Inner index kind.
    pub kind: String,
    /// Shard count.
    pub shards: usize,
    /// Per-shard persistence-event totals from the uninjected probe run.
    pub probe_events: Vec<u64>,
    /// Boundaries actually tested (across all armed shards).
    pub boundaries_tested: u64,
    /// Boundaries whose armed run tripped mid-workload.
    pub crashes_fired: u64,
    /// Boundaries whose armed run completed without tripping.
    pub completed_runs: u64,
    /// Untouched-shard snapshot comparisons performed.
    pub isolation_checks: u64,
    /// Oracle and isolation violations.
    pub failures: Vec<ShardedBoundaryFailure>,
}

impl ShardedExploreSummary {
    /// Whether the sweep found zero violations.
    pub fn is_green(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Spread a narrow workload key across the full keyspace (injective,
/// order-preserving) so the partitioned router exercises every shard.
/// Shared with the network crash harness (`net::crash`), which replays
/// the same deterministic workload through the TCP serving path.
pub fn spread_key(k: u64, key_range: u64) -> u64 {
    k * (u64::MAX / key_range.max(1))
}

/// [`spread_key`] applied to an op's key (value untouched).
pub fn spread_op(op: WorkloadOp, key_range: u64) -> WorkloadOp {
    match op {
        WorkloadOp::Insert(k, v) => WorkloadOp::Insert(spread_key(k, key_range), v),
        WorkloadOp::Update(k, v) => WorkloadOp::Update(spread_key(k, key_range), v),
        WorkloadOp::Remove(k) => WorkloadOp::Remove(spread_key(k, key_range)),
    }
}

/// Fresh sharded environment: `shards` independent pool + allocator +
/// inner-index stacks behind one [`ShardedIndex`].
fn fresh_sharded_env(opts: &ShardedExploreOptions) -> Arc<ShardedIndex> {
    let parts: Vec<Shard> = (0..opts.shards)
        .map(|_| {
            let pool = Arc::new(PmPool::new(opts.pool_mib << 20, PmConfig::real()));
            let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
            Shard {
                index: build_index(&opts.kind, alloc.clone()),
                pool: Some(pool),
                alloc: Some(alloc),
            }
        })
        .collect();
    ShardedIndex::from_parts(parts)
}

/// Recover one shard's full stack from its pool's persisted image.
fn recover_shard_stack(
    kind: &str,
    pool: Arc<PmPool>,
) -> Result<(Arc<dyn index_api::RangeIndex>, Arc<PmAllocator>), MediaError> {
    let alloc = PmAllocator::try_recover(pool, AllocMode::General)?;
    Ok((try_recover_index(kind, alloc.clone())?, alloc))
}

/// Uninjected probe: per-shard persistence-event totals for the whole
/// workload, which size each armed shard's boundary sweep.
fn probe(opts: &ShardedExploreOptions, ops: &[WorkloadOp]) -> Vec<u64> {
    let idx = fresh_sharded_env(opts);
    let mut model = BTreeMap::new();
    for &op in ops {
        apply_op(&*idx, &mut model, op);
    }
    idx.pools()
        .iter()
        .map(|p| p.persist_event_count())
        .collect()
}

/// Explore one (armed shard, boundary) point. Returns the failures it
/// found (empty = green) plus whether the armed crash actually fired.
fn explore_point(
    opts: &ShardedExploreOptions,
    ops: &[WorkloadOp],
    armed: usize,
    boundary: u64,
    isolation_checks: &mut u64,
) -> (Vec<ShardedBoundaryFailure>, bool) {
    let fail = |detail: String| ShardedBoundaryFailure {
        shard: armed,
        boundary,
        detail,
    };

    let idx = fresh_sharded_env(opts);
    let pools = idx.pools();
    pools[armed].arm_crash_after(boundary);

    // Replay the workload through the sharded front-end until the armed
    // shard's pool trips (or the run completes).
    let mut model = BTreeMap::new();
    let mut inflight: Vec<InflightAllowance> = Vec::new();
    for &op in ops {
        let allowance = InflightAllowance::for_op(op, &model);
        match catch_unwind(AssertUnwindSafe(|| apply_op(&*idx, &mut model, op))) {
            Ok(_) => {}
            Err(payload) => {
                if payload.downcast_ref::<CrashPointHit>().is_none() {
                    std::panic::resume_unwind(payload);
                }
                // The cut op necessarily routed to the armed shard:
                // only that pool counts events.
                inflight.push(allowance);
                break;
            }
        }
    }
    let fired = !inflight.is_empty();
    if !fired {
        pools[armed].disarm_crash();
    }

    // Power-cut-instant media images, captured before any front-end
    // destructor can issue further flushes. On a real cut nothing after
    // this instant reaches media on ANY device.
    let cut_images: Vec<Vec<u64>> = pools.iter().map(|p| p.snapshot_persisted()).collect();
    drop(idx);
    for (p, img) in pools.iter().zip(&cut_images) {
        p.restore_persisted(img);
    }

    let mut failures = Vec::new();

    // Recover the armed shard FIRST, alone, then prove its recovery
    // never wrote a sibling's media.
    let armed_stack = match recover_shard_stack(&opts.kind, pools[armed].clone()) {
        Ok(s) => s,
        Err(e) => {
            failures.push(fail(format!("armed shard failed to recover: {e:?}")));
            return (failures, fired);
        }
    };
    for (i, img) in cut_images.iter().enumerate() {
        if i == armed {
            continue;
        }
        *isolation_checks += 1;
        if pools[i].snapshot_persisted() != *img {
            failures.push(fail(format!(
                "isolation violation: recovering shard {armed} mutated shard {i}'s persisted image"
            )));
        }
    }

    // Recover the remaining shards and reassemble the sharded index in
    // shard order.
    let mut parts = Vec::with_capacity(opts.shards);
    for (i, pool) in pools.iter().enumerate() {
        let (index, alloc) = if i == armed {
            armed_stack.clone()
        } else {
            match recover_shard_stack(&opts.kind, pool.clone()) {
                Ok(s) => s,
                Err(e) => {
                    failures.push(fail(format!(
                        "untouched shard {i} failed to recover: {e:?}"
                    )));
                    return (failures, fired);
                }
            }
        };
        parts.push(Shard {
            index,
            pool: Some(pool.clone()),
            alloc: Some(alloc),
        });
    }
    let recovered = ShardedIndex::from_parts(parts);
    if let Err(e) = verify_recovered(&*recovered, &model, &inflight) {
        failures.push(fail(e));
    }
    (failures, fired)
}

/// Run the full sweep: for each armed shard, crash at every
/// `stride`-th persistence boundary of that shard's pool and verify the
/// cross-shard oracle plus shard isolation.
pub fn explore_sharded(opts: &ShardedExploreOptions) -> ShardedExploreSummary {
    assert!(opts.shards >= 1, "need at least one shard");
    crate::install_quiet_crash_hook();
    let ops: Vec<WorkloadOp> = workload(opts.seed, opts.ops, opts.key_range)
        .into_iter()
        .map(|op| spread_op(op, opts.key_range))
        .collect();
    let probe_events = probe(opts, &ops);

    let armed_shards: Vec<usize> = if opts.arm_shards.is_empty() {
        (0..opts.shards).collect()
    } else {
        opts.arm_shards.clone()
    };

    let mut summary = ShardedExploreSummary {
        kind: opts.kind.clone(),
        shards: opts.shards,
        probe_events: probe_events.clone(),
        boundaries_tested: 0,
        crashes_fired: 0,
        completed_runs: 0,
        isolation_checks: 0,
        failures: Vec::new(),
    };

    for &armed in &armed_shards {
        assert!(armed < opts.shards, "armed shard {armed} out of range");
        let total = probe_events[armed];
        let mut tested = 0u64;
        let mut boundary = 1u64;
        while boundary <= total {
            if opts.max_boundaries > 0 && tested >= opts.max_boundaries {
                break;
            }
            let (failures, fired) =
                explore_point(opts, &ops, armed, boundary, &mut summary.isolation_checks);
            summary.boundaries_tested += 1;
            if fired {
                summary.crashes_fired += 1;
            } else {
                summary.completed_runs += 1;
            }
            summary.failures.extend(failures);
            tested += 1;
            boundary += opts.stride.max(1);
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts(kind: &str) -> ShardedExploreOptions {
        ShardedExploreOptions {
            kind: kind.to_string(),
            shards: 3,
            ops: 120,
            key_range: 48,
            stride: 97,
            ..ShardedExploreOptions::default()
        }
    }

    #[test]
    fn spread_is_injective_and_routes_to_all_shards() {
        let n = 4usize;
        let mut seen = std::collections::HashSet::new();
        let mut shards_hit = std::collections::HashSet::new();
        for k in 0..64u64 {
            let s = spread_key(k, 64);
            assert!(seen.insert(s));
            shards_hit.insert(engine::shard_of(s, n));
        }
        assert_eq!(shards_hit.len(), n);
    }

    #[test]
    fn strided_sweep_is_green_for_every_pm_kind() {
        for kind in crate::PM_KINDS {
            let summary = explore_sharded(&quick_opts(kind));
            assert!(
                summary.is_green(),
                "{kind}: {:?}",
                &summary.failures[..summary.failures.len().min(3)]
            );
            assert!(summary.crashes_fired > 0, "{kind}: no boundary tripped");
            assert!(summary.isolation_checks > 0, "{kind}");
            assert_eq!(summary.probe_events.len(), 3);
            assert!(
                summary.probe_events.iter().all(|&e| e > 0),
                "{kind}: a shard saw no persistence events: {:?}",
                summary.probe_events
            );
        }
    }

    #[test]
    fn arm_shard_subset_is_respected() {
        let mut opts = quick_opts("wbtree");
        opts.arm_shards = vec![1];
        opts.max_boundaries = 2;
        opts.stride = 40;
        let summary = explore_sharded(&opts);
        assert!(summary.is_green(), "{:?}", summary.failures);
        assert_eq!(summary.boundaries_tested, 2);
    }
}
