//! # dram-index — a volatile B+-tree baseline
//!
//! The DRAM reference point for the "persistent vs. volatile" and
//! "PM index running on DRAM" experiments: a conventional in-memory
//! B+-tree with everything PM indexes give up —
//!
//! * **sorted nodes with binary search** (no indirection, no
//!   fingerprints, no bitmap),
//! * **no persistence instructions** at all,
//! * **optimistic concurrency**: per-leaf version locks for writers,
//!   version-validated reads for lookups, and a global sequence lock
//!   serializing structure modifications (the same concurrency skeleton
//!   the PM indexes in this workspace use, so the comparison isolates
//!   *node layout and persistence cost*, not synchronization strategy).
//!
//! All node fields readers can race past are atomics; torn values are
//! discarded by version validation.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use htm::{Abort, Htm};
use index_api::{Footprint, Key, RangeIndex, Value};

/// Node fanout (keys per node).
const FANOUT: usize = 64;

/// A DRAM node: sorted keys, values (leaf) or tagged children (inner).
struct Node {
    /// Seqlock: odd while a writer holds the node.
    version: AtomicU64,
    count: AtomicUsize,
    keys: Box<[AtomicU64]>,
    /// Leaf: values; inner: tagged child words (`ptr` with bit 0 clear
    /// for inner children, `ptr | 1` for leaf children).
    vals: Box<[AtomicU64]>,
    /// Leaf chain for scans (raw `*const Node` bits, 0 = none).
    next: AtomicU64,
    is_leaf: bool,
}

#[inline]
fn tag(ptr: *const Node, leaf: bool) -> u64 {
    ptr as u64 | leaf as u64
}

#[inline]
fn untag(word: u64) -> *const Node {
    (word & !1) as *const Node
}

impl Node {
    fn new(is_leaf: bool) -> Box<Node> {
        Box::new(Node {
            version: AtomicU64::new(0),
            count: AtomicUsize::new(0),
            keys: (0..FANOUT).map(|_| AtomicU64::new(0)).collect(),
            vals: (0..FANOUT + 1).map(|_| AtomicU64::new(0)).collect(),
            next: AtomicU64::new(0),
            is_leaf,
        })
    }

    #[inline]
    fn count(&self) -> usize {
        self.count.load(Ordering::Acquire).min(FANOUT)
    }

    #[inline]
    fn key(&self, i: usize) -> u64 {
        self.keys[i].load(Ordering::Acquire)
    }

    #[inline]
    fn val(&self, i: usize) -> u64 {
        self.vals[i].load(Ordering::Acquire)
    }

    /// Binary search among the first `n` keys.
    fn search(&self, n: usize, key: Key) -> Result<usize, usize> {
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.key(mid).cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Inner routing: child index for `key` (child i covers keys in
    /// `[keys[i-1], keys[i])`, child 0 the underflow).
    fn route(&self, key: Key) -> usize {
        let n = self.count();
        match self.search(n, key) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    fn try_lock(&self) -> Option<u64> {
        let v = self.version.load(Ordering::Acquire);
        if v & 1 == 1 {
            return None;
        }
        self.version
            .compare_exchange(v, v + 1, Ordering::AcqRel, Ordering::Acquire)
            .ok()
    }

    fn unlock(&self) {
        let v = self.version.load(Ordering::Relaxed);
        debug_assert_eq!(v & 1, 1);
        self.version.store(v + 1, Ordering::Release);
    }

    /// Shift-insert `(key, val)` at sorted position `pos` (leaf, locked).
    fn leaf_insert_at(&self, pos: usize, key: Key, val: Value) {
        let n = self.count();
        debug_assert!(n < FANOUT);
        let mut i = n;
        while i > pos {
            self.keys[i].store(self.key(i - 1), Ordering::Release);
            self.vals[i].store(self.val(i - 1), Ordering::Release);
            i -= 1;
        }
        self.keys[pos].store(key, Ordering::Release);
        self.vals[pos].store(val, Ordering::Release);
        self.count.store(n + 1, Ordering::Release);
    }

    /// Shift-remove the record at `pos` (leaf, locked).
    fn leaf_remove_at(&self, pos: usize) {
        let n = self.count();
        for i in pos..n - 1 {
            self.keys[i].store(self.key(i + 1), Ordering::Release);
            self.vals[i].store(self.val(i + 1), Ordering::Release);
        }
        self.count.store(n - 1, Ordering::Release);
    }

    /// Inner separator insert (under the SMO transaction): key at `pos`,
    /// right child at `pos + 1`.
    fn inner_insert(&self, key: Key, right: u64) {
        let n = self.count();
        debug_assert!(n < FANOUT);
        let pos = match self.search(n, key) {
            Ok(_) => unreachable!("duplicate separator"),
            Err(p) => p,
        };
        let mut i = n;
        while i > pos {
            self.keys[i].store(self.key(i - 1), Ordering::Release);
            self.vals[i + 1].store(self.val(i), Ordering::Release);
            i -= 1;
        }
        self.keys[pos].store(key, Ordering::Release);
        self.vals[pos + 1].store(right, Ordering::Release);
        self.count.store(n + 1, Ordering::Release);
    }
}

/// Volatile B+-tree with optimistic lock coupling (see crate docs).
pub struct DramTree {
    smo: Htm,
    root: AtomicU64,
    node_count: AtomicU64,
}

// SAFETY: raw node pointers are managed under the SMO protocol; nodes
// are never freed while operations run (only on drop).
unsafe impl Send for DramTree {}
unsafe impl Sync for DramTree {}

impl DramTree {
    /// Empty tree.
    pub fn new() -> DramTree {
        let leaf = Box::into_raw(Node::new(true));
        DramTree {
            smo: Htm::new(),
            root: AtomicU64::new(tag(leaf, true)),
            node_count: AtomicU64::new(1),
        }
    }

    fn traverse(&self, key: Key) -> Result<&Node, Abort> {
        let mut w = self.root.load(Ordering::Acquire);
        for _ in 0..64 {
            if w == 0 {
                return Err(Abort);
            }
            // SAFETY: nodes are never freed while operations run.
            let node = unsafe { &*untag(w) };
            if node.is_leaf {
                return Ok(node);
            }
            w = node.val(node.route(key));
        }
        Err(Abort)
    }

    fn locate_and_lock(&self, key: Key) -> &Node {
        loop {
            let (leaf, ver) = self
                .smo
                .speculative_read(|v| self.traverse(key).map(|l| (l as *const Node, v)));
            // SAFETY: see traverse.
            let leaf = unsafe { &*leaf };
            if leaf.try_lock().is_none() {
                std::hint::spin_loop();
                continue;
            }
            if self.smo.version() != ver {
                leaf.unlock();
                continue;
            }
            return leaf;
        }
    }

    /// Split a full, locked leaf inside the SMO transaction. Returns the
    /// leaf that now owns `key` (still locked; the other is unlocked).
    fn split_leaf<'a>(&'a self, leaf: &'a Node, key: Key) -> &'a Node {
        debug_assert_eq!(leaf.count(), FANOUT);
        let right = Node::new(true);
        let mid = FANOUT / 2;
        let sep = leaf.key(mid);
        for i in mid..FANOUT {
            right.keys[i - mid].store(leaf.key(i), Ordering::Release);
            right.vals[i - mid].store(leaf.val(i), Ordering::Release);
        }
        right.count.store(FANOUT - mid, Ordering::Release);
        right
            .next
            .store(leaf.next.load(Ordering::Acquire), Ordering::Release);
        right.version.store(1, Ordering::Release); // created locked
        let right_ptr = Box::into_raw(right);
        self.node_count.fetch_add(1, Ordering::Relaxed);
        // SAFETY: fresh pointer from Box::into_raw.
        let right = unsafe { &*right_ptr };
        leaf.next.store(tag(right_ptr, true), Ordering::Release);
        leaf.count.store(mid, Ordering::Release);
        self.insert_separator(sep, tag(right_ptr, true), key);
        if key >= sep {
            leaf.unlock();
            right
        } else {
            right.unlock();
            leaf
        }
    }

    /// Insert `(sep, right)` into the inner structure (inside the SMO
    /// transaction), growing the root as needed. `probe` is a key that
    /// routed to the split child (used to find the path).
    fn insert_separator(&self, sep: Key, right: u64, probe: Key) {
        let mut path: Vec<&Node> = Vec::new();
        let mut w = self.root.load(Ordering::Acquire);
        loop {
            // SAFETY: nodes live until drop.
            let node = unsafe { &*untag(w) };
            if node.is_leaf {
                break;
            }
            path.push(node);
            w = node.val(node.route(probe));
        }
        let mut sep = sep;
        let mut right = right;
        loop {
            match path.pop() {
                None => {
                    let old_root = self.root.load(Ordering::Acquire);
                    let new_root = Node::new(false);
                    new_root.keys[0].store(sep, Ordering::Release);
                    new_root.vals[0].store(old_root, Ordering::Release);
                    new_root.vals[1].store(right, Ordering::Release);
                    new_root.count.store(1, Ordering::Release);
                    self.node_count.fetch_add(1, Ordering::Relaxed);
                    self.root
                        .store(tag(Box::into_raw(new_root), false), Ordering::Release);
                    return;
                }
                Some(node) => {
                    if node.count() < FANOUT {
                        node.inner_insert(sep, right);
                        return;
                    }
                    // Split the inner node.
                    let new_right = Node::new(false);
                    let n = node.count();
                    let mid = n / 2;
                    let promote = node.key(mid);
                    let moved = n - mid - 1;
                    for i in 0..moved {
                        new_right.keys[i].store(node.key(mid + 1 + i), Ordering::Release);
                    }
                    for i in 0..=moved {
                        new_right.vals[i].store(node.val(mid + 1 + i), Ordering::Release);
                    }
                    new_right.count.store(moved, Ordering::Release);
                    node.count.store(mid, Ordering::Release);
                    let nr = Box::into_raw(new_right);
                    self.node_count.fetch_add(1, Ordering::Relaxed);
                    // SAFETY: fresh pointer.
                    let nr_ref = unsafe { &*nr };
                    if sep >= promote {
                        nr_ref.inner_insert(sep, right);
                    } else {
                        node.inner_insert(sep, right);
                    }
                    sep = promote;
                    right = tag(nr, false);
                }
            }
        }
    }

    /// Number of allocated nodes (footprint reporting).
    pub fn node_count(&self) -> u64 {
        self.node_count.load(Ordering::Relaxed)
    }
}

impl Default for DramTree {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeIndex for DramTree {
    fn insert(&self, key: Key, value: Value) -> bool {
        let mut leaf = self.locate_and_lock(key);
        let n = leaf.count();
        if leaf.search(n, key).is_ok() {
            leaf.unlock();
            return false;
        }
        if n == FANOUT {
            leaf = self.smo.write_txn(|| self.split_leaf(leaf, key));
        }
        let n = leaf.count();
        match leaf.search(n, key) {
            Ok(_) => {
                leaf.unlock();
                false
            }
            Err(pos) => {
                leaf.leaf_insert_at(pos, key, value);
                leaf.unlock();
                true
            }
        }
    }

    fn lookup(&self, key: Key) -> Option<Value> {
        self.smo.speculative_read(|_| {
            let leaf = self.traverse(key)?;
            let v1 = leaf.version.load(Ordering::Acquire);
            if v1 & 1 == 1 {
                return Err(Abort);
            }
            let r = leaf.search(leaf.count(), key).ok().map(|i| leaf.val(i));
            if leaf.version.load(Ordering::Acquire) != v1 {
                return Err(Abort);
            }
            Ok(r)
        })
    }

    fn update(&self, key: Key, value: Value) -> bool {
        let leaf = self.locate_and_lock(key);
        let r = match leaf.search(leaf.count(), key) {
            Ok(i) => {
                leaf.vals[i].store(value, Ordering::Release);
                true
            }
            Err(_) => false,
        };
        leaf.unlock();
        r
    }

    fn remove(&self, key: Key) -> bool {
        let leaf = self.locate_and_lock(key);
        let r = match leaf.search(leaf.count(), key) {
            Ok(i) => {
                leaf.leaf_remove_at(i);
                true
            }
            Err(_) => false,
        };
        leaf.unlock();
        r
    }

    fn scan(&self, start: Key, count: usize, out: &mut Vec<(Key, Value)>) -> usize {
        out.clear();
        if count == 0 {
            return 0;
        }
        let mut w = self
            .smo
            .speculative_read(|_| self.traverse(start).map(|l| l as *const Node));
        let mut batch = Vec::with_capacity(FANOUT);
        while !w.is_null() && out.len() < count {
            // SAFETY: nodes live until drop.
            let leaf = unsafe { &*w };
            let next;
            loop {
                let v1 = leaf.version.load(Ordering::Acquire);
                if v1 & 1 == 1 {
                    std::hint::spin_loop();
                    continue;
                }
                batch.clear();
                let n = leaf.count();
                for i in 0..n {
                    let k = leaf.key(i);
                    if k >= start {
                        batch.push((k, leaf.val(i)));
                    }
                }
                let nx = leaf.next.load(Ordering::Acquire);
                if leaf.version.load(Ordering::Acquire) == v1 {
                    next = untag(nx);
                    break;
                }
            }
            out.extend(batch.iter().copied());
            w = next;
        }
        out.truncate(count);
        out.len()
    }

    fn name(&self) -> &'static str {
        "dram-btree"
    }

    fn footprint(&self) -> Footprint {
        Footprint {
            pm_bytes: 0,
            dram_bytes: self.node_count()
                * (std::mem::size_of::<Node>() as u64 + 16 * FANOUT as u64 + 24),
        }
    }
}

impl Drop for DramTree {
    fn drop(&mut self) {
        let mut stack = vec![self.root.load(Ordering::Relaxed)];
        while let Some(w) = stack.pop() {
            if w == 0 {
                continue;
            }
            let ptr = untag(w) as *mut Node;
            // SAFETY: exclusive access in drop; pointers from Box::into_raw.
            let node = unsafe { Box::from_raw(ptr) };
            if !node.is_leaf {
                for i in 0..=node.count() {
                    stack.push(node.val(i));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use index_api::oracle;

    #[test]
    fn basic_ops() {
        let t = DramTree::new();
        assert!(t.insert(3, 30));
        assert!(!t.insert(3, 31));
        assert_eq!(t.lookup(3), Some(30));
        assert!(t.update(3, 33));
        assert_eq!(t.lookup(3), Some(33));
        assert!(t.remove(3));
        assert!(!t.remove(3));
        assert_eq!(t.lookup(3), None);
    }

    #[test]
    fn many_inserts_with_splits() {
        let t = DramTree::new();
        for k in 0..20_000u64 {
            assert!(t.insert((k * 7919) % 20_000, k));
        }
        for k in 0..20_000u64 {
            assert!(t.lookup(k).is_some(), "key {k}");
        }
        assert!(t.node_count() > 100);
    }

    #[test]
    fn conformance_against_oracle() {
        let t = DramTree::new();
        oracle::check_conformance(&t, 0xD8, 30_000, 4_000);
    }

    #[test]
    fn scan_sorted() {
        let t = DramTree::new();
        for k in (0..2_000u64).rev() {
            t.insert(k, k + 1);
        }
        let mut out = Vec::new();
        assert_eq!(t.scan(500, 100, &mut out), 100);
        let want: Vec<(u64, u64)> = (500..600).map(|k| (k, k + 1)).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn concurrent_inserts_and_lookups() {
        let t = DramTree::new();
        std::thread::scope(|s| {
            for tid in 0..8u64 {
                let t = &t;
                s.spawn(move || {
                    for i in 0..3_000u64 {
                        let k = tid * 100_000 + i;
                        assert!(t.insert(k, k));
                        assert_eq!(t.lookup(k), Some(k));
                    }
                });
            }
        });
        for tid in 0..8u64 {
            for i in 0..3_000u64 {
                let k = tid * 100_000 + i;
                assert_eq!(t.lookup(k), Some(k), "key {k}");
            }
        }
    }

    #[test]
    fn concurrent_mixed_ops() {
        let t = DramTree::new();
        std::thread::scope(|s| {
            for tid in 0..6u64 {
                let t = &t;
                s.spawn(move || {
                    let mut x = tid + 17;
                    for i in 0..5_000u64 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let k = x % 4_096;
                        match i % 5 {
                            0 | 1 => {
                                t.insert(k, i);
                            }
                            2 => {
                                t.lookup(k);
                            }
                            3 => {
                                t.update(k, i);
                            }
                            _ => {
                                let mut out = Vec::new();
                                t.scan(k, 16, &mut out);
                                assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
                            }
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn footprint_grows() {
        let t = DramTree::new();
        let before = t.footprint().dram_bytes;
        for k in 0..10_000u64 {
            t.insert(k, k);
        }
        assert!(t.footprint().dram_bytes > before);
        assert_eq!(t.footprint().pm_bytes, 0);
    }
}
