//! # engine — sharded multi-pool index layer with adaptive routing
//!
//! Range-partitions the u64 keyspace across N shards, each an independent
//! inner [`RangeIndex`] on its **own** [`PmPool`] and [`PmAllocator`].
//! Threads operating on different shards share no locks, no allocator
//! size classes, and no pool state — the structural bottlenecks of the
//! single-pool design (allocator class locks, pool mutexes) become
//! per-shard and therefore tunable with `--shards N`.
//!
//! ## Partitioning scheme
//!
//! The *initial* partition is multiplicative: shard `i` of `n` owns the
//! contiguous key range `[shard_start(i, n), shard_start(i + 1, n))`,
//! computed by `shard_of(key, n) = (key * n) >> 64`. This is monotonic
//! in `key` (so concatenating per-shard scans in shard order yields a
//! globally sorted result).
//!
//! Since the hot-traffic tier landed, routing goes through an explicit
//! **routing table** — a sorted, contiguous cover of the keyspace by
//! [`RouteEntry`] ranges — so a hot shard's range can be *split online*:
//! a new sub-shard takes over `[split_at, old_end]` while serving
//! continues (see below). With no migrations the table is exactly the
//! arithmetic partition.
//!
//! ## Online shard-range migration
//!
//! [`ShardedIndex::begin_migration`] carves the tail `[split_at, last]`
//! off the route entry owning `split_at` and returns a [`Migrator`]
//! that drives the three-phase, crash-consistent protocol:
//!
//! 1. **Copy** ([`Migrator::copy_chunk`]): scan the source range and
//!    insert into the destination shard. Writes to the migrating range
//!    keep landing on the source (still the routed owner) and are
//!    *mirrored* to the destination under the migration lock; the
//!    copier holds the same lock and never overwrites an existing
//!    destination entry (it was mirrored from a newer acked write).
//!    Crash anywhere here: the destination claim is still `PREPARING`,
//!    so recovery drops the destination pool outright — copies are
//!    logically invisible until publish.
//! 2. **Publish** ([`Migrator::publish`]): one fence on the destination
//!    pool, then a *single fenced 8-byte root write* flips the
//!    destination's claim to `ACTIVE` — that word is the migration's
//!    durable commit point. The in-DRAM routing table is then split
//!    under the state write-lock (acquiring it drains every in-flight
//!    reader, so no late mirror can race the flip).
//! 3. **GC** ([`Migrator::gc`]): scrub keys of the migrated range from
//!    every shard the routing table no longer points at, then mark the
//!    claim `SETTLED`. Idempotent, so recovery simply re-runs it for
//!    claims found `ACTIVE`.
//!
//! The claim lives in the destination pool's root area (slots
//! [`SLOT_MIG_MAGIC`]..=[`SLOT_MIG_STATE`]): range, sequence number and
//! state. [`ShardedIndex::recover_routed`] rebuilds the routing table
//! from the base pools' arithmetic partition plus the persisted claims
//! (overlaid in sequence order), finishing interrupted GC on the way —
//! double recovery is idempotent. The `crashpoint::migration` sweep
//! verifies the whole protocol at every persistence-event boundary.
//!
//! ## Skew detection
//!
//! Every operation feeds a [`cache::SkewEstimator`] plus a per-shard
//! load counter; [`ShardedIndex::hot_hint`] turns "one range absorbs
//! most of the window" into a concrete `(shard, split_at)` proposal for
//! the migration machinery.
//!
//! ## Cross-shard scan continuation
//!
//! `scan(start, count)` walks route entries in key order and truncates
//! each shard's contribution to its routed range — which also hides
//! not-yet-GC'd source leftovers after a publish.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cache::SkewEstimator;
use index_api::{Footprint, Key, RangeIndex, Value};
use parking_lot::{Mutex, RwLock};
use pmalloc::PmAllocator;
use pmem::{MediaError, PmPool, PmStatsSnapshot};

/// Root slots (destination pool) holding a migration claim.
pub const SLOT_MIG_MAGIC: u64 = 48;
pub const SLOT_MIG_START: u64 = 49;
pub const SLOT_MIG_LAST: u64 = 50;
pub const SLOT_MIG_SEQ: u64 = 51;
pub const SLOT_MIG_STATE: u64 = 52;

/// "ENGSHARD" — marks a pool as a migration destination.
pub const MIG_MAGIC: u64 = 0x454e_4753_4841_5244;
/// Claim states. `PREPARING` destinations are dropped at recovery;
/// `ACTIVE` ones own their range (GC may still be owed); `SETTLED`
/// ones own their range and the source leftovers are gone.
pub const MIG_PREPARING: u64 = 1;
pub const MIG_ACTIVE: u64 = 2;
pub const MIG_SETTLED: u64 = 3;

/// Traffic share of the window above which [`ShardedIndex::hot_hint`]
/// proposes a split.
pub const HOT_SPLIT_SHARE: f64 = 0.5;

/// One shard: an inner index plus the PM state backing it (absent for
/// DRAM-only inners).
#[derive(Clone)]
pub struct Shard {
    pub index: Arc<dyn RangeIndex>,
    pub pool: Option<Arc<PmPool>>,
    pub alloc: Option<Arc<PmAllocator>>,
}

/// Which shard owns `key` when the keyspace is split into `n` equal
/// ranges. Monotonic in `key`; `shard_of(0, n) == 0` and
/// `shard_of(u64::MAX, n) == n - 1`.
#[inline]
pub fn shard_of(key: Key, n: usize) -> usize {
    debug_assert!(n >= 1);
    ((key as u128 * n as u128) >> 64) as usize
}

/// Smallest key owned by shard `i` of `n` (`i < n`), i.e.
/// `ceil(i * 2^64 / n)`.
#[inline]
pub fn shard_start(i: usize, n: usize) -> Key {
    debug_assert!(i < n);
    (((i as u128) << 64).div_ceil(n as u128)) as Key
}

fn sharded_name(inner: &str) -> &'static str {
    match inner {
        "fptree" => "sharded-fptree",
        "fptree-nofp" => "sharded-fptree-nofp",
        "fptree-varkey" => "sharded-fptree-varkey",
        "nvtree" => "sharded-nvtree",
        "wbtree" => "sharded-wbtree",
        "wbtree-noslots" => "sharded-wbtree-noslots",
        "bztree" => "sharded-bztree",
        "learned" => "sharded-learned",
        "dram-btree" => "sharded-dram-btree",
        "map-index" => "sharded-map-index",
        _ => "sharded",
    }
}

/// One routing-table row: keys in `[start, last]` (inclusive) belong to
/// `shards[shard]`. The table is sorted by `start` and tiles the whole
/// keyspace with no gaps or overlaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry {
    pub start: Key,
    pub last: Key,
    pub shard: usize,
}

/// The arithmetic partition as a routing table.
fn base_routes(n: usize) -> Vec<RouteEntry> {
    (0..n)
        .map(|i| RouteEntry {
            start: shard_start(i, n),
            last: if i + 1 == n {
                u64::MAX
            } else {
                shard_start(i + 1, n) - 1
            },
            shard: i,
        })
        .collect()
}

/// Index of the route entry owning `key`.
#[inline]
fn route_idx(routes: &[RouteEntry], key: Key) -> usize {
    debug_assert!(!routes.is_empty() && routes[0].start == 0);
    routes.partition_point(|e| e.start <= key) - 1
}

/// Carve `[start, last] → shard` into the table, trimming or splitting
/// whatever it overlaps. Keeps the table sorted and contiguous.
fn overlay_route(routes: &mut Vec<RouteEntry>, start: Key, last: Key, shard: usize) {
    let mut out = Vec::with_capacity(routes.len() + 2);
    for e in routes.drain(..) {
        if e.last < start || e.start > last {
            out.push(e);
            continue;
        }
        if e.start < start {
            out.push(RouteEntry {
                start: e.start,
                last: start - 1,
                shard: e.shard,
            });
        }
        if e.last > last {
            out.push(RouteEntry {
                start: last + 1,
                last: e.last,
                shard: e.shard,
            });
        }
    }
    out.push(RouteEntry { start, last, shard });
    out.sort_by_key(|e| e.start);
    *routes = out;
}

/// An in-flight migration: writes to `[start, last]` are mirrored from
/// the source shard to the destination under `lock`, which the copier
/// also holds — so the destination always reflects the latest *acked*
/// state for every key it contains.
pub struct Migration {
    pub start: Key,
    pub last: Key,
    pub src: usize,
    pub dst: usize,
    pub seq: u64,
    lock: Mutex<()>,
}

impl Migration {
    #[inline]
    fn covers(&self, key: Key) -> bool {
        self.start <= key && key <= self.last
    }
}

/// One persisted destination claim, as read back at recovery.
#[derive(Debug, Clone)]
struct Claim {
    start: Key,
    last: Key,
    seq: u64,
    state: u64,
    pool: Arc<PmPool>,
}

struct EngineState {
    shards: Vec<Shard>,
    /// Per-shard op counters (parallel to `shards`; drives `hot_hint`).
    loads: Vec<Arc<AtomicU64>>,
    routes: Vec<RouteEntry>,
    migration: Option<Arc<Migration>>,
    next_seq: u64,
}

/// A range-partitioned federation of inner indexes that itself
/// implements the full [`RangeIndex`] contract.
pub struct ShardedIndex {
    state: RwLock<EngineState>,
    skew: SkewEstimator,
    name: &'static str,
}

impl ShardedIndex {
    /// Assemble from pre-built shards (shard `i` must hold key range
    /// `[shard_start(i, n), shard_start(i + 1, n))`; the builder is
    /// responsible for routing prefill through this wrapper so that
    /// invariant holds).
    pub fn from_parts(shards: Vec<Shard>) -> Arc<Self> {
        assert!(!shards.is_empty(), "ShardedIndex needs at least one shard");
        let name = sharded_name(shards[0].index.name());
        let n = shards.len();
        let loads = (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect();
        Arc::new(Self {
            state: RwLock::new(EngineState {
                shards,
                loads,
                routes: base_routes(n),
                migration: None,
                next_seq: 1,
            }),
            skew: SkewEstimator::new(1 << 16),
            name,
        })
    }

    /// Re-open every shard from its pool's persisted image. `f` recovers
    /// one shard (allocator first, then index) and is called once per
    /// pool — sequentially when `parallel` is false, on one scoped
    /// thread per shard otherwise. The first [`MediaError`] aborts the
    /// open (on the parallel path the error of the lowest-indexed
    /// failing shard is reported, so both paths fail deterministically).
    ///
    /// Positional: pool `i` is shard `i` of the arithmetic partition.
    /// Deployments that migrate must use [`Self::recover_routed`].
    pub fn recover_with<F>(
        pools: Vec<Arc<PmPool>>,
        parallel: bool,
        f: F,
    ) -> Result<Arc<Self>, MediaError>
    where
        F: Fn(usize, Arc<PmPool>) -> Result<(Arc<dyn RangeIndex>, Arc<PmAllocator>), MediaError>
            + Sync,
    {
        let _site = obs::site("engine_recovery");
        assert!(!pools.is_empty(), "ShardedIndex needs at least one shard");
        let shards = Self::recover_shards(&pools, parallel, &f)?;
        Ok(Self::from_parts(shards))
    }

    fn recover_shards<F>(
        pools: &[Arc<PmPool>],
        parallel: bool,
        f: &F,
    ) -> Result<Vec<Shard>, MediaError>
    where
        F: Fn(usize, Arc<PmPool>) -> Result<(Arc<dyn RangeIndex>, Arc<PmAllocator>), MediaError>
            + Sync,
    {
        let recovered: Result<Vec<_>, MediaError> = if parallel && pools.len() > 1 {
            std::thread::scope(|s| {
                let handles: Vec<_> = pools
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        let p = Arc::clone(p);
                        s.spawn(move || f(i, p))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard recovery thread panicked"))
                    .collect()
            })
        } else {
            pools
                .iter()
                .enumerate()
                .map(|(i, p)| f(i, Arc::clone(p)))
                .collect()
        };
        Ok(recovered?
            .into_iter()
            .zip(pools)
            .map(|((index, alloc), pool)| Shard {
                index,
                pool: Some(Arc::clone(pool)),
                alloc: Some(alloc),
            })
            .collect())
    }

    /// Routing-aware recovery. `base_pools` are the original arithmetic
    /// shards, positionally; `claim_pools` are migration destinations
    /// (any order). A claim pool whose root area carries a valid
    /// `ACTIVE`/`SETTLED` claim is recovered and its range overlaid on
    /// the routing table (in claim-sequence order); anything else —
    /// `PREPARING`, torn, or never written — is dropped: its contents
    /// were never published, so they are logically invisible.
    ///
    /// For `ACTIVE` claims the interrupted GC is re-run (idempotent)
    /// and the claim is settled, so recovering twice is a no-op.
    pub fn recover_routed<F>(
        base_pools: Vec<Arc<PmPool>>,
        claim_pools: Vec<Arc<PmPool>>,
        parallel: bool,
        f: F,
    ) -> Result<Arc<Self>, MediaError>
    where
        F: Fn(usize, Arc<PmPool>) -> Result<(Arc<dyn RangeIndex>, Arc<PmAllocator>), MediaError>
            + Sync,
    {
        let _site = obs::site("engine_recovery");
        assert!(!base_pools.is_empty(), "need at least one base shard");
        let mut claims: Vec<Claim> = claim_pools
            .iter()
            .filter_map(|p| {
                if p.read_root(SLOT_MIG_MAGIC) != MIG_MAGIC {
                    return None;
                }
                let state = p.read_root(SLOT_MIG_STATE);
                if state != MIG_ACTIVE && state != MIG_SETTLED {
                    return None;
                }
                Some(Claim {
                    start: p.read_root(SLOT_MIG_START),
                    last: p.read_root(SLOT_MIG_LAST),
                    seq: p.read_root(SLOT_MIG_SEQ),
                    state,
                    pool: Arc::clone(p),
                })
            })
            .collect();
        claims.sort_by_key(|c| c.seq);

        let mut all_pools = base_pools.clone();
        all_pools.extend(claims.iter().map(|c| Arc::clone(&c.pool)));
        let shards = Self::recover_shards(&all_pools, parallel, &f)?;

        let mut routes = base_routes(base_pools.len());
        for (i, c) in claims.iter().enumerate() {
            overlay_route(&mut routes, c.start, c.last, base_pools.len() + i);
        }
        let next_seq = claims.iter().map(|c| c.seq + 1).max().unwrap_or(1);
        let n = shards.len();
        let name = sharded_name(shards[0].index.name());
        let engine = Arc::new(Self {
            state: RwLock::new(EngineState {
                shards,
                loads: (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect(),
                routes,
                migration: None,
                next_seq,
            }),
            skew: SkewEstimator::new(1 << 16),
            name,
        });
        // Finish interrupted GC: an ACTIVE claim owns its range but the
        // source leftovers may still be on media. Scrub + settle, in
        // sequence order (idempotent; double recovery re-runs safely).
        for c in &claims {
            if c.state == MIG_ACTIVE {
                engine.scrub_range(c.start, c.last);
                c.pool.write_root(SLOT_MIG_STATE, MIG_SETTLED);
            }
        }
        Ok(engine)
    }

    pub fn shard_count(&self) -> usize {
        self.state.read().shards.len()
    }

    /// Snapshot of the shards, in shard-id order.
    pub fn shards(&self) -> Vec<Shard> {
        self.state.read().shards.clone()
    }

    /// Snapshot of the routing table (sorted, contiguous cover).
    pub fn routes(&self) -> Vec<RouteEntry> {
        self.state.read().routes.clone()
    }

    /// Per-shard operation counts since construction.
    pub fn shard_loads(&self) -> Vec<u64> {
        self.state
            .read()
            .loads
            .iter()
            .map(|l| l.load(Ordering::Relaxed))
            .collect()
    }

    /// The windowed skew estimator fed by every routed operation.
    pub fn skew(&self) -> &SkewEstimator {
        &self.skew
    }

    /// Index of the shard owning `key` (routing-table lookup).
    #[inline]
    pub fn shard_of(&self, key: Key) -> usize {
        let st = self.state.read();
        st.routes[route_idx(&st.routes, key)].shard
    }

    /// First key owned by shard `i` of the *arithmetic* partition (the
    /// pre-migration layout; scan continuation and the crash harness's
    /// spread math use this).
    #[inline]
    pub fn shard_start(&self, i: usize) -> Key {
        let n = self.state.read().shards.len();
        shard_start(i, n)
    }

    /// The backing pools, in shard order (empty for DRAM inners).
    pub fn pools(&self) -> Vec<Arc<PmPool>> {
        self.state
            .read()
            .shards
            .iter()
            .filter_map(|s| s.pool.clone())
            .collect()
    }

    /// The backing allocators, in shard order (empty for DRAM inners).
    pub fn allocs(&self) -> Vec<Arc<PmAllocator>> {
        self.state
            .read()
            .shards
            .iter()
            .filter_map(|s| s.alloc.clone())
            .collect()
    }

    /// Counter-wise sum of every shard pool's statistics.
    pub fn merged_stats(&self) -> PmStatsSnapshot {
        let snaps: Vec<PmStatsSnapshot> = self
            .state
            .read()
            .shards
            .iter()
            .filter_map(|s| s.pool.as_ref().map(|p| p.stats()))
            .collect();
        PmStatsSnapshot::merged(snaps.iter())
    }

    /// Reset every shard pool's counters.
    pub fn reset_stats(&self) {
        for s in &self.state.read().shards {
            if let Some(p) = &s.pool {
                p.reset_stats();
            }
        }
    }

    #[inline]
    fn note(&self, st: &EngineState, key: Key, shard: usize) {
        self.skew.record(key);
        st.loads[shard].fetch_add(1, Ordering::Relaxed);
    }

    /// A `(shard, split_at)` proposal when the hottest observed range
    /// absorbs ≥ `HOT_SPLIT_SHARE` of the traffic window and the owning
    /// route entry is splittable. The split lands at the midpoint of
    /// the overlap between the hot range and the entry.
    pub fn hot_hint(&self) -> Option<(usize, Key)> {
        let hot = self.skew.hottest().filter(|h| h.share >= HOT_SPLIT_SHARE)?;
        let st = self.state.read();
        if st.migration.is_some() {
            return None;
        }
        let mid = hot.start + (hot.last - hot.start) / 2;
        let e = st.routes[route_idx(&st.routes, mid)];
        let lo = e.start.max(hot.start);
        let hi = e.last.min(hot.last);
        let split = lo + (hi - lo) / 2;
        (split > e.start).then_some((e.shard, split))
    }

    /// Start migrating `[split_at, last-of-entry]` to `dst` (a freshly
    /// built shard; its pool — when present — receives the durable
    /// claim). `split_at` must lie strictly inside its route entry.
    /// Returns the [`Migrator`] that drives copy/publish/GC; exactly
    /// one migration may be in flight.
    pub fn begin_migration(self: &Arc<Self>, split_at: Key, dst: Shard) -> Migrator {
        let mut st = self.state.write();
        assert!(st.migration.is_none(), "one migration at a time");
        let e = st.routes[route_idx(&st.routes, split_at)];
        assert!(
            split_at > e.start,
            "split_at must be strictly inside its route entry"
        );
        if let Some(p) = &dst.pool {
            // Claim fields first, state last: an ACTIVE state word
            // implies the fields under it are valid. Each write_root
            // persists its word.
            p.write_root(SLOT_MIG_MAGIC, MIG_MAGIC);
            p.write_root(SLOT_MIG_START, split_at);
            p.write_root(SLOT_MIG_LAST, e.last);
            p.write_root(SLOT_MIG_SEQ, st.next_seq);
            p.write_root(SLOT_MIG_STATE, MIG_PREPARING);
        }
        let dst_idx = st.shards.len();
        st.shards.push(dst);
        st.loads.push(Arc::new(AtomicU64::new(0)));
        let mig = Arc::new(Migration {
            start: split_at,
            last: e.last,
            src: e.shard,
            dst: dst_idx,
            seq: st.next_seq,
            lock: Mutex::new(()),
        });
        st.next_seq += 1;
        st.migration = Some(Arc::clone(&mig));
        Migrator {
            engine: Arc::clone(self),
            mig,
            cursor: split_at,
            copy_done: false,
            published: false,
        }
    }

    /// Remove every key in `[start, last]` from shards the routing
    /// table does not point at for that key (stale source leftovers
    /// after a publish). Idempotent; runs while serving continues.
    fn scrub_range(&self, start: Key, last: Key) {
        let _site = obs::site("engine_migrate_gc");
        const CHUNK: usize = 128;
        let st = self.state.read();
        for (j, sh) in st.shards.iter().enumerate() {
            let mut cursor = start;
            let mut buf = Vec::new();
            loop {
                let got = sh.index.scan(cursor, CHUNK, &mut buf);
                let mut past_end = got < CHUNK;
                let mut next = cursor;
                for &(k, _) in &buf[..got] {
                    if k > last {
                        past_end = true;
                        break;
                    }
                    if st.routes[route_idx(&st.routes, k)].shard != j {
                        sh.index.remove(k);
                    }
                    if k == u64::MAX {
                        past_end = true;
                        break;
                    }
                    next = k + 1;
                }
                cursor = next;
                if past_end {
                    break;
                }
            }
        }
    }
}

/// Drives one migration through copy → publish → GC. Hold it on the
/// thread doing the split; serving continues concurrently throughout.
pub struct Migrator {
    engine: Arc<ShardedIndex>,
    mig: Arc<Migration>,
    cursor: Key,
    copy_done: bool,
    published: bool,
}

impl Migrator {
    pub fn range(&self) -> (Key, Key) {
        (self.mig.start, self.mig.last)
    }

    pub fn src(&self) -> usize {
        self.mig.src
    }

    pub fn dst(&self) -> usize {
        self.mig.dst
    }

    pub fn copy_done(&self) -> bool {
        self.copy_done
    }

    /// Copy up to `n` records from the source range into the
    /// destination. Returns true when the copy pass is complete.
    pub fn copy_chunk(&mut self, n: usize) -> bool {
        if self.copy_done {
            return true;
        }
        let st = self.engine.state.read();
        let _g = self.mig.lock.lock();
        let _site = obs::site("engine_migrate_copy");
        let src = &st.shards[self.mig.src].index;
        let dst = &st.shards[self.mig.dst].index;
        let mut buf = Vec::new();
        let got = src.scan(self.cursor, n.max(1), &mut buf);
        if got < n.max(1) {
            self.copy_done = true; // source exhausted (maybe after this batch)
        }
        for &(k, v) in &buf[..got] {
            if k > self.mig.last {
                self.copy_done = true;
                break;
            }
            // A destination entry that already exists was mirrored from
            // a newer acked write — never overwrite it.
            let _ = dst.insert(k, v);
            if k == u64::MAX {
                self.copy_done = true;
                break;
            }
            self.cursor = k + 1;
        }
        self.copy_done
    }

    /// Commit: fence the destination, flip its claim to `ACTIVE` (the
    /// single durable publish word), then split the routing table.
    /// Requires the copy pass to be complete.
    pub fn publish(&mut self) {
        assert!(self.copy_done, "publish before copy completed");
        assert!(!self.published, "already published");
        {
            let st = self.engine.state.read();
            let _site = obs::site("engine_migrate_publish");
            if let Some(p) = &st.shards[self.mig.dst].pool {
                // Everything the copier/mirrors wrote is already
                // persisted by the inner index ops; the fence makes the
                // ordering explicit before the commit word.
                p.sfence();
                p.write_root(SLOT_MIG_STATE, MIG_ACTIVE);
            }
        }
        // Acquiring the write lock drains in-flight ops (and their
        // mirrors); after the flip, the range routes to the
        // destination and the mirror path is gone.
        let mut st = self.engine.state.write();
        overlay_route(&mut st.routes, self.mig.start, self.mig.last, self.mig.dst);
        st.migration = None;
        self.published = true;
    }

    /// Scrub source leftovers of the migrated range and settle the
    /// claim. Idempotent.
    pub fn gc(&mut self) {
        assert!(self.published, "gc before publish");
        self.engine.scrub_range(self.mig.start, self.mig.last);
        let st = self.engine.state.read();
        if let Some(p) = &st.shards[self.mig.dst].pool {
            p.write_root(SLOT_MIG_STATE, MIG_SETTLED);
        }
    }

    /// Drive the whole protocol to completion in `chunk`-record steps.
    pub fn run(&mut self, chunk: usize) {
        while !self.copy_chunk(chunk) {}
        self.publish();
        self.gc();
    }
}

impl RangeIndex for ShardedIndex {
    fn insert(&self, key: Key, value: Value) -> bool {
        let st = self.state.read();
        let shard = st.routes[route_idx(&st.routes, key)].shard;
        self.note(&st, key, shard);
        match st.migration.as_ref().filter(|m| m.covers(key)) {
            Some(mig) => {
                let _g = mig.lock.lock();
                let ok = st.shards[shard].index.insert(key, value);
                if ok {
                    let dst = &st.shards[mig.dst].index;
                    if !dst.insert(key, value) {
                        dst.update(key, value);
                    }
                }
                ok
            }
            None => st.shards[shard].index.insert(key, value),
        }
    }

    fn lookup(&self, key: Key) -> Option<Value> {
        let st = self.state.read();
        let shard = st.routes[route_idx(&st.routes, key)].shard;
        self.note(&st, key, shard);
        st.shards[shard].index.lookup(key)
    }

    fn update(&self, key: Key, value: Value) -> bool {
        let st = self.state.read();
        let shard = st.routes[route_idx(&st.routes, key)].shard;
        self.note(&st, key, shard);
        match st.migration.as_ref().filter(|m| m.covers(key)) {
            Some(mig) => {
                let _g = mig.lock.lock();
                let ok = st.shards[shard].index.update(key, value);
                if ok {
                    let dst = &st.shards[mig.dst].index;
                    if !dst.update(key, value) {
                        // Not copied yet: install the fresh value now;
                        // the copier will skip it.
                        let _ = dst.insert(key, value);
                    }
                }
                ok
            }
            None => st.shards[shard].index.update(key, value),
        }
    }

    fn remove(&self, key: Key) -> bool {
        let st = self.state.read();
        let shard = st.routes[route_idx(&st.routes, key)].shard;
        self.note(&st, key, shard);
        match st.migration.as_ref().filter(|m| m.covers(key)) {
            Some(mig) => {
                let _g = mig.lock.lock();
                let ok = st.shards[shard].index.remove(key);
                if ok {
                    // May be a no-op if the copier never reached it.
                    let _ = st.shards[mig.dst].index.remove(key);
                }
                ok
            }
            None => st.shards[shard].index.remove(key),
        }
    }

    fn scan(&self, start: Key, count: usize, out: &mut Vec<(Key, Value)>) -> usize {
        let _site = obs::site("engine_scan_merge");
        out.clear();
        if count == 0 {
            return 0;
        }
        let st = self.state.read();
        let mut tmp = Vec::new();
        let mut ri = route_idx(&st.routes, start);
        let mut from = start;
        while ri < st.routes.len() && out.len() < count {
            let e = st.routes[ri];
            let mut exhausted = false;
            // One route entry can need several inner scans: the inner
            // index may return keys past `e.last` (un-GC'd leftovers on
            // a split source), which are dropped here.
            while out.len() < count && !exhausted {
                let got = st.shards[e.shard]
                    .index
                    .scan(from, count - out.len(), &mut tmp);
                exhausted = got < count - out.len();
                for &(k, v) in &tmp[..got] {
                    if k > e.last {
                        exhausted = true;
                        break;
                    }
                    out.push((k, v));
                    if out.len() == count || k == u64::MAX {
                        exhausted = true;
                        break;
                    }
                    from = k + 1;
                }
            }
            ri += 1;
            if ri < st.routes.len() {
                from = st.routes[ri].start;
            }
        }
        out.len()
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn footprint(&self) -> Footprint {
        let mut total = Footprint::default();
        for s in &self.state.read().shards {
            let f = s.index.footprint();
            total.pm_bytes += f.pm_bytes;
            total.dram_bytes += f.dram_bytes;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use index_api::testing::MapIndex;
    use pmalloc::AllocMode;
    use pmem::PmConfig;

    fn map_shard() -> Shard {
        Shard {
            index: Arc::new(MapIndex::new()) as Arc<dyn RangeIndex>,
            pool: None,
            alloc: None,
        }
    }

    fn map_sharded(n: usize) -> Arc<ShardedIndex> {
        ShardedIndex::from_parts((0..n).map(|_| map_shard()).collect())
    }

    #[test]
    fn partition_math_is_monotonic_and_covers_boundaries() {
        for n in [1usize, 2, 3, 4, 7, 16, 64] {
            assert_eq!(shard_of(0, n), 0);
            assert_eq!(shard_of(u64::MAX, n), n - 1);
            assert_eq!(shard_start(0, n), 0);
            for i in 0..n {
                let s = shard_start(i, n);
                assert_eq!(shard_of(s, n), i, "start of shard {i}/{n}");
                if s > 0 {
                    assert_eq!(shard_of(s - 1, n), i - 1, "key before shard {i}/{n}");
                }
            }
        }
    }

    #[test]
    fn base_routes_match_arithmetic_partition() {
        for n in [1usize, 2, 3, 5, 8] {
            let routes = base_routes(n);
            assert_eq!(routes.len(), n);
            assert_eq!(routes[0].start, 0);
            assert_eq!(routes[n - 1].last, u64::MAX);
            for w in routes.windows(2) {
                assert_eq!(w[0].last + 1, w[1].start, "contiguous cover");
            }
            for k in [0u64, 1, u64::MAX / 3, u64::MAX / 2, u64::MAX - 1, u64::MAX] {
                assert_eq!(routes[route_idx(&routes, k)].shard, shard_of(k, n));
            }
        }
    }

    #[test]
    fn overlay_trims_and_splits() {
        let mut routes = base_routes(2);
        // Carve the tail of shard 0's range to a new shard 2.
        let split = u64::MAX / 4;
        let end = routes[0].last;
        overlay_route(&mut routes, split, end, 2);
        assert_eq!(
            routes,
            vec![
                RouteEntry {
                    start: 0,
                    last: split - 1,
                    shard: 0
                },
                RouteEntry {
                    start: split,
                    last: end,
                    shard: 2
                },
                RouteEntry {
                    start: end + 1,
                    last: u64::MAX,
                    shard: 1
                },
            ]
        );
        // Overlay spanning several entries replaces them all.
        overlay_route(&mut routes, 10, u64::MAX - 10, 3);
        assert_eq!(
            routes,
            vec![
                RouteEntry {
                    start: 0,
                    last: 9,
                    shard: 0
                },
                RouteEntry {
                    start: 10,
                    last: u64::MAX - 10,
                    shard: 3
                },
                RouteEntry {
                    start: u64::MAX - 9,
                    last: u64::MAX,
                    shard: 1
                },
            ]
        );
    }

    #[test]
    fn routing_respects_partition() {
        let idx = map_sharded(4);
        let keys = [0u64, 1, u64::MAX / 4, u64::MAX / 2, u64::MAX - 1, u64::MAX];
        for &k in &keys {
            assert!(idx.insert(k, k ^ 1));
        }
        // Each key landed in exactly the shard the partition function says.
        for &k in &keys {
            let owner = idx.shard_of(k);
            for (i, sh) in idx.shards().iter().enumerate() {
                assert_eq!(sh.index.lookup(k).is_some(), i == owner);
            }
        }
    }

    #[test]
    fn sharded_map_passes_conformance() {
        for n in [1usize, 2, 3, 5, 8] {
            let idx = map_sharded(n);
            // Full-width keys so the stream actually straddles shards.
            index_api::oracle::check_conformance(&*idx, 0xBEEF + n as u64, 4_000, u64::MAX);
        }
    }

    #[test]
    fn scan_continues_across_empty_shards() {
        let idx = map_sharded(8);
        // Populate only shards 0 and 6.
        let lo = [1u64, 2, 3];
        let hi_base = shard_start(6, 8);
        let hi = [hi_base, hi_base + 1, hi_base + 2];
        for &k in lo.iter().chain(hi.iter()) {
            assert!(idx.insert(k, k));
        }
        let mut out = Vec::new();
        // Scan from 0 must walk through five empty shards and keep going.
        assert_eq!(idx.scan(0, 5, &mut out), 5);
        assert_eq!(
            out.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            vec![1, 2, 3, hi_base, hi_base + 1]
        );
        // count larger than the total record count drains everything.
        assert_eq!(idx.scan(0, 100, &mut out), 6);
        // Scan starting inside a trailing empty shard returns nothing.
        assert_eq!(idx.scan(shard_start(7, 8), 10, &mut out), 0);
    }

    #[test]
    fn scan_zero_count_and_clears_out() {
        let idx = map_sharded(3);
        idx.insert(10, 1);
        let mut out = vec![(99u64, 99u64)];
        assert_eq!(idx.scan(0, 0, &mut out), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn footprint_aggregates_shards() {
        let idx = map_sharded(2);
        idx.insert(1, 1); // shard 0
        idx.insert(u64::MAX, 1); // shard 1
        let f = idx.footprint();
        assert_eq!(f.dram_bytes, 32); // 16 bytes/record in MapIndex
    }

    #[test]
    fn merged_stats_sums_pools_and_resets() {
        let mk_pool = || Arc::new(PmPool::new(1 << 20, PmConfig::default()));
        let pools = [mk_pool(), mk_pool()];
        pools[0].write_u64(pmem::ROOT_AREA, 7);
        pools[0].read_u64(pmem::ROOT_AREA);
        pools[1].read_u64(pmem::ROOT_AREA);
        let shards = pools
            .iter()
            .map(|p| Shard {
                index: Arc::new(MapIndex::new()) as Arc<dyn RangeIndex>,
                pool: Some(Arc::clone(p)),
                alloc: None,
            })
            .collect();
        let idx = ShardedIndex::from_parts(shards);
        let m = idx.merged_stats();
        assert_eq!(m.read_ops, 2);
        assert_eq!(m.write_ops, 1);
        idx.reset_stats();
        assert_eq!(idx.merged_stats(), PmStatsSnapshot::default());
    }

    #[test]
    fn recover_with_runs_both_paths() {
        for parallel in [false, true] {
            let pools: Vec<_> = (0..3)
                .map(|_| {
                    let p = Arc::new(PmPool::new(4 << 20, PmConfig::default()));
                    PmAllocator::format(Arc::clone(&p), AllocMode::General);
                    p.persist_all();
                    p
                })
                .collect();
            let idx = ShardedIndex::recover_with(pools.clone(), parallel, |_, pool| {
                let alloc = PmAllocator::try_recover(pool, AllocMode::General)?;
                Ok((Arc::new(MapIndex::new()) as Arc<dyn RangeIndex>, alloc))
            })
            .expect("recovery succeeds");
            assert_eq!(idx.shard_count(), 3);
            assert_eq!(idx.pools().len(), 3);
            assert_eq!(idx.allocs().len(), 3);
            assert!(idx.insert(42, 42));
        }
    }

    #[test]
    fn sharded_name_table() {
        let idx = map_sharded(2);
        assert_eq!(idx.name(), "sharded-map-index");
    }

    #[test]
    fn loads_and_skew_accumulate() {
        let idx = map_sharded(2);
        for k in 0..100u64 {
            idx.insert(k, k); // all shard 0
        }
        let loads = idx.shard_loads();
        assert_eq!(loads[0], 100);
        assert_eq!(loads[1], 0);
        assert!(idx.skew().window_total() > 0);
        // Everything landed in histogram slot 0 → maximally skewed.
        assert!(idx.skew().is_skewed(0.9));
    }

    #[test]
    fn hot_hint_proposes_a_split_inside_the_hot_entry() {
        let idx = map_sharded(2);
        // Hammer a narrow range in the middle of shard 0.
        let base = u64::MAX / 4;
        for i in 0..5_000u64 {
            idx.insert(base + i, i);
        }
        let (shard, split) = idx.hot_hint().expect("hot traffic must hint");
        assert_eq!(shard, 0);
        assert!(split > 0 && split <= idx.routes()[0].last);
    }

    #[test]
    fn live_migration_preserves_contents_and_routing() {
        let idx = map_sharded(2);
        let mut model = std::collections::BTreeMap::new();
        // Keys spread over shard 0's range plus a few in shard 1.
        for i in 0..500u64 {
            let k = i * (u64::MAX / 600);
            idx.insert(k, i);
            model.insert(k, i);
        }
        let split = u64::MAX / 8;
        let mut mig = idx.begin_migration(split, map_shard());
        assert_eq!(mig.src(), 0);
        assert_eq!(mig.dst(), 2);
        // Interleave copying with live writes into the migrating range.
        let mut step = 0u64;
        while !mig.copy_chunk(32) {
            let k = split + 1 + step * 7919;
            if idx.insert(k, step) {
                model.insert(k, step);
            } else {
                idx.update(k, step + 1);
                model.insert(k, step + 1);
            }
            step += 1;
        }
        // Mutations in-range during migration are mirrored.
        let probe = split + 12345;
        idx.insert(probe, 777);
        model.insert(probe, 777);
        mig.publish();
        // After publish the range routes to the new shard.
        assert_eq!(idx.shard_of(split), 2);
        assert_eq!(idx.shard_of(split - 1), 0);
        assert_eq!(idx.routes().len(), 3);
        mig.gc();
        // Contents identical to the model, scan sorted and ghost-free.
        let mut out = Vec::new();
        idx.scan(0, usize::MAX >> 1, &mut out);
        let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(out, want);
        for (&k, &v) in &model {
            assert_eq!(idx.lookup(k), Some(v), "key {k}");
        }
        // Source shard no longer holds the migrated range.
        let shards = idx.shards();
        let mut src_scan = Vec::new();
        shards[0].index.scan(split, 10, &mut src_scan);
        assert!(src_scan.is_empty(), "GC must empty the source range");
        // Updates and removes keep working across the new boundary.
        assert!(idx.update(probe, 778));
        assert_eq!(idx.lookup(probe), Some(778));
        assert!(idx.remove(probe));
        assert_eq!(idx.lookup(probe), None);
    }

    #[test]
    fn migrator_run_drives_to_completion() {
        let idx = map_sharded(1);
        for k in 0..200u64 {
            idx.insert(k << 32, k);
        }
        let mut mig = idx.begin_migration(100u64 << 32, map_shard());
        mig.run(16);
        assert_eq!(idx.shard_count(), 2);
        assert_eq!(idx.routes().len(), 2);
        let mut out = Vec::new();
        assert_eq!(idx.scan(0, 500, &mut out), 200);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    #[should_panic(expected = "one migration at a time")]
    fn second_migration_is_rejected_while_active() {
        let idx = map_sharded(1);
        idx.insert(1, 1);
        let _m1 = idx.begin_migration(1 << 32, map_shard());
        let _m2 = idx.begin_migration(1 << 40, map_shard());
    }
}
