//! # engine — sharded multi-pool index layer
//!
//! Range-partitions the u64 keyspace across N shards, each an independent
//! inner [`RangeIndex`] on its **own** [`PmPool`] and [`PmAllocator`].
//! Threads operating on different shards share no locks, no allocator
//! size classes, and no pool state — the structural bottlenecks of the
//! single-pool design (allocator class locks, pool mutexes) become
//! per-shard and therefore tunable with `--shards N`.
//!
//! ## Partitioning scheme
//!
//! Shard `i` of `n` owns the contiguous key range
//! `[shard_start(i, n), shard_start(i + 1, n))`, computed by fixed-point
//! multiplication: `shard_of(key, n) = (key * n) >> 64`. This divides the
//! keyspace into n equal slices, is monotonic in `key` (so concatenating
//! per-shard scans in shard order yields a globally sorted result), and
//! needs no per-shard boundary table.
//!
//! ## Cross-shard scan continuation
//!
//! `scan(start, count)` begins in `shard_of(start)` and walks shards in
//! ascending order: when shard *i* is exhausted before `count` records
//! are produced, the scan continues from the first key of shard *i+1*
//! until `count` is met or the last shard is drained.
//!
//! ## Recovery ordering
//!
//! Shards are fully independent (private pool + allocator), so recovery
//! is embarrassingly parallel: [`ShardedIndex::recover_with`] re-opens
//! every shard either sequentially (the obviously-correct path, used by
//! the crash harness to keep failures deterministic) or on one scoped
//! thread per shard (the fast path). Either way a shard's allocator is
//! recovered before its index, and a [`MediaError`] on any shard fails
//! the whole open.

use std::sync::Arc;

use index_api::{Footprint, Key, RangeIndex, Value};
use pmalloc::PmAllocator;
use pmem::{MediaError, PmPool, PmStatsSnapshot};

/// One shard: an inner index plus the PM state backing it (absent for
/// DRAM-only inners).
pub struct Shard {
    pub index: Arc<dyn RangeIndex>,
    pub pool: Option<Arc<PmPool>>,
    pub alloc: Option<Arc<PmAllocator>>,
}

/// Which shard owns `key` when the keyspace is split into `n` equal
/// ranges. Monotonic in `key`; `shard_of(0, n) == 0` and
/// `shard_of(u64::MAX, n) == n - 1`.
#[inline]
pub fn shard_of(key: Key, n: usize) -> usize {
    debug_assert!(n >= 1);
    ((key as u128 * n as u128) >> 64) as usize
}

/// Smallest key owned by shard `i` of `n` (`i < n`), i.e.
/// `ceil(i * 2^64 / n)`.
#[inline]
pub fn shard_start(i: usize, n: usize) -> Key {
    debug_assert!(i < n);
    (((i as u128) << 64).div_ceil(n as u128)) as Key
}

fn sharded_name(inner: &str) -> &'static str {
    match inner {
        "fptree" => "sharded-fptree",
        "fptree-nofp" => "sharded-fptree-nofp",
        "fptree-varkey" => "sharded-fptree-varkey",
        "nvtree" => "sharded-nvtree",
        "wbtree" => "sharded-wbtree",
        "wbtree-noslots" => "sharded-wbtree-noslots",
        "bztree" => "sharded-bztree",
        "learned" => "sharded-learned",
        "dram-btree" => "sharded-dram-btree",
        "map-index" => "sharded-map-index",
        _ => "sharded",
    }
}

/// A range-partitioned federation of inner indexes that itself
/// implements the full [`RangeIndex`] contract.
pub struct ShardedIndex {
    shards: Vec<Shard>,
    name: &'static str,
}

impl ShardedIndex {
    /// Assemble from pre-built shards (shard `i` must hold key range
    /// `[shard_start(i, n), shard_start(i + 1, n))`; the builder is
    /// responsible for routing prefill through this wrapper so that
    /// invariant holds).
    pub fn from_parts(shards: Vec<Shard>) -> Arc<Self> {
        assert!(!shards.is_empty(), "ShardedIndex needs at least one shard");
        let name = sharded_name(shards[0].index.name());
        Arc::new(Self { shards, name })
    }

    /// Re-open every shard from its pool's persisted image. `f` recovers
    /// one shard (allocator first, then index) and is called once per
    /// pool — sequentially when `parallel` is false, on one scoped
    /// thread per shard otherwise. The first [`MediaError`] aborts the
    /// open (on the parallel path the error of the lowest-indexed
    /// failing shard is reported, so both paths fail deterministically).
    pub fn recover_with<F>(
        pools: Vec<Arc<PmPool>>,
        parallel: bool,
        f: F,
    ) -> Result<Arc<Self>, MediaError>
    where
        F: Fn(usize, Arc<PmPool>) -> Result<(Arc<dyn RangeIndex>, Arc<PmAllocator>), MediaError>
            + Sync,
    {
        let _site = obs::site("engine_recovery");
        assert!(!pools.is_empty(), "ShardedIndex needs at least one shard");
        let recovered: Result<Vec<_>, MediaError> = if parallel && pools.len() > 1 {
            std::thread::scope(|s| {
                let handles: Vec<_> = pools
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        let f = &f;
                        let p = Arc::clone(p);
                        s.spawn(move || f(i, p))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard recovery thread panicked"))
                    .collect()
            })
        } else {
            pools
                .iter()
                .enumerate()
                .map(|(i, p)| f(i, Arc::clone(p)))
                .collect()
        };
        let shards = recovered?
            .into_iter()
            .zip(pools)
            .map(|((index, alloc), pool)| Shard {
                index,
                pool: Some(pool),
                alloc: Some(alloc),
            })
            .collect();
        Ok(Self::from_parts(shards))
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Index of the shard owning `key`.
    #[inline]
    pub fn shard_of(&self, key: Key) -> usize {
        shard_of(key, self.shards.len())
    }

    /// First key owned by shard `i`.
    #[inline]
    pub fn shard_start(&self, i: usize) -> Key {
        shard_start(i, self.shards.len())
    }

    /// The backing pools, in shard order (empty for DRAM inners).
    pub fn pools(&self) -> Vec<Arc<PmPool>> {
        self.shards.iter().filter_map(|s| s.pool.clone()).collect()
    }

    /// The backing allocators, in shard order (empty for DRAM inners).
    pub fn allocs(&self) -> Vec<Arc<PmAllocator>> {
        self.shards.iter().filter_map(|s| s.alloc.clone()).collect()
    }

    /// Counter-wise sum of every shard pool's statistics.
    pub fn merged_stats(&self) -> PmStatsSnapshot {
        let snaps: Vec<PmStatsSnapshot> = self
            .shards
            .iter()
            .filter_map(|s| s.pool.as_ref().map(|p| p.stats()))
            .collect();
        PmStatsSnapshot::merged(snaps.iter())
    }

    /// Reset every shard pool's counters.
    pub fn reset_stats(&self) {
        for s in &self.shards {
            if let Some(p) = &s.pool {
                p.reset_stats();
            }
        }
    }

    #[inline]
    fn shard_index(&self, key: Key) -> &dyn RangeIndex {
        &*self.shards[self.shard_of(key)].index
    }
}

impl RangeIndex for ShardedIndex {
    fn insert(&self, key: Key, value: Value) -> bool {
        self.shard_index(key).insert(key, value)
    }

    fn lookup(&self, key: Key) -> Option<Value> {
        self.shard_index(key).lookup(key)
    }

    fn update(&self, key: Key, value: Value) -> bool {
        self.shard_index(key).update(key, value)
    }

    fn remove(&self, key: Key) -> bool {
        self.shard_index(key).remove(key)
    }

    fn scan(&self, start: Key, count: usize, out: &mut Vec<(Key, Value)>) -> usize {
        let _site = obs::site("engine_scan_merge");
        out.clear();
        if count == 0 {
            return 0;
        }
        let mut tmp = Vec::new();
        let mut s = self.shard_of(start);
        let mut from = start;
        while s < self.shards.len() && out.len() < count {
            let got = self.shards[s].index.scan(from, count - out.len(), &mut tmp);
            out.extend_from_slice(&tmp[..got]);
            s += 1;
            if s < self.shards.len() {
                from = self.shard_start(s);
            }
        }
        out.len()
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn footprint(&self) -> Footprint {
        let mut total = Footprint::default();
        for s in &self.shards {
            let f = s.index.footprint();
            total.pm_bytes += f.pm_bytes;
            total.dram_bytes += f.dram_bytes;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use index_api::testing::MapIndex;
    use pmalloc::AllocMode;
    use pmem::PmConfig;

    fn map_sharded(n: usize) -> Arc<ShardedIndex> {
        let shards = (0..n)
            .map(|_| Shard {
                index: Arc::new(MapIndex::new()) as Arc<dyn RangeIndex>,
                pool: None,
                alloc: None,
            })
            .collect();
        ShardedIndex::from_parts(shards)
    }

    #[test]
    fn partition_math_is_monotonic_and_covers_boundaries() {
        for n in [1usize, 2, 3, 4, 7, 16, 64] {
            assert_eq!(shard_of(0, n), 0);
            assert_eq!(shard_of(u64::MAX, n), n - 1);
            assert_eq!(shard_start(0, n), 0);
            for i in 0..n {
                let s = shard_start(i, n);
                assert_eq!(shard_of(s, n), i, "start of shard {i}/{n}");
                if s > 0 {
                    assert_eq!(shard_of(s - 1, n), i - 1, "key before shard {i}/{n}");
                }
            }
        }
    }

    #[test]
    fn routing_respects_partition() {
        let idx = map_sharded(4);
        let keys = [0u64, 1, u64::MAX / 4, u64::MAX / 2, u64::MAX - 1, u64::MAX];
        for &k in &keys {
            assert!(idx.insert(k, k ^ 1));
        }
        // Each key landed in exactly the shard the partition function says.
        for &k in &keys {
            let owner = idx.shard_of(k);
            for (i, sh) in idx.shards().iter().enumerate() {
                assert_eq!(sh.index.lookup(k).is_some(), i == owner);
            }
        }
    }

    #[test]
    fn sharded_map_passes_conformance() {
        for n in [1usize, 2, 3, 5, 8] {
            let idx = map_sharded(n);
            // Full-width keys so the stream actually straddles shards.
            index_api::oracle::check_conformance(&*idx, 0xBEEF + n as u64, 4_000, u64::MAX);
        }
    }

    #[test]
    fn scan_continues_across_empty_shards() {
        let idx = map_sharded(8);
        // Populate only shards 0 and 6.
        let lo = [1u64, 2, 3];
        let hi_base = shard_start(6, 8);
        let hi = [hi_base, hi_base + 1, hi_base + 2];
        for &k in lo.iter().chain(hi.iter()) {
            assert!(idx.insert(k, k));
        }
        let mut out = Vec::new();
        // Scan from 0 must walk through five empty shards and keep going.
        assert_eq!(idx.scan(0, 5, &mut out), 5);
        assert_eq!(
            out.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            vec![1, 2, 3, hi_base, hi_base + 1]
        );
        // count larger than the total record count drains everything.
        assert_eq!(idx.scan(0, 100, &mut out), 6);
        // Scan starting inside a trailing empty shard returns nothing.
        assert_eq!(idx.scan(shard_start(7, 8), 10, &mut out), 0);
    }

    #[test]
    fn scan_zero_count_and_clears_out() {
        let idx = map_sharded(3);
        idx.insert(10, 1);
        let mut out = vec![(99u64, 99u64)];
        assert_eq!(idx.scan(0, 0, &mut out), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn footprint_aggregates_shards() {
        let idx = map_sharded(2);
        idx.insert(1, 1); // shard 0
        idx.insert(u64::MAX, 1); // shard 1
        let f = idx.footprint();
        assert_eq!(f.dram_bytes, 32); // 16 bytes/record in MapIndex
    }

    #[test]
    fn merged_stats_sums_pools_and_resets() {
        let mk_pool = || Arc::new(PmPool::new(1 << 20, PmConfig::default()));
        let pools = [mk_pool(), mk_pool()];
        pools[0].write_u64(pmem::ROOT_AREA, 7);
        pools[0].read_u64(pmem::ROOT_AREA);
        pools[1].read_u64(pmem::ROOT_AREA);
        let shards = pools
            .iter()
            .map(|p| Shard {
                index: Arc::new(MapIndex::new()) as Arc<dyn RangeIndex>,
                pool: Some(Arc::clone(p)),
                alloc: None,
            })
            .collect();
        let idx = ShardedIndex::from_parts(shards);
        let m = idx.merged_stats();
        assert_eq!(m.read_ops, 2);
        assert_eq!(m.write_ops, 1);
        idx.reset_stats();
        assert_eq!(idx.merged_stats(), PmStatsSnapshot::default());
    }

    #[test]
    fn recover_with_runs_both_paths() {
        for parallel in [false, true] {
            let pools: Vec<_> = (0..3)
                .map(|_| {
                    let p = Arc::new(PmPool::new(4 << 20, PmConfig::default()));
                    PmAllocator::format(Arc::clone(&p), AllocMode::General);
                    p.persist_all();
                    p
                })
                .collect();
            let idx = ShardedIndex::recover_with(pools.clone(), parallel, |_, pool| {
                let alloc = PmAllocator::try_recover(pool, AllocMode::General)?;
                Ok((Arc::new(MapIndex::new()) as Arc<dyn RangeIndex>, alloc))
            })
            .expect("recovery succeeds");
            assert_eq!(idx.shard_count(), 3);
            assert_eq!(idx.pools().len(), 3);
            assert_eq!(idx.allocs().len(), 3);
            assert!(idx.insert(42, 42));
        }
    }

    #[test]
    fn sharded_name_table() {
        let idx = map_sharded(2);
        assert_eq!(idx.name(), "sharded-map-index");
    }
}
