//! DRAM-resident inner nodes.
//!
//! Inner nodes only guide traffic; they are rebuilt from the leaf chain
//! on recovery, so nothing here is persisted. All fields are atomics:
//! structure-modifying operations mutate them in place under the HTM
//! write transaction while speculative readers may race past — readers
//! tolerate torn values and rely on version validation to discard any
//! result computed from them.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Tag a PM leaf offset as a child word (low bit set).
#[inline]
pub fn tag_leaf(off: u64) -> u64 {
    debug_assert!(off << 1 >> 1 == off, "offset too large to tag");
    (off << 1) | 1
}

/// Tag a DRAM inner-node pointer as a child word (low bit clear).
#[inline]
pub fn tag_inner(ptr: *const Inner) -> u64 {
    let p = ptr as u64;
    debug_assert_eq!(p & 1, 0);
    p
}

/// Whether a child word refers to a leaf.
#[inline]
pub fn is_leaf(word: u64) -> bool {
    word & 1 == 1
}

/// Extract the PM offset from a leaf child word.
#[inline]
pub fn leaf_off(word: u64) -> u64 {
    word >> 1
}

/// Extract the inner-node pointer from a child word.
///
/// # Safety
/// `word` must be a live inner-node pointer created by [`tag_inner`].
/// The tree never frees inner nodes while operations run, so traversals
/// may dereference any child word they observe.
#[inline]
pub unsafe fn inner_ref<'a>(word: u64) -> &'a Inner {
    &*(word as *const Inner)
}

/// A B+-tree inner node: `nkeys` sorted separator keys and `nkeys + 1`
/// children. Child `i` covers keys in `[keys[i-1], keys[i])`.
pub struct Inner {
    nkeys: AtomicUsize,
    keys: Box<[AtomicU64]>,
    children: Box<[AtomicU64]>,
}

impl Inner {
    /// Empty node with room for `fanout` keys.
    pub fn new(fanout: usize) -> Box<Inner> {
        Box::new(Inner {
            nkeys: AtomicUsize::new(0),
            keys: (0..fanout).map(|_| AtomicU64::new(0)).collect(),
            children: (0..fanout + 1).map(|_| AtomicU64::new(0)).collect(),
        })
    }

    /// Number of separator keys (clamped for torn reads).
    #[inline]
    pub fn nkeys(&self) -> usize {
        self.nkeys.load(Ordering::Acquire).min(self.keys.len())
    }

    /// Whether the node is full.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.nkeys() == self.keys.len()
    }

    /// Separator key `i`.
    #[inline]
    pub fn key(&self, i: usize) -> u64 {
        self.keys[i].load(Ordering::Acquire)
    }

    /// Child word `i`.
    #[inline]
    pub fn child(&self, i: usize) -> u64 {
        self.children[i].load(Ordering::Acquire)
    }

    /// Index of the child that covers `key`.
    #[inline]
    pub fn route(&self, key: u64) -> usize {
        let n = self.nkeys();
        // Binary search for the first separator greater than `key`.
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if key < self.key(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    /// Child word covering `key` (may be 0 on a torn read; callers
    /// abort and retry).
    #[inline]
    pub fn child_for(&self, key: u64) -> u64 {
        self.child(self.route(key))
    }

    /// Insert separator `key` with `right` as the child to its right.
    /// Caller must hold the write transaction and ensure the node is not
    /// full.
    pub fn insert(&self, key: u64, right: u64) {
        let n = self.nkeys();
        debug_assert!(n < self.keys.len());
        let pos = self.route(key);
        // Shift from the end so concurrent speculative readers only ever
        // see valid (if possibly stale) words.
        let mut i = n;
        while i > pos {
            let k = self.keys[i - 1].load(Ordering::Acquire);
            self.keys[i].store(k, Ordering::Release);
            let c = self.children[i].load(Ordering::Acquire);
            self.children[i + 1].store(c, Ordering::Release);
            i -= 1;
        }
        self.keys[pos].store(key, Ordering::Release);
        self.children[pos + 1].store(right, Ordering::Release);
        self.nkeys.store(n + 1, Ordering::Release);
    }

    /// Initialize slot 0 for a fresh root: one separator, two children.
    pub fn init_root(&self, key: u64, left: u64, right: u64) {
        self.keys[0].store(key, Ordering::Release);
        self.children[0].store(left, Ordering::Release);
        self.children[1].store(right, Ordering::Release);
        self.nkeys.store(1, Ordering::Release);
    }

    /// Split a full node: moves the upper half into `right_node` and
    /// returns the separator key to promote. Caller holds the write
    /// transaction.
    pub fn split_into(&self, right_node: &Inner) -> u64 {
        let n = self.nkeys();
        debug_assert_eq!(n, self.keys.len());
        let mid = n / 2;
        let promote = self.key(mid);
        let moved = n - mid - 1;
        for i in 0..moved {
            right_node.keys[i].store(self.key(mid + 1 + i), Ordering::Release);
        }
        for i in 0..=moved {
            right_node.children[i].store(self.child(mid + 1 + i), Ordering::Release);
        }
        right_node.nkeys.store(moved, Ordering::Release);
        self.nkeys.store(mid, Ordering::Release);
        promote
    }

    /// Bulk-load construction: set keys/children wholesale (recovery).
    pub fn load(&self, keys: &[u64], children: &[u64]) {
        debug_assert_eq!(children.len(), keys.len() + 1);
        debug_assert!(keys.len() <= self.keys.len());
        for (i, &k) in keys.iter().enumerate() {
            self.keys[i].store(k, Ordering::Release);
        }
        for (i, &c) in children.iter().enumerate() {
            self.children[i].store(c, Ordering::Release);
        }
        self.nkeys.store(keys.len(), Ordering::Release);
    }

    /// Approximate DRAM footprint of one node.
    pub fn dram_bytes(fanout: usize) -> u64 {
        (std::mem::size_of::<Inner>() + (2 * fanout + 1) * 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagging_roundtrip() {
        let w = tag_leaf(0xABCD00);
        assert!(is_leaf(w));
        assert_eq!(leaf_off(w), 0xABCD00);
        let node = Inner::new(4);
        let w = tag_inner(&*node);
        assert!(!is_leaf(w));
    }

    #[test]
    fn routing() {
        let n = Inner::new(8);
        n.init_root(10, 100, 101);
        n.insert(20, 102);
        n.insert(30, 103);
        assert_eq!(n.route(5), 0);
        assert_eq!(n.route(10), 1);
        assert_eq!(n.route(15), 1);
        assert_eq!(n.route(25), 2);
        assert_eq!(n.route(30), 3);
        assert_eq!(n.route(99), 3);
        assert_eq!(n.child_for(5), 100);
        assert_eq!(n.child_for(25), 102);
        assert_eq!(n.child_for(99), 103);
    }

    #[test]
    fn insert_keeps_sorted_order() {
        let n = Inner::new(16);
        n.init_root(50, 1, 2);
        for (k, c) in [(30u64, 3u64), (70, 4), (10, 5), (60, 6)] {
            n.insert(k, c);
        }
        let keys: Vec<u64> = (0..n.nkeys()).map(|i| n.key(i)).collect();
        assert_eq!(keys, vec![10, 30, 50, 60, 70]);
        // Child to the right of key 60 is 6.
        assert_eq!(n.child(n.route(60)), 6);
    }

    #[test]
    fn split_moves_upper_half() {
        let n = Inner::new(4);
        n.init_root(10, 0, 1);
        n.insert(20, 2);
        n.insert(30, 3);
        n.insert(40, 4);
        assert!(n.is_full());
        let right = Inner::new(4);
        let promote = n.split_into(&right);
        assert_eq!(promote, 30);
        assert_eq!(n.nkeys(), 2);
        assert_eq!(right.nkeys(), 1);
        assert_eq!(right.key(0), 40);
        assert_eq!(right.child(0), 3);
        assert_eq!(right.child(1), 4);
        // Left retains 10, 20 with children 0,1,2.
        assert_eq!(n.key(0), 10);
        assert_eq!(n.key(1), 20);
        assert_eq!(n.child(2), 2);
    }

    #[test]
    fn bulk_load() {
        let n = Inner::new(8);
        n.load(&[10, 20], &[7, 8, 9]);
        assert_eq!(n.nkeys(), 2);
        assert_eq!(n.child_for(15), 8);
    }
}
