//! PM leaf-node layout, parameterized at runtime so node-size ablations
//! (E12) can sweep it.

use pmem::align_up;

/// Byte layout of one PM-resident leaf:
///
/// ```text
/// +0   bitmap   u64   slot-validity bits (bit i = slot i live)
/// +8   vlock    u64   version lock: odd = write-locked (runtime only)
/// +16  next     u64   pool offset of the right sibling (0 = none)
/// +24  fps      [u8]  one fingerprint byte per slot (padded to 8)
/// +K   keys     [u64] per-slot keys
/// +V   vals     [u64] per-slot values
/// ```
///
/// `bitmap` is the only commit point: a record exists iff its bit is
/// set, which is why an 8-byte atomic bitmap write gives failure
/// atomicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafLayout {
    /// Slots per leaf (≤ 64).
    pub entries: usize,
    /// Offset of the fingerprint array.
    pub fp_off: u64,
    /// Offset of the key array.
    pub keys_off: u64,
    /// Offset of the value array.
    pub vals_off: u64,
    /// Total leaf size in bytes.
    pub size: usize,
}

/// Offset of the slot bitmap within a leaf.
pub const BITMAP_OFF: u64 = 0;
/// Offset of the version lock within a leaf.
pub const VLOCK_OFF: u64 = 8;
/// Offset of the next-sibling pointer within a leaf.
pub const NEXT_OFF: u64 = 16;

impl LeafLayout {
    /// Layout for `entries` slots.
    pub fn new(entries: usize) -> Self {
        assert!(
            (1..=64).contains(&entries),
            "leaf entries must be in 1..=64 (one bitmap word)"
        );
        let fp_off = 24;
        let keys_off = align_up(fp_off + entries as u64, 8);
        let vals_off = keys_off + 8 * entries as u64;
        let size = (vals_off + 8 * entries as u64) as usize;
        Self {
            entries,
            fp_off,
            keys_off,
            vals_off,
            size,
        }
    }

    /// Offset of slot `i`'s fingerprint byte.
    #[inline]
    pub fn fp(&self, base: u64, i: usize) -> u64 {
        base + self.fp_off + i as u64
    }

    /// Offset of slot `i`'s key.
    #[inline]
    pub fn key(&self, base: u64, i: usize) -> u64 {
        base + self.keys_off + 8 * i as u64
    }

    /// Offset of slot `i`'s value.
    #[inline]
    pub fn val(&self, base: u64, i: usize) -> u64 {
        base + self.vals_off + 8 * i as u64
    }

    /// Bitmask covering all valid slots.
    #[inline]
    pub fn full_mask(&self) -> u64 {
        if self.entries == 64 {
            u64::MAX
        } else {
            (1u64 << self.entries) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_layout() {
        let l = LeafLayout::new(64);
        assert_eq!(l.fp_off, 24);
        assert_eq!(l.keys_off, 88); // 24 + 64 fingerprints, already aligned
        assert_eq!(l.vals_off, 88 + 512);
        assert_eq!(l.size, 88 + 512 + 512); // 1112 bytes
        assert_eq!(l.full_mask(), u64::MAX);
    }

    #[test]
    fn odd_entry_counts_are_padded() {
        let l = LeafLayout::new(14);
        assert_eq!(l.keys_off, 40); // 24 + 14 → padded to 40
        assert_eq!(l.full_mask(), (1 << 14) - 1);
    }

    #[test]
    fn slot_offsets() {
        let l = LeafLayout::new(8);
        let base = 1 << 20;
        assert_eq!(l.fp(base, 3), base + 24 + 3);
        assert_eq!(l.key(base, 3), base + 32 + 24);
        assert_eq!(l.val(base, 3), base + 32 + 64 + 24);
    }

    #[test]
    #[should_panic(expected = "leaf entries")]
    fn rejects_oversized_leaf() {
        LeafLayout::new(65);
    }
}
