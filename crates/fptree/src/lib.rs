//! # fptree — FPTree (Oukid et al., SIGMOD 2016)
//!
//! The best-performing pre-Optane persistent range index, reimplemented
//! faithfully from the paper (the original code is proprietary — the
//! evaluation paper also had to reimplement it):
//!
//! * **Hybrid DRAM–PM architecture.** Inner nodes live in DRAM and only
//!   guide traffic; leaf nodes live in PM and hold the truth. Inner
//!   nodes are rebuilt from the leaf chain on recovery (bulk loading),
//!   trading instant recovery for DRAM-speed traversal.
//! * **Unsorted leaves with fingerprints.** Leaves keep a slot bitmap
//!   and one-byte key hashes; a lookup probes fingerprints first and
//!   touches PM-resident keys only on a hash match, cutting PM reads
//!   dramatically (especially negative lookups). The fingerprint probe
//!   can be disabled ([`FpTreeConfig::use_fingerprints`]) for the E9
//!   ablation.
//! * **Selective concurrency.** Traversals run as (emulated) HTM
//!   transactions; leaf writers take a per-leaf version lock, which
//!   doubles as the optimistic-read validation readers need (real HTM
//!   provides that validation in hardware; see the `htm` crate docs).
//! * **Crash-consistent inserts and splits.** An insert persists the
//!   record and fingerprint before atomically publishing the slot
//!   bitmap (8-byte write). A split runs under a persistent micro-log
//!   (allocate-and-publish via `pmalloc`), so recovery either completes
//!   a published split or rolls back an unpublished one.
//!
//! See [`FpTree`] for the API and `tree.rs` for the recovery protocol.

mod inner;
mod layout;
mod tree;

pub use layout::LeafLayout;
pub use tree::FpTree;

/// How leaf key words store keys.
///
/// FPTree supports variable-length keys the way the paper describes
/// (Table 1, "Var. Keys = Pointer"): the 8-byte key field holds a
/// pointer to a key cell in the persistent heap, and every comparison
/// dereferences it. [`KeyMode::Pointer`] forces that path for the
/// standard 8-byte keys so the indirection cost can be measured in
/// isolation (experiment E14) — exactly the methodology the evaluation
/// papers use. Fingerprints still hash the *actual* key, so a
/// fingerprint miss skips the dereference entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyMode {
    /// Keys stored inline in the leaf (the fixed-length fast path).
    Inline,
    /// Key fields are pool offsets of heap-stored key cells.
    Pointer,
}

/// Tuning knobs. Defaults follow the evaluation papers: 128-entry inner
/// nodes, 64-entry leaves, fingerprints on, inline keys.
#[derive(Debug, Clone, Copy)]
pub struct FpTreeConfig {
    /// Records per leaf node (max 64: the slot bitmap is one word).
    pub leaf_entries: usize,
    /// Keys per inner node.
    pub inner_fanout: usize,
    /// Probe one-byte fingerprints before touching keys (E9 ablation).
    pub use_fingerprints: bool,
    /// Inline vs pointer-stored keys (E14 ablation).
    pub key_mode: KeyMode,
}

impl Default for FpTreeConfig {
    fn default() -> Self {
        Self {
            leaf_entries: 64,
            inner_fanout: 128,
            use_fingerprints: true,
            key_mode: KeyMode::Inline,
        }
    }
}

/// One-byte key fingerprint (multiplicative hash, top byte).
#[inline]
pub fn fingerprint(key: u64) -> u8 {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_spread() {
        // Not a crypto test — just confirm adjacent keys do not collapse
        // onto a handful of fingerprint values.
        let mut seen = std::collections::HashSet::new();
        for k in 0..1024u64 {
            seen.insert(fingerprint(k));
        }
        assert!(
            seen.len() > 200,
            "only {} distinct fingerprints",
            seen.len()
        );
    }

    #[test]
    fn default_config_matches_paper() {
        let c = FpTreeConfig::default();
        assert_eq!(c.leaf_entries, 64);
        assert_eq!(c.inner_fanout, 128);
        assert!(c.use_fingerprints);
    }
}
