//! The FPTree proper: operations, splits, recovery.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use htm::{Abort, Htm};
use index_api::{Footprint, Key, RangeIndex, Value};
use pmalloc::PmAllocator;
use pmem::{MediaError, PmPool};

use crate::inner::{self, Inner};
use crate::layout::{LeafLayout, BITMAP_OFF, NEXT_OFF, VLOCK_OFF};
use crate::{fingerprint, FpTreeConfig, KeyMode};

// Root-area slots used by FPTree (8-byte slots; the allocator's own
// metadata lives past the root area).
const SLOT_HEAD: u64 = 8; // leftmost leaf (entry point for recovery)
const SLOT_LOG_OLD: u64 = 9; // split micro-log: leaf being split
const SLOT_LOG_NEW: u64 = 10; // split micro-log: new right sibling
const SLOT_LOG_KEY: u64 = 11; // split micro-log: separator key
const SLOT_LOG_VALID: u64 = 12; // split micro-log: commit flag
const SLOT_CFG: u64 = 13; // persisted leaf_entries for config validation

#[inline]
fn slot_off(slot: u64) -> u64 {
    slot * 8
}

/// FPTree: hybrid DRAM–PM persistent B+-tree (see crate docs).
pub struct FpTree {
    alloc: Arc<PmAllocator>,
    htm: Htm,
    /// Tagged root child word (leaf offset or inner pointer).
    root: AtomicU64,
    layout: LeafLayout,
    cfg: FpTreeConfig,
    /// DRAM inner nodes currently allocated (for footprint reporting).
    inner_count: AtomicU64,
}

// SAFETY: the only non-auto-Send/Sync state is the tagged pointers in
// `root`/inner nodes, which are managed under the documented HTM
// protocol (inner nodes are never freed while operations run).
unsafe impl Send for FpTree {}
unsafe impl Sync for FpTree {}

impl FpTree {
    /// Create a fresh tree on a formatted allocator/pool.
    pub fn create(alloc: Arc<PmAllocator>, cfg: FpTreeConfig) -> Arc<FpTree> {
        let layout = LeafLayout::new(cfg.leaf_entries);
        let pool = alloc.pool().clone();
        let head = alloc
            .alloc_linked(layout.size, slot_off(SLOT_HEAD))
            .expect("pool too small for FPTree head leaf");
        pool.write_u64(head + BITMAP_OFF, 0);
        pool.write_u64(head + VLOCK_OFF, 0);
        pool.write_u64(head + NEXT_OFF, 0);
        pool.persist(head, 24);
        pool.write_u64(slot_off(SLOT_CFG), cfg.leaf_entries as u64);
        pool.persist(slot_off(SLOT_CFG), 8);
        Arc::new(FpTree {
            alloc,
            htm: Htm::new(),
            root: AtomicU64::new(inner::tag_leaf(head)),
            layout,
            cfg,
            inner_count: AtomicU64::new(0),
        })
    }

    /// Reopen after a crash or shutdown: replay the split micro-log,
    /// clear leaf version locks, and rebuild the DRAM inner nodes by
    /// bulk-loading from the persistent leaf chain. Panics on a media
    /// error; use [`FpTree::try_recover`] to handle poisoned lines
    /// gracefully.
    pub fn recover(alloc: Arc<PmAllocator>, cfg: FpTreeConfig) -> Arc<FpTree> {
        Self::try_recover(alloc, cfg).unwrap_or_else(|e| panic!("FPTree recovery failed: {e}"))
    }

    /// Fallible recovery: probes the root slots (head pointer, split
    /// micro-log, config) and every leaf in the chain for media errors
    /// before reading it — and before the vlock clears write to it —
    /// so a poisoned line surfaces as a reported [`MediaError`], never
    /// as garbage records or routing keys.
    pub fn try_recover(
        alloc: Arc<PmAllocator>,
        cfg: FpTreeConfig,
    ) -> Result<Arc<FpTree>, MediaError> {
        let pool = alloc.pool().clone();
        pool.check_readable(slot_off(SLOT_HEAD), 48)
            .map_err(|e| e.context("FPTree root slots"))?;
        let persisted_entries = pool.read_u64(slot_off(SLOT_CFG)) as usize;
        assert_eq!(
            persisted_entries, cfg.leaf_entries,
            "recover() config must match the on-media leaf layout"
        );
        let layout = LeafLayout::new(cfg.leaf_entries);
        let tree = FpTree {
            alloc,
            htm: Htm::new(),
            root: AtomicU64::new(0),
            layout,
            cfg,
            inner_count: AtomicU64::new(0),
        };
        tree.replay_split_log()?;
        tree.rebuild_from_leaves()?;
        Ok(Arc::new(tree))
    }

    #[inline]
    fn pool(&self) -> &PmPool {
        self.alloc.pool()
    }

    /// The HTM domain (exposed for abort-rate analysis in experiments).
    pub fn htm_stats(&self) -> htm::HtmStats {
        self.htm.stats()
    }

    // ----- leaf primitives -------------------------------------------------

    /// Try to acquire a leaf's version lock. Returns the pre-lock (even)
    /// version on success.
    fn leaf_try_lock(&self, leaf: u64) -> Option<u64> {
        let v = self.pool().load_u64(leaf + VLOCK_OFF, Ordering::Acquire);
        if v & 1 == 1 {
            return None;
        }
        self.pool().cas_u64(leaf + VLOCK_OFF, v, v + 1).ok()
    }

    /// Release a leaf lock, bumping the version so optimistic readers
    /// revalidate.
    fn leaf_unlock(&self, leaf: u64) {
        let v = self.pool().load_u64(leaf + VLOCK_OFF, Ordering::Relaxed);
        debug_assert_eq!(v & 1, 1, "unlocking an unlocked leaf");
        self.pool()
            .store_u64(leaf + VLOCK_OFF, v + 1, Ordering::Release);
    }

    /// The key stored in `slot` (dereferencing the key cell in pointer
    /// mode — the extra PM read E14 measures).
    #[inline]
    fn slot_key(&self, leaf: u64, slot: usize) -> Key {
        let w = self.pool().read_u64(self.layout.key(leaf, slot));
        match self.cfg.key_mode {
            KeyMode::Inline => w,
            KeyMode::Pointer => self.pool().read_u64(w),
        }
    }

    /// Free the key cell referenced by `slot` (pointer mode only); call
    /// after the slot's bitmap bit is durably clear.
    fn free_key_cell(&self, leaf: u64, slot: usize) {
        if self.cfg.key_mode == KeyMode::Pointer {
            let cell = self.pool().read_u64(self.layout.key(leaf, slot));
            self.alloc.free(cell);
        }
    }

    /// Find `key` in a leaf. Returns `(slot, value)` if present. Callers
    /// must hold the leaf lock or validate versions around the call.
    fn find_in_leaf(&self, leaf: u64, key: Key) -> Option<(usize, Value)> {
        let pool = self.pool();
        let bitmap = pool.read_u64(leaf + BITMAP_OFF) & self.layout.full_mask();
        if self.cfg.use_fingerprints {
            let mut fps = [0u8; 64];
            pool.read_bytes(leaf + self.layout.fp_off, &mut fps[..self.layout.entries]);
            let want = fingerprint(key);
            let mut bits = bitmap;
            while bits != 0 {
                let slot = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if fps[slot] == want && self.slot_key(leaf, slot) == key {
                    return Some((slot, pool.read_u64(self.layout.val(leaf, slot))));
                }
            }
        } else {
            let mut bits = bitmap;
            while bits != 0 {
                let slot = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if self.slot_key(leaf, slot) == key {
                    return Some((slot, pool.read_u64(self.layout.val(leaf, slot))));
                }
            }
        }
        None
    }

    /// Write a record into `slot` of a locked leaf with FPTree's
    /// persistence order: record + fingerprint first, then the atomic
    /// bitmap publication.
    fn write_record(&self, leaf: u64, slot: usize, key: Key, value: Value) {
        let pool = self.pool();
        let key_word = match self.cfg.key_mode {
            KeyMode::Inline => key,
            KeyMode::Pointer => {
                // Store the key out of line, as variable-length keys
                // would be. (A crash between this allocation and the
                // bitmap publication leaks the cell — the same window
                // the original pointer-based designs accept.)
                let cell = self
                    .alloc
                    .alloc(16)
                    .expect("PM pool exhausted allocating key cell");
                pool.write_u64(cell, key);
                pool.clwb(cell, 8);
                cell
            }
        };
        pool.write_u64(self.layout.key(leaf, slot), key_word);
        pool.write_u64(self.layout.val(leaf, slot), value);
        let mut fp = [0u8; 1];
        fp[0] = fingerprint(key);
        pool.write_bytes(self.layout.fp(leaf, slot), &fp);
        pool.clwb(self.layout.key(leaf, slot), 8);
        pool.clwb(self.layout.val(leaf, slot), 8);
        pool.clwb(self.layout.fp(leaf, slot), 1);
        pool.sfence();
    }

    /// Atomically publish a new bitmap for a locked leaf.
    fn publish_bitmap(&self, leaf: u64, bitmap: u64) {
        let pool = self.pool();
        pool.write_u64(leaf + BITMAP_OFF, bitmap);
        pool.persist(leaf + BITMAP_OFF, 8);
    }

    // ----- traversal ---------------------------------------------------------

    /// Descend the DRAM inner nodes to the leaf covering `key`.
    /// Tolerates torn reads (returns `Err(Abort)` on anything odd); the
    /// caller validates via the HTM version.
    fn traverse(&self, key: Key) -> Result<u64, Abort> {
        let mut w = self.root.load(Ordering::Acquire);
        for _ in 0..64 {
            if w == 0 {
                return Err(Abort);
            }
            if inner::is_leaf(w) {
                return Ok(inner::leaf_off(w));
            }
            // SAFETY: inner nodes are never freed while operations run.
            let node = unsafe { inner::inner_ref(w) };
            w = node.child_for(key);
        }
        Err(Abort)
    }

    /// Traverse and lock the target leaf, validating that no SMO
    /// committed between the traversal and the lock acquisition.
    fn locate_and_lock(&self, key: Key) -> (u64, u64) {
        loop {
            let (leaf, ver) = self
                .htm
                .speculative_read(|v| self.traverse(key).map(|l| (l, v)));
            let Some(prev) = self.leaf_try_lock(leaf) else {
                std::hint::spin_loop();
                continue;
            };
            if self.htm.version() != ver {
                // An SMO slipped in; the leaf may no longer cover `key`.
                self.leaf_unlock(leaf);
                continue;
            }
            return (leaf, prev);
        }
    }

    // ----- splits ------------------------------------------------------------

    /// Split a full, locked leaf. Runs inside the HTM write transaction.
    /// Returns `(separator, new_leaf)`; the new leaf is created locked.
    fn split_leaf_locked(&self, old: u64) -> (Key, u64) {
        let _site = obs::site("fptree_leaf_split");
        let pool = self.pool();
        let l = &self.layout;
        // Gather and sort live records.
        let bitmap = pool.read_u64(old + BITMAP_OFF) & l.full_mask();
        let mut recs: Vec<(Key, usize)> = Vec::with_capacity(l.entries);
        let mut bits = bitmap;
        while bits != 0 {
            let slot = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            recs.push((self.slot_key(old, slot), slot));
        }
        recs.sort_unstable();
        let mid = recs.len() / 2;
        let split_key = recs[mid].0;

        // Micro-log: allocate-and-publish the new leaf into the log slot
        // (atomic with allocation), then persist the rest of the log and
        // set the valid flag last.
        let new = self
            .alloc
            .alloc_linked(l.size, slot_off(SLOT_LOG_NEW))
            .expect("PM pool exhausted during split");
        pool.write_u64(slot_off(SLOT_LOG_OLD), old);
        pool.write_u64(slot_off(SLOT_LOG_KEY), split_key);
        pool.persist(slot_off(SLOT_LOG_OLD), 24);
        pool.write_u64(slot_off(SLOT_LOG_VALID), 1);
        pool.persist(slot_off(SLOT_LOG_VALID), 8);

        // Initialize the new (locked) leaf with the upper half.
        pool.write_u64(new + VLOCK_OFF, 1);
        pool.write_u64(new + NEXT_OFF, pool.read_u64(old + NEXT_OFF));
        let mut new_bitmap = 0u64;
        let mut moved = 0u64;
        for (i, &(k, slot)) in recs[mid..].iter().enumerate() {
            // Copy the raw key word: in pointer mode the cell is shared
            // by the new leaf, not re-allocated.
            pool.write_u64(l.key(new, i), pool.read_u64(l.key(old, slot)));
            pool.write_u64(l.val(new, i), pool.read_u64(l.val(old, slot)));
            let fp = [fingerprint(k)];
            pool.write_bytes(l.fp(new, i), &fp);
            new_bitmap |= 1 << i;
            moved |= 1 << slot;
        }
        pool.write_u64(new + BITMAP_OFF, new_bitmap);
        pool.persist(new, l.size);

        // Publish into the leaf chain, then commit by shrinking the old
        // leaf's bitmap — both 8-byte atomic writes.
        pool.write_u64(old + NEXT_OFF, new);
        pool.persist(old + NEXT_OFF, 8);
        self.publish_bitmap(old, bitmap & !moved);

        // Retire the log.
        pool.write_u64(slot_off(SLOT_LOG_VALID), 0);
        pool.persist(slot_off(SLOT_LOG_VALID), 8);
        pool.write_u64(slot_off(SLOT_LOG_NEW), 0);
        pool.persist(slot_off(SLOT_LOG_NEW), 8);

        // Reflect the split in the DRAM inner nodes.
        self.insert_separator(split_key, inner::tag_leaf(new));
        (split_key, new)
    }

    /// Insert `(key, right)` into the inner structure, splitting inner
    /// nodes / growing the root as needed. Runs inside the write txn.
    fn insert_separator(&self, key: Key, right: u64) {
        let _site = obs::site("fptree_inner_insert");
        // Collect the inner path to the leaf that covered `key`.
        let mut path: Vec<&Inner> = Vec::new();
        let mut w = self.root.load(Ordering::Acquire);
        while !inner::is_leaf(w) {
            // SAFETY: write txn holds the global lock; pointers are live.
            let node = unsafe { inner::inner_ref(w) };
            path.push(node);
            w = node.child_for(key);
        }
        let mut key = key;
        let mut right = right;
        loop {
            match path.pop() {
                None => {
                    // Grow a new root above the old one.
                    let old_root = self.root.load(Ordering::Acquire);
                    let node = Inner::new(self.cfg.inner_fanout);
                    node.init_root(key, old_root, right);
                    self.inner_count.fetch_add(1, Ordering::Relaxed);
                    self.root
                        .store(inner::tag_inner(Box::into_raw(node)), Ordering::Release);
                    return;
                }
                Some(node) => {
                    if !node.is_full() {
                        node.insert(key, right);
                        return;
                    }
                    // Split the inner node and keep propagating.
                    let new_right = Inner::new(self.cfg.inner_fanout);
                    let promote = node.split_into(&new_right);
                    if key >= promote {
                        new_right.insert(key, right);
                    } else {
                        node.insert(key, right);
                    }
                    self.inner_count.fetch_add(1, Ordering::Relaxed);
                    key = promote;
                    right = inner::tag_inner(Box::into_raw(new_right));
                }
            }
        }
    }

    // ----- recovery ----------------------------------------------------------

    /// Recovery-time key read that reports (rather than raises) a
    /// media error on a poisoned out-of-line key cell. The leaf itself
    /// must already have been probed by the caller.
    fn checked_slot_key(&self, leaf: u64, slot: usize) -> Result<Key, MediaError> {
        let w = self.pool().read_u64(self.layout.key(leaf, slot));
        match self.cfg.key_mode {
            KeyMode::Inline => Ok(w),
            KeyMode::Pointer => {
                self.pool()
                    .check_readable(w, 8)
                    .map_err(|e| e.context("FPTree out-of-line key cell"))?;
                Ok(self.pool().read_u64(w))
            }
        }
    }

    /// Replay the split micro-log: roll a published split forward,
    /// roll an unpublished one back.
    fn replay_split_log(&self) -> Result<(), MediaError> {
        let pool = self.pool();
        let l = &self.layout;
        let valid = pool.read_u64(slot_off(SLOT_LOG_VALID));
        let new = pool.read_u64(slot_off(SLOT_LOG_NEW));
        if valid == 1 {
            let old = pool.read_u64(slot_off(SLOT_LOG_OLD));
            let split_key = pool.read_u64(slot_off(SLOT_LOG_KEY));
            pool.check_readable(old, l.size)
                .map_err(|e| e.context("FPTree split-log leaf"))?;
            if pool.read_u64(old + NEXT_OFF) == new {
                // Published: redo the bitmap shrink (idempotent).
                let bitmap = pool.read_u64(old + BITMAP_OFF) & l.full_mask();
                let mut keep = bitmap;
                let mut bits = bitmap;
                while bits != 0 {
                    let slot = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if self.checked_slot_key(old, slot)? >= split_key {
                        keep &= !(1 << slot);
                    }
                }
                self.publish_bitmap(old, keep);
            } else if self.alloc.is_allocated(new) {
                // Unpublished: the new leaf is unreachable; reclaim it.
                self.alloc.free(new);
            }
            pool.write_u64(slot_off(SLOT_LOG_VALID), 0);
            pool.persist(slot_off(SLOT_LOG_VALID), 8);
        } else if new != 0 && self.alloc.is_allocated(new) {
            // Allocation was published into the log but the log never
            // became valid: reclaim.
            self.alloc.free(new);
        }
        pool.write_u64(slot_off(SLOT_LOG_NEW), 0);
        pool.persist(slot_off(SLOT_LOG_NEW), 8);
        Ok(())
    }

    /// Rebuild inner nodes by walking the persistent leaf chain
    /// (bulk loading). Also clears leaf version locks left over from
    /// the crash.
    fn rebuild_from_leaves(&self) -> Result<(), MediaError> {
        let _site = obs::site("fptree_recovery");
        let pool = self.pool();
        let l = &self.layout;
        let head = pool.read_u64(slot_off(SLOT_HEAD));
        assert!(head != 0, "recover() on an unformatted tree");
        let mut level: Vec<(Key, u64)> = Vec::new();
        let mut leaf = head;
        while leaf != 0 {
            // Probe before the vlock clear writes to the leaf: a partial
            // overwrite could otherwise mask the poison.
            pool.check_readable(leaf, l.size)
                .map_err(|e| e.context("FPTree leaf"))?;
            pool.write_u64(leaf + VLOCK_OFF, 0); // clear runtime lock
            let bitmap = pool.read_u64(leaf + BITMAP_OFF) & l.full_mask();
            let mut min = Key::MAX;
            let mut bits = bitmap;
            while bits != 0 {
                let slot = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                min = min.min(self.checked_slot_key(leaf, slot)?);
            }
            if bitmap != 0 {
                level.push((min, inner::tag_leaf(leaf)));
            }
            leaf = pool.read_u64(leaf + NEXT_OFF);
        }
        if level.is_empty() {
            self.root.store(inner::tag_leaf(head), Ordering::Release);
            return Ok(());
        }
        debug_assert!(level.windows(2).all(|w| w[0].0 < w[1].0));
        // Build inner levels bottom-up.
        let fanout = self.cfg.inner_fanout;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len() / fanout + 1);
            for group in level.chunks(fanout + 1) {
                let node = Inner::new(fanout);
                let keys: Vec<Key> = group[1..].iter().map(|&(k, _)| k).collect();
                let children: Vec<u64> = group.iter().map(|&(_, c)| c).collect();
                node.load(&keys, &children);
                self.inner_count.fetch_add(1, Ordering::Relaxed);
                next.push((group[0].0, inner::tag_inner(Box::into_raw(node))));
            }
            level = next;
        }
        self.root.store(level[0].1, Ordering::Release);
        Ok(())
    }

    /// Number of DRAM inner nodes (exposed for tests/experiments).
    pub fn inner_node_count(&self) -> u64 {
        self.inner_count.load(Ordering::Relaxed)
    }
}

impl RangeIndex for FpTree {
    fn insert(&self, key: Key, value: Value) -> bool {
        let _site = obs::site("fptree_insert");
        let (leaf, _) = self.locate_and_lock(key);
        if self.find_in_leaf(leaf, key).is_some() {
            self.leaf_unlock(leaf);
            return false;
        }
        let bitmap = self.pool().read_u64(leaf + BITMAP_OFF) & self.layout.full_mask();
        if bitmap == self.layout.full_mask() {
            let (split_key, new) = self.htm.write_txn(|| self.split_leaf_locked(leaf));
            let target = if key >= split_key { new } else { leaf };
            let tb = self.pool().read_u64(target + BITMAP_OFF) & self.layout.full_mask();
            let slot = (!tb).trailing_zeros() as usize;
            debug_assert!(slot < self.layout.entries);
            self.write_record(target, slot, key, value);
            self.publish_bitmap(target, tb | (1 << slot));
            self.leaf_unlock(leaf);
            self.leaf_unlock(new);
            return true;
        }
        let slot = (!bitmap).trailing_zeros() as usize;
        self.write_record(leaf, slot, key, value);
        self.publish_bitmap(leaf, bitmap | (1 << slot));
        self.leaf_unlock(leaf);
        true
    }

    fn lookup(&self, key: Key) -> Option<Value> {
        let _site = obs::site("fptree_lookup");
        self.htm.speculative_read(|_| {
            let leaf = self.traverse(key)?;
            let v1 = self.pool().load_u64(leaf + VLOCK_OFF, Ordering::Acquire);
            if v1 & 1 == 1 {
                return Err(Abort);
            }
            let r = self.find_in_leaf(leaf, key).map(|(_, v)| v);
            if self.pool().load_u64(leaf + VLOCK_OFF, Ordering::Acquire) != v1 {
                return Err(Abort);
            }
            Ok(r)
        })
    }

    fn update(&self, key: Key, value: Value) -> bool {
        let _site = obs::site("fptree_update");
        loop {
            let (leaf, _) = self.locate_and_lock(key);
            let Some((slot, _)) = self.find_in_leaf(leaf, key) else {
                self.leaf_unlock(leaf);
                return false;
            };
            let bitmap = self.pool().read_u64(leaf + BITMAP_OFF) & self.layout.full_mask();
            let free = !bitmap & self.layout.full_mask();
            if free == 0 {
                // Out-of-place update needs a spare slot: split first,
                // then retry (the key's new home has room).
                let (_, new) = self.htm.write_txn(|| self.split_leaf_locked(leaf));
                self.leaf_unlock(leaf);
                self.leaf_unlock(new);
                continue;
            }
            // FPTree updates are out-of-place: write the new record to a
            // free slot, then atomically swap validity bits in one
            // bitmap word for failure atomicity.
            let new_slot = free.trailing_zeros() as usize;
            self.write_record(leaf, new_slot, key, value);
            self.publish_bitmap(leaf, (bitmap & !(1 << slot)) | (1 << new_slot));
            self.free_key_cell(leaf, slot);
            self.leaf_unlock(leaf);
            return true;
        }
    }

    fn remove(&self, key: Key) -> bool {
        let _site = obs::site("fptree_remove");
        let (leaf, _) = self.locate_and_lock(key);
        let Some((slot, _)) = self.find_in_leaf(leaf, key) else {
            self.leaf_unlock(leaf);
            return false;
        };
        let bitmap = self.pool().read_u64(leaf + BITMAP_OFF) & self.layout.full_mask();
        self.publish_bitmap(leaf, bitmap & !(1 << slot));
        self.free_key_cell(leaf, slot);
        self.leaf_unlock(leaf);
        true
    }

    fn scan(&self, start: Key, count: usize, out: &mut Vec<(Key, Value)>) -> usize {
        let _site = obs::site("fptree_scan");
        out.clear();
        if count == 0 {
            return 0;
        }
        let pool = self.pool();
        let l = &self.layout;
        let mut leaf = self.htm.speculative_read(|_| self.traverse(start));
        let mut batch: Vec<(Key, Value)> = Vec::with_capacity(l.entries);
        while leaf != 0 && out.len() < count {
            // FPTree scans lock each leaf while copying (the paper's
            // behaviour, and the source of its scan-under-contention
            // weakness).
            loop {
                if self.leaf_try_lock(leaf).is_some() {
                    break;
                }
                std::hint::spin_loop();
            }
            batch.clear();
            let bitmap = pool.read_u64(leaf + BITMAP_OFF) & l.full_mask();
            let mut bits = bitmap;
            while bits != 0 {
                let slot = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let k = self.slot_key(leaf, slot);
                if k >= start {
                    batch.push((k, pool.read_u64(l.val(leaf, slot))));
                }
            }
            let next = pool.read_u64(leaf + NEXT_OFF);
            self.leaf_unlock(leaf);
            batch.sort_unstable();
            out.extend(batch.iter().copied());
            leaf = next;
        }
        out.truncate(count);
        out.len()
    }

    fn name(&self) -> &'static str {
        "fptree"
    }

    fn footprint(&self) -> Footprint {
        Footprint {
            pm_bytes: self.alloc.live_bytes(),
            dram_bytes: self.inner_count.load(Ordering::Relaxed)
                * Inner::dram_bytes(self.cfg.inner_fanout),
        }
    }
}

impl Drop for FpTree {
    fn drop(&mut self) {
        // Free the DRAM inner nodes; leaves live in the pool.
        let mut stack = vec![self.root.load(Ordering::Relaxed)];
        while let Some(w) = stack.pop() {
            if w != 0 && !inner::is_leaf(w) {
                // SAFETY: exclusive access in drop; pointer came from
                // Box::into_raw.
                let node = unsafe { Box::from_raw(w as *mut Inner) };
                for i in 0..=node.nkeys() {
                    stack.push(node.child(i));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use index_api::oracle;
    use pmalloc::AllocMode;
    use pmem::PmConfig;

    fn fresh(pool_mib: usize, cfg: FpTreeConfig) -> Arc<FpTree> {
        let pool = Arc::new(PmPool::new(pool_mib << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool, AllocMode::General);
        FpTree::create(alloc, cfg)
    }

    fn small_cfg() -> FpTreeConfig {
        // Tiny nodes exercise splits and multi-level inners quickly.
        FpTreeConfig {
            leaf_entries: 8,
            inner_fanout: 4,
            ..FpTreeConfig::default()
        }
    }

    #[test]
    fn basic_ops() {
        let t = fresh(4, FpTreeConfig::default());
        assert!(t.insert(10, 100));
        assert!(!t.insert(10, 999), "duplicate insert");
        assert_eq!(t.lookup(10), Some(100));
        assert_eq!(t.lookup(11), None);
        assert!(t.update(10, 101));
        assert!(!t.update(11, 0));
        assert_eq!(t.lookup(10), Some(101));
        assert!(t.remove(10));
        assert!(!t.remove(10));
        assert_eq!(t.lookup(10), None);
    }

    #[test]
    fn many_inserts_with_splits() {
        let t = fresh(16, small_cfg());
        for k in 0..5_000u64 {
            assert!(t.insert(k * 7 % 5_000, k), "insert {k}");
        }
        for k in 0..5_000u64 {
            assert!(t.lookup(k).is_some(), "lookup {k}");
        }
        assert!(t.inner_node_count() > 10, "splits should build inners");
    }

    #[test]
    fn scan_is_sorted_across_leaves() {
        let t = fresh(16, small_cfg());
        let keys: Vec<u64> = (0..1000).map(|i| (i * 37) % 1000).collect();
        for &k in &keys {
            t.insert(k, k + 1);
        }
        let mut out = Vec::new();
        let n = t.scan(100, 50, &mut out);
        assert_eq!(n, 50);
        let want: Vec<(u64, u64)> = (100..150).map(|k| (k, k + 1)).collect();
        assert_eq!(out, want);
        // Scan past the end.
        let n = t.scan(990, 50, &mut out);
        assert_eq!(n, 10);
    }

    #[test]
    fn conformance_against_oracle() {
        let t = fresh(32, small_cfg());
        oracle::check_conformance(&*t, 0xF9, 20_000, 3_000);
    }

    #[test]
    fn conformance_without_fingerprints() {
        let t = fresh(
            32,
            FpTreeConfig {
                use_fingerprints: false,
                ..small_cfg()
            },
        );
        oracle::check_conformance(&*t, 0xFA, 10_000, 2_000);
    }

    #[test]
    fn recovery_restores_all_persisted_records() {
        let pool = Arc::new(PmPool::new(32 << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        let cfg = small_cfg();
        let t = FpTree::create(alloc, cfg);
        for k in 0..2_000u64 {
            t.insert(k, k * 2);
        }
        drop(t);
        pool.crash();
        let alloc = PmAllocator::recover(pool, AllocMode::General);
        let t = FpTree::recover(alloc, cfg);
        for k in 0..2_000u64 {
            assert_eq!(t.lookup(k), Some(k * 2), "key {k} lost after crash");
        }
        let mut out = Vec::new();
        assert_eq!(t.scan(0, 2_000, &mut out), 2_000);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn recovery_with_eviction_chaos() {
        // Chaos mode spontaneously persists unflushed lines; recovery
        // must still produce a tree consistent with acknowledged ops.
        let pool = Arc::new(PmPool::new(
            32 << 20,
            PmConfig::real().with_eviction_chaos(7),
        ));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        let cfg = small_cfg();
        let t = FpTree::create(alloc, cfg);
        for k in 0..1_000u64 {
            t.insert(k, k);
        }
        drop(t);
        pool.crash();
        let alloc = PmAllocator::recover(pool, AllocMode::General);
        let t = FpTree::recover(alloc, cfg);
        for k in 0..1_000u64 {
            assert_eq!(t.lookup(k), Some(k));
        }
    }

    #[test]
    fn updates_survive_crash() {
        let pool = Arc::new(PmPool::new(16 << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        let cfg = small_cfg();
        let t = FpTree::create(alloc, cfg);
        for k in 0..500u64 {
            t.insert(k, 1);
        }
        for k in 0..500u64 {
            t.update(k, 2);
        }
        drop(t);
        pool.crash();
        let alloc = PmAllocator::recover(pool, AllocMode::General);
        let t = FpTree::recover(alloc, cfg);
        for k in 0..500u64 {
            assert_eq!(t.lookup(k), Some(2), "update of {k} lost");
        }
    }

    #[test]
    fn removes_survive_crash() {
        let pool = Arc::new(PmPool::new(16 << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        let cfg = small_cfg();
        let t = FpTree::create(alloc, cfg);
        for k in 0..500u64 {
            t.insert(k, k);
        }
        for k in 0..500u64 {
            if k % 2 == 0 {
                t.remove(k);
            }
        }
        drop(t);
        pool.crash();
        let alloc = PmAllocator::recover(pool, AllocMode::General);
        let t = FpTree::recover(alloc, cfg);
        for k in 0..500u64 {
            let want = if k % 2 == 0 { None } else { Some(k) };
            assert_eq!(t.lookup(k), want, "key {k}");
        }
    }

    #[test]
    fn concurrent_inserts_and_lookups() {
        let t = fresh(64, FpTreeConfig::default());
        let nthreads = 8u64;
        let per = 2_000u64;
        std::thread::scope(|s| {
            for tid in 0..nthreads {
                let t = &t;
                s.spawn(move || {
                    for i in 0..per {
                        let k = tid * per + i;
                        assert!(t.insert(k, k + 1));
                        assert_eq!(t.lookup(k), Some(k + 1));
                    }
                });
            }
        });
        for k in 0..nthreads * per {
            assert_eq!(t.lookup(k), Some(k + 1), "key {k} missing");
        }
        let mut out = Vec::new();
        assert_eq!(
            t.scan(0, (nthreads * per) as usize, &mut out),
            (nthreads * per) as usize
        );
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn concurrent_mixed_workload_with_small_nodes() {
        // Small nodes force constant splits under contention.
        let t = fresh(64, small_cfg());
        std::thread::scope(|s| {
            for tid in 0..8u64 {
                let t = &t;
                s.spawn(move || {
                    let mut x = tid + 1;
                    for i in 0..3_000u64 {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let k = x % 4_096;
                        match i % 4 {
                            0 => {
                                t.insert(k, i);
                            }
                            1 => {
                                t.lookup(k);
                            }
                            2 => {
                                t.update(k, i);
                            }
                            _ => {
                                let mut out = Vec::new();
                                t.scan(k, 10, &mut out);
                                assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
                            }
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn footprint_reports_both_devices() {
        let t = fresh(16, small_cfg());
        for k in 0..2_000u64 {
            t.insert(k, k);
        }
        let f = t.footprint();
        assert!(f.pm_bytes > 0);
        assert!(f.dram_bytes > 0);
    }

    #[test]
    fn pointer_key_mode_conformance() {
        let t = fresh(
            32,
            FpTreeConfig {
                key_mode: crate::KeyMode::Pointer,
                ..small_cfg()
            },
        );
        oracle::check_conformance(&*t, 0x1ACE, 10_000, 2_000);
    }

    #[test]
    fn pointer_key_mode_survives_crash() {
        let pool = Arc::new(PmPool::new(32 << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        let cfg = FpTreeConfig {
            key_mode: crate::KeyMode::Pointer,
            ..small_cfg()
        };
        let t = FpTree::create(alloc, cfg);
        for k in 0..1_500u64 {
            t.insert(k, k * 3);
        }
        for k in (0..1_500u64).step_by(3) {
            t.remove(k);
        }
        drop(t);
        pool.crash();
        let alloc = PmAllocator::recover(pool, AllocMode::General);
        let t = FpTree::recover(alloc, cfg);
        for k in 0..1_500u64 {
            let want = if k % 3 == 0 { None } else { Some(k * 3) };
            assert_eq!(t.lookup(k), want, "key {k}");
        }
    }

    #[test]
    fn pointer_key_mode_reads_more_pm_than_inline() {
        let mk = |mode: crate::KeyMode| {
            let pool = Arc::new(PmPool::new(64 << 20, PmConfig::real()));
            let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
            let t = FpTree::create(
                alloc,
                FpTreeConfig {
                    key_mode: mode,
                    // No fingerprints: every candidate comparison pays
                    // the dereference, making the contrast deterministic.
                    use_fingerprints: false,
                    ..FpTreeConfig::default()
                },
            );
            for k in 0..30_000u64 {
                t.insert(k, k);
            }
            pool.reset_stats();
            for k in 0..30_000u64 {
                assert_eq!(t.lookup(k), Some(k));
            }
            pool.stats().read_bytes
        };
        let inline = mk(crate::KeyMode::Inline);
        let pointer = mk(crate::KeyMode::Pointer);
        assert!(
            pointer > inline + inline / 2,
            "pointer mode must pay dereference reads: inline={inline} pointer={pointer}"
        );
    }

    #[test]
    fn pointer_key_cells_are_freed_on_remove() {
        let pool = Arc::new(PmPool::new(16 << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        let t = FpTree::create(
            alloc.clone(),
            FpTreeConfig {
                key_mode: crate::KeyMode::Pointer,
                ..small_cfg()
            },
        );
        for k in 0..100u64 {
            t.insert(k, k);
        }
        let with_cells = alloc.live_bytes();
        for k in 0..100u64 {
            t.remove(k);
        }
        assert!(
            alloc.live_bytes() < with_cells,
            "removes must release key cells"
        );
    }

    #[test]
    fn fingerprints_reduce_pm_reads_on_negative_lookups() {
        let mk = |use_fp: bool| {
            let pool = Arc::new(PmPool::new(32 << 20, PmConfig::real()));
            let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
            let t = FpTree::create(
                alloc,
                FpTreeConfig {
                    use_fingerprints: use_fp,
                    ..FpTreeConfig::default()
                },
            );
            for k in 0..20_000u64 {
                t.insert(k * 2, k);
            }
            pool.reset_stats();
            for k in 0..20_000u64 {
                assert_eq!(t.lookup(k * 2 + 1), None);
            }
            pool.stats().read_bytes
        };
        let with_fp = mk(true);
        let without_fp = mk(false);
        assert!(
            with_fp * 2 < without_fp,
            "fingerprints should cut PM read traffic: with={with_fp} without={without_fp}"
        );
    }
}
