//! # htm — software emulation of restricted transactional memory
//!
//! FPTree synchronizes inner-node traversals with Intel TSX/RTM
//! hardware transactions (via TBB's `speculative_spin_rw_mutex`). TSX
//! is fused off on modern CPUs and unavailable in this environment, so
//! this crate emulates the *semantics FPTree relies on* with a global
//! sequence lock plus a fallback mutex:
//!
//! * **Speculative readers** ([`Htm::speculative_read`]) sample a global
//!   version before running, re-check it after, and retry on mismatch —
//!   like an RTM transaction that aborts when a conflicting writer
//!   commits. Readers write no shared state, so read-only workloads
//!   scale exactly like real HTM (no cacheline ping-pong).
//! * **Writers** ([`Htm::write_txn`]) — structure-modifying operations —
//!   bump the version around their critical section and hold the
//!   fallback mutex. This is *more* serializing than real HTM (which
//!   admits disjoint writers in parallel), a pessimism we accept: SMOs
//!   are rare, and the paper itself reports FPTree collapsing under
//!   SMO-heavy contention because of HTM aborts, a shape this emulation
//!   reproduces.
//! * **Bounded retries, then fallback** — after `max_retries` failed
//!   speculative attempts a reader acquires the fallback mutex, exactly
//!   like TBB's fallback path after repeated RTM aborts (the behaviour
//!   the paper highlights as FPTree's scan weakness under skew).
//!
//! Abort/commit/fallback counts are exposed for the analysis
//! experiments.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;
use parking_lot::Mutex;

/// Marker error: the closure observed state that requires an abort
/// (e.g. a locked leaf) and wants the transaction retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Abort;

/// Emulation statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HtmStats {
    /// Successfully committed speculative read transactions.
    pub commits: u64,
    /// Aborted speculative attempts (version conflicts + explicit aborts).
    pub aborts: u64,
    /// Transactions that gave up on speculation and took the fallback lock.
    pub fallbacks: u64,
    /// Write transactions executed.
    pub writes: u64,
}

const N_STRIPES: usize = 16;

#[derive(Default)]
struct Stripe {
    commits: AtomicU64,
    aborts: AtomicU64,
    fallbacks: AtomicU64,
    writes: AtomicU64,
}

/// The emulated transactional-memory domain. One instance per index.
pub struct Htm {
    /// Global sequence number: odd while a writer is inside its critical
    /// section.
    version: CachePadded<AtomicU64>,
    /// Fallback path, shared by give-up readers and all writers.
    fallback: Mutex<()>,
    /// Default retry budget before falling back (TBB retries 10 times).
    max_retries: u32,
    stats: Box<[CachePadded<Stripe>]>,
}

fn stripe_slot() -> usize {
    use std::cell::Cell;
    use std::sync::atomic::AtomicUsize;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SLOT.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Ordering::Relaxed) % N_STRIPES;
            s.set(v);
        }
        v
    })
}

impl Htm {
    /// New domain with the TBB-like default of 10 speculative retries.
    pub fn new() -> Self {
        Self::with_max_retries(10)
    }

    /// New domain with a custom retry budget.
    pub fn with_max_retries(max_retries: u32) -> Self {
        Self {
            version: CachePadded::new(AtomicU64::new(0)),
            fallback: Mutex::new(()),
            max_retries,
            stats: (0..N_STRIPES)
                .map(|_| CachePadded::new(Stripe::default()))
                .collect(),
        }
    }

    #[inline]
    fn stripe(&self) -> &Stripe {
        &self.stats[stripe_slot()]
    }

    /// The current commit version. A transaction result observed under
    /// version `v` is still valid as long as `version()` returns `v`
    /// (used by callers that lock a leaf after traversal and must
    /// confirm no SMO intervened).
    #[inline]
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Run `f` as a speculative read transaction. `f` receives the
    /// version the attempt runs under (stable if the attempt commits).
    ///
    /// `f` may observe torn intermediate states produced by a concurrent
    /// [`Htm::write_txn`] — it must be written to *tolerate* them (only
    /// read through atomics, never panic on odd values) and may return
    /// `Err(Abort)` to request a retry. A successful result is returned
    /// only if no writer committed during the attempt.
    pub fn speculative_read<R>(&self, mut f: impl FnMut(u64) -> Result<R, Abort>) -> R {
        for _ in 0..self.max_retries {
            let v1 = self.version.load(Ordering::Acquire);
            if v1 & 1 == 1 {
                // Writer in progress; an RTM transaction would abort on
                // its first conflicting read.
                self.stripe().aborts.fetch_add(1, Ordering::Relaxed);
                std::hint::spin_loop();
                continue;
            }
            if let Ok(r) = f(v1) {
                if self.version.load(Ordering::Acquire) == v1 {
                    self.stripe().commits.fetch_add(1, Ordering::Relaxed);
                    return r;
                }
            }
            self.stripe().aborts.fetch_add(1, Ordering::Relaxed);
        }
        // Fallback: serialize against writers, like TBB's
        // non-speculative path. The mutex is released between attempts
        // so that a conflicting writer (e.g. a leaf-lock holder that
        // needs a write transaction to finish its split) can make
        // progress — holding it across retries would deadlock.
        self.stripe().fallbacks.fetch_add(1, Ordering::Relaxed);
        loop {
            {
                let _g = self.fallback.lock();
                let v = self.version.load(Ordering::Acquire);
                if let Ok(r) = f(v) {
                    return r;
                }
            }
            std::hint::spin_loop();
        }
    }

    /// Run `f` as a write (structure-modifying) transaction: serialized
    /// against other writers and observable by speculative readers as a
    /// version bump.
    pub fn write_txn<R>(&self, f: impl FnOnce() -> R) -> R {
        let _g = self.fallback.lock();
        self.version.fetch_add(1, Ordering::AcqRel); // odd: in progress
        let r = f();
        self.version.fetch_add(1, Ordering::AcqRel); // even: committed
        self.stripe().writes.fetch_add(1, Ordering::Relaxed);
        r
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> HtmStats {
        let mut out = HtmStats::default();
        for s in self.stats.iter() {
            out.commits += s.commits.load(Ordering::Relaxed);
            out.aborts += s.aborts.load(Ordering::Relaxed);
            out.fallbacks += s.fallbacks.load(Ordering::Relaxed);
            out.writes += s.writes.load(Ordering::Relaxed);
        }
        out
    }
}

impl Default for Htm {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn read_commits_without_writers() {
        let h = Htm::new();
        let r = h.speculative_read(|_| Ok::<_, Abort>(42));
        assert_eq!(r, 42);
        let s = h.stats();
        assert_eq!(s.commits, 1);
        assert_eq!(s.aborts, 0);
    }

    #[test]
    fn explicit_abort_retries_then_falls_back() {
        let h = Htm::with_max_retries(3);
        let tries = std::cell::Cell::new(0);
        let r = h.speculative_read(|_| {
            tries.set(tries.get() + 1);
            if tries.get() < 5 {
                Err(Abort)
            } else {
                Ok(7)
            }
        });
        assert_eq!(r, 7);
        let s = h.stats();
        assert_eq!(s.fallbacks, 1);
        assert_eq!(s.aborts, 3);
    }

    #[test]
    fn write_txn_aborts_concurrent_reader() {
        let h = Htm::new();
        let observed = std::cell::Cell::new(0u32);
        // Simulate a writer committing mid-read by bumping the version
        // from within the read closure on the first attempt.
        let first = std::cell::Cell::new(true);
        let r = h.speculative_read(|_| {
            observed.set(observed.get() + 1);
            if first.get() {
                first.set(false);
                h.version.fetch_add(2, Ordering::AcqRel); // sneaky commit
            }
            Ok::<_, Abort>(observed.get())
        });
        // First attempt was invalidated, second committed.
        assert_eq!(r, 2);
        assert_eq!(h.stats().aborts, 1);
    }

    #[test]
    fn readers_and_writers_agree() {
        // Writers move a pair of counters in lockstep inside write_txn;
        // readers must never observe them out of sync.
        let h = Arc::new(Htm::new());
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let (h, a, b, stop) = (h.clone(), a.clone(), b.clone(), stop.clone());
            handles.push(std::thread::spawn(move || {
                while stop.load(Ordering::Relaxed) == 0 {
                    h.write_txn(|| {
                        a.fetch_add(1, Ordering::Relaxed);
                        std::hint::spin_loop();
                        b.fetch_add(1, Ordering::Relaxed);
                    });
                }
            }));
        }
        for _ in 0..4 {
            let (h, a, b, stop) = (h.clone(), a.clone(), b.clone(), stop.clone());
            handles.push(std::thread::spawn(move || {
                for _ in 0..20_000 {
                    let (x, y) = h.speculative_read(|_| {
                        let x = a.load(Ordering::Relaxed);
                        let y = b.load(Ordering::Relaxed);
                        Ok::<_, Abort>((x, y))
                    });
                    assert_eq!(x, y, "torn read escaped validation");
                }
                stop.store(1, Ordering::Relaxed);
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert!(h.stats().writes > 0);
    }

    #[test]
    fn default_is_new() {
        let h = Htm::default();
        assert_eq!(h.stats(), HtmStats::default());
    }
}
