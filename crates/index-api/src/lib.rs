//! # index-api — the common range-index interface
//!
//! PiBench requires every index to implement one abstract interface so
//! that the same harness can drive them all; this crate is that
//! interface, plus shared testing machinery:
//!
//! * [`RangeIndex`] — the operation set the paper benchmarks
//!   (lookup / insert / update / remove / scan), object-safe so the
//!   harness can hold `dyn RangeIndex`.
//! * [`Footprint`] — PM/DRAM space reporting for the memory-consumption
//!   table.
//! * [`oracle`] — a `BTreeMap`-backed reference model and a conformance
//!   driver used by every index's test suite and by the cross-index
//!   integration tests.

use std::fmt;

pub mod oracle;
pub mod testing;

/// Fixed-size key type used throughout the evaluation (the paper's
/// default workload uses 8-byte integer keys).
pub type Key = u64;
/// 8-byte values, as in the paper.
pub type Value = u64;

/// Memory consumed by an index, split by device.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Footprint {
    /// Bytes resident on (emulated) persistent memory.
    pub pm_bytes: u64,
    /// Bytes resident in DRAM (inner nodes, caches, metadata mirrors).
    pub dram_bytes: u64,
}

impl fmt::Display for Footprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PM {:.2} MiB / DRAM {:.2} MiB",
            self.pm_bytes as f64 / (1 << 20) as f64,
            self.dram_bytes as f64 / (1 << 20) as f64
        )
    }
}

/// The abstract index interface every evaluated structure implements
/// (PiBench's `tree_api` equivalent).
///
/// All operations take `&self`: indexes are internally synchronized.
/// Implementations define their own concurrency control (HTM+locks,
/// lock-free PMwCAS, plain locking …), which is precisely what the
/// benchmark compares.
pub trait RangeIndex: Send + Sync {
    /// Insert `key → value`. Returns `false` (and changes nothing) if
    /// the key already exists.
    fn insert(&self, key: Key, value: Value) -> bool;

    /// Point lookup.
    fn lookup(&self, key: Key) -> Option<Value>;

    /// Replace the value of an existing key. Returns `false` if the key
    /// does not exist.
    fn update(&self, key: Key, value: Value) -> bool;

    /// Delete a key. Returns `false` if it was not present.
    fn remove(&self, key: Key) -> bool;

    /// Ascending range scan: append up to `count` records with
    /// `key >= start` to `out` in key order. Returns the number of
    /// records appended. `out` is cleared first.
    fn scan(&self, start: Key, count: usize, out: &mut Vec<(Key, Value)>) -> usize;

    /// Short static name for reports ("fptree", "bztree", …).
    fn name(&self) -> &'static str;

    /// Space consumption; indexes that cannot attribute usage return
    /// zeroes.
    fn footprint(&self) -> Footprint {
        Footprint::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_index_passes_conformance() {
        let idx = testing::MapIndex::new();
        crate::oracle::check_conformance(&idx, 0xC0FFEE, 5_000, 1_000);
    }

    #[test]
    fn footprint_display() {
        let f = Footprint {
            pm_bytes: 3 << 20,
            dram_bytes: 1 << 19,
        };
        assert_eq!(format!("{f}"), "PM 3.00 MiB / DRAM 0.50 MiB");
    }
}
