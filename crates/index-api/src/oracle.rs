//! Reference model and conformance driver.
//!
//! Every index in the workspace is validated against [`Oracle`], a
//! `BTreeMap` with the exact [`crate::RangeIndex`] semantics. The
//! driver generates a deterministic random operation stream and asserts
//! result-for-result agreement, including scan contents and order.

use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{Key, RangeIndex, Value};

/// One benchmark/model operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Insert a key/value pair.
    Insert(Key, Value),
    /// Point lookup.
    Lookup(Key),
    /// Update an existing key's value.
    Update(Key, Value),
    /// Delete a key.
    Remove(Key),
    /// Scan `count` records starting at the key.
    Scan(Key, usize),
}

/// The `BTreeMap`-backed reference model.
#[derive(Debug, Default)]
pub struct Oracle {
    map: BTreeMap<Key, Value>,
}

impl Oracle {
    /// Empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Model semantics of [`RangeIndex::insert`].
    pub fn insert(&mut self, key: Key, value: Value) -> bool {
        use std::collections::btree_map::Entry;
        match self.map.entry(key) {
            Entry::Occupied(_) => false,
            Entry::Vacant(e) => {
                e.insert(value);
                true
            }
        }
    }

    /// Model semantics of [`RangeIndex::lookup`].
    pub fn lookup(&self, key: Key) -> Option<Value> {
        self.map.get(&key).copied()
    }

    /// Model semantics of [`RangeIndex::update`].
    pub fn update(&mut self, key: Key, value: Value) -> bool {
        match self.map.get_mut(&key) {
            Some(v) => {
                *v = value;
                true
            }
            None => false,
        }
    }

    /// Model semantics of [`RangeIndex::remove`].
    pub fn remove(&mut self, key: Key) -> bool {
        self.map.remove(&key).is_some()
    }

    /// Model semantics of [`RangeIndex::scan`].
    pub fn scan(&self, start: Key, count: usize) -> Vec<(Key, Value)> {
        self.map
            .range(start..)
            .take(count)
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the model is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate all records in key order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, Value)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }
}

/// Generate a deterministic mixed operation stream. Keys are drawn from
/// `[0, key_range)` so collisions (duplicate inserts, misses, repeated
/// removes) are exercised; values encode the op index for debuggability.
pub fn random_ops(seed: u64, n: usize, key_range: u64) -> Vec<Op> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let key = rng.gen_range(0..key_range);
            let value = i as Value + 1;
            match rng.gen_range(0..100) {
                0..=39 => Op::Insert(key, value),
                40..=64 => Op::Lookup(key),
                65..=79 => Op::Update(key, value),
                80..=89 => Op::Remove(key),
                _ => Op::Scan(key, rng.gen_range(1..32)),
            }
        })
        .collect()
}

/// Apply one op to an index and the model, asserting identical results.
pub fn apply_and_compare(index: &(impl RangeIndex + ?Sized), model: &mut Oracle, op: Op) {
    match op {
        Op::Insert(k, v) => {
            assert_eq!(index.insert(k, v), model.insert(k, v), "insert({k})");
        }
        Op::Lookup(k) => {
            assert_eq!(index.lookup(k), model.lookup(k), "lookup({k})");
        }
        Op::Update(k, v) => {
            assert_eq!(index.update(k, v), model.update(k, v), "update({k})");
        }
        Op::Remove(k) => {
            assert_eq!(index.remove(k), model.remove(k), "remove({k})");
        }
        Op::Scan(k, n) => {
            let mut got = Vec::new();
            index.scan(k, n, &mut got);
            let want = model.scan(k, n);
            assert_eq!(got, want, "scan({k}, {n})");
        }
    }
}

/// Run a full conformance pass: `n` random ops over `key_range` keys,
/// checking every result and a final full sweep.
pub fn check_conformance(index: &(impl RangeIndex + ?Sized), seed: u64, n: usize, key_range: u64) {
    let mut model = Oracle::new();
    for op in random_ops(seed, n, key_range) {
        apply_and_compare(index, &mut model, op);
    }
    // Final sweep: everything in the model must be scannable in order.
    let want: Vec<_> = model.iter().collect();
    let mut got = Vec::new();
    index.scan(0, want.len() + 1, &mut got);
    assert_eq!(got, want, "final full scan mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_matches_btreemap_semantics() {
        let mut o = Oracle::new();
        assert!(o.insert(5, 50));
        assert!(!o.insert(5, 51), "duplicate insert must fail");
        assert_eq!(o.lookup(5), Some(50));
        assert!(o.update(5, 55));
        assert!(!o.update(6, 60));
        assert_eq!(o.lookup(5), Some(55));
        assert!(o.remove(5));
        assert!(!o.remove(5));
        assert!(o.is_empty());
    }

    #[test]
    fn scan_is_sorted_and_bounded() {
        let mut o = Oracle::new();
        for k in [9u64, 3, 7, 1, 5] {
            o.insert(k, k * 10);
        }
        assert_eq!(o.scan(3, 3), vec![(3, 30), (5, 50), (7, 70)]);
        assert_eq!(o.scan(0, 100).len(), 5);
        assert_eq!(o.scan(10, 3), vec![]);
    }

    #[test]
    fn random_ops_are_deterministic() {
        assert_eq!(random_ops(1, 100, 50), random_ops(1, 100, 50));
        assert_ne!(random_ops(1, 100, 50), random_ops(2, 100, 50));
    }

    #[test]
    fn op_mix_covers_all_variants() {
        let ops = random_ops(3, 2_000, 100);
        let mut seen = [false; 5];
        for op in ops {
            let i = match op {
                Op::Insert(..) => 0,
                Op::Lookup(..) => 1,
                Op::Update(..) => 2,
                Op::Remove(..) => 3,
                Op::Scan(..) => 4,
            };
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "mix missing a variant: {seen:?}");
    }
}
