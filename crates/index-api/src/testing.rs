//! Shared test doubles.
//!
//! [`MapIndex`] is the reference `RangeIndex` used across the workspace's
//! test suites (trait-contract tests, runner plumbing tests, sharded-engine
//! proptests). It lives here so each crate does not grow its own slightly
//! divergent copy of the same `Mutex<BTreeMap>` wrapper.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::{Footprint, Key, RangeIndex, Value};

/// Minimal reference implementation of [`RangeIndex`] backed by a
/// `Mutex<BTreeMap>`. Follows the trait contract exactly: `insert`
/// rejects duplicates without modifying the value, `update` only
/// touches existing keys.
#[derive(Default)]
pub struct MapIndex {
    map: Mutex<BTreeMap<Key, Value>>,
}

impl MapIndex {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records currently stored.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl RangeIndex for MapIndex {
    fn insert(&self, key: Key, value: Value) -> bool {
        match self.map.lock().unwrap().entry(key) {
            Entry::Occupied(_) => false,
            Entry::Vacant(e) => {
                e.insert(value);
                true
            }
        }
    }

    fn lookup(&self, key: Key) -> Option<Value> {
        self.map.lock().unwrap().get(&key).copied()
    }

    fn update(&self, key: Key, value: Value) -> bool {
        let mut m = self.map.lock().unwrap();
        match m.get_mut(&key) {
            Some(v) => {
                *v = value;
                true
            }
            None => false,
        }
    }

    fn remove(&self, key: Key) -> bool {
        self.map.lock().unwrap().remove(&key).is_some()
    }

    fn scan(&self, start: Key, count: usize, out: &mut Vec<(Key, Value)>) -> usize {
        out.clear();
        let m = self.map.lock().unwrap();
        out.extend(m.range(start..).take(count).map(|(&k, &v)| (k, v)));
        out.len()
    }

    fn name(&self) -> &'static str {
        "map-index"
    }

    fn footprint(&self) -> Footprint {
        let m = self.map.lock().unwrap();
        Footprint {
            pm_bytes: 0,
            dram_bytes: (m.len() * 16) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contract_basics() {
        let idx = MapIndex::new();
        assert!(idx.insert(1, 10));
        assert!(!idx.insert(1, 99));
        assert_eq!(idx.lookup(1), Some(10));
        assert!(!idx.update(2, 0));
        assert!(idx.update(1, 11));
        assert!(idx.remove(1));
        assert!(!idx.remove(1));
        assert!(idx.is_empty());
    }
}
