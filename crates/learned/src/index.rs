//! The PM-resident learned index: descriptor + chunked model arrays +
//! durable delta log, with a crash-consistent merge that atomically
//! swaps the model root.
//!
//! ## Persistent layout
//!
//! Everything hangs off one 8-byte root slot (`SLOT_DESC`), which
//! points at an immutable **descriptor** block:
//!
//! ```text
//! root slot 40 ──► descriptor { magic, epoch, n,
//!                               data_dir, data_chunks,
//!                               seg_dir,  seg_chunks, seg_count,
//!                               log_dir,  log_chunks, checksum }
//!                     data_dir ──► [chunk off; data_chunks] ──► (key,value) pairs
//!                     seg_dir  ──► [chunk off; seg_chunks]  ──► segment records
//!                     log_dir  ──► [chunk off; log_chunks]  ──► delta-log entries
//! ```
//!
//! All arrays are **chunked** (the allocator's largest size class is
//! 32 KiB) and **immutable once published**: mutations append to the
//! delta log, and a merge writes a complete new generation before a
//! single fenced 8-byte root-slot store makes it current. The old
//! generation stays untouched until after the swap, so a crash at any
//! persistence-event boundary recovers either the old model (plus its
//! replayable log) or the new one — never a mix.
//!
//! ## Delta log
//!
//! One 32-byte entry per acknowledged mutation: `[key, value, meta,
//! sum]` with `meta = epoch << 8 | op` and a 64-bit checksum over the
//! other fields. The entry write + flush *is* the commit point; no
//! tail counter is maintained.
//!
//! Appends are **concurrent**: the delta buffer is range-striped into
//! [`STRIPES`] mutexes whose bounds follow the trained segments'
//! quantiles (recomputed at every merge, so stripes track the observed
//! key distribution), and a writer claims its log slot with a CAS on
//! the volatile tail counter *inside* its stripe lock. Same-key
//! entries therefore land in acknowledgement order, while writers in
//! different stripes append in parallel; only the merge itself takes
//! the exclusive path.
//!
//! Recovery scans the **whole** log capacity and applies every entry
//! that validates, *skipping* torn holes: with several in-flight
//! appends a power cut can tear more than one slot, and acknowledged
//! entries after a hole must still replay. Last-valid-wins per key is
//! correct because same-key slot order is acknowledgement order (see
//! above), and a skipped hole can never be followed by a *later* valid
//! entry for the same key — the later op could only have started after
//! the hole's op was acknowledged, i.e. durable. A merge invalidates
//! the whole log by bumping the epoch (no erase writes needed, which
//! also makes log-chunk reuse safe).

use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use index_api::{Footprint, Key, RangeIndex, Value};
use parking_lot::{Mutex, RwLock};
use pmalloc::PmAllocator;
use pmem::{MediaError, PmPool};

use crate::pla::{self, Segment};
use crate::LearnedConfig;

/// Root-area slot holding the current descriptor offset.
pub const SLOT_DESC: u64 = 40;
/// Root-area slot holding the encoded [`LearnedConfig`].
pub const SLOT_CFG: u64 = 41;

const MAGIC: u64 = 0x4C45_4152_4E44_5831; // "LEARNDX1"
const DESC_WORDS: usize = 11;
const DESC_BYTES: usize = DESC_WORDS * 8;

const OP_PUT: u64 = 1;
const OP_DEL: u64 = 2;
const LOG_ENTRY_BYTES: usize = 32;
const PAIR_BYTES: usize = 16;
const SEG_REC_WORDS: usize = 4; // first_key, base, slope bits, reserved

/// Delta-buffer stripes (fine-grained append locking).
const STRIPES: usize = 16;

/// Returned by the striped mutation path when the delta log is full:
/// the caller must upgrade to the exclusive merge path and retry.
struct NeedMerge;

/// `STRIPES - 1` ascending split keys. With enough trained segments
/// the bounds follow segment quantiles (equal *model* mass per
/// stripe, which tracks the observed key distribution); a young or
/// tiny model falls back to an even key-space split.
fn compute_stripe_bounds(segs: &[Segment]) -> Vec<u64> {
    let mut bounds = Vec::with_capacity(STRIPES - 1);
    if segs.len() >= 2 * STRIPES {
        for i in 1..STRIPES {
            bounds.push(segs[i * segs.len() / STRIPES].first_key);
        }
    } else {
        let step = u64::MAX / STRIPES as u64;
        for i in 1..STRIPES {
            bounds.push(step * i as u64);
        }
    }
    bounds
}

/// SplitMix64 finalizer (log-entry and descriptor checksums).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn entry_sum(key: u64, value: u64, meta: u64) -> u64 {
    mix64(key ^ value.rotate_left(32) ^ meta.wrapping_mul(0xD6E8_FEB8_6659_FD93))
}

fn encode_cfg(cfg: &LearnedConfig) -> u64 {
    cfg.epsilon | (cfg.chunk_entries as u64) << 16 | (cfg.delta_min_cap as u64) << 32
}

/// The persisted descriptor, DRAM-side.
#[derive(Debug, Clone, Copy, Default)]
struct Desc {
    epoch: u64,
    n: u64,
    data_dir: u64,
    data_chunks: u64,
    seg_dir: u64,
    seg_chunks: u64,
    seg_count: u64,
    log_dir: u64,
    log_chunks: u64,
}

impl Desc {
    fn words(&self) -> [u64; DESC_WORDS] {
        let mut w = [
            MAGIC,
            self.epoch,
            self.n,
            self.data_dir,
            self.data_chunks,
            self.seg_dir,
            self.seg_chunks,
            self.seg_count,
            self.log_dir,
            self.log_chunks,
            0,
        ];
        w[DESC_WORDS - 1] = Self::checksum(&w);
        w
    }

    fn checksum(w: &[u64; DESC_WORDS]) -> u64 {
        w[..DESC_WORDS - 1]
            .iter()
            .fold(0u64, |acc, &x| mix64(acc ^ x))
    }

    fn from_words(w: &[u64; DESC_WORDS]) -> Desc {
        assert_eq!(w[0], MAGIC, "learned descriptor magic mismatch");
        assert_eq!(
            w[DESC_WORDS - 1],
            Self::checksum(w),
            "learned descriptor checksum mismatch"
        );
        Desc {
            epoch: w[1],
            n: w[2],
            data_dir: w[3],
            data_chunks: w[4],
            seg_dir: w[5],
            seg_chunks: w[6],
            seg_count: w[7],
            log_dir: w[8],
            log_chunks: w[9],
        }
    }
}

/// Model shape, for `pm_inspector` and the E19 report.
#[derive(Debug, Clone, Copy)]
pub struct ModelStats {
    /// Current model generation (bumped by every merge).
    pub epoch: u64,
    /// Keys in the immutable sorted array.
    pub model_keys: u64,
    /// Linear segments over them.
    pub segments: u64,
    /// The trained error bound.
    pub epsilon: u64,
    /// Live delta-buffer entries (distinct keys, tombstones included).
    pub delta_len: u64,
    /// Log capacity before the next merge triggers.
    pub delta_cap: u64,
    /// Merges performed by this handle since create/recover.
    pub merges: u64,
}

struct Core {
    alloc: Arc<PmAllocator>,
    cfg: LearnedConfig,
    desc_off: u64,
    epoch: u64,
    /// DRAM mirror of the model's sorted keys (values stay in PM).
    keys: Vec<u64>,
    segs: Vec<Segment>,
    data_dir: u64,
    data_chunks: Vec<u64>,
    seg_dir: u64,
    seg_chunks: Vec<u64>,
    log_dir: u64,
    log_chunks: Vec<u64>,
    log_cap: usize,
    /// Next free log slot; CAS-claimed by writers inside a stripe lock.
    log_len: AtomicUsize,
    /// Un-merged mutations, range-striped by key: `Some(v)` = live,
    /// `None` = tombstone. Stripe `i` owns `[bounds[i-1], bounds[i])`
    /// (open-ended at the extremes).
    stripes: Vec<Mutex<BTreeMap<Key, Option<Value>>>>,
    stripe_bounds: Vec<u64>,
    merges: u64,
}

impl Core {
    fn pool(&self) -> &PmPool {
        self.alloc.pool()
    }

    /// PM read of the model value at `rank`.
    fn value_at(&self, rank: usize) -> u64 {
        let ce = self.cfg.chunk_entries;
        let off = self.data_chunks[rank / ce] + ((rank % ce) * PAIR_BYTES) as u64 + 8;
        self.pool().read_u64(off)
    }

    fn stripe_of(&self, key: Key) -> usize {
        self.stripe_bounds.partition_point(|&b| b <= key)
    }

    fn model_find(&self, key: Key) -> Option<usize> {
        pla::find(&self.segs, &self.keys, key, self.cfg.epsilon)
    }

    fn get(&self, key: Key) -> Option<Value> {
        let shadow = self.stripes[self.stripe_of(key)].lock().get(&key).copied();
        match shadow {
            Some(slot) => slot,
            None => self.model_find(key).map(|r| self.value_at(r)),
        }
    }

    fn delta_len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().len()).sum()
    }

    /// CAS-claim the next free log slot; full log means the caller
    /// must merge. Called with the key's stripe lock held, which makes
    /// same-key slot order acknowledgement order.
    fn claim_slot(&self) -> Result<usize, NeedMerge> {
        self.log_len
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |l| {
                (l < self.log_cap).then_some(l + 1)
            })
            .map_err(|_| NeedMerge)
    }

    /// Write + flush one log entry into its claimed `slot`; the flush
    /// is the commit point for the mutation.
    fn append_entry(&self, slot: usize, op: u64, key: Key, value: Value) {
        let _site = obs::site("learned_delta_append");
        let ce = self.cfg.chunk_entries;
        let off = self.log_chunks[slot / ce] + ((slot % ce) * LOG_ENTRY_BYTES) as u64;
        let meta = self.epoch << 8 | op;
        let mut buf = [0u8; LOG_ENTRY_BYTES];
        buf[0..8].copy_from_slice(&key.to_le_bytes());
        buf[8..16].copy_from_slice(&value.to_le_bytes());
        buf[16..24].copy_from_slice(&meta.to_le_bytes());
        buf[24..32].copy_from_slice(&entry_sum(key, value, meta).to_le_bytes());
        self.pool().write_bytes(off, &buf);
        self.pool().persist(off, LOG_ENTRY_BYTES);
    }

    fn try_insert(&self, key: Key, value: Value) -> Result<bool, NeedMerge> {
        let mut stripe = self.stripes[self.stripe_of(key)].lock();
        let present = match stripe.get(&key) {
            Some(slot) => slot.is_some(),
            None => self.model_find(key).is_some(),
        };
        if present {
            return Ok(false);
        }
        let slot = self.claim_slot()?;
        self.append_entry(slot, OP_PUT, key, value);
        stripe.insert(key, Some(value));
        Ok(true)
    }

    fn try_update(&self, key: Key, value: Value) -> Result<bool, NeedMerge> {
        let mut stripe = self.stripes[self.stripe_of(key)].lock();
        let present = match stripe.get(&key) {
            Some(slot) => slot.is_some(),
            None => self.model_find(key).is_some(),
        };
        if !present {
            return Ok(false);
        }
        let slot = self.claim_slot()?;
        self.append_entry(slot, OP_PUT, key, value);
        stripe.insert(key, Some(value));
        Ok(true)
    }

    fn try_remove(&self, key: Key) -> Result<bool, NeedMerge> {
        let mut stripe = self.stripes[self.stripe_of(key)].lock();
        let present = match stripe.get(&key) {
            Some(slot) => slot.is_some(),
            None => self.model_find(key).is_some(),
        };
        if !present {
            return Ok(false);
        }
        let slot = self.claim_slot()?;
        self.append_entry(slot, OP_DEL, key, 0);
        stripe.insert(key, None);
        Ok(true)
    }

    fn scan(&self, start: Key, count: usize, out: &mut Vec<(Key, Value)>) -> usize {
        out.clear();
        if count == 0 {
            return 0;
        }
        // Snapshot the striped delta at-or-after `start`. Stripes
        // cover ascending disjoint ranges, so visiting them in order
        // yields a sorted view.
        let mut delta: Vec<(Key, Option<Value>)> = Vec::new();
        for s in self.stripe_of(start)..self.stripes.len() {
            let stripe = self.stripes[s].lock();
            delta.extend(stripe.range(start..).map(|(&k, &v)| (k, v)));
        }
        let mut r = pla::lower_bound(&self.segs, &self.keys, start, self.cfg.epsilon);
        let mut di = delta.iter().peekable();
        while out.len() < count {
            let mk = self.keys.get(r).copied();
            let dk = di.peek().map(|&&(k, _)| k);
            match (mk, dk) {
                (None, None) => break,
                (Some(k), None) => {
                    out.push((k, self.value_at(r)));
                    r += 1;
                }
                (None, Some(_)) => {
                    let &(k, v) = di.next().unwrap();
                    if let Some(v) = v {
                        out.push((k, v));
                    }
                }
                (Some(mkey), Some(dkey)) => {
                    if dkey < mkey {
                        let &(k, v) = di.next().unwrap();
                        if let Some(v) = v {
                            out.push((k, v));
                        }
                    } else if dkey == mkey {
                        // Delta shadows the model record (update or
                        // tombstone).
                        let &(k, v) = di.next().unwrap();
                        r += 1;
                        if let Some(v) = v {
                            out.push((k, v));
                        }
                    } else {
                        out.push((mkey, self.value_at(r)));
                        r += 1;
                    }
                }
            }
        }
        out.len()
    }

    // ----- merge / rebuild ------------------------------------------------

    /// Log capacity for a model of `n` keys, rounded up to whole log
    /// chunks: merges amortize geometrically (each absorbs ≥ n/4
    /// mutations), so preloading N records costs O(N) copies total.
    fn desired_cap(&self, n: usize) -> usize {
        let ce = self.cfg.chunk_entries;
        (self.cfg.delta_min_cap.max(n / 4)).div_ceil(ce) * ce
    }

    /// Drain every stripe into one sorted map (exclusive access only:
    /// `&mut self` means the enclosing `RwLock` is held for write).
    fn collect_delta(&mut self) -> BTreeMap<Key, Option<Value>> {
        let mut delta = BTreeMap::new();
        for stripe in &mut self.stripes {
            delta.append(stripe.get_mut());
        }
        delta
    }

    /// Write `words` to a fresh allocation and flush it.
    fn write_words(&self, words: &[u64]) -> u64 {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let off = self.alloc.alloc(bytes.len()).expect("PM pool exhausted");
        self.pool().write_bytes(off, &bytes);
        self.pool().persist(off, bytes.len());
        off
    }

    /// Write a record array as `chunk_entries`-record chunks plus a
    /// chunk directory. Returns `(dir, chunk_offs)`; `(0, [])` when
    /// empty.
    fn write_record_chunks(&self, words: &[u64], rec_words: usize) -> (u64, Vec<u64>) {
        if words.is_empty() {
            return (0, Vec::new());
        }
        let chunk_words = self.cfg.chunk_entries * rec_words;
        let mut offs = Vec::with_capacity(words.len().div_ceil(chunk_words));
        for chunk in words.chunks(chunk_words) {
            let off = self
                .alloc
                .alloc(chunk_words * 8)
                .expect("PM pool exhausted");
            let bytes: Vec<u8> = chunk.iter().flat_map(|w| w.to_le_bytes()).collect();
            self.pool().write_bytes(off, &bytes);
            self.pool().persist(off, bytes.len());
            offs.push(off);
        }
        (self.write_words(&offs), offs)
    }

    /// Allocate an (uninitialized) log of `cap` entries; stale bytes
    /// are harmless because entries of other epochs never validate.
    fn alloc_log(&self, cap: usize) -> (u64, Vec<u64>) {
        let ce = self.cfg.chunk_entries;
        debug_assert_eq!(cap % ce, 0);
        let offs: Vec<u64> = (0..cap / ce)
            .map(|_| {
                self.alloc
                    .alloc(ce * LOG_ENTRY_BYTES)
                    .expect("PM pool exhausted")
            })
            .collect();
        (self.write_words(&offs), offs)
    }

    fn write_desc(&self, d: &Desc) -> u64 {
        self.write_words(&d.words())
    }

    /// Retrain the model over (model ∪ delta), publish the new
    /// generation with one fenced root store, then retire the old one.
    ///
    /// Crash-ordering contract: every PM write before the root store
    /// touches only fresh allocations (the old generation is
    /// immutable), the volatile switch does no PM operations (so a
    /// mid-merge [`pmem::CrashPointHit`] unwind can never leave DRAM
    /// state inconsistent with the published root), and the frees come
    /// last (a crash there leaves garbage that recovery's reachability
    /// GC collects).
    fn merge(&mut self) {
        let _site = obs::site("learned_merge");
        // 1. Merge the immutable run with the delta buffer (values read
        //    back from PM; keys come from the DRAM mirror). Draining
        //    the stripes here empties them for the next generation.
        let delta = self.collect_delta();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.keys.len() + delta.len());
        {
            let mut r = 0usize;
            let mut di = delta.iter().peekable();
            loop {
                let mk = self.keys.get(r).copied();
                let dk = di.peek().map(|(&k, _)| k);
                match (mk, dk) {
                    (None, None) => break,
                    (Some(k), None) => {
                        merged.push((k, self.value_at(r)));
                        r += 1;
                    }
                    (None, Some(_)) => {
                        let (&k, &v) = di.next().unwrap();
                        if let Some(v) = v {
                            merged.push((k, v));
                        }
                    }
                    (Some(mkey), Some(dkey)) => {
                        if dkey < mkey {
                            let (&k, &v) = di.next().unwrap();
                            if let Some(v) = v {
                                merged.push((k, v));
                            }
                        } else if dkey == mkey {
                            let (&k, &v) = di.next().unwrap();
                            r += 1;
                            if let Some(v) = v {
                                merged.push((k, v));
                            }
                        } else {
                            merged.push((mkey, self.value_at(r)));
                            r += 1;
                        }
                    }
                }
            }
        }
        // 2. Retrain the ε-bounded segments.
        let new_keys: Vec<u64> = merged.iter().map(|&(k, _)| k).collect();
        let new_segs = pla::build_segments(&new_keys, self.cfg.epsilon);
        // 3. Write the new generation into fresh allocations.
        let pair_words: Vec<u64> = merged.iter().flat_map(|&(k, v)| [k, v]).collect();
        let (data_dir, data_chunks) = self.write_record_chunks(&pair_words, 2);
        let seg_words: Vec<u64> = new_segs
            .iter()
            .flat_map(|s| [s.first_key, s.base, s.slope.to_bits(), 0])
            .collect();
        let (seg_dir, seg_chunks) = self.write_record_chunks(&seg_words, SEG_REC_WORDS);
        let new_cap = self.desired_cap(merged.len());
        let reuse_log = new_cap == self.log_cap;
        let (log_dir, log_chunks) = if reuse_log {
            // Epoch bump invalidates every existing entry in place.
            (self.log_dir, self.log_chunks.clone())
        } else {
            self.alloc_log(new_cap)
        };
        let desc = Desc {
            epoch: self.epoch + 1,
            n: merged.len() as u64,
            data_dir,
            data_chunks: data_chunks.len() as u64,
            seg_dir,
            seg_chunks: seg_chunks.len() as u64,
            seg_count: new_segs.len() as u64,
            log_dir,
            log_chunks: log_chunks.len() as u64,
        };
        let desc_off = self.write_desc(&desc);
        // 4. Publish: one fenced 8-byte store flips generations.
        {
            let _site = obs::site("learned_publish");
            self.pool().write_u64(SLOT_DESC * 8, desc_off);
            self.pool().persist(SLOT_DESC * 8, 8);
        }
        // 5. Volatile switch (no PM ops — cannot be cut mid-way).
        let old = (
            self.desc_off,
            self.data_dir,
            std::mem::take(&mut self.data_chunks),
            self.seg_dir,
            std::mem::take(&mut self.seg_chunks),
            if reuse_log { 0 } else { self.log_dir },
            if reuse_log {
                Vec::new()
            } else {
                std::mem::take(&mut self.log_chunks)
            },
        );
        self.desc_off = desc_off;
        self.epoch += 1;
        self.keys = new_keys;
        self.segs = new_segs;
        self.data_dir = data_dir;
        self.data_chunks = data_chunks;
        self.seg_dir = seg_dir;
        self.seg_chunks = seg_chunks;
        self.log_dir = log_dir;
        self.log_chunks = log_chunks;
        self.log_cap = new_cap;
        self.log_len.store(0, Ordering::SeqCst);
        self.stripe_bounds = compute_stripe_bounds(&self.segs);
        self.merges += 1;
        // 6. Retire the old generation (crash-safe: recovery GC redoes
        //    any free we don't reach).
        let (old_desc, old_data_dir, old_data, old_seg_dir, old_segs, old_log_dir, old_log) = old;
        self.alloc.free(old_desc);
        for off in old_data {
            self.alloc.free(off);
        }
        if old_data_dir != 0 {
            self.alloc.free(old_data_dir);
        }
        for off in old_segs {
            self.alloc.free(off);
        }
        if old_seg_dir != 0 {
            self.alloc.free(old_seg_dir);
        }
        for off in old_log {
            self.alloc.free(off);
        }
        if old_log_dir != 0 {
            self.alloc.free(old_log_dir);
        }
    }

    fn stats(&self) -> ModelStats {
        ModelStats {
            epoch: self.epoch,
            model_keys: self.keys.len() as u64,
            segments: self.segs.len() as u64,
            epsilon: self.cfg.epsilon,
            delta_len: self.delta_len() as u64,
            delta_cap: self.log_cap as u64,
            merges: self.merges,
        }
    }
}

/// PGM-style learned range index on PM (see module docs). Reads share
/// the outer lock; mutations also run under the *shared* side and
/// serialize only per key-range stripe (CAS-claimed log slots), so
/// appends to disjoint regions proceed in parallel. Only a merge — a
/// whole-model retrain — takes the exclusive side.
pub struct LearnedIndex {
    core: RwLock<Core>,
}

impl LearnedIndex {
    /// Create a fresh (empty) learned index on a formatted allocator.
    pub fn create(alloc: Arc<PmAllocator>, cfg: LearnedConfig) -> Arc<LearnedIndex> {
        cfg.validate();
        let pool = alloc.pool().clone();
        let mut core = Core {
            alloc,
            cfg,
            desc_off: 0,
            epoch: 1,
            keys: Vec::new(),
            segs: Vec::new(),
            data_dir: 0,
            data_chunks: Vec::new(),
            seg_dir: 0,
            seg_chunks: Vec::new(),
            log_dir: 0,
            log_chunks: Vec::new(),
            log_cap: 0,
            log_len: AtomicUsize::new(0),
            stripes: (0..STRIPES).map(|_| Mutex::new(BTreeMap::new())).collect(),
            stripe_bounds: compute_stripe_bounds(&[]),
            merges: 0,
        };
        core.log_cap = core.desired_cap(0);
        let (log_dir, log_chunks) = core.alloc_log(core.log_cap);
        core.log_dir = log_dir;
        core.log_chunks = log_chunks;
        let desc = Desc {
            epoch: 1,
            n: 0,
            data_dir: 0,
            data_chunks: 0,
            seg_dir: 0,
            seg_chunks: 0,
            seg_count: 0,
            log_dir,
            log_chunks: core.log_chunks.len() as u64,
        };
        core.desc_off = core.write_desc(&desc);
        pool.write_u64(SLOT_CFG * 8, encode_cfg(&core.cfg));
        pool.persist(SLOT_CFG * 8, 8);
        pool.write_u64(SLOT_DESC * 8, core.desc_off);
        pool.persist(SLOT_DESC * 8, 8);
        Arc::new(LearnedIndex {
            core: RwLock::new(core),
        })
    }

    /// Reopen after a crash. Panics on a media error; use
    /// [`LearnedIndex::try_recover`] to handle poisoned lines.
    pub fn recover(alloc: Arc<PmAllocator>, cfg: LearnedConfig) -> Arc<LearnedIndex> {
        Self::try_recover(alloc, cfg)
            .unwrap_or_else(|e| panic!("learned index recovery failed: {e}"))
    }

    /// Fallible recovery: probes every reachable block for media errors
    /// before interpreting it, rebuilds the DRAM mirrors (keys,
    /// segments, delta map) from the published generation, replays the
    /// delta log up to its first invalid entry, garbage-collects
    /// allocations the crash left unreachable (half-built merge
    /// output), and completes an interrupted merge whose log had
    /// already filled.
    pub fn try_recover(
        alloc: Arc<PmAllocator>,
        cfg: LearnedConfig,
    ) -> Result<Arc<LearnedIndex>, MediaError> {
        let _site = obs::site("learned_recovery");
        cfg.validate();
        let pool = alloc.pool().clone();
        pool.check_readable(SLOT_DESC * 8, 16)
            .map_err(|e| e.context("learned root slots"))?;
        assert_eq!(
            pool.read_u64(SLOT_CFG * 8),
            encode_cfg(&cfg),
            "config/layout mismatch"
        );
        let desc_off = pool.read_u64(SLOT_DESC * 8);
        assert!(desc_off != 0, "recover() on an unformatted learned index");
        pool.check_readable(desc_off, DESC_BYTES)
            .map_err(|e| e.context("learned descriptor"))?;
        let mut words = [0u64; DESC_WORDS];
        for (i, w) in words.iter_mut().enumerate() {
            *w = pool.read_u64(desc_off + i as u64 * 8);
        }
        let desc = Desc::from_words(&words);
        let ce = cfg.chunk_entries;
        let read_dir = |dir: u64, count: u64, what: &'static str| -> Result<Vec<u64>, MediaError> {
            if dir == 0 || count == 0 {
                return Ok(Vec::new());
            }
            pool.check_readable(dir, count as usize * 8)
                .map_err(|e| e.context(what))?;
            Ok((0..count).map(|i| pool.read_u64(dir + i * 8)).collect())
        };
        // Model data: rebuild the DRAM key mirror.
        let data_chunks = read_dir(desc.data_dir, desc.data_chunks, "learned data directory")?;
        let n = desc.n as usize;
        let mut keys = Vec::with_capacity(n);
        for (i, &off) in data_chunks.iter().enumerate() {
            let used = ce.min(n - i * ce);
            pool.check_readable(off, used * PAIR_BYTES)
                .map_err(|e| e.context("learned data chunk"))?;
            for r in 0..used {
                keys.push(pool.read_u64(off + (r * PAIR_BYTES) as u64));
            }
        }
        assert_eq!(keys.len(), n, "data chunks inconsistent with n");
        // Segments.
        let seg_chunks = read_dir(desc.seg_dir, desc.seg_chunks, "learned segment directory")?;
        let seg_count = desc.seg_count as usize;
        let mut segs = Vec::with_capacity(seg_count);
        for (i, &off) in seg_chunks.iter().enumerate() {
            let used = ce.min(seg_count - i * ce);
            pool.check_readable(off, used * SEG_REC_WORDS * 8)
                .map_err(|e| e.context("learned segment chunk"))?;
            for r in 0..used {
                let base_off = off + (r * SEG_REC_WORDS * 8) as u64;
                segs.push(Segment {
                    first_key: pool.read_u64(base_off),
                    base: pool.read_u64(base_off + 8),
                    slope: f64::from_bits(pool.read_u64(base_off + 16)),
                });
            }
        }
        // Delta log: replay every acknowledged entry. The scan covers
        // the full capacity and *skips* invalid slots rather than
        // stopping — concurrent striped appends mean a power cut can
        // tear several in-flight slots at once, and the acknowledged
        // entries beyond a hole must still be applied. Last-valid-wins
        // per key is safe because same-key slots are claimed in
        // acknowledgement order under the stripe lock.
        let log_chunks = read_dir(desc.log_dir, desc.log_chunks, "learned log directory")?;
        for &off in &log_chunks {
            pool.check_readable(off, ce * LOG_ENTRY_BYTES)
                .map_err(|e| e.context("learned log chunk"))?;
        }
        let log_cap = log_chunks.len() * ce;
        let mut delta: BTreeMap<Key, Option<Value>> = BTreeMap::new();
        let mut log_len = 0usize;
        for i in 0..log_cap {
            let off = log_chunks[i / ce] + ((i % ce) * LOG_ENTRY_BYTES) as u64;
            let key = pool.read_u64(off);
            let value = pool.read_u64(off + 8);
            let meta = pool.read_u64(off + 16);
            let sum = pool.read_u64(off + 24);
            let op = meta & 0xFF;
            if meta >> 8 != desc.epoch
                || !(op == OP_PUT || op == OP_DEL)
                || sum != entry_sum(key, value, meta)
            {
                continue; // torn hole or stale-epoch garbage
            }
            delta.insert(key, (op == OP_PUT).then_some(value));
            log_len = i + 1;
        }
        // Reachability GC: a crash mid-merge (or mid-retire) leaves
        // half-built generations or half-freed old ones; everything not
        // reachable from the published descriptor goes back to the
        // allocator.
        let mut reachable: HashSet<u64> = HashSet::new();
        reachable.insert(desc_off);
        for dir in [desc.data_dir, desc.seg_dir, desc.log_dir] {
            if dir != 0 {
                reachable.insert(dir);
            }
        }
        reachable.extend(data_chunks.iter().copied());
        reachable.extend(seg_chunks.iter().copied());
        reachable.extend(log_chunks.iter().copied());
        let mut stale = Vec::new();
        alloc.for_each_allocated(|off| {
            if !reachable.contains(&off) {
                stale.push(off);
            }
        });
        for off in stale {
            alloc.free(off);
        }
        // Re-stripe the recovered delta with the same bounds the live
        // index would be using for this generation's segments.
        let stripe_bounds = compute_stripe_bounds(&segs);
        let mut stripes: Vec<Mutex<BTreeMap<Key, Option<Value>>>> =
            (0..STRIPES).map(|_| Mutex::new(BTreeMap::new())).collect();
        for (k, v) in delta {
            let s = stripe_bounds.partition_point(|&b| b <= k);
            stripes[s].get_mut().insert(k, v);
        }
        let mut core = Core {
            alloc,
            cfg,
            desc_off,
            epoch: desc.epoch,
            keys,
            segs,
            data_dir: desc.data_dir,
            data_chunks,
            seg_dir: desc.seg_dir,
            seg_chunks,
            log_dir: desc.log_dir,
            log_chunks,
            log_cap,
            log_len: AtomicUsize::new(log_len),
            stripes,
            stripe_bounds,
            merges: 0,
        };
        // The crash may have landed after the log filled but before the
        // merge published: finish it now so the next append has room.
        if core.log_len.load(Ordering::SeqCst) >= core.log_cap {
            core.merge();
        }
        Ok(Arc::new(LearnedIndex {
            core: RwLock::new(core),
        }))
    }

    /// Model shape for inspection tools and reports.
    pub fn model_stats(&self) -> ModelStats {
        self.core.read().stats()
    }

    /// Run a striped mutation under the shared lock; when the log is
    /// full, upgrade to the exclusive path, merge, and retry.
    fn mutate(&self, f: impl Fn(&Core) -> Result<bool, NeedMerge>) -> bool {
        loop {
            if let Ok(done) = f(&self.core.read()) {
                return done;
            }
            let mut core = self.core.write();
            // Another writer may have merged while we waited.
            if core.log_len.load(Ordering::SeqCst) >= core.log_cap {
                core.merge();
            }
        }
    }
}

impl RangeIndex for LearnedIndex {
    fn insert(&self, key: Key, value: Value) -> bool {
        let _site = obs::site("learned_insert");
        self.mutate(|core| core.try_insert(key, value))
    }

    fn lookup(&self, key: Key) -> Option<Value> {
        let _site = obs::site("learned_lookup");
        self.core.read().get(key)
    }

    fn update(&self, key: Key, value: Value) -> bool {
        let _site = obs::site("learned_update");
        self.mutate(|core| core.try_update(key, value))
    }

    fn remove(&self, key: Key) -> bool {
        let _site = obs::site("learned_remove");
        self.mutate(|core| core.try_remove(key))
    }

    fn scan(&self, start: Key, count: usize, out: &mut Vec<(Key, Value)>) -> usize {
        let _site = obs::site("learned_scan");
        self.core.read().scan(start, count, out)
    }

    fn name(&self) -> &'static str {
        "learned"
    }

    fn footprint(&self) -> Footprint {
        let core = self.core.read();
        Footprint {
            pm_bytes: core.alloc.live_bytes(),
            dram_bytes: (core.keys.len() * 8
                + core.segs.len() * std::mem::size_of::<Segment>()
                + core.delta_len() * 48) as u64,
        }
    }
}
