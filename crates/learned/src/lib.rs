//! # learned — a crash-consistent PGM-style learned range index on PM
//!
//! The paper's four hand-built trees pay a pointer chase per level on
//! every lookup. A *learned* index replaces the inner levels with a
//! piecewise-linear model of the key→rank function (PGM-index,
//! Ferragina & Vinciguerra 2020): a lookup finds its segment, predicts
//! a rank, and binary-searches a ±ε window — one PM read for the
//! value, everything else DRAM. APEX (VLDB 2021) showed how to make
//! that durable on PM; this crate follows the same recipe scaled to
//! this workspace's substrate:
//!
//! * an **immutable model generation** in PM (sorted key/value pairs
//!   plus trained segments, both in ≤32 KiB chunks behind chunk
//!   directories),
//! * a **durable delta log** absorbing inserts/updates/removes — one
//!   checksummed, epoch-tagged 32-byte entry per acknowledged
//!   mutation, whose flush is the commit point,
//! * a **crash-consistent merge** that retrains the model over
//!   (generation ∪ delta) and publishes it with a single fenced
//!   8-byte root store; recovery at *any* persistence-event boundary
//!   lands on a complete generation plus a replayable log.
//!
//! DRAM holds rebuildable acceleration state only (the sorted-key
//! mirror, the segments, the delta map), mirroring how FPTree and
//! NV-Tree keep their inner nodes volatile; it is re-derived on
//! recovery and reported via [`index_api::Footprint::dram_bytes`].
//!
//! See `DESIGN.md` ("Learned index") for the full recovery-state
//! matrix and `tests/learned_index.rs` + the `crashpoint` harness for
//! the torn-write/poison sweeps that pin the protocol down.

mod index;
pub mod pla;

pub use index::{LearnedIndex, ModelStats, SLOT_CFG, SLOT_DESC};

/// Shape knobs for [`LearnedIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LearnedConfig {
    /// Maximum |predicted rank − true rank| the trained segments
    /// guarantee (the PGM ε). Smaller ⇒ more segments, tighter search
    /// windows.
    pub epsilon: u64,
    /// Delta-log capacity floor: a merge triggers when the log fills,
    /// and the capacity grows with the model (max(floor, n/4)) so
    /// merges stay amortized-linear.
    pub delta_min_cap: usize,
    /// Records per storage chunk (data pairs, segment records, log
    /// entries). Bounded by the allocator's 32 KiB largest size class;
    /// small values force multi-chunk layouts in small tests.
    pub chunk_entries: usize,
}

impl Default for LearnedConfig {
    fn default() -> Self {
        LearnedConfig {
            epsilon: 32,
            delta_min_cap: 256,
            chunk_entries: 1024,
        }
    }
}

impl LearnedConfig {
    pub(crate) fn validate(&self) {
        assert!(
            (1..=32_768).contains(&self.epsilon),
            "epsilon out of range: {}",
            self.epsilon
        );
        assert!(
            (8..=1024).contains(&self.chunk_entries),
            "chunk_entries must be in 8..=1024 (32 KiB allocation cap): {}",
            self.chunk_entries
        );
        assert!(
            (8..=1 << 30).contains(&self.delta_min_cap),
            "delta_min_cap out of range: {}",
            self.delta_min_cap
        );
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use index_api::{oracle, RangeIndex};
    use pmalloc::{AllocMode, PmAllocator};
    use pmem::{PmConfig, PmPool};

    fn small_cfg() -> LearnedConfig {
        LearnedConfig {
            epsilon: 4,
            delta_min_cap: 24,
            chunk_entries: 64,
        }
    }

    fn fresh(pool_mib: usize, cfg: LearnedConfig) -> (Arc<LearnedIndex>, Arc<PmPool>) {
        let pool = Arc::new(PmPool::new(pool_mib << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        (LearnedIndex::create(alloc, cfg), pool)
    }

    #[test]
    fn basic_ops() {
        let (t, _pool) = fresh(8, small_cfg());
        assert!(t.insert(5, 50));
        assert!(!t.insert(5, 51));
        assert_eq!(t.lookup(5), Some(50));
        assert!(t.update(5, 55));
        assert_eq!(t.lookup(5), Some(55));
        assert!(t.remove(5));
        assert!(!t.remove(5));
        assert_eq!(t.lookup(5), None);
        assert!(!t.update(5, 1));
    }

    #[test]
    fn merges_fire_and_preserve_everything() {
        let (t, _pool) = fresh(16, small_cfg());
        for k in 0..2_000u64 {
            assert!(t.insert((k * 997) % 2_000, k));
        }
        let s = t.model_stats();
        assert!(s.merges > 0, "no merge ever triggered");
        assert!(s.segments > 0);
        for k in 0..2_000u64 {
            assert!(t.lookup(k).is_some(), "key {k}");
        }
    }

    #[test]
    fn conformance_against_oracle() {
        let (t, _pool) = fresh(32, small_cfg());
        oracle::check_conformance(&*t, 0x1EA2, 20_000, 3_000);
    }

    #[test]
    fn scan_merges_model_and_delta() {
        let (t, _pool) = fresh(16, small_cfg());
        // Model half via enough inserts to force merges, then fresh
        // delta-resident records and tombstones on top.
        for k in (0..600u64).map(|k| k * 2) {
            t.insert(k, k);
        }
        t.remove(100);
        t.insert(101, 1);
        t.update(102, 7);
        let mut out = Vec::new();
        assert_eq!(t.scan(98, 4, &mut out), 4);
        assert_eq!(out, vec![(98, 98), (101, 1), (102, 7), (104, 104)]);
    }

    #[test]
    fn recovery_restores_everything() {
        let cfg = small_cfg();
        let pool = Arc::new(PmPool::new(32 << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        let t = LearnedIndex::create(alloc, cfg);
        for k in 0..2_000u64 {
            t.insert(k, k + 1);
        }
        for k in (0..2_000u64).step_by(5) {
            t.remove(k);
        }
        drop(t);
        pool.crash();
        let alloc = PmAllocator::recover(pool, AllocMode::General);
        let t = LearnedIndex::recover(alloc, cfg);
        for k in 0..2_000u64 {
            let want = if k % 5 == 0 { None } else { Some(k + 1) };
            assert_eq!(t.lookup(k), want, "key {k}");
        }
        let mut out = Vec::new();
        t.scan(0, 3_000, &mut out);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(out.len(), 1600);
    }

    #[test]
    fn recovery_with_eviction_chaos() {
        let cfg = small_cfg();
        let pool = Arc::new(PmPool::new(
            32 << 20,
            PmConfig::real().with_eviction_chaos(23),
        ));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        let t = LearnedIndex::create(alloc, cfg);
        for k in 0..1_500u64 {
            t.insert(k, k);
        }
        drop(t);
        pool.crash();
        let alloc = PmAllocator::recover(pool, AllocMode::General);
        let t = LearnedIndex::recover(alloc, cfg);
        for k in 0..1_500u64 {
            assert_eq!(t.lookup(k), Some(k), "key {k}");
        }
    }

    #[test]
    fn rwlock_wrapper_is_thread_safe() {
        let (t, _pool) = fresh(32, LearnedConfig::default());
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = &t;
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        let k = tid * 10_000 + i;
                        assert!(t.insert(k, k));
                        assert_eq!(t.lookup(k), Some(k));
                    }
                });
            }
        });
        for tid in 0..4u64 {
            for i in 0..1_000u64 {
                assert_eq!(t.lookup(tid * 10_000 + i), Some(tid * 10_000 + i));
            }
        }
    }

    #[test]
    fn striped_writers_race_merges_and_recover() {
        let cfg = small_cfg();
        let pool = Arc::new(PmPool::new(64 << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        let t = LearnedIndex::create(alloc, cfg);
        // Keys spread across the whole key space so concurrent appends
        // land in different stripes; the tiny delta cap forces many
        // merges (exclusive path) while the appends race (shared path).
        let key = |tid: u64, i: u64| (i * 8 + tid) * (u64::MAX / 20_000);
        std::thread::scope(|s| {
            for tid in 0..8u64 {
                let t = &t;
                s.spawn(move || {
                    for i in 0..1_500u64 {
                        let k = key(tid, i);
                        assert!(t.insert(k, tid));
                        if i % 3 == 0 {
                            assert!(t.update(k, tid + 100));
                        }
                        if i % 5 == 0 {
                            assert!(t.remove(k));
                        }
                    }
                });
            }
        });
        assert!(t.model_stats().merges > 0, "merges must fire under load");
        drop(t);
        pool.crash();
        let alloc = PmAllocator::recover(pool, AllocMode::General);
        let t = LearnedIndex::recover(alloc, cfg);
        for tid in 0..8u64 {
            for i in 0..1_500u64 {
                let want = if i % 5 == 0 {
                    None
                } else if i % 3 == 0 {
                    Some(tid + 100)
                } else {
                    Some(tid)
                };
                assert_eq!(t.lookup(key(tid, i)), want, "tid {tid} i {i}");
            }
        }
    }

    #[test]
    fn footprint_reports_dram_mirrors() {
        let (t, _pool) = fresh(8, small_cfg());
        for k in 0..500u64 {
            t.insert(k, k);
        }
        let f = t.footprint();
        assert!(f.pm_bytes > 0);
        assert!(f.dram_bytes > 0, "key/segment mirrors must be accounted");
    }

    #[test]
    fn default_config_round_trips() {
        let cfg = LearnedConfig::default();
        let pool = Arc::new(PmPool::new(64 << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        let t = LearnedIndex::create(alloc, cfg);
        for k in 0..10_000u64 {
            assert!(t.insert(k * 3, k));
        }
        drop(t);
        pool.crash();
        let alloc = PmAllocator::recover(pool, AllocMode::General);
        let t = LearnedIndex::recover(alloc, cfg);
        for k in 0..10_000u64 {
            assert_eq!(t.lookup(k * 3), Some(k), "key {k}");
        }
    }
}
