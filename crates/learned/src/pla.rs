//! Piecewise-linear approximation (PLA) of the key→rank function.
//!
//! The classic PGM-index construction: a greedy pass keeps a feasible
//! slope cone open while points still fit within ±ε of some line, and
//! closes a segment the moment the cone collapses. Because the cone is
//! maintained in `f64` while keys span the full `u64` range, rounding
//! can nudge a chosen slope slightly outside the exact-arithmetic
//! feasible region — so a verify pass re-checks every key against the
//! *stored* slope and splits the segment at the first violator. The
//! ε-bound therefore holds by construction, not by numerical luck,
//! which is what the crash-recovery window search (and the proptest in
//! `tests/learned_index.rs`) relies on.

/// One linear segment of the model: keys in `[first_key, next
/// segment's first_key)` map to ranks near `base + slope * (key -
/// first_key)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Smallest key the segment covers.
    pub first_key: u64,
    /// Rank of `first_key` in the sorted key array.
    pub base: u64,
    /// Ranks per key unit (non-negative; 0 for single-point segments).
    pub slope: f64,
}

impl Segment {
    /// Predicted rank for `key` (clamped below at `base`; the caller
    /// clamps above at `n`).
    pub fn predict(&self, key: u64) -> u64 {
        let dx = key.saturating_sub(self.first_key) as f64;
        let off = self.slope * dx;
        // A pathological slope*dx can exceed u64; saturate.
        if off >= u64::MAX as f64 {
            u64::MAX
        } else {
            self.base.saturating_add(off as u64)
        }
    }
}

/// True when every key's predicted rank is within `eps` of its true
/// rank under `seg` (keys are `keys[seg.base ..]` until the segment
/// ends). Used by the verify pass and exported for the property tests.
pub fn segment_respects_eps(seg: &Segment, keys: &[u64], end_rank: u64, eps: u64) -> bool {
    (seg.base..end_rank).all(|r| {
        let pred = seg.predict(keys[r as usize]);
        pred.abs_diff(r) <= eps
    })
}

/// Train an ε-bounded PLA over strictly-sorted `keys`. Every key's
/// predicted rank is guaranteed within ±`eps` of its true rank.
pub fn build_segments(keys: &[u64], eps: u64) -> Vec<Segment> {
    let _site = obs::site("learned_train");
    assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must be sorted");
    let mut segs = Vec::new();
    let mut start = 0usize;
    while start < keys.len() {
        let mut limit = keys.len();
        loop {
            let (end, slope) = cone(keys, start, limit, eps);
            let seg = Segment {
                first_key: keys[start],
                base: start as u64,
                slope,
            };
            // The cone guarantees a feasible slope in exact arithmetic;
            // verify the f64 one actually chosen and shrink to the
            // first violator if rounding pushed it out. Terminates:
            // `limit` strictly decreases, and a single-point segment
            // (slope 0) is always exact.
            match (start + 1..end).find(|&r| seg.predict(keys[r]).abs_diff(r as u64) > eps) {
                Some(violator) => limit = violator,
                None => {
                    segs.push(seg);
                    start = end;
                    break;
                }
            }
        }
    }
    segs
}

/// Greedy cone pass over `keys[start..limit]`: the largest `end` such
/// that one line keeps every covered rank within ±ε, plus the midpoint
/// slope of the final feasible cone (clamped non-negative; 0 is always
/// feasible when the cone admits it, and single-point segments are
/// exact with slope 0).
fn cone(keys: &[u64], start: usize, limit: usize, eps: u64) -> (usize, f64) {
    let k0 = keys[start];
    let eps = eps as f64;
    let mut lo = f64::NEG_INFINITY;
    let mut hi = f64::INFINITY;
    let mut end = start + 1;
    while end < limit {
        let dx = (keys[end] - k0) as f64;
        let dr = (end - start) as f64;
        let new_lo = (dr - eps) / dx;
        let new_hi = (dr + eps) / dx;
        if lo.max(new_lo) > hi.min(new_hi) {
            break;
        }
        lo = lo.max(new_lo);
        hi = hi.min(new_hi);
        end += 1;
    }
    if end == start + 1 {
        return (end, 0.0);
    }
    let slope = ((lo + hi) / 2.0).clamp(lo.max(0.0), hi);
    (end, slope)
}

/// Index of the segment covering `key` (the last segment whose
/// `first_key <= key`; 0 when `key` precedes every segment).
pub fn segment_for(segs: &[Segment], key: u64) -> usize {
    let _site = obs::site("learned_seg_search");
    debug_assert!(!segs.is_empty());
    segs.partition_point(|s| s.first_key <= key)
        .saturating_sub(1)
}

/// The rank window `[lo, hi)` guaranteed to bracket `key`'s insertion
/// point in `keys` (`n` = key count). The ±ε member bound widens by 2
/// for non-member keys (their rank sits between two member
/// predictions), and a final guarded expansion makes the bracket
/// unconditional even for adversarial float behavior.
pub fn locate(segs: &[Segment], keys: &[u64], key: u64, eps: u64) -> (usize, usize) {
    let n = keys.len();
    if n == 0 {
        return (0, 0);
    }
    let seg = &segs[segment_for(segs, key)];
    let pred = seg.predict(key).min(n as u64 - 1);
    let mut lo = pred.saturating_sub(eps + 2) as usize;
    let mut hi = ((pred + eps + 2).min(n as u64)) as usize;
    // Guarded expansion: the window must satisfy keys[lo-1] < key (or
    // lo == 0) and keys[hi-1] >= key or hi == n.
    while lo > 0 && keys[lo - 1] >= key {
        lo = lo.saturating_sub(eps as usize + 1);
    }
    while hi < n && keys[hi] < key {
        hi = (hi + eps as usize + 1).min(n);
    }
    (lo, hi.max(lo))
}

/// `key`'s insertion point (lower bound) in `keys`, via the model.
pub fn lower_bound(segs: &[Segment], keys: &[u64], key: u64, eps: u64) -> usize {
    let (lo, hi) = locate(segs, keys, key, eps);
    lo + keys[lo..hi].partition_point(|&k| k < key)
}

/// Model lookup: `Some(rank)` when `key` is present in `keys`.
pub fn find(segs: &[Segment], keys: &[u64], key: u64, eps: u64) -> Option<usize> {
    let r = lower_bound(segs, keys, key, eps);
    (r < keys.len() && keys[r] == key).then_some(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_invariant(keys: &[u64], eps: u64) {
        let segs = build_segments(keys, eps);
        if keys.is_empty() {
            assert!(segs.is_empty());
            return;
        }
        assert_eq!(segs[0].base, 0);
        for (i, w) in segs.windows(2).enumerate() {
            assert!(w[0].first_key < w[1].first_key, "segment {i} unsorted");
            assert!(w[0].base < w[1].base);
        }
        for (r, &k) in keys.iter().enumerate() {
            let s = &segs[segment_for(&segs, k)];
            assert!(
                s.predict(k).abs_diff(r as u64) <= eps,
                "key {k} rank {r} predicted {}",
                s.predict(k)
            );
            assert_eq!(find(&segs, keys, k, eps), Some(r));
        }
    }

    #[test]
    fn linear_keys_collapse_to_one_segment() {
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 7 + 3).collect();
        let segs = build_segments(&keys, 8);
        assert_eq!(segs.len(), 1);
        check_invariant(&keys, 8);
    }

    #[test]
    fn skewed_and_clustered_keys_hold_the_bound() {
        let mut keys: Vec<u64> = (0..500u64).collect();
        keys.extend((0..500u64).map(|i| (1 << 40) | (i * 1000)));
        keys.extend((0..500u64).map(|i| u64::MAX - 5_000 + i * 10));
        keys.sort_unstable();
        keys.dedup();
        for eps in [1, 4, 32] {
            check_invariant(&keys, eps);
        }
    }

    #[test]
    fn extreme_span_keys_survive_f64_rounding() {
        // Keys spanning the full u64 range with microscopic gaps mixed
        // in: the f64 cone loses precision, the verify pass must save
        // the invariant.
        let mut keys = vec![0, 1, 2, 3, u64::MAX / 2, u64::MAX / 2 + 1, u64::MAX - 1];
        keys.extend((0..100u64).map(|i| (1u64 << 50) + i));
        keys.sort_unstable();
        keys.dedup();
        for eps in [1, 2, 16] {
            check_invariant(&keys, eps);
        }
    }

    #[test]
    fn absent_key_lower_bound_matches_binary_search() {
        let keys: Vec<u64> = (0..3_000u64).map(|i| i * i + 17).collect();
        let segs = build_segments(&keys, 4);
        let mut x = 12345u64;
        for _ in 0..5_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = x % (3_000 * 3_000);
            let want = keys.partition_point(|&k| k < key);
            assert_eq!(lower_bound(&segs, &keys, key, 4), want, "key {key}");
        }
    }

    #[test]
    fn smaller_eps_never_uses_fewer_segments() {
        let keys: Vec<u64> = (0..5_000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9) >> 3)
            .collect();
        let mut keys = keys;
        keys.sort_unstable();
        keys.dedup();
        let tight = build_segments(&keys, 2).len();
        let loose = build_segments(&keys, 64).len();
        assert!(tight >= loose, "tight={tight} loose={loose}");
        assert!(loose >= 1);
    }
}
