//! `pmload` — drive a remote `pmserve` with a pibench-style workload.
//!
//! ```text
//! pmload --addr 127.0.0.1:7777 --records 100000 --ops 200000 \
//!        --conns 4 --window 32 --mix 60,10,10,10,10
//! pmload --addr ... --open-loop-qps 50000          # Poisson arrivals
//! pmload --addr ... --conns 1 --oracle             # model-checked run
//! ```
//!
//! Emits a human table on stderr, one JSON document line on stdout
//! (same latency-percentile shape as local `pibench` runs), and one
//! `RESULT key=value ...` line on stdout for shell-side consumers.
//! With `--shutdown` it asks the server to drain after the run.

use std::time::Duration;

use net::client::{run_load, send_shutdown, LoadConfig};
use pibench::dist::Distribution;
use pibench::report::{JsonObj, Table};
use pibench::workload::OP_KINDS;

fn usage() -> ! {
    eprintln!(
        "usage: pmload --addr HOST:PORT [--records N] [--ops N] [--conns N] [--window N]\n\
         \x20              [--mix L,I,U,R,S] [--dist uniform|selfsimilar|zipfian] [--theta F]\n\
         \x20              [--scan-len N] [--seed N] [--open-loop-qps Q] [--oracle] [--shutdown]"
    );
    std::process::exit(2)
}

#[allow(clippy::too_many_lines)]
fn main() {
    let mut cfg = LoadConfig::default();
    let mut theta = 0.99f64;
    let mut dist_name = "uniform".to_string();
    let mut shutdown = false;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--addr" => cfg.addr = val(),
            "--records" => cfg.records = val().parse().unwrap_or_else(|_| usage()),
            "--ops" => cfg.ops = val().parse().unwrap_or_else(|_| usage()),
            "--conns" => cfg.conns = val().parse().unwrap_or_else(|_| usage()),
            "--window" => cfg.window = val().parse().unwrap_or_else(|_| usage()),
            "--mix" => {
                let parts: Vec<u8> = val()
                    .split(',')
                    .map(|p| p.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if parts.len() != 5 {
                    usage();
                }
                cfg.mix.lookup = parts[0];
                cfg.mix.insert = parts[1];
                cfg.mix.update = parts[2];
                cfg.mix.remove = parts[3];
                cfg.mix.scan = parts[4];
                cfg.mix.validate();
            }
            "--dist" => dist_name = val(),
            "--theta" => theta = val().parse().unwrap_or_else(|_| usage()),
            "--scan-len" => cfg.scan_len = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = val().parse().unwrap_or_else(|_| usage()),
            "--open-loop-qps" => {
                cfg.open_loop_qps = Some(val().parse().unwrap_or_else(|_| usage()))
            }
            "--oracle" => cfg.oracle = true,
            "--shutdown" => shutdown = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    cfg.dist = match dist_name.as_str() {
        "uniform" => Distribution::Uniform,
        "selfsimilar" => Distribution::self_similar_80_20(),
        "zipfian" => Distribution::Zipfian { theta },
        _ => usage(),
    };
    if cfg.oracle && cfg.conns != 1 {
        eprintln!("pmload: --oracle requires --conns 1 (FIFO execution order)");
        std::process::exit(2);
    }

    let r = run_load(&cfg).unwrap_or_else(|e| {
        eprintln!("pmload: {e}");
        std::process::exit(1);
    });

    let loop_mode = if cfg.open_loop_qps.is_some() {
        "open"
    } else {
        "closed"
    };
    let mut t = Table::new(vec!["metric", "value"]);
    t.row(vec!["loop".to_string(), loop_mode.to_string()]);
    t.row(vec![
        "conns x window".to_string(),
        format!("{} x {}", cfg.conns, cfg.window),
    ]);
    t.row(vec!["sent".to_string(), r.sent.to_string()]);
    t.row(vec!["acked".to_string(), r.acked.to_string()]);
    t.row(vec!["misses".to_string(), r.misses.to_string()]);
    t.row(vec!["errors".to_string(), r.errors.to_string()]);
    t.row(vec![
        "throughput".to_string(),
        format!("{:.3} Mops/s", r.mops()),
    ]);
    for kind in OP_KINDS {
        let h = &r.hists[kind as usize];
        if h.is_empty() {
            continue;
        }
        t.row(vec![
            format!("{} p50/p99/p99.9", kind.label()),
            format!(
                "{} / {} / {} ns",
                h.percentile(50.0),
                h.percentile(99.0),
                h.percentile(99.9)
            ),
        ]);
    }
    if cfg.oracle {
        t.row(vec![
            "oracle".to_string(),
            format!(
                "{} checked, {} violations",
                r.oracle_checked, r.oracle_violations
            ),
        ]);
    }
    if r.server_closed {
        t.row(vec![
            "server".to_string(),
            "closed mid-run (drain or halt)".to_string(),
        ]);
    }
    eprint!("{}", t.to_text());

    // JSON document (one line, pibench-compatible latency shape).
    let mut o = JsonObj::new();
    o.str("tool", "pmload")
        .str("addr", &cfg.addr)
        .str("loop", loop_mode)
        .u64("conns", cfg.conns as u64)
        .u64("window", cfg.window as u64)
        .u64("records", cfg.records)
        .u64("sent", r.sent)
        .u64("acked", r.acked)
        .u64("misses", r.misses)
        .u64("errors", r.errors)
        .f64("elapsed_s", r.elapsed.as_secs_f64())
        .f64("throughput_mops", r.mops())
        .bool("server_closed", r.server_closed);
    if let Some(q) = cfg.open_loop_qps {
        o.f64("target_qps", q);
    }
    let mut lat = JsonObj::new();
    for kind in OP_KINDS {
        let h = &r.hists[kind as usize];
        if h.is_empty() {
            continue;
        }
        let mut l = JsonObj::new();
        l.u64("count", h.len() as u64)
            .u64("p50", h.percentile(50.0))
            .u64("p99", h.percentile(99.0))
            .u64("p999", h.percentile(99.9))
            .f64("mean", h.mean());
        lat.obj(kind.label(), l);
    }
    o.obj("latency_ns", lat);
    if cfg.oracle {
        let mut or = JsonObj::new();
        or.u64("checked", r.oracle_checked)
            .u64("violations", r.oracle_violations);
        o.obj("oracle", or);
    }
    println!("{}", o.finish());

    // Flat line for shell/e18 consumers (no JSON parser needed).
    let all = {
        let mut h = pibench::hist::LatencyHistogram::new();
        for hh in &r.hists {
            h.merge(hh);
        }
        h
    };
    println!(
        "RESULT loop={loop_mode} acked={} errors={} mops={:.4} p50_ns={} p99_ns={} p999_ns={} oracle_violations={}",
        r.acked,
        r.errors,
        r.mops(),
        all.percentile(50.0),
        all.percentile(99.0),
        all.percentile(99.9),
        r.oracle_violations
    );

    if shutdown {
        if let Err(e) = send_shutdown(&cfg.addr) {
            eprintln!("pmload: shutdown request failed: {e}");
        } else {
            // Give the server a beat to finish draining before we exit
            // (useful for scripted two-process runs).
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    if r.errors > 0 || (cfg.oracle && r.oracle_violations > 0) {
        std::process::exit(1);
    }
}
