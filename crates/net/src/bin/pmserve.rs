//! `pmserve` — serve a PM range index over TCP.
//!
//! ```text
//! pmserve --index fptree --shards 4 --records 100000 --addr 127.0.0.1:7777 \
//!         --workers 4 --batch-max 32 --sample-ms 500 --selfcheck
//! ```
//!
//! Prints `pmserve listening on <addr>` once ready (drivers parse this
//! line), then serves until SIGTERM/SIGINT or a wire `Shutdown`
//! request, drains gracefully, and prints a serving summary. With
//! `--selfcheck` it power-cycles the pools after drain and verifies the
//! recovered index matches the served one record for record — the
//! durable-ack invariant at process scale. With `--sample-ms N` an
//! `obs::Sampler` records per-interval served-QPS / batch-size /
//! fence-rate next to the PM bandwidth columns.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use index_api::RangeIndex;
use net::build::{build_sharded, recover_sharded, SERVE_KINDS};
use net::server::{Server, ServerConfig};
use pibench::report::Table;
use pmem::{PmConfig, PmStatsSnapshot};

static TERM: AtomicBool = AtomicBool::new(false);

// SIGTERM/SIGINT → graceful drain, without adding a signal-handling
// dependency: std already links libc, so declare `signal` directly.
extern "C" fn on_signal(_sig: i32) {
    TERM.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: *const ()) -> *const ();
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal as *const ());
        signal(SIGINT, on_signal as *const ());
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: pmserve [--index KIND] [--shards N] [--records N] [--addr HOST:PORT]\n\
         \x20               [--workers N] [--batch-max N] [--window N] [--max-conns N]\n\
         \x20               [--pm real|optane] [--sample-ms N] [--selfcheck] [--trace]\n\
         \x20               [--cache] [--cache-mb N]\n\
         \x20 KIND one of {SERVE_KINDS:?}"
    );
    std::process::exit(2)
}

#[allow(clippy::too_many_lines)]
fn main() {
    let mut index_kind = "fptree".to_string();
    let mut shards = 4usize;
    let mut records = 100_000u64;
    let mut addr = "127.0.0.1:7777".to_string();
    let mut cfg = ServerConfig::default();
    let mut pm = PmConfig::optane_like();
    let mut sample_ms: Option<u64> = None;
    let mut selfcheck = false;
    let mut trace = false;
    let mut use_cache = false;
    let mut cache_mb = 64usize;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--index" => index_kind = val(),
            "--shards" => shards = val().parse().unwrap_or_else(|_| usage()),
            "--records" => records = val().parse().unwrap_or_else(|_| usage()),
            "--addr" => addr = val(),
            "--workers" => cfg.workers = val().parse().unwrap_or_else(|_| usage()),
            "--batch-max" => cfg.batch_max = val().parse().unwrap_or_else(|_| usage()),
            "--window" => cfg.window = val().parse().unwrap_or_else(|_| usage()),
            "--max-conns" => cfg.max_conns = val().parse().unwrap_or_else(|_| usage()),
            "--pm" => {
                pm = match val().as_str() {
                    "real" => PmConfig::real(),
                    "optane" => PmConfig::optane_like(),
                    _ => usage(),
                }
            }
            "--sample-ms" => sample_ms = Some(val().parse().unwrap_or_else(|_| usage())),
            "--selfcheck" => selfcheck = true,
            "--trace" => trace = true,
            "--cache" => use_cache = true,
            "--cache-mb" => {
                cache_mb = val().parse().unwrap_or_else(|_| usage());
                use_cache = true;
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if !SERVE_KINDS.contains(&index_kind.as_str()) {
        usage();
    }
    cfg.addr = addr;

    install_signal_handlers();

    eprintln!("pmserve: building {index_kind} x{shards}, prefilling {records} records");
    let env = build_sharded(&index_kind, shards, records, pm);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    net::build::prefill(&env.index, records, threads);
    for p in &env.pools {
        p.reset_stats();
    }

    // With --cache the served index is wrapped in the DRAM hot-key tier;
    // `env.index` stays raw so the selfcheck below compares persistent
    // state, not cache contents.
    let cached = use_cache.then(|| {
        Arc::new(cache::CachedIndex::new(
            env.index.clone() as Arc<dyn RangeIndex>,
            cache_mb << 20,
        ))
    });
    let served: Arc<dyn RangeIndex> = match &cached {
        Some(c) => c.clone(),
        None => env.index.clone(),
    };
    if let Some(c) = &cached {
        eprintln!(
            "pmserve: cache tier on ({cache_mb} MiB, {} slots)",
            c.cache().capacity()
        );
    }

    let server = Server::start(served, env.pools.clone(), cfg)
        .unwrap_or_else(|e| panic!("bind failed: {e}"));
    let handle = server.handle();
    // Drivers wait for this exact line before connecting.
    println!("pmserve listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let sampling = sample_ms.is_some() || trace;
    if sampling {
        obs::reset();
        obs::set_enabled(true);
    }
    // One obs::Sampler carries both axes: its closure reads the merged
    // PM counters for the bandwidth columns and, as a synchronized side
    // effect, snapshots the serving counters for batch-size/fence-rate.
    let net_series: Arc<Mutex<Vec<(u64, u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let sampler = sample_ms.map(|ms| {
        let pools = env.pools.clone();
        let stats = server.stats();
        let net_series = net_series.clone();
        obs::Sampler::start(ms, move || {
            net_series.lock().unwrap().push(stats.batch_counters());
            let s =
                PmStatsSnapshot::merged(pools.iter().map(|p| p.stats()).collect::<Vec<_>>().iter());
            obs::PmCounters {
                read_bytes: s.read_bytes,
                write_bytes: s.write_bytes,
                media_read_bytes: s.media_read_bytes,
                media_write_bytes: s.media_write_bytes,
                clwb: s.clwb,
                ntstore: s.ntstore,
                fence: s.fence,
            }
        })
    });

    // Serve until a signal or a wire Shutdown begins the drain.
    loop {
        if TERM.load(Ordering::SeqCst) {
            eprintln!("pmserve: signal received, draining");
            handle.drain();
        }
        if handle.draining() {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let report = server.join();
    let series = sampler.map(|s| s.stop());
    if sampling {
        obs::set_enabled(false);
    }

    // Per-interval table: served QPS + batch shape next to the PM
    // bandwidth columns.
    if let Some(ts) = &series {
        let net_pts = net_series.lock().unwrap();
        let mut t = Table::new(vec![
            "t_ms", "qps", "batch", "fence/s", "rd GiB/s", "wr GiB/s",
        ]);
        let mut prev = (0u64, 0u64, 0u64);
        for (i, p) in ts.points.iter().enumerate() {
            let cur = net_pts.get(i + 1).copied().unwrap_or(prev);
            let (db, dops, df) = (cur.0 - prev.0, cur.1 - prev.1, cur.2 - prev.2);
            prev = cur;
            let avg_batch = if db > 0 { dops as f64 / db as f64 } else { 0.0 };
            let dt_s = (p.dt_ms as f64 / 1e3).max(1e-9);
            t.row(vec![
                p.t_ms.to_string(),
                format!("{:.0}", p.ops as f64 / dt_s),
                format!("{avg_batch:.1}"),
                format!("{:.0}", df as f64 / dt_s),
                format!("{:.3}", p.read_gibps()),
                format!("{:.3}", p.write_gibps()),
            ]);
        }
        eprintln!("\nper-interval serving samples:");
        eprint!("{}", t.to_text());
    }
    if trace {
        let sites = obs::site_table();
        let mut t = Table::new(vec!["site", "events", "read B", "write B"]);
        for s in &sites {
            t.row(vec![
                s.name.clone(),
                s.events.to_string(),
                s.read_bytes.to_string(),
                s.write_bytes.to_string(),
            ]);
        }
        eprintln!("\nper-site PM traffic attribution:");
        eprint!("{}", t.to_text());
    }

    let st = &report.stats;
    let total = st.total_served();
    let (batches, batch_ops, fences) = st.batch_counters();
    let mut t = Table::new(vec!["metric", "value"]);
    t.row(vec!["served ops".to_string(), total.to_string()]);
    for (i, label) in ["lookup", "insert", "update", "remove", "scan"]
        .iter()
        .enumerate()
    {
        t.row(vec![
            format!("  {label}"),
            st.served[i].load(Ordering::Relaxed).to_string(),
        ]);
    }
    t.row(vec![
        "acked writes".to_string(),
        st.acked_writes.load(Ordering::Relaxed).to_string(),
    ]);
    t.row(vec![
        "batches".to_string(),
        format!(
            "{batches} (avg {:.1} writes, {fences} fence epochs)",
            if batches > 0 {
                batch_ops as f64 / batches as f64
            } else {
                0.0
            }
        ),
    ]);
    t.row(vec![
        "conns".to_string(),
        format!(
            "{} accepted, {} overload-rejected, {} shed",
            st.conns_accepted.load(Ordering::Relaxed),
            st.overload_rejected.load(Ordering::Relaxed),
            st.shed_conns.load(Ordering::Relaxed)
        ),
    ]);
    t.row(vec![
        "time split".to_string(),
        format!(
            "wire {}ms, index {}ms, fence {}ms",
            st.wire_ns.load(Ordering::Relaxed) / 1_000_000,
            st.index_ns.load(Ordering::Relaxed) / 1_000_000,
            st.fence_ns.load(Ordering::Relaxed) / 1_000_000
        ),
    ]);
    if let Some(c) = &cached {
        let cc = c.counters();
        t.row(vec![
            "cache".to_string(),
            format!(
                "{} hits / {} misses ({:.1}% hit rate)",
                cc.hits,
                cc.misses,
                cc.hit_rate() * 100.0
            ),
        ]);
        t.row(vec![
            "  churn".to_string(),
            format!(
                "{} fills, {} evictions, {} invalidations",
                cc.fills, cc.evictions, cc.invalidations
            ),
        ]);
    }
    t.row(vec![
        "halted".to_string(),
        if report.halted {
            "yes (crash point)"
        } else {
            "no"
        }
        .to_string(),
    ]);
    eprintln!("\npmserve drained:");
    eprint!("{}", t.to_text());

    if report.halted {
        eprintln!("pmserve: halted by an armed crash point");
        std::process::exit(3);
    }

    if selfcheck {
        if env.pools.is_empty() {
            eprintln!("selfcheck: skipped (dram index has no pools)");
        } else {
            // At drain nothing is in flight, so the served state and
            // the post-power-cycle state must agree exactly.
            let mut live = Vec::new();
            env.index.scan(0, usize::MAX >> 1, &mut live);
            let pools = env.pools.clone();
            drop(env);
            for p in &pools {
                p.crash();
            }
            let rec = recover_sharded(&index_kind, pools);
            let mut post = Vec::new();
            rec.index.scan(0, usize::MAX >> 1, &mut post);
            if live != post {
                eprintln!(
                    "selfcheck FAILED: served {} records, recovered {}",
                    live.len(),
                    post.len()
                );
                std::process::exit(1);
            }
            eprintln!(
                "selfcheck ok: {} records survived the power cycle",
                live.len()
            );
        }
    }
}
