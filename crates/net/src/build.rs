//! Index construction for the serving binaries.
//!
//! `pmserve` must stand up the same default-configuration sharded
//! indexes the local benchmarks use, but `net` deliberately does not
//! depend on the `bench` crate (the harness sits *above* the serving
//! layer — E18 drives these binaries as subprocesses). So the small
//! amount of construction logic lives here: default-config inner
//! indexes, one pool + allocator per shard, behind one
//! [`engine::ShardedIndex`].

use std::sync::Arc;

use bztree::{BzTree, BzTreeConfig};
use dram_index::DramTree;
use engine::{Shard, ShardedIndex};
use fptree::{FpTree, FpTreeConfig};
use index_api::RangeIndex;
use learned::{LearnedConfig, LearnedIndex};
use nvtree::{NvTree, NvTreeConfig};
use pmalloc::{AllocMode, PmAllocator};
use pmem::{PmConfig, PmPool, ROOT_AREA};
use wbtree::{WbTree, WbTreeConfig};

/// Index kinds `pmserve` can serve.
pub const SERVE_KINDS: [&str; 6] = ["fptree", "nvtree", "wbtree", "bztree", "learned", "dram"];

/// A served index with its backing pools/allocators (empty for DRAM).
pub struct BuiltEnv {
    /// The index behind the server.
    pub index: Arc<ShardedIndex>,
    /// Its emulated PM pools, in shard order.
    pub pools: Vec<Arc<PmPool>>,
    /// Its allocators, in shard order.
    pub allocs: Vec<Arc<PmAllocator>>,
}

/// Per-shard pool capacity for `total_records` split over `shards`:
/// generous per-record budget plus fixed per-pool overhead (root area,
/// allocator metadata), matching the local harness's sizing heuristic.
pub fn pool_bytes_for_shard(total_records: u64, shards: usize) -> usize {
    assert!(shards >= 1);
    let budget = (total_records as usize) * 320 + (64 << 20);
    budget.div_ceil(shards) + ROOT_AREA as usize + (4 << 20)
}

fn make_index(kind: &str, alloc: &Arc<PmAllocator>) -> Arc<dyn RangeIndex> {
    match kind {
        "fptree" => FpTree::create(alloc.clone(), FpTreeConfig::default()),
        "nvtree" => NvTree::create(alloc.clone(), NvTreeConfig::default()),
        "wbtree" => WbTree::create(alloc.clone(), WbTreeConfig::default()),
        "bztree" => BzTree::create(alloc.clone(), BzTreeConfig::default()),
        "learned" => LearnedIndex::create(alloc.clone(), LearnedConfig::default()),
        other => panic!("unknown index kind {other:?} (expected one of {SERVE_KINDS:?})"),
    }
}

fn reopen_index(kind: &str, alloc: &Arc<PmAllocator>) -> Arc<dyn RangeIndex> {
    match kind {
        "fptree" => FpTree::recover(alloc.clone(), FpTreeConfig::default()),
        "nvtree" => NvTree::recover(alloc.clone(), NvTreeConfig::default()),
        "wbtree" => WbTree::recover(alloc.clone(), WbTreeConfig::default()),
        "bztree" => BzTree::recover(alloc.clone(), BzTreeConfig::default()),
        "learned" => LearnedIndex::recover(alloc.clone(), LearnedConfig::default()),
        other => panic!("unknown index kind {other:?}"),
    }
}

/// Build a fresh default-config sharded index of `kind` sized for
/// `records`, on `shards` independent pools.
pub fn build_sharded(kind: &str, shards: usize, records: u64, pm: PmConfig) -> BuiltEnv {
    assert!(shards >= 1);
    let parts: Vec<Shard> = (0..shards)
        .map(|_| {
            if kind == "dram" {
                Shard {
                    index: Arc::new(DramTree::new()),
                    pool: None,
                    alloc: None,
                }
            } else {
                let pool = Arc::new(PmPool::new(
                    pool_bytes_for_shard(records, shards),
                    pm.clone(),
                ));
                let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
                Shard {
                    index: make_index(kind, &alloc),
                    pool: Some(pool),
                    alloc: Some(alloc),
                }
            }
        })
        .collect();
    let index = ShardedIndex::from_parts(parts);
    let pools = index.pools();
    let allocs = index.allocs();
    BuiltEnv {
        index,
        pools,
        allocs,
    }
}

/// Reopen every shard of a crashed default-config sharded index (the
/// `pmserve --selfcheck` restart path).
pub fn recover_sharded(kind: &str, pools: Vec<Arc<PmPool>>) -> BuiltEnv {
    let index = ShardedIndex::recover_with(pools, true, |_, pool| {
        let alloc = PmAllocator::try_recover(pool, AllocMode::General)?;
        Ok((reopen_index(kind, &alloc), alloc))
    })
    .expect("shard recovery hit a media error");
    let pools = index.pools();
    let allocs = index.allocs();
    BuiltEnv {
        index,
        pools,
        allocs,
    }
}

/// Prefill `records` keys (the pibench keyspace: `mix(0..records)` with
/// derived values) using `threads` concurrent inserters.
pub fn prefill(index: &Arc<ShardedIndex>, records: u64, threads: usize) {
    let threads = threads.max(1);
    let ks = pibench::keys::KeySpace::new(records);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let index = index.clone();
            let ks = &ks;
            scope.spawn(move || {
                let mut i = t as u64;
                while i < records {
                    let k = ks.key(i);
                    assert!(index.insert(k, ks.value_for(k)), "prefill collision at {i}");
                    i += threads as u64;
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_prefill_recover_roundtrip() {
        let env = build_sharded("wbtree", 2, 2_000, PmConfig::real());
        prefill(&env.index, 2_000, 2);
        let ks = pibench::keys::KeySpace::new(2_000);
        assert_eq!(env.index.lookup(ks.key(7)), Some(ks.value_for(ks.key(7))));
        let pools = env.pools.clone();
        drop(env);
        for p in &pools {
            p.crash();
        }
        let env2 = recover_sharded("wbtree", pools);
        for i in (0..2_000u64).step_by(97) {
            let k = ks.key(i);
            assert_eq!(env2.index.lookup(k), Some(ks.value_for(k)), "key {i}");
        }
    }

    #[test]
    fn dram_env_has_no_pools() {
        let env = build_sharded("dram", 3, 500, PmConfig::real());
        prefill(&env.index, 500, 1);
        assert!(env.pools.is_empty());
        assert_eq!(env.index.shard_count(), 3);
    }
}
