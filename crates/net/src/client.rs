//! The driving half: a pipelined client connection plus a
//! pibench-compatible remote workload driver.
//!
//! Two loop disciplines, mirroring the serving-systems literature:
//!
//! * **closed loop** — `conns` connections, think-time 0, each keeps up
//!   to `window` requests pipelined; latency is measured from the
//!   moment a request is handed to the socket.
//! * **open loop** — requests arrive on a Poisson schedule at
//!   `target_qps` ([`pibench::dist::Arrivals`]); latency is measured
//!   from the *intended* arrival instant, so server queueing delay
//!   lands in the tail percentiles instead of being absorbed by the
//!   loop, the classic coordinated-omission fix.
//!
//! With a single connection the driver can also run in **oracle mode**:
//! the server executes one connection's requests in FIFO order, so a
//! local `BTreeMap` model replayed in send order predicts every
//! response (status, lookup value, full scan body) exactly. CI uses
//! this to check ack-count == oracle count over all five op types.

use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use pibench::dist::{Arrivals, Distribution};
use pibench::hist::LatencyHistogram;
use pibench::keys::KeySpace;
use pibench::workload::{Op, OpMix, OpStream};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::wire::{FrameBuf, ReqOp, Request, Response, Status};

/// A pipelined client connection (nonblocking socket, caller-polled).
pub struct ClientConn {
    stream: TcpStream,
    inbuf: FrameBuf,
    outbuf: Vec<u8>,
    outpos: usize,
    next_req_id: u64,
    scratch: Vec<u8>,
    /// Set once the server closes its end (drain or power cut).
    pub server_closed: bool,
}

impl ClientConn {
    /// Connect to `addr` and switch to nonblocking mode.
    pub fn connect(addr: &str) -> std::io::Result<ClientConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(ClientConn {
            stream,
            inbuf: FrameBuf::new(),
            outbuf: Vec::new(),
            outpos: 0,
            next_req_id: 1,
            scratch: vec![0u8; 64 << 10],
            server_closed: false,
        })
    }

    /// Queue one request, returning its request id. Call [`Self::pump`]
    /// to actually move bytes.
    pub fn send(&mut self, op: ReqOp) -> u64 {
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        Request { req_id, op }.encode_into(&mut self.outbuf);
        req_id
    }

    /// Unsent bytes still queued.
    pub fn unflushed(&self) -> usize {
        self.outbuf.len() - self.outpos
    }

    /// Nonblocking IO pump: write queued bytes, read whatever the
    /// server sent. Returns decoded responses (possibly none).
    pub fn pump(&mut self) -> std::io::Result<Vec<Response>> {
        if self.outpos < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.outpos..]) {
                Ok(n) => {
                    self.outpos += n;
                    if self.outpos == self.outbuf.len() {
                        self.outbuf.clear();
                        self.outpos = 0;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => {
                    self.server_closed = true;
                }
                Err(e) => return Err(e),
            }
        }
        let mut out = Vec::new();
        loop {
            match self.stream.read(&mut self.scratch) {
                Ok(0) => {
                    self.server_closed = true;
                    break;
                }
                Ok(n) => self.inbuf.push(&self.scratch[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {
                    self.server_closed = true;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        while let Ok(Some(payload)) = self.inbuf.next_frame() {
            match Response::decode(payload) {
                Ok(r) => out.push(r),
                Err(e) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("bad response frame: {e}"),
                    ))
                }
            }
        }
        Ok(out)
    }

    /// Pump until a response arrives or `timeout` passes.
    pub fn recv_timeout(&mut self, timeout: Duration) -> std::io::Result<Option<Response>> {
        let deadline = Instant::now() + timeout;
        loop {
            let mut got = self.pump()?;
            if let Some(r) = got.pop() {
                // Single-response convenience used by control paths;
                // callers needing bulk traffic use pump() directly.
                return Ok(Some(r));
            }
            if self.server_closed || Instant::now() >= deadline {
                return Ok(None);
            }
            std::thread::sleep(Duration::from_micros(100));
        }
    }
}

/// Ask a server to drain gracefully via the wire `Shutdown` op.
pub fn send_shutdown(addr: &str) -> std::io::Result<()> {
    let mut conn = ClientConn::connect(addr)?;
    conn.send(ReqOp::Shutdown);
    let _ = conn.recv_timeout(Duration::from_secs(5))?;
    Ok(())
}

/// Remote workload configuration (`pmload`'s core).
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address.
    pub addr: String,
    /// Records the server was prefilled with (keyspace must match).
    pub records: u64,
    /// Total operations across all connections.
    pub ops: u64,
    /// Client connections (one thread each).
    pub conns: usize,
    /// Pipelined in-flight requests per connection.
    pub window: usize,
    /// Operation mix.
    pub mix: OpMix,
    /// Key access distribution.
    pub dist: Distribution,
    /// Records per scan.
    pub scan_len: usize,
    /// RNG seed.
    pub seed: u64,
    /// `Some(qps)` switches to open-loop Poisson arrivals.
    pub open_loop_qps: Option<f64>,
    /// Check every response against a local model (requires 1 conn).
    pub oracle: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7777".into(),
            records: 100_000,
            ops: 100_000,
            conns: 4,
            window: 32,
            mix: OpMix {
                lookup: 60,
                insert: 10,
                update: 10,
                remove: 10,
                scan: 10,
            },
            dist: Distribution::Uniform,
            scan_len: 100,
            seed: 0x5EED,
            open_loop_qps: None,
            oracle: false,
        }
    }
}

/// What one run of [`run_load`] measured.
#[derive(Debug)]
pub struct LoadResult {
    /// Requests sent.
    pub sent: u64,
    /// Responses received (acks).
    pub acked: u64,
    /// `Status::Miss` responses (clean negatives).
    pub misses: u64,
    /// Protocol-level failures (overload/bad).
    pub errors: u64,
    /// Measured wall time of the op phase.
    pub elapsed: Duration,
    /// Latency per op kind, `OP_KINDS` order.
    pub hists: Vec<LatencyHistogram>,
    /// Oracle-mode: responses checked against the model.
    pub oracle_checked: u64,
    /// Oracle-mode: responses contradicting the model.
    pub oracle_violations: u64,
    /// Server closed mid-run (drain or halt) — remaining ops unsent.
    pub server_closed: bool,
}

impl LoadResult {
    /// Throughput in Mops over acked responses.
    pub fn mops(&self) -> f64 {
        self.acked as f64 / self.elapsed.as_secs_f64() / 1e6
    }
}

/// Expected outcome of one request, computed by replaying the op
/// against the oracle model at send time (valid because a single
/// connection's requests execute FIFO on the server).
enum Expect {
    Status(Status),
    Lookup(Option<u64>),
    Scan(Vec<(u64, u64)>),
}

fn apply_model(model: &mut BTreeMap<u64, u64>, op: &Op, scan_cap: usize) -> Expect {
    match *op {
        Op::Lookup(k) => Expect::Lookup(model.get(&k).copied()),
        Op::Insert(k, v) => {
            if let std::collections::btree_map::Entry::Vacant(e) = model.entry(k) {
                e.insert(v);
                Expect::Status(Status::Ok)
            } else {
                Expect::Status(Status::Miss)
            }
        }
        Op::Update(k, v) => {
            if let Some(slot) = model.get_mut(&k) {
                *slot = v;
                Expect::Status(Status::Ok)
            } else {
                Expect::Status(Status::Miss)
            }
        }
        Op::Remove(k) => {
            if model.remove(&k).is_some() {
                Expect::Status(Status::Ok)
            } else {
                Expect::Status(Status::Miss)
            }
        }
        Op::Scan(start, n) => Expect::Scan(
            model
                .range(start..)
                .take(n.min(scan_cap))
                .map(|(k, v)| (*k, *v))
                .collect(),
        ),
    }
}

fn check_expect(expect: &Expect, resp: &Response) -> bool {
    match expect {
        Expect::Status(s) => resp.status == *s,
        Expect::Lookup(Some(v)) => resp.status == Status::Ok && resp.value == Some(*v),
        Expect::Lookup(None) => resp.status == Status::Miss,
        Expect::Scan(pairs) => resp.status == Status::Ok && resp.pairs == *pairs,
    }
}

fn to_reqop(op: &Op) -> ReqOp {
    match *op {
        Op::Lookup(k) => ReqOp::Lookup(k),
        Op::Insert(k, v) => ReqOp::Insert(k, v),
        Op::Update(k, v) => ReqOp::Update(k, v),
        Op::Remove(k) => ReqOp::Remove(k),
        Op::Scan(k, n) => ReqOp::Scan(k, n as u32),
    }
}

struct InFlight {
    kind: usize,
    t_ns: u64,
    expect: Option<Expect>,
}

struct ConnOutcome {
    sent: u64,
    acked: u64,
    misses: u64,
    errors: u64,
    hists: Vec<LatencyHistogram>,
    oracle_checked: u64,
    oracle_violations: u64,
    server_closed: bool,
}

/// Drive `cfg.ops` operations against a remote server and collect
/// pibench-style latency/throughput results.
pub fn run_load(cfg: &LoadConfig) -> std::io::Result<LoadResult> {
    assert!(cfg.conns > 0 && cfg.window > 0);
    if cfg.oracle {
        assert_eq!(
            cfg.conns, 1,
            "oracle mode needs a single connection (FIFO execution order)"
        );
    }
    let keyspace = KeySpace::new(cfg.records);
    let start = Instant::now();
    let per_conn = cfg.ops / cfg.conns as u64;
    let qps_per_conn = cfg.open_loop_qps.map(|q| q / cfg.conns as f64);

    let outcomes: Vec<std::io::Result<ConnOutcome>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..cfg.conns {
            let keyspace = &keyspace;
            let ops = if c == 0 {
                per_conn + cfg.ops % cfg.conns as u64
            } else {
                per_conn
            };
            handles.push(scope.spawn(move || {
                drive_conn(cfg, keyspace, cfg.seed + 1 + c as u64, ops, qps_per_conn)
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = start.elapsed();

    let mut r = LoadResult {
        sent: 0,
        acked: 0,
        misses: 0,
        errors: 0,
        elapsed,
        hists: (0..5).map(|_| LatencyHistogram::new()).collect(),
        oracle_checked: 0,
        oracle_violations: 0,
        server_closed: false,
    };
    for o in outcomes {
        let o = o?;
        r.sent += o.sent;
        r.acked += o.acked;
        r.misses += o.misses;
        r.errors += o.errors;
        r.oracle_checked += o.oracle_checked;
        r.oracle_violations += o.oracle_violations;
        r.server_closed |= o.server_closed;
        for (dst, src) in r.hists.iter_mut().zip(o.hists.iter()) {
            dst.merge(src);
        }
    }
    Ok(r)
}

#[allow(clippy::too_many_lines)]
fn drive_conn(
    cfg: &LoadConfig,
    keyspace: &KeySpace,
    seed: u64,
    ops: u64,
    qps: Option<f64>,
) -> std::io::Result<ConnOutcome> {
    let mut conn = ClientConn::connect(&cfg.addr)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let stream = OpStream::new(
        cfg.mix,
        cfg.dist.sampler(cfg.records),
        keyspace,
        cfg.scan_len,
    );
    let mut arrivals = qps.map(Arrivals::poisson);
    let mut model: Option<BTreeMap<u64, u64>> = cfg.oracle.then(|| {
        (0..cfg.records)
            .map(|i| {
                let k = keyspace.key(i);
                (k, keyspace.value_for(k))
            })
            .collect()
    });

    let mut out = ConnOutcome {
        sent: 0,
        acked: 0,
        misses: 0,
        errors: 0,
        hists: (0..5).map(|_| LatencyHistogram::new()).collect(),
        oracle_checked: 0,
        oracle_violations: 0,
        server_closed: false,
    };
    let mut inflight: HashMap<u64, InFlight> = HashMap::new();
    let t0 = Instant::now();
    let mut next_arrival: Option<u64> = arrivals.as_mut().map(|a| a.next(&mut rng));
    let mut idle = 0u32;

    while (out.sent < ops || !inflight.is_empty()) && !conn.server_closed {
        let mut progressed = false;

        // Send phase.
        while out.sent < ops && inflight.len() < cfg.window {
            let now_ns = t0.elapsed().as_nanos() as u64;
            // Open loop: the request's clock starts at its intended
            // arrival; if we are ahead of schedule, wait.
            let t_ns = if let Some(at) = next_arrival {
                if now_ns < at {
                    break;
                }
                next_arrival = arrivals.as_mut().map(|a| a.next(&mut rng));
                at
            } else {
                now_ns
            };
            let op = stream.next_op(&mut rng);
            let expect = model
                .as_mut()
                .map(|m| apply_model(m, &op, crate::wire::MAX_SCAN as usize));
            let req_id = conn.send(to_reqop(&op));
            inflight.insert(
                req_id,
                InFlight {
                    kind: op.kind() as usize,
                    t_ns,
                    expect,
                },
            );
            out.sent += 1;
            progressed = true;
        }

        // Receive phase.
        for resp in conn.pump()? {
            progressed = true;
            match resp.status {
                Status::Overload | Status::Draining => {
                    out.errors += 1;
                    out.server_closed = true;
                    continue;
                }
                Status::Bad => {
                    out.errors += 1;
                    continue;
                }
                Status::Ok | Status::Miss => {}
            }
            let Some(inf) = inflight.remove(&resp.req_id) else {
                out.errors += 1;
                continue;
            };
            out.acked += 1;
            if resp.status == Status::Miss {
                out.misses += 1;
            }
            let now_ns = t0.elapsed().as_nanos() as u64;
            out.hists[inf.kind].record(now_ns.saturating_sub(inf.t_ns));
            if let Some(expect) = &inf.expect {
                out.oracle_checked += 1;
                if !check_expect(expect, &resp) {
                    out.oracle_violations += 1;
                }
            }
        }

        if progressed {
            idle = 0;
        } else {
            idle = idle.saturating_add(1);
            if idle < 64 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }
    out.server_closed |= conn.server_closed;
    Ok(out)
}
