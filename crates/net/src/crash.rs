//! Crash-point exploration **through the serving path**: the
//! durable-ack oracle.
//!
//! The in-process sweeps (`crashpoint::{explore, sharded}`) prove the
//! indexes recover from a cut at any persistence boundary. This module
//! proves the *protocol* claim layered on top: a client that received
//! an ack over TCP holds a durable write, no matter where the power cut
//! lands — inside an index operation, inside the group-durability
//! batch fence, or between batches.
//!
//! Each explored point stands up a real [`Server`] on loopback over a
//! fresh sharded environment (small-node inner indexes, the same
//! configuration as the in-process sweeps), arms
//! `PmPool::arm_crash_after(boundary)` on one shard's pool, and replays
//! the deterministic `crashpoint::workload` over a single pipelined
//! connection. When the boundary trips, the server halts exactly like a
//! power cut (buffered acks are dropped, sockets close); the client is
//! left holding two facts:
//!
//! * the **acked set** — responses it actually received, folded into an
//!   oracle model in ack order, and
//! * the **unacked suffix** — requests sent but never answered, in send
//!   order.
//!
//! Because a single connection's requests execute FIFO on the server,
//! the post-recovery state must equal: *acked model* + *some prefix of
//! the unacked suffix fully applied* + *at most one further op torn
//! atomically* ([`InflightAllowance`]) + *nothing after it*. The
//! verifier tries every prefix length `j`; if none reconciles, the
//! boundary is reported as a durable-ack violation ("acked-but-lost" or
//! "torn in-flight").

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crashpoint::sharded::spread_op;
use crashpoint::{
    build_index, install_quiet_crash_hook, try_recover_stack, verify_recovered, workload,
    InflightAllowance, WorkloadOp,
};
use engine::{Shard, ShardedIndex};
use pmalloc::{AllocMode, PmAllocator};
use pmem::{PmConfig, PmPool};

use crate::client::ClientConn;
use crate::server::{Server, ServerConfig};
use crate::wire::{ReqOp, Response, Status};

/// Scale knobs for one durable-ack sweep.
#[derive(Debug, Clone)]
pub struct NetExploreOptions {
    /// Inner index kind (`fptree` / `nvtree` / `wbtree` / `bztree`).
    pub kind: String,
    /// Shards behind the server (each on its own pool).
    pub shards: usize,
    /// Operations in the deterministic workload.
    pub ops: u64,
    /// Distinct keys before spreading (small = collisions + splits).
    pub key_range: u64,
    /// Workload seed.
    pub seed: u64,
    /// Capacity of EACH shard's pool, in MiB.
    pub pool_mib: usize,
    /// Test every `stride`-th boundary of the armed pool (1 = all).
    pub stride: u64,
    /// Cap on boundaries tested (0 = no cap).
    pub max_boundaries: u64,
    /// Which shard's pool to arm.
    pub armed_shard: usize,
    /// Server group-durability batch size.
    pub batch_max: usize,
    /// Client pipelining window (how deep the unacked suffix can get).
    pub window: usize,
    /// DRAM hot-key cache in front of the served index, in MiB (0 = off).
    /// Recovery and verification always read the raw PM pools, so a
    /// green sweep with the cache on proves the tier never serves an
    /// acked write that is not durable underneath it.
    pub cache_mb: usize,
}

impl Default for NetExploreOptions {
    fn default() -> Self {
        NetExploreOptions {
            kind: "wbtree".to_string(),
            shards: 2,
            ops: 400,
            key_range: 96,
            seed: 0xC0FFEE,
            pool_mib: 8,
            stride: 1,
            max_boundaries: 0,
            armed_shard: 0,
            batch_max: 8,
            window: 32,
            cache_mb: 0,
        }
    }
}

/// One durable-ack violation found by the sweep.
#[derive(Debug, Clone)]
pub struct NetBoundaryFailure {
    /// The persistence-event boundary the crash was armed after.
    pub boundary: u64,
    /// What went wrong.
    pub detail: String,
}

/// Aggregate result of a durable-ack sweep.
#[derive(Debug)]
pub struct NetExploreSummary {
    /// Inner index kind.
    pub kind: String,
    /// Shard count.
    pub shards: usize,
    /// Armed pool's event total from the uninjected probe run.
    pub probe_events: u64,
    /// Boundaries actually tested.
    pub boundaries_tested: u64,
    /// Boundaries whose armed run tripped mid-workload.
    pub crashes_fired: u64,
    /// Boundaries whose armed run completed and drained cleanly.
    pub completed_runs: u64,
    /// Acks received across all armed runs.
    pub acked_total: u64,
    /// Deepest unacked suffix reconciled at a cut.
    pub max_unacked: usize,
    /// Durable-ack violations.
    pub failures: Vec<NetBoundaryFailure>,
}

impl NetExploreSummary {
    /// Whether the sweep found zero violations.
    pub fn is_green(&self) -> bool {
        self.failures.is_empty()
    }
}

struct Env {
    index: Arc<ShardedIndex>,
    pools: Vec<Arc<PmPool>>,
}

fn fresh_env(opts: &NetExploreOptions) -> Env {
    let parts: Vec<Shard> = (0..opts.shards)
        .map(|_| {
            let pool = Arc::new(PmPool::new(opts.pool_mib << 20, PmConfig::real()));
            let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
            Shard {
                index: build_index(&opts.kind, alloc.clone()),
                pool: Some(pool),
                alloc: Some(alloc),
            }
        })
        .collect();
    let index = ShardedIndex::from_parts(parts);
    let pools = index.pools();
    Env { index, pools }
}

/// The index the server should front: raw, or wrapped in the DRAM
/// hot-key tier when `cache_mb > 0`. Only the serving path goes through
/// the cache — crash images and recovery stay on the raw pools.
fn served_index(opts: &NetExploreOptions, env: &Env) -> Arc<dyn index_api::RangeIndex> {
    if opts.cache_mb > 0 {
        Arc::new(cache::CachedIndex::new(
            env.index.clone() as Arc<dyn index_api::RangeIndex>,
            opts.cache_mb << 20,
        ))
    } else {
        env.index.clone()
    }
}

fn server_cfg(opts: &NetExploreOptions) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        batch_max: opts.batch_max,
        window: opts.window.max(1),
        ..ServerConfig::default()
    }
}

fn to_reqop(op: WorkloadOp) -> ReqOp {
    match op {
        WorkloadOp::Insert(k, v) => ReqOp::Insert(k, v),
        WorkloadOp::Update(k, v) => ReqOp::Update(k, v),
        WorkloadOp::Remove(k) => ReqOp::Remove(k),
    }
}

/// Fold an op the server acked with `status` into the oracle model.
fn fold_acked(model: &mut BTreeMap<u64, u64>, op: WorkloadOp, status: Status) {
    if status != Status::Ok {
        return; // Miss: clean no-op (duplicate insert, absent key).
    }
    match op {
        WorkloadOp::Insert(k, v) | WorkloadOp::Update(k, v) => {
            model.insert(k, v);
        }
        WorkloadOp::Remove(k) => {
            model.remove(&k);
        }
    }
}

/// Fold an *unacked* op under the assumption it fully applied against
/// model state `m` (FIFO execution makes this deterministic).
fn fold_assumed(m: &mut BTreeMap<u64, u64>, op: WorkloadOp) {
    match op {
        WorkloadOp::Insert(k, v) => {
            m.entry(k).or_insert(v);
        }
        WorkloadOp::Update(k, v) => {
            if let Some(slot) = m.get_mut(&k) {
                *slot = v;
            }
        }
        WorkloadOp::Remove(k) => {
            m.remove(&k);
        }
    }
}

/// What one armed run over the wire produced.
struct RunOutcome {
    /// Oracle model of acked effects, folded in ack (== send) order.
    model: BTreeMap<u64, u64>,
    /// Sent-but-unacked ops, in send order.
    unacked: Vec<WorkloadOp>,
    acked: u64,
    fired: bool,
    /// Client-side protocol violations (non-FIFO ack, bad status).
    errors: Vec<String>,
}

/// Drive the workload through a fresh armed server; returns the client's
/// view plus the quiesced pools for recovery.
fn armed_run(
    opts: &NetExploreOptions,
    ops: &[WorkloadOp],
    boundary: u64,
) -> std::io::Result<(RunOutcome, Vec<Arc<PmPool>>)> {
    let env = fresh_env(opts);
    let server = Server::start(
        served_index(opts, &env),
        env.pools.clone(),
        server_cfg(opts),
    )?;
    env.pools[opts.armed_shard].arm_crash_after(boundary);
    let addr = server.local_addr().to_string();

    let mut conn = ClientConn::connect(&addr)?;
    let mut out = RunOutcome {
        model: BTreeMap::new(),
        unacked: Vec::new(),
        acked: 0,
        fired: false,
        errors: Vec::new(),
    };
    // (req_id, op) in send order; acks must arrive FIFO on one conn.
    let mut sent: std::collections::VecDeque<(u64, WorkloadOp)> = std::collections::VecDeque::new();
    let deadline = Instant::now() + Duration::from_secs(20);

    let handle_resp = |resp: Response,
                       sent: &mut std::collections::VecDeque<(u64, WorkloadOp)>,
                       out: &mut RunOutcome| {
        let Some((id, op)) = sent.pop_front() else {
            out.errors.push(format!("unsolicited ack {}", resp.req_id));
            return;
        };
        if resp.req_id != id {
            out.errors
                .push(format!("non-FIFO ack: got {} want {id}", resp.req_id));
            return;
        }
        if !matches!(resp.status, Status::Ok | Status::Miss) {
            out.errors
                .push(format!("req {id} failed with {:?}", resp.status));
            return;
        }
        out.acked += 1;
        fold_acked(&mut out.model, op, resp.status);
    };

    let mut next = 0usize;
    while (next < ops.len() || !sent.is_empty()) && !conn.server_closed {
        if Instant::now() > deadline {
            out.errors.push("armed run timed out".into());
            break;
        }
        let mut progressed = false;
        while next < ops.len() && sent.len() < opts.window {
            let op = ops[next];
            let id = conn.send(to_reqop(op));
            sent.push_back((id, op));
            next += 1;
            progressed = true;
        }
        let resps = conn.pump()?;
        for r in resps {
            handle_resp(r, &mut sent, &mut out);
            progressed = true;
        }
        if !progressed {
            std::thread::yield_now();
        }
    }
    // Flush any acks raced with the close.
    let _ = conn.pump().map(|rs| {
        for r in rs {
            handle_resp(r, &mut sent, &mut out);
        }
    });
    out.unacked = sent.into_iter().map(|(_, op)| op).collect();

    out.fired = env.pools[opts.armed_shard].crash_fired();
    if !out.fired {
        env.pools[opts.armed_shard].disarm_crash();
        server.handle().drain();
    }
    let report = server.join();
    if out.fired != report.halted {
        out.errors.push(format!(
            "halt disagreement: pool fired={} server halted={}",
            out.fired, report.halted
        ));
    }

    // Power-cut-instant media images: nothing after the cut reaches
    // media, including front-end destructor flushes.
    let pools = env.pools.clone();
    let cut_images: Vec<Vec<u64>> = pools.iter().map(|p| p.snapshot_persisted()).collect();
    drop(env);
    for (p, img) in pools.iter().zip(&cut_images) {
        p.restore_persisted(img);
    }
    Ok((out, pools))
}

/// Recover all shards and check the acked model + unacked prefix oracle.
fn verify_point(
    opts: &NetExploreOptions,
    outcome: &RunOutcome,
    pools: &[Arc<PmPool>],
) -> Result<(), String> {
    let mut parts = Vec::with_capacity(pools.len());
    for (i, pool) in pools.iter().enumerate() {
        let index = try_recover_stack(&opts.kind, pool.clone())
            .map_err(|e| format!("shard {i} failed to recover: {e:?}"))?;
        let alloc = None; // recovery closed over its own allocator
        parts.push(Shard {
            index,
            pool: Some(pool.clone()),
            alloc,
        });
    }
    let recovered = ShardedIndex::from_parts(parts);

    let mut last_err = String::new();
    for j in 0..=outcome.unacked.len() {
        let mut m = outcome.model.clone();
        for &op in &outcome.unacked[..j] {
            fold_assumed(&mut m, op);
        }
        let inflight: Vec<InflightAllowance> = outcome
            .unacked
            .get(j)
            .map(|&op| InflightAllowance::for_op(op, &m))
            .into_iter()
            .collect();
        match verify_recovered(&*recovered, &m, &inflight) {
            Ok(()) => return Ok(()),
            Err(e) => last_err = format!("prefix j={j}: {e}"),
        }
    }
    Err(format!(
        "no executed-prefix length reconciles the recovered state \
         ({} acked, {} unacked): {last_err}",
        outcome.model.len(),
        outcome.unacked.len()
    ))
}

/// Run the durable-ack sweep: crash at every `stride`-th persistence
/// boundary of the armed shard's pool while the deterministic workload
/// flows through a real TCP server, then verify acked-implies-durable.
pub fn explore_net(opts: &NetExploreOptions) -> std::io::Result<NetExploreSummary> {
    assert!(opts.shards >= 1 && opts.armed_shard < opts.shards);
    install_quiet_crash_hook();
    let ops: Vec<WorkloadOp> = workload(opts.seed, opts.ops, opts.key_range)
        .into_iter()
        .map(|op| spread_op(op, opts.key_range))
        .collect();

    // Uninjected probe through the server path sizes the sweep. Batch
    // composition is timing-dependent, so an armed run may generate
    // slightly more or fewer events than the probe; late boundaries
    // then simply complete without firing, which the summary reports.
    let probe_env_events = probe_pool_events(opts, &ops)?;

    let mut summary = NetExploreSummary {
        kind: opts.kind.clone(),
        shards: opts.shards,
        probe_events: probe_env_events,
        boundaries_tested: 0,
        crashes_fired: 0,
        completed_runs: 0,
        acked_total: 0,
        max_unacked: 0,
        failures: Vec::new(),
    };

    let mut boundary = 1u64;
    let mut tested = 0u64;
    while boundary <= probe_env_events {
        if opts.max_boundaries > 0 && tested >= opts.max_boundaries {
            break;
        }
        let (outcome, pools) = armed_run(opts, &ops, boundary)?;
        summary.boundaries_tested += 1;
        summary.acked_total += outcome.acked;
        if outcome.fired {
            summary.crashes_fired += 1;
            summary.max_unacked = summary.max_unacked.max(outcome.unacked.len());
        } else {
            summary.completed_runs += 1;
        }
        for e in &outcome.errors {
            summary.failures.push(NetBoundaryFailure {
                boundary,
                detail: format!("protocol: {e}"),
            });
        }
        if let Err(detail) = verify_point(opts, &outcome, &pools) {
            summary
                .failures
                .push(NetBoundaryFailure { boundary, detail });
        }
        tested += 1;
        boundary += opts.stride.max(1);
    }
    Ok(summary)
}

/// Persistence-event total of the armed pool for one uninjected
/// serve-path run (sizes the boundary sweep).
fn probe_pool_events(opts: &NetExploreOptions, ops: &[WorkloadOp]) -> std::io::Result<u64> {
    let env = fresh_env(opts);
    let server = Server::start(
        served_index(opts, &env),
        env.pools.clone(),
        server_cfg(opts),
    )?;
    let addr = server.local_addr().to_string();
    let mut conn = ClientConn::connect(&addr)?;
    let mut sent = 0usize;
    let mut acked = 0usize;
    let deadline = Instant::now() + Duration::from_secs(20);
    while acked < ops.len() && Instant::now() < deadline {
        while sent < ops.len() && sent - acked < opts.window {
            conn.send(to_reqop(ops[sent]));
            sent += 1;
        }
        acked += conn.pump()?.len();
        if conn.server_closed {
            break;
        }
    }
    server.handle().drain();
    let _ = server.join();
    Ok(env.pools[opts.armed_shard].persist_event_count())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_net_sweep_is_green_for_wbtree() {
        let opts = NetExploreOptions {
            kind: "wbtree".into(),
            ops: 120,
            key_range: 48,
            stride: 211,
            ..NetExploreOptions::default()
        };
        let summary = explore_net(&opts).expect("sweep IO");
        assert!(
            summary.is_green(),
            "{:?}",
            &summary.failures[..summary.failures.len().min(3)]
        );
        assert!(summary.crashes_fired > 0, "no boundary tripped");
    }

    #[test]
    fn strided_net_sweep_is_green_with_cache_tier() {
        // Same sweep through the DRAM hot-key tier: acked-implies-durable
        // must hold even though lookups may be served from DRAM, because
        // every mutation is write-through (PM first, ack after).
        let opts = NetExploreOptions {
            kind: "fptree".into(),
            ops: 120,
            key_range: 48,
            stride: 223,
            cache_mb: 4,
            ..NetExploreOptions::default()
        };
        let summary = explore_net(&opts).expect("sweep IO");
        assert!(
            summary.is_green(),
            "{:?}",
            &summary.failures[..summary.failures.len().min(3)]
        );
        assert!(summary.crashes_fired > 0, "no boundary tripped");
    }
}
