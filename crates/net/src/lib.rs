//! A thread-per-core TCP serving layer for the PM range indexes, plus
//! a pibench-compatible remote workload driver.
//!
//! The reproduction's other crates measure indexes through direct
//! function calls; this one puts the missing deployment path in front
//! of them — a compact binary wire protocol ([`wire`]), a serving loop
//! with **group durability**, backpressure and admission control
//! ([`server`]), and a closed/open-loop remote load generator
//! ([`client`]) that emits the same latency-percentile rows as local
//! `pibench` runs.
//!
//! Everything is `std`-only: no async runtime, no protocol library —
//! consistent with the offline, shims-only workspace.
//!
//! Binaries: `pmserve` (serve an index over TCP) and `pmload` (drive a
//! remote server), wired together as experiment E18 and the CI network
//! smoke job.

#![warn(missing_docs)]

pub mod build;
pub mod client;
pub mod crash;
pub mod server;
pub mod wire;

pub use client::{run_load, send_shutdown, ClientConn, LoadConfig, LoadResult};
pub use crash::{explore_net, NetExploreOptions, NetExploreSummary};
pub use server::{DrainReport, ServeStats, Server, ServerConfig, ServerHandle};
pub use wire::{Opcode, ReqOp, Request, Response, Status, WireError};
