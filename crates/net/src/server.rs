//! The serving half: a thread-per-core accept/worker model over one
//! [`RangeIndex`] front-end (typically an `engine::ShardedIndex`).
//!
//! ## Threading model
//!
//! One acceptor thread owns the listener; `workers` worker threads each
//! own a disjoint set of connections (handed over round-robin at accept
//! time) and run a read → execute → fence → write loop over them with
//! nonblocking sockets. Nothing is shared between workers except the
//! index itself, the pools, and the relaxed-atomic [`ServeStats`]
//! counters — the classic thread-per-core shape.
//!
//! ## Group durability
//!
//! Write operations (insert/update/delete) are executed immediately but
//! their acks are *held back*: the worker accumulates up to
//! `batch_max` executed writes, notes which shard pools they touched,
//! then issues **one fence epoch** — `PmPool::fence_epoch` on each
//! touched pool, under the `net_batch_fence` obs site — and only then
//! releases the whole batch of acks to the output buffers. An acked
//! write therefore always sits behind a completed fence epoch on its
//! shard's pool, which is what the crash harness
//! (`crashpoint::net`) proves end to end: arm any persistence boundary
//! through this path and every acked write survives `try_recover`.
//!
//! If a crash point trips inside an operation or inside the fence
//! epoch itself, the worker unwinds via [`CrashPointHit`], the server
//! **halts** — no further ops execute, buffered-but-unsent acks are
//! dropped, every connection closes — exactly the observable behaviour
//! of a power cut at that instant.
//!
//! ## Backpressure and admission
//!
//! Per connection: at most `window` decoded-but-unanswered requests
//! (beyond it the worker stops reading that socket, pushing back
//! through TCP flow control), and at most `max_outbuf` bytes of
//! buffered responses (beyond it the connection is shed as a slow
//! reader). Globally: at most `max_conns` connections; excess accepts
//! receive a [`Status::Overload`] load-shed frame and are closed.
//!
//! ## Graceful drain
//!
//! `ServerHandle::drain` (or a `Shutdown` request, or SIGTERM in
//! `pmserve`) stops the acceptor, lets workers finish executing and
//! acking everything already read — including the final fence epoch —
//! flushes, closes, and joins. `Server::join` returns the final
//! [`ServeStats`] snapshot.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use index_api::RangeIndex;
use pmem::{CrashPointHit, PmPool};

use crate::wire::{FrameBuf, Opcode, ReqOp, Request, Response, Status};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads (thread-per-core; 0 = available parallelism).
    pub workers: usize,
    /// Max executed writes per group-durability fence epoch.
    pub batch_max: usize,
    /// Per-connection bound on decoded-but-unanswered requests.
    pub window: usize,
    /// Admission-control cap on concurrent connections.
    pub max_conns: usize,
    /// Slow-reader shed threshold: max buffered response bytes.
    pub max_outbuf: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            batch_max: 32,
            window: 256,
            max_conns: 1024,
            max_outbuf: 4 << 20,
        }
    }
}

/// Relaxed-atomic serving counters, shared by all threads and sampled
/// live by `pmserve --sample-ms`.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Requests served per op kind (lookup, insert, update, remove,
    /// scan — `pibench::OpKind` order).
    pub served: [AtomicU64; 5],
    /// Clean negative outcomes (miss / duplicate insert).
    pub misses: AtomicU64,
    /// Write acks released (always behind a fence epoch).
    pub acked_writes: AtomicU64,
    /// Group-durability batches committed.
    pub batches: AtomicU64,
    /// Writes carried by those batches (avg batch = this / batches).
    pub batch_ops: AtomicU64,
    /// Per-pool fence calls issued by batch commits.
    pub fence_epochs: AtomicU64,
    /// Connections refused with the load-shed error code.
    pub overload_rejected: AtomicU64,
    /// Connections shed as slow readers.
    pub shed_conns: AtomicU64,
    /// Malformed frames answered with `Status::Bad`.
    pub bad_frames: AtomicU64,
    /// Connections accepted into service.
    pub conns_accepted: AtomicU64,
    /// Currently-active connections.
    pub conns_active: AtomicUsize,
    /// Wall time in socket IO + codec work, ns.
    pub wire_ns: AtomicU64,
    /// Wall time executing index operations, ns.
    pub index_ns: AtomicU64,
    /// Wall time in batch fence epochs, ns.
    pub fence_ns: AtomicU64,
}

impl ServeStats {
    /// Total requests served across all op kinds.
    pub fn total_served(&self) -> u64 {
        self.served.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Cumulative (batches, batched ops, fence calls) — the sampler's
    /// batch-size / fence-rate source.
    pub fn batch_counters(&self) -> (u64, u64, u64) {
        (
            self.batches.load(Ordering::Relaxed),
            self.batch_ops.load(Ordering::Relaxed),
            self.fence_epochs.load(Ordering::Relaxed),
        )
    }
}

/// What `Server::join` hands back after drain.
#[derive(Debug)]
pub struct DrainReport {
    /// Final counters.
    pub stats: Arc<ServeStats>,
    /// True if a crash point tripped through the serving path (the
    /// server power-cut itself rather than draining).
    pub halted: bool,
}

struct Shared {
    index: Arc<dyn RangeIndex>,
    pools: Vec<Arc<PmPool>>,
    cfg: ServerConfig,
    stats: Arc<ServeStats>,
    drain: AtomicBool,
    halt: AtomicBool,
}

impl Shared {
    fn shard_of(&self, key: u64) -> usize {
        if self.pools.is_empty() {
            0
        } else {
            engine::shard_of(key, self.pools.len())
        }
    }
}

/// Cloneable handle for initiating graceful drain from another thread
/// (signal handlers, tests, the wire `Shutdown` op).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begin graceful drain: stop accepting, finish acked work, exit.
    pub fn drain(&self) {
        self.shared.drain.store(true, Ordering::SeqCst);
    }

    /// Whether the server has begun draining (or halted).
    pub fn draining(&self) -> bool {
        self.shared.drain.load(Ordering::SeqCst) || self.shared.halt.load(Ordering::SeqCst)
    }

    /// Live counters.
    pub fn stats(&self) -> Arc<ServeStats> {
        self.shared.stats.clone()
    }
}

/// A running server: acceptor + workers over one index.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `cfg.addr` and start serving `index` (whose PM pools are
    /// `pools`, one per shard — empty for DRAM indexes).
    pub fn start(
        index: Arc<dyn RangeIndex>,
        pools: Vec<Arc<PmPool>>,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let workers_n = if cfg.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .min(8)
        } else {
            cfg.workers
        };
        let shared = Arc::new(Shared {
            index,
            pools,
            cfg,
            stats: Arc::new(ServeStats::default()),
            drain: AtomicBool::new(false),
            halt: AtomicBool::new(false),
        });

        let mut senders = Vec::with_capacity(workers_n);
        let mut workers = Vec::with_capacity(workers_n);
        for w in 0..workers_n {
            let (tx, rx) = mpsc::channel::<TcpStream>();
            senders.push(tx);
            let sh = shared.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("net-worker-{w}"))
                    .spawn(move || worker_loop(&sh, &rx))
                    .expect("spawn net worker"),
            );
        }

        let sh = shared.clone();
        let acceptor = std::thread::Builder::new()
            .name("net-acceptor".into())
            .spawn(move || accept_loop(&sh, &listener, &senders))
            .expect("spawn net acceptor");

        Ok(Server {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (for ephemeral-port tests).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A drain/stats handle usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: self.shared.clone(),
        }
    }

    /// Live counters.
    pub fn stats(&self) -> Arc<ServeStats> {
        self.shared.stats.clone()
    }

    /// Whether a crash point has tripped through the serving path.
    pub fn halted(&self) -> bool {
        self.shared.halt.load(Ordering::SeqCst)
    }

    /// Join all threads after drain (blocks until they exit).
    pub fn join(mut self) -> DrainReport {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        DrainReport {
            stats: self.shared.stats.clone(),
            halted: self.shared.halt.load(Ordering::SeqCst),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.drain.store(true, Ordering::SeqCst);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn accept_loop(sh: &Shared, listener: &TcpListener, senders: &[mpsc::Sender<TcpStream>]) {
    let mut next = 0usize;
    loop {
        if sh.drain.load(Ordering::SeqCst) || sh.halt.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                if sh.stats.conns_active.load(Ordering::Relaxed) >= sh.cfg.max_conns {
                    // Admission control: answer with the load-shed
                    // error code, then close.
                    sh.stats.overload_rejected.fetch_add(1, Ordering::Relaxed);
                    let mut out = Vec::new();
                    Response::basic(0, Opcode::Shutdown, Status::Overload).encode_into(&mut out);
                    let mut s = stream;
                    let _ = s.set_nonblocking(false);
                    let _ = s.set_write_timeout(Some(Duration::from_millis(100)));
                    let _ = s.write_all(&out);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                sh.stats.conns_active.fetch_add(1, Ordering::Relaxed);
                sh.stats.conns_accepted.fetch_add(1, Ordering::Relaxed);
                if senders[next % senders.len()].send(stream).is_err() {
                    // Worker gone (halt): stop accepting.
                    return;
                }
                next = next.wrapping_add(1);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

struct Conn {
    stream: TcpStream,
    inbuf: FrameBuf,
    queue: std::collections::VecDeque<Request>,
    outbuf: Vec<u8>,
    outpos: usize,
    /// Decoded-but-unanswered requests (the backpressure window).
    inflight: usize,
    eof: bool,
    close_after_flush: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            inbuf: FrameBuf::new(),
            queue: std::collections::VecDeque::new(),
            outbuf: Vec::new(),
            outpos: 0,
            inflight: 0,
            eof: false,
            close_after_flush: false,
        }
    }

    fn out_pending(&self) -> usize {
        self.outbuf.len() - self.outpos
    }

    fn push_response(&mut self, r: &Response) {
        r.encode_into(&mut self.outbuf);
        self.inflight = self.inflight.saturating_sub(1);
    }
}

/// Execute one request against the index. May unwind with
/// [`CrashPointHit`] when a crash point is armed on the touched pool.
fn exec(idx: &dyn RangeIndex, req: &Request) -> Response {
    let (status, value, pairs) = match req.op {
        ReqOp::Lookup(k) => match idx.lookup(k) {
            Some(v) => (Status::Ok, Some(v), Vec::new()),
            None => (Status::Miss, None, Vec::new()),
        },
        ReqOp::Insert(k, v) => (
            if idx.insert(k, v) {
                Status::Ok
            } else {
                Status::Miss
            },
            None,
            Vec::new(),
        ),
        ReqOp::Update(k, v) => (
            if idx.update(k, v) {
                Status::Ok
            } else {
                Status::Miss
            },
            None,
            Vec::new(),
        ),
        ReqOp::Remove(k) => (
            if idx.remove(k) {
                Status::Ok
            } else {
                Status::Miss
            },
            None,
            Vec::new(),
        ),
        ReqOp::Scan(start, count) => {
            let mut out = Vec::new();
            idx.scan(start, count as usize, &mut out);
            (Status::Ok, None, out)
        }
        ReqOp::Shutdown => (Status::Ok, None, Vec::new()),
    };
    Response {
        req_id: req.req_id,
        op: req.op.opcode(),
        status,
        value,
        pairs,
    }
}

fn op_kind_slot(op: &ReqOp) -> Option<usize> {
    // pibench::OpKind order: Lookup, Insert, Update, Remove, Scan.
    Some(match op {
        ReqOp::Lookup(..) => 0,
        ReqOp::Insert(..) => 1,
        ReqOp::Update(..) => 2,
        ReqOp::Remove(..) => 3,
        ReqOp::Scan(..) => 4,
        ReqOp::Shutdown => return None,
    })
}

/// One executed-but-unacked write waiting for its batch's fence epoch.
struct PendingAck {
    conn: usize,
    resp: Response,
}

#[allow(clippy::too_many_lines)]
fn worker_loop(sh: &Shared, rx: &mpsc::Receiver<TcpStream>) {
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut scratch = vec![0u8; 64 << 10];
    let mut pending: Vec<PendingAck> = Vec::new();
    let mut touched: Vec<bool> = vec![false; sh.pools.len()];
    let mut idle_spins = 0u32;

    'outer: loop {
        if sh.halt.load(Ordering::SeqCst) {
            // Power-cut semantics: drop everything unflushed.
            return;
        }
        let mut progressed = false;

        // Adopt newly accepted connections.
        while let Ok(stream) = rx.try_recv() {
            conns.push(Some(Conn::new(stream)));
            progressed = true;
        }

        let draining = sh.drain.load(Ordering::SeqCst);

        // Read + decode phase.
        let t_wire = Instant::now();
        for slot in conns.iter_mut() {
            let Some(conn) = slot else { continue };
            if conn.close_after_flush || conn.eof || draining {
                continue;
            }
            // Backpressure: past the in-flight window (or a swollen
            // output buffer) we simply stop reading this socket; TCP
            // flow control pushes back to the client.
            if conn.inflight >= sh.cfg.window || conn.out_pending() >= sh.cfg.max_outbuf {
                continue;
            }
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    conn.eof = true;
                    progressed = true;
                }
                Ok(n) => {
                    progressed = true;
                    conn.inbuf.push(&scratch[..n]);
                    loop {
                        match conn.inbuf.next_frame() {
                            Ok(Some(payload)) => match Request::decode(payload) {
                                Ok(req) => {
                                    conn.queue.push_back(req);
                                    conn.inflight += 1;
                                }
                                Err(_) => {
                                    sh.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                                    Response::basic(0, Opcode::Shutdown, Status::Bad)
                                        .encode_into(&mut conn.outbuf);
                                    conn.close_after_flush = true;
                                    break;
                                }
                            },
                            Ok(None) => break,
                            Err(_) => {
                                // Unrecoverable framing error.
                                sh.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                                Response::basic(0, Opcode::Shutdown, Status::Bad)
                                    .encode_into(&mut conn.outbuf);
                                conn.close_after_flush = true;
                                break;
                            }
                        }
                        if conn.inflight >= sh.cfg.window {
                            break;
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(_) => {
                    conn.eof = true;
                    progressed = true;
                }
            }
        }
        sh.stats
            .wire_ns
            .fetch_add(t_wire.elapsed().as_nanos() as u64, Ordering::Relaxed);

        // Execute phase: round-robin one queued request per connection
        // until queues drain, committing a fence epoch whenever the
        // write batch fills.
        loop {
            let mut any = false;
            for ci in 0..conns.len() {
                let Some(conn) = &mut conns[ci] else { continue };
                let Some(req) = conn.queue.pop_front() else {
                    continue;
                };
                any = true;
                progressed = true;
                if let ReqOp::Shutdown = req.op {
                    sh.drain.store(true, Ordering::SeqCst);
                    conn.push_response(&Response::basic(req.req_id, Opcode::Shutdown, Status::Ok));
                    continue;
                }
                let t0 = Instant::now();
                let result = {
                    let _site = obs::enabled().then(|| obs::site("net_exec"));
                    catch_unwind(AssertUnwindSafe(|| exec(&*sh.index, &req)))
                };
                let resp = match result {
                    Ok(r) => r,
                    Err(payload) => {
                        if payload.downcast_ref::<CrashPointHit>().is_none() {
                            resume_unwind(payload);
                        }
                        // Power cut through the serving path: halt
                        // everything, ack nothing more.
                        sh.halt.store(true, Ordering::SeqCst);
                        continue 'outer;
                    }
                };
                let dt = t0.elapsed().as_nanos() as u64;
                sh.stats.index_ns.fetch_add(dt, Ordering::Relaxed);
                if let Some(slot) = op_kind_slot(&req.op) {
                    sh.stats.served[slot].fetch_add(1, Ordering::Relaxed);
                    if obs::enabled() {
                        obs::op_complete(slot as u8, dt);
                        obs::count_op();
                    }
                }
                if resp.status == Status::Miss {
                    sh.stats.misses.fetch_add(1, Ordering::Relaxed);
                }
                if req.op.is_write() && !sh.pools.is_empty() {
                    // Group durability: hold the ack until the batch's
                    // fence epoch commits.
                    touched[sh.shard_of(key_of(&req.op))] = true;
                    pending.push(PendingAck { conn: ci, resp });
                    if pending.len() >= sh.cfg.batch_max
                        && !commit_batch(sh, &mut conns, &mut pending, &mut touched)
                    {
                        continue 'outer;
                    }
                } else {
                    conn.push_response(&resp);
                }
            }
            if !any {
                break;
            }
        }

        // Commit the partial batch: nothing more is queued right now,
        // so waiting longer would only add latency (linger = 0).
        if !pending.is_empty() && !commit_batch(sh, &mut conns, &mut pending, &mut touched) {
            continue 'outer;
        }

        // Write phase.
        let t_wire = Instant::now();
        for slot in conns.iter_mut() {
            let Some(conn) = slot else { continue };
            if conn.out_pending() > 0 {
                match conn.stream.write(&conn.outbuf[conn.outpos..]) {
                    Ok(n) => {
                        conn.outpos += n;
                        progressed = true;
                        if conn.outpos == conn.outbuf.len() {
                            conn.outbuf.clear();
                            conn.outpos = 0;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    Err(_) => {
                        conn.eof = true;
                        progressed = true;
                    }
                }
            }
            // Slow-reader shedding: the client is not draining its
            // socket and the buffered backlog keeps growing.
            if conn.out_pending() > sh.cfg.max_outbuf {
                sh.stats.shed_conns.fetch_add(1, Ordering::Relaxed);
                sh.stats.conns_active.fetch_sub(1, Ordering::Relaxed);
                *slot = None;
                progressed = true;
                continue;
            }
            let done = conn.out_pending() == 0 && conn.queue.is_empty();
            if done && (conn.close_after_flush || conn.eof) {
                sh.stats.conns_active.fetch_sub(1, Ordering::Relaxed);
                *slot = None;
                progressed = true;
            }
        }
        sh.stats
            .wire_ns
            .fetch_add(t_wire.elapsed().as_nanos() as u64, Ordering::Relaxed);
        conns.retain(|c| c.is_some());

        // Drain completion: everything read has been executed, acked
        // and flushed.
        if draining
            && pending.is_empty()
            && conns.iter().flatten().all(|c| {
                c.queue.is_empty() && c.out_pending() == 0 && c.inbuf.pending() < 4
                // ignore a partial trailing frame
            })
        {
            for c in conns.iter_mut().flatten() {
                let _ = c.stream.shutdown(std::net::Shutdown::Both);
                sh.stats.conns_active.fetch_sub(1, Ordering::Relaxed);
            }
            return;
        }

        if progressed {
            idle_spins = 0;
        } else {
            idle_spins = idle_spins.saturating_add(1);
            if idle_spins < 64 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }
}

fn key_of(op: &ReqOp) -> u64 {
    match *op {
        ReqOp::Lookup(k) | ReqOp::Remove(k) => k,
        ReqOp::Insert(k, _) | ReqOp::Update(k, _) => k,
        ReqOp::Scan(k, _) => k,
        ReqOp::Shutdown => 0,
    }
}

/// Commit one group-durability batch: fence every touched shard pool
/// once, then release the held write acks. Returns false (after
/// setting the halt flag) when the fence epoch itself trips a crash
/// point — the acks are dropped, exactly like a power cut before the
/// fence retired.
fn commit_batch(
    sh: &Shared,
    conns: &mut [Option<Conn>],
    pending: &mut Vec<PendingAck>,
    touched: &mut [bool],
) -> bool {
    let t0 = Instant::now();
    let fenced = {
        let _site = obs::enabled().then(|| obs::site("net_batch_fence"));
        catch_unwind(AssertUnwindSafe(|| {
            let mut fences = 0u64;
            for (i, t) in touched.iter_mut().enumerate() {
                if *t {
                    sh.pools[i].fence_epoch();
                    fences += 1;
                    *t = false;
                }
            }
            fences
        }))
    };
    let fences = match fenced {
        Ok(n) => n,
        Err(payload) => {
            if payload.downcast_ref::<CrashPointHit>().is_none() {
                resume_unwind(payload);
            }
            sh.halt.store(true, Ordering::SeqCst);
            pending.clear();
            touched.iter_mut().for_each(|t| *t = false);
            return false;
        }
    };
    sh.stats
        .fence_ns
        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    sh.stats.fence_epochs.fetch_add(fences, Ordering::Relaxed);
    sh.stats.batches.fetch_add(1, Ordering::Relaxed);
    sh.stats
        .batch_ops
        .fetch_add(pending.len() as u64, Ordering::Relaxed);
    sh.stats
        .acked_writes
        .fetch_add(pending.len() as u64, Ordering::Relaxed);
    for ack in pending.drain(..) {
        if let Some(conn) = &mut conns[ack.conn] {
            conn.push_response(&ack.resp);
        }
    }
    true
}
