//! The wire protocol: compact length-prefixed binary frames.
//!
//! Every message travels as one frame: a little-endian `u32` payload
//! length followed by the payload. Requests and responses are
//! self-describing (both carry the opcode), so a decoder needs no
//! per-connection state beyond the byte stream itself, and a pipelined
//! client matches responses to requests by the 64-bit request id it
//! chose.
//!
//! ```text
//! frame    := len:u32 payload[len]            len <= MAX_FRAME
//! request  := req_id:u64 opcode:u8 body
//!   lookup := key:u64
//!   insert := key:u64 value:u64
//!   update := key:u64 value:u64
//!   remove := key:u64
//!   scan   := start:u64 count:u32             count <= MAX_SCAN
//!   shutdown :=                                (graceful drain)
//! response := req_id:u64 opcode:u8 status:u8 body
//!   status Ok:       lookup -> value:u64, scan -> n:u32 (key:u64 value:u64)^n
//!   status Miss:     empty (absent key / duplicate insert)
//!   status Overload: empty (admission control shed the request)
//!   status Bad:      empty (malformed frame; connection closes)
//!   status Draining: empty (server is shutting down)
//! ```
//!
//! Decoding is incremental: [`FrameBuf`] accumulates raw bytes from the
//! socket and yields complete payloads regardless of how the stream was
//! split into reads. Malformed input of any kind — oversized frames,
//! unknown opcodes, truncated or over-long bodies, absurd scan counts —
//! returns a [`WireError`] instead of panicking, and the server answers
//! with [`Status::Bad`] before closing the connection.

/// Largest accepted frame payload (1 MiB bounds a scan response).
pub const MAX_FRAME: usize = 1 << 20;
/// Largest accepted scan count per request.
pub const MAX_SCAN: u32 = 65_536;

/// Operation selector carried by every request and echoed by the
/// response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Point lookup.
    Lookup = 1,
    /// Insert (fails on a present key).
    Insert = 2,
    /// Update (fails on an absent key).
    Update = 3,
    /// Remove (fails on an absent key).
    Remove = 4,
    /// Range scan from a start key.
    Scan = 5,
    /// Ask the server to drain and exit (admin).
    Shutdown = 6,
}

impl Opcode {
    fn from_u8(b: u8) -> Result<Opcode, WireError> {
        Ok(match b {
            1 => Opcode::Lookup,
            2 => Opcode::Insert,
            3 => Opcode::Update,
            4 => Opcode::Remove,
            5 => Opcode::Scan,
            6 => Opcode::Shutdown,
            other => return Err(WireError::BadOpcode(other)),
        })
    }
}

/// Response status byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// The operation was applied / the key was found.
    Ok = 0,
    /// Clean negative outcome: absent key, duplicate insert.
    Miss = 1,
    /// Load-shed error code: admission control refused the request.
    Overload = 2,
    /// The request could not be parsed; the connection will close.
    Bad = 3,
    /// The server is draining and no longer accepts new work.
    Draining = 4,
}

impl Status {
    fn from_u8(b: u8) -> Result<Status, WireError> {
        Ok(match b {
            0 => Status::Ok,
            1 => Status::Miss,
            2 => Status::Overload,
            3 => Status::Bad,
            4 => Status::Draining,
            other => return Err(WireError::BadStatus(other)),
        })
    }
}

/// Everything that can be wrong with bytes coming off the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Frame length prefix exceeds [`MAX_FRAME`].
    Oversize(u32),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Unknown status byte.
    BadStatus(u8),
    /// Payload shorter than the fixed part of its message.
    Truncated,
    /// Payload longer than its message (trailing garbage).
    Trailing(usize),
    /// Scan count exceeds [`MAX_SCAN`].
    ScanTooLarge(u32),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Oversize(n) => write!(f, "frame length {n} exceeds {MAX_FRAME}"),
            WireError::BadOpcode(b) => write!(f, "unknown opcode {b:#04x}"),
            WireError::BadStatus(b) => write!(f, "unknown status {b:#04x}"),
            WireError::Truncated => write!(f, "truncated message body"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after message body"),
            WireError::ScanTooLarge(n) => write!(f, "scan count {n} exceeds {MAX_SCAN}"),
        }
    }
}

impl std::error::Error for WireError {}

/// One client request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen id echoed by the response (pipelining).
    pub req_id: u64,
    /// The operation.
    pub op: ReqOp,
}

/// The operation part of a [`Request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqOp {
    /// Point lookup of `key`.
    Lookup(u64),
    /// Insert `key -> value`.
    Insert(u64, u64),
    /// Update `key -> value`.
    Update(u64, u64),
    /// Remove `key`.
    Remove(u64),
    /// Scan `count` records from `start`.
    Scan(u64, u32),
    /// Graceful-drain control message.
    Shutdown,
}

impl ReqOp {
    /// The wire opcode of this operation.
    pub fn opcode(&self) -> Opcode {
        match self {
            ReqOp::Lookup(..) => Opcode::Lookup,
            ReqOp::Insert(..) => Opcode::Insert,
            ReqOp::Update(..) => Opcode::Update,
            ReqOp::Remove(..) => Opcode::Remove,
            ReqOp::Scan(..) => Opcode::Scan,
            ReqOp::Shutdown => Opcode::Shutdown,
        }
    }

    /// Whether the operation mutates the index (and therefore rides a
    /// group-durability fence epoch before its ack).
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            ReqOp::Insert(..) | ReqOp::Update(..) | ReqOp::Remove(..)
        )
    }
}

/// One server response (echoes `req_id` and the opcode it answers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Echoed request id.
    pub req_id: u64,
    /// Echoed opcode.
    pub op: Opcode,
    /// Outcome.
    pub status: Status,
    /// Lookup hit value.
    pub value: Option<u64>,
    /// Scan hit records.
    pub pairs: Vec<(u64, u64)>,
}

impl Response {
    /// A body-less response (write acks, misses, errors).
    pub fn basic(req_id: u64, op: Opcode, status: Status) -> Response {
        Response {
            req_id,
            op,
            status,
            value: None,
            pairs: Vec::new(),
        }
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, at: 0 }
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.at).ok_or(WireError::Truncated)?;
        self.at += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let end = self.at.checked_add(4).ok_or(WireError::Truncated)?;
        let bytes = self.buf.get(self.at..end).ok_or(WireError::Truncated)?;
        self.at = end;
        Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let end = self.at.checked_add(8).ok_or(WireError::Truncated)?;
        let bytes = self.buf.get(self.at..end).ok_or(WireError::Truncated)?;
        self.at = end;
        Ok(u64::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn finish(self) -> Result<(), WireError> {
        let left = self.buf.len() - self.at;
        if left == 0 {
            Ok(())
        } else {
            Err(WireError::Trailing(left))
        }
    }
}

/// Append one length-prefixed frame holding `payload` built by `f`.
fn frame(out: &mut Vec<u8>, f: impl FnOnce(&mut Vec<u8>)) {
    let len_at = out.len();
    put_u32(out, 0);
    f(out);
    let len = (out.len() - len_at - 4) as u32;
    out[len_at..len_at + 4].copy_from_slice(&len.to_le_bytes());
}

impl Request {
    /// Append this request as one frame.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        frame(out, |b| {
            put_u64(b, self.req_id);
            b.push(self.op.opcode() as u8);
            match self.op {
                ReqOp::Lookup(k) | ReqOp::Remove(k) => put_u64(b, k),
                ReqOp::Insert(k, v) | ReqOp::Update(k, v) => {
                    put_u64(b, k);
                    put_u64(b, v);
                }
                ReqOp::Scan(start, count) => {
                    put_u64(b, start);
                    put_u32(b, count);
                }
                ReqOp::Shutdown => {}
            }
        });
    }

    /// Decode one request from a complete frame payload.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut c = Cursor::new(payload);
        let req_id = c.u64()?;
        let op = match Opcode::from_u8(c.u8()?)? {
            Opcode::Lookup => ReqOp::Lookup(c.u64()?),
            Opcode::Insert => ReqOp::Insert(c.u64()?, c.u64()?),
            Opcode::Update => ReqOp::Update(c.u64()?, c.u64()?),
            Opcode::Remove => ReqOp::Remove(c.u64()?),
            Opcode::Scan => {
                let start = c.u64()?;
                let count = c.u32()?;
                if count > MAX_SCAN {
                    return Err(WireError::ScanTooLarge(count));
                }
                ReqOp::Scan(start, count)
            }
            Opcode::Shutdown => ReqOp::Shutdown,
        };
        c.finish()?;
        Ok(Request { req_id, op })
    }
}

impl Response {
    /// Append this response as one frame.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        frame(out, |b| {
            put_u64(b, self.req_id);
            b.push(self.op as u8);
            b.push(self.status as u8);
            if self.status == Status::Ok {
                match self.op {
                    Opcode::Lookup => put_u64(b, self.value.unwrap_or(0)),
                    Opcode::Scan => {
                        put_u32(b, self.pairs.len() as u32);
                        for &(k, v) in &self.pairs {
                            put_u64(b, k);
                            put_u64(b, v);
                        }
                    }
                    _ => {}
                }
            }
        });
    }

    /// Decode one response from a complete frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut c = Cursor::new(payload);
        let req_id = c.u64()?;
        let op = Opcode::from_u8(c.u8()?)?;
        let status = Status::from_u8(c.u8()?)?;
        let mut value = None;
        let mut pairs = Vec::new();
        if status == Status::Ok {
            match op {
                Opcode::Lookup => value = Some(c.u64()?),
                Opcode::Scan => {
                    let n = c.u32()?;
                    if n > MAX_SCAN {
                        return Err(WireError::ScanTooLarge(n));
                    }
                    pairs.reserve(n as usize);
                    for _ in 0..n {
                        pairs.push((c.u64()?, c.u64()?));
                    }
                }
                _ => {}
            }
        }
        c.finish()?;
        Ok(Response {
            req_id,
            op,
            status,
            value,
            pairs,
        })
    }
}

/// Incremental frame reassembly over an arbitrarily-split byte stream.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    at: usize,
}

impl FrameBuf {
    /// An empty buffer.
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// Feed raw bytes from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact lazily: only when the consumed prefix dominates.
        if self.at > 4096 && self.at * 2 > self.buf.len() {
            self.buf.drain(..self.at);
            self.at = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as complete frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Pop the next complete frame payload, if one is fully buffered.
    /// An oversized length prefix is a protocol error (the stream is
    /// unrecoverable past it, so the caller must close the connection).
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, WireError> {
        let avail = self.buf.len() - self.at;
        if avail < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[self.at..self.at + 4].try_into().unwrap());
        if len as usize > MAX_FRAME {
            return Err(WireError::Oversize(len));
        }
        if avail < 4 + len as usize {
            return Ok(None);
        }
        let start = self.at + 4;
        self.at = start + len as usize;
        Ok(Some(&self.buf[start..self.at]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(op: ReqOp) {
        let req = Request { req_id: 77, op };
        let mut bytes = Vec::new();
        req.encode_into(&mut bytes);
        let mut fb = FrameBuf::new();
        fb.push(&bytes);
        let payload = fb.next_frame().unwrap().unwrap().to_vec();
        assert_eq!(Request::decode(&payload).unwrap(), req);
        assert!(fb.next_frame().unwrap().is_none());
    }

    #[test]
    fn request_roundtrip_all_ops() {
        roundtrip_req(ReqOp::Lookup(5));
        roundtrip_req(ReqOp::Insert(1, 2));
        roundtrip_req(ReqOp::Update(u64::MAX, 0));
        roundtrip_req(ReqOp::Remove(9));
        roundtrip_req(ReqOp::Scan(3, 100));
        roundtrip_req(ReqOp::Shutdown);
    }

    #[test]
    fn response_roundtrip_with_bodies() {
        for r in [
            Response {
                req_id: 1,
                op: Opcode::Lookup,
                status: Status::Ok,
                value: Some(42),
                pairs: Vec::new(),
            },
            Response {
                req_id: 2,
                op: Opcode::Scan,
                status: Status::Ok,
                value: None,
                pairs: vec![(1, 10), (2, 20)],
            },
            Response::basic(3, Opcode::Insert, Status::Miss),
            Response::basic(4, Opcode::Update, Status::Overload),
            Response::basic(5, Opcode::Remove, Status::Draining),
        ] {
            let mut bytes = Vec::new();
            r.encode_into(&mut bytes);
            let mut fb = FrameBuf::new();
            fb.push(&bytes);
            let payload = fb.next_frame().unwrap().unwrap().to_vec();
            assert_eq!(Response::decode(&payload).unwrap(), r);
        }
    }

    #[test]
    fn split_boundaries_do_not_matter() {
        let mut bytes = Vec::new();
        for i in 0..10u64 {
            Request {
                req_id: i,
                op: ReqOp::Insert(i, i * 2),
            }
            .encode_into(&mut bytes);
        }
        // Feed one byte at a time: every frame still comes out intact.
        let mut fb = FrameBuf::new();
        let mut seen = 0u64;
        for &b in &bytes {
            fb.push(&[b]);
            while let Some(p) = fb.next_frame().unwrap() {
                let req = Request::decode(p).unwrap();
                assert_eq!(req.req_id, seen);
                seen += 1;
            }
        }
        assert_eq!(seen, 10);
    }

    #[test]
    fn malformed_frames_error_not_panic() {
        // Oversized length prefix.
        let mut fb = FrameBuf::new();
        fb.push(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert!(matches!(fb.next_frame(), Err(WireError::Oversize(_))));

        // Unknown opcode.
        let mut p = Vec::new();
        put_u64(&mut p, 1);
        p.push(0xEE);
        assert_eq!(Request::decode(&p), Err(WireError::BadOpcode(0xEE)));

        // Truncated body.
        let mut p = Vec::new();
        put_u64(&mut p, 1);
        p.push(Opcode::Insert as u8);
        put_u64(&mut p, 7);
        assert_eq!(Request::decode(&p), Err(WireError::Truncated));

        // Trailing garbage.
        let mut p = Vec::new();
        put_u64(&mut p, 1);
        p.push(Opcode::Remove as u8);
        put_u64(&mut p, 7);
        p.push(0);
        assert_eq!(Request::decode(&p), Err(WireError::Trailing(1)));

        // Absurd scan count.
        let mut p = Vec::new();
        put_u64(&mut p, 1);
        p.push(Opcode::Scan as u8);
        put_u64(&mut p, 0);
        put_u32(&mut p, MAX_SCAN + 1);
        assert_eq!(
            Request::decode(&p),
            Err(WireError::ScanTooLarge(MAX_SCAN + 1))
        );
    }
}
