//! # nvtree — NV-Tree (Yang et al., FAST 2015)
//!
//! A persistent B+-tree built around *selective consistency*: only leaf
//! nodes are kept crash-consistent; everything that routes traffic is
//! volatile and rebuilt after a failure.
//!
//! * **Append-only unsorted leaves.** A leaf is a log of `(key, value)`
//!   entries plus a flag bit per entry (set = insert/update, clear =
//!   *negative* entry, i.e. a deletion tombstone). The persisted entry
//!   count is the commit point: an operation appends its entry, persists
//!   it, then bumps the count with one atomic 8-byte write. Lookups scan
//!   backwards so the newest entry for a key wins.
//! * **Inconsistent inner structure.** Routing uses a volatile snapshot:
//!   a flat array of *parent-of-leaf nodes* (PLNs) holding sorted
//!   `(separator, leaf)` entries. Leaf splits update one PLN in place;
//!   when a PLN overflows, the entire snapshot is **rebuilt** — NV-Tree's
//!   signature cost, which is why its insert throughput degrades in the
//!   paper's experiments.
//! * **Replace-on-split.** Append-only leaves cannot be shrunk in place,
//!   so a full leaf is *replaced*: its live records are compacted into
//!   one or two freshly allocated leaves which are published with a
//!   single 8-byte pointer update in the persistent leaf chain. The old
//!   leaf is freed after a grace period (readers may still be parked on
//!   it); a crash before the free merely leaks an unreachable block,
//!   which recovery garbage-collects by diffing the allocator's block
//!   enumeration against the leaf chain.
//! * **Concurrency.** Writers take a per-leaf version lock; readers are
//!   optimistic (leaf version validation) and traversal validates
//!   against a global SMO sequence lock. Structure modifications are
//!   serialized, matching the modest multi-core ambitions of the
//!   original design.

mod snapshot;
mod tree;

pub use snapshot::Snapshot;
pub use tree::NvTree;

/// Tuning knobs. Defaults: 64 append slots per leaf, 128-entry PLNs.
#[derive(Debug, Clone, Copy)]
pub struct NvTreeConfig {
    /// Append slots per leaf (the leaf is replaced when they run out).
    pub leaf_entries: usize,
    /// Capacity of one parent-of-leaf node; a rebuild is triggered when
    /// one overflows. Rebuilt PLNs start half full.
    pub pln_entries: usize,
}

impl Default for NvTreeConfig {
    fn default() -> Self {
        Self {
            leaf_entries: 64,
            pln_entries: 128,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config() {
        let c = NvTreeConfig::default();
        assert_eq!(c.leaf_entries, 64);
        assert_eq!(c.pln_entries, 128);
    }
}
