//! The volatile routing snapshot: parent-of-leaf nodes (PLNs).
//!
//! All fields are atomics so in-place PLN edits under the SMO lock can
//! race with optimistic readers; readers tolerate torn values and
//! validate against the SMO version afterwards.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One parent-of-leaf node: sorted `(separator, leaf offset)` entries.
pub struct Pln {
    len: AtomicUsize,
    keys: Box<[AtomicU64]>,
    leaves: Box<[AtomicU64]>,
}

impl Pln {
    fn new(cap: usize) -> Pln {
        Pln {
            len: AtomicUsize::new(0),
            keys: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            leaves: (0..cap).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Entry count (clamped for torn reads).
    #[inline]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire).min(self.keys.len())
    }

    /// Whether the PLN holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the PLN is at capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len() == self.keys.len()
    }

    /// Separator of entry `i`.
    #[inline]
    pub fn key(&self, i: usize) -> u64 {
        self.keys[i].load(Ordering::Acquire)
    }

    /// Leaf offset of entry `i`.
    #[inline]
    pub fn leaf(&self, i: usize) -> u64 {
        self.leaves[i].load(Ordering::Acquire)
    }

    /// Index of the entry covering `key`: the last separator ≤ `key`,
    /// clamped to 0 (underflow keys route to the first entry).
    pub fn route(&self, key: u64) -> usize {
        let n = self.len();
        debug_assert!(n > 0);
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if key < self.key(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo.saturating_sub(1)
    }

    /// Position of the entry pointing at `leaf`, if present.
    pub fn position_of(&self, leaf: u64) -> Option<usize> {
        (0..self.len()).find(|&i| self.leaf(i) == leaf)
    }

    /// Overwrite entry `i` (same key range, new leaf — used by
    /// replace-on-split).
    pub fn replace_at(&self, i: usize, key: u64, leaf: u64) {
        debug_assert!(i < self.len());
        self.leaves[i].store(leaf, Ordering::Release);
        self.keys[i].store(key, Ordering::Release);
    }

    /// Insert `(key, leaf)` keeping sorted order. Returns `false` when
    /// full (caller rebuilds the snapshot). Caller holds the SMO lock.
    pub fn insert_sorted(&self, key: u64, leaf: u64) -> bool {
        let n = self.len();
        if n == self.keys.len() {
            return false;
        }
        // Find insertion point (first separator greater than key).
        let mut pos = n;
        for i in 0..n {
            if self.key(i) > key {
                pos = i;
                break;
            }
        }
        // Shift from the end so readers only ever see valid words.
        let mut i = n;
        while i > pos {
            self.keys[i].store(self.key(i - 1), Ordering::Release);
            self.leaves[i].store(self.leaf(i - 1), Ordering::Release);
            i -= 1;
        }
        self.keys[pos].store(key, Ordering::Release);
        self.leaves[pos].store(leaf, Ordering::Release);
        self.len.store(n + 1, Ordering::Release);
        true
    }
}

/// An immutable-shell snapshot of the routing structure. The shell
/// (`mins`, PLN count) never changes after construction; PLN contents
/// mutate in place under the SMO lock until one overflows, which forces
/// a fresh snapshot.
pub struct Snapshot {
    mins: Vec<u64>,
    plns: Vec<Pln>,
    pln_cap: usize,
}

impl Snapshot {
    /// Build from sorted `(separator, leaf)` entries, filling each PLN
    /// to half capacity so in-place growth has headroom.
    pub fn build(entries: &[(u64, u64)], pln_cap: usize) -> Snapshot {
        assert!(pln_cap >= 2);
        debug_assert!(entries.windows(2).all(|w| w[0].0 <= w[1].0));
        if entries.is_empty() {
            return Snapshot {
                mins: Vec::new(),
                plns: Vec::new(),
                pln_cap,
            };
        }
        let per = (pln_cap / 2).max(1);
        let mut mins = Vec::new();
        let mut plns = Vec::new();
        for group in entries.chunks(per) {
            let pln = Pln::new(pln_cap);
            for (i, &(k, l)) in group.iter().enumerate() {
                pln.keys[i].store(k, Ordering::Relaxed);
                pln.leaves[i].store(l, Ordering::Relaxed);
            }
            pln.len.store(group.len(), Ordering::Release);
            mins.push(group[0].0);
            plns.push(pln);
        }
        Snapshot {
            mins,
            plns,
            pln_cap,
        }
    }

    /// Whether the snapshot routes anything.
    pub fn is_empty(&self) -> bool {
        self.plns.is_empty()
    }

    /// PLN capacity this snapshot was built with.
    pub fn pln_cap(&self) -> usize {
        self.pln_cap
    }

    /// The PLN covering `key` (last PLN whose min ≤ key, clamped to 0).
    pub fn route_pln(&self, key: u64) -> Option<&Pln> {
        if self.plns.is_empty() {
            return None;
        }
        let idx = match self.mins.binary_search(&key) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        Some(&self.plns[idx])
    }

    /// Leaf offset covering `key`.
    pub fn route(&self, key: u64) -> Option<u64> {
        let pln = self.route_pln(key)?;
        if pln.is_empty() {
            return None;
        }
        Some(pln.leaf(pln.route(key)))
    }

    /// Locate the PLN entry for `leaf`, found via any `key` inside the
    /// leaf's range (the entry's separator is ≤ `key` and the entry
    /// lives in the PLN that routes `key`).
    pub fn find_entry_for(&self, key: u64, leaf: u64) -> Option<(&Pln, usize)> {
        let pln = self.route_pln(key)?;
        pln.position_of(leaf).map(|i| (pln, i))
    }

    /// All `(separator, leaf)` entries in global order.
    pub fn all_entries(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for pln in &self.plns {
            for i in 0..pln.len() {
                out.push((pln.key(i), pln.leaf(i)));
            }
        }
        out
    }

    /// The chain-order predecessor of the entry at (`pln`, `idx`), i.e.
    /// the previous leaf in global order, if any.
    pub fn predecessor(&self, sep: u64, leaf: u64) -> Option<u64> {
        // Walk PLNs in order, tracking the previous leaf.
        let mut prev = None;
        for pln in &self.plns {
            for i in 0..pln.len() {
                if pln.key(i) == sep && pln.leaf(i) == leaf {
                    return prev;
                }
                prev = Some(pln.leaf(i));
            }
        }
        prev
    }

    /// Approximate DRAM footprint in bytes.
    pub fn dram_bytes(&self) -> u64 {
        (self.mins.len() * 8 + self.plns.len() * (self.pln_cap * 16 + 64)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(entries: &[(u64, u64)]) -> Snapshot {
        Snapshot::build(entries, 4)
    }

    #[test]
    fn build_and_route() {
        let s = snap(&[(0, 100), (10, 101), (20, 102), (30, 103), (40, 104)]);
        // per-PLN fill = 2, so 3 PLNs.
        assert_eq!(s.plns.len(), 3);
        assert_eq!(s.route(0), Some(100));
        assert_eq!(s.route(5), Some(100));
        assert_eq!(s.route(10), Some(101));
        assert_eq!(s.route(25), Some(102));
        assert_eq!(s.route(1000), Some(104));
    }

    #[test]
    fn underflow_routes_to_first_leaf() {
        let s = snap(&[(50, 7), (60, 8)]);
        assert_eq!(s.route(1), Some(7));
    }

    #[test]
    fn empty_snapshot() {
        let s = snap(&[]);
        assert!(s.is_empty());
        assert_eq!(s.route(5), None);
    }

    #[test]
    fn pln_insert_sorted_and_full() {
        let s = snap(&[(0, 1), (10, 2)]); // one PLN, cap 4, len 2
        let pln = &s.plns[0];
        assert!(pln.insert_sorted(5, 9));
        assert_eq!(pln.key(1), 5);
        assert_eq!(pln.leaf(1), 9);
        assert!(pln.insert_sorted(20, 10));
        assert!(pln.is_full());
        assert!(!pln.insert_sorted(30, 11), "full PLN must refuse");
    }

    #[test]
    fn replace_at_preserves_order() {
        let s = snap(&[(0, 1), (10, 2)]);
        let pln = &s.plns[0];
        pln.replace_at(1, 12, 99);
        assert_eq!(s.route(15), Some(99));
        assert_eq!(s.route(11), Some(1), "11 < new separator 12");
    }

    #[test]
    fn predecessor_walks_global_order() {
        let s = snap(&[(0, 100), (10, 101), (20, 102), (30, 103), (40, 104)]);
        assert_eq!(s.predecessor(0, 100), None);
        assert_eq!(s.predecessor(10, 101), Some(100));
        assert_eq!(s.predecessor(20, 102), Some(101)); // crosses PLN boundary
        assert_eq!(s.predecessor(40, 104), Some(103));
    }

    #[test]
    fn all_entries_roundtrip() {
        let e = vec![(0u64, 1u64), (5, 2), (9, 3)];
        assert_eq!(snap(&e).all_entries(), e);
    }
}
