//! The NV-Tree proper: append-only leaf operations, replace-on-split,
//! snapshot rebuilds and recovery with unreachable-block GC.

use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crossbeam_epoch::{self as epoch, Atomic, Owned};
use htm::{Abort, Htm};
use index_api::{Footprint, Key, RangeIndex, Value};
use pmalloc::PmAllocator;
use pmem::{MediaError, PmPool};

use crate::snapshot::Snapshot;
use crate::NvTreeConfig;

// Root-area slots owned by NV-Tree.
const SLOT_HEAD: u64 = 16;
const SLOT_CFG: u64 = 17;

// Leaf header offsets.
const COUNT_OFF: u64 = 0;
const VLOCK_OFF: u64 = 8;
const NEXT_OFF: u64 = 16;
const FLAGS_OFF: u64 = 24;

/// A pending mutation folded into a leaf replacement when the append
/// area is full.
#[derive(Clone, Copy)]
enum Pending {
    Put(Key, Value),
    Del(Key),
}

/// NV-Tree: selective-consistency persistent B+-tree (see crate docs).
pub struct NvTree {
    alloc: Arc<PmAllocator>,
    /// Global SMO sequence lock (reusing the seqlock machinery from the
    /// `htm` crate; NV-Tree itself is lock-based, and its SMOs —
    /// replace-splits and rebuilds — are serialized).
    smo: Htm,
    snap: Atomic<Snapshot>,
    cfg: NvTreeConfig,
    flag_words: u64,
    entries_off: u64,
    leaf_size: usize,
}

impl NvTree {
    /// Create a fresh tree on a formatted allocator/pool.
    pub fn create(alloc: Arc<PmAllocator>, cfg: NvTreeConfig) -> Arc<NvTree> {
        let t = NvTree::shell(alloc, cfg);
        let pool = t.alloc.pool().clone();
        let head = t
            .alloc
            .alloc_linked(t.leaf_size, SLOT_HEAD * 8)
            .expect("pool too small for NV-Tree head leaf");
        t.init_leaf_header(head, 0);
        pool.persist(head, t.leaf_size.min(256));
        pool.write_u64(SLOT_CFG * 8, cfg.leaf_entries as u64);
        pool.persist(SLOT_CFG * 8, 8);
        t.snap.store(
            Owned::new(Snapshot::build(&[(0, head)], cfg.pln_entries)),
            Ordering::Release,
        );
        Arc::new(t)
    }

    /// Reopen after a crash: clear leaf locks, rebuild the routing
    /// snapshot from the leaf chain, and garbage-collect allocated
    /// blocks the chain cannot reach (replaced leaves whose free did
    /// not persist). Panics on a media error; use
    /// [`NvTree::try_recover`] to handle poisoned lines gracefully.
    pub fn recover(alloc: Arc<PmAllocator>, cfg: NvTreeConfig) -> Arc<NvTree> {
        let _site = obs::site("nvtree_recovery");
        Self::try_recover(alloc, cfg).unwrap_or_else(|e| panic!("NV-Tree recovery failed: {e}"))
    }

    /// Fallible recovery: probes the root slots and every leaf in the
    /// chain for media errors *before* reading it — and before the
    /// vlock clear writes to it, since partial overwrites can mask the
    /// poison — so a poisoned line surfaces as a reported
    /// [`MediaError`], never as garbage records.
    pub fn try_recover(
        alloc: Arc<PmAllocator>,
        cfg: NvTreeConfig,
    ) -> Result<Arc<NvTree>, MediaError> {
        let t = NvTree::shell(alloc, cfg);
        let pool = t.alloc.pool().clone();
        pool.check_readable(SLOT_HEAD * 8, 16)
            .map_err(|e| e.context("NV-Tree root slots"))?;
        let persisted = pool.read_u64(SLOT_CFG * 8) as usize;
        assert_eq!(persisted, cfg.leaf_entries, "config/layout mismatch");
        let head = pool.read_u64(SLOT_HEAD * 8);
        assert!(head != 0, "recover() on an unformatted tree");
        let mut entries: Vec<(Key, u64)> = Vec::new();
        let mut reachable: HashSet<u64> = HashSet::new();
        let mut leaf = head;
        while leaf != 0 {
            pool.check_readable(leaf, t.leaf_size)
                .map_err(|e| e.context("NV-Tree leaf"))?;
            reachable.insert(leaf);
            pool.write_u64(leaf + VLOCK_OFF, 0);
            let live = t.live_records(leaf);
            if let Some(&(min, _)) = live.first() {
                entries.push((min, leaf));
            }
            leaf = pool.read_u64(leaf + NEXT_OFF);
        }
        // GC: anything allocated but not in the chain is a leaked
        // replacement; reclaim it. (The tree owns its pool exclusively.)
        let mut leaked = Vec::new();
        t.alloc.for_each_allocated(|off| {
            if !reachable.contains(&off) {
                leaked.push(off);
            }
        });
        for off in leaked {
            t.alloc.free(off);
        }
        if entries.is_empty() {
            entries.push((0, head));
        }
        t.snap.store(
            Owned::new(Snapshot::build(&entries, cfg.pln_entries)),
            Ordering::Release,
        );
        Ok(Arc::new(t))
    }

    fn shell(alloc: Arc<PmAllocator>, cfg: NvTreeConfig) -> NvTree {
        assert!(cfg.leaf_entries >= 4, "leaf too small to split");
        let flag_words = (cfg.leaf_entries as u64).div_ceil(64);
        let entries_off = FLAGS_OFF + flag_words * 8;
        let leaf_size = (entries_off + 16 * cfg.leaf_entries as u64) as usize;
        NvTree {
            alloc,
            smo: Htm::new(),
            snap: Atomic::null(),
            cfg,
            flag_words,
            entries_off,
            leaf_size,
        }
    }

    #[inline]
    fn pool(&self) -> &PmPool {
        self.alloc.pool()
    }

    #[inline]
    fn key_off(&self, leaf: u64, i: usize) -> u64 {
        leaf + self.entries_off + 16 * i as u64
    }

    #[inline]
    fn val_off(&self, leaf: u64, i: usize) -> u64 {
        self.key_off(leaf, i) + 8
    }

    #[inline]
    fn flag_off(&self, leaf: u64, i: usize) -> u64 {
        leaf + FLAGS_OFF + (i as u64 / 64) * 8
    }

    fn init_leaf_header(&self, leaf: u64, next: u64) {
        let pool = self.pool();
        pool.write_u64(leaf + COUNT_OFF, 0);
        pool.write_u64(leaf + VLOCK_OFF, 0);
        pool.write_u64(leaf + NEXT_OFF, next);
        for w in 0..self.flag_words {
            pool.write_u64(leaf + FLAGS_OFF + w * 8, 0);
        }
    }

    /// Count of appended entries (clamped against garbage).
    #[inline]
    fn leaf_count(&self, leaf: u64) -> usize {
        (self.pool().read_u64(leaf + COUNT_OFF) as usize).min(self.cfg.leaf_entries)
    }

    fn leaf_try_lock(&self, leaf: u64) -> bool {
        let v = self.pool().load_u64(leaf + VLOCK_OFF, Ordering::Acquire);
        v & 1 == 0 && self.pool().cas_u64(leaf + VLOCK_OFF, v, v + 1).is_ok()
    }

    fn leaf_unlock(&self, leaf: u64) {
        let v = self.pool().load_u64(leaf + VLOCK_OFF, Ordering::Relaxed);
        debug_assert_eq!(v & 1, 1);
        self.pool()
            .store_u64(leaf + VLOCK_OFF, v + 1, Ordering::Release);
    }

    /// Newest entry for `key`: `None` = no entry, `Some(None)` =
    /// tombstone, `Some(Some(v))` = live.
    fn read_latest(&self, leaf: u64, key: Key) -> Option<Option<Value>> {
        let pool = self.pool();
        let count = self.leaf_count(leaf);
        for i in (0..count).rev() {
            if pool.read_u64(self.key_off(leaf, i)) == key {
                let flags = pool.read_u64(self.flag_off(leaf, i));
                return if flags >> (i % 64) & 1 == 1 {
                    Some(Some(pool.read_u64(self.val_off(leaf, i))))
                } else {
                    Some(None)
                };
            }
        }
        None
    }

    /// All live records of a leaf (latest entry per key, tombstones
    /// dropped), sorted by key.
    fn live_records(&self, leaf: u64) -> Vec<(Key, Value)> {
        let pool = self.pool();
        let count = self.leaf_count(leaf);
        let mut seen: Vec<Key> = Vec::with_capacity(count);
        let mut out: Vec<(Key, Value)> = Vec::with_capacity(count);
        for i in (0..count).rev() {
            let k = pool.read_u64(self.key_off(leaf, i));
            if seen.contains(&k) {
                continue;
            }
            seen.push(k);
            let flags = pool.read_u64(self.flag_off(leaf, i));
            if flags >> (i % 64) & 1 == 1 {
                out.push((k, pool.read_u64(self.val_off(leaf, i))));
            }
        }
        out.sort_unstable();
        out
    }

    /// Append one entry to a locked, non-full leaf with NV-Tree's
    /// persistence order: entry + flag first, count-increment commit
    /// second.
    fn append(&self, leaf: u64, key: Key, value: Value, live: bool) {
        let _site = obs::site("nvtree_log_append");
        let pool = self.pool();
        let slot = self.leaf_count(leaf);
        debug_assert!(slot < self.cfg.leaf_entries);
        pool.write_u64(self.key_off(leaf, slot), key);
        pool.write_u64(self.val_off(leaf, slot), value);
        let fo = self.flag_off(leaf, slot);
        let flags = pool.read_u64(fo);
        let bit = 1u64 << (slot % 64);
        pool.write_u64(fo, if live { flags | bit } else { flags & !bit });
        pool.clwb(self.key_off(leaf, slot), 16);
        pool.clwb(fo, 8);
        pool.sfence();
        pool.write_u64(leaf + COUNT_OFF, slot as u64 + 1);
        pool.persist(leaf + COUNT_OFF, 8);
    }

    /// Route `key` to a leaf using the current snapshot. Caller must be
    /// inside an epoch pin and validate against the SMO version.
    fn route(&self, key: Key, guard: &epoch::Guard) -> Result<u64, Abort> {
        let shared = self.snap.load(Ordering::Acquire, guard);
        // SAFETY: snapshots are retired through the same epoch domain.
        let snap = unsafe { shared.as_ref() }.ok_or(Abort)?;
        snap.route(key).ok_or(Abort)
    }

    /// Traverse + lock + validate (same pattern as FPTree).
    fn locate_and_lock(&self, key: Key, guard: &epoch::Guard) -> u64 {
        loop {
            let (leaf, ver) = self
                .smo
                .speculative_read(|v| self.route(key, guard).map(|l| (l, v)));
            if !self.leaf_try_lock(leaf) {
                std::hint::spin_loop();
                continue;
            }
            if self.smo.version() != ver {
                self.leaf_unlock(leaf);
                continue;
            }
            return leaf;
        }
    }

    /// Replace a full, locked leaf with one or two compacted leaves,
    /// folding in `pending`. Runs inside the SMO write transaction.
    /// The old leaf is freed after a grace period.
    fn replace_split(&self, old: u64, op_key: Key, pending: Pending, guard: &epoch::Guard) {
        let _site = obs::site("nvtree_leaf_replace");
        let pool = self.pool();
        let mut live = self.live_records(old);
        match pending {
            Pending::Put(k, v) => match live.binary_search_by_key(&k, |&(k, _)| k) {
                Ok(i) => live[i].1 = v,
                Err(i) => live.insert(i, (k, v)),
            },
            Pending::Del(k) => {
                if let Ok(i) = live.binary_search_by_key(&k, |&(k, _)| k) {
                    live.remove(i);
                }
            }
        }

        let shared = self.snap.load(Ordering::Acquire, guard);
        // SAFETY: epoch-protected; we are the only SMO (write txn).
        let snap = unsafe { shared.deref() };
        let (pln, idx) = snap
            .find_entry_for(op_key, old)
            .expect("locked leaf must be routed");
        let sep_old = pln.key(idx);
        let old_next = pool.read_u64(old + NEXT_OFF);

        // Build the replacement leaves (unreachable until published; a
        // crash before the publish leaks them to recovery GC).
        let two = live.len() > self.cfg.leaf_entries * 3 / 4;
        let (first, second) = if two {
            let mid = live.len() / 2;
            let right = self.build_leaf(&live[mid..], old_next);
            let left = self.build_leaf(&live[..mid], right);
            (left, Some((live[mid].0, right)))
        } else {
            (self.build_leaf(&live, old_next), None)
        };

        // Publish with a single atomic 8-byte pointer write.
        match snap.predecessor(sep_old, old) {
            None => {
                pool.write_u64(SLOT_HEAD * 8, first);
                pool.persist(SLOT_HEAD * 8, 8);
            }
            Some(prev) => {
                pool.write_u64(prev + NEXT_OFF, first);
                pool.persist(prev + NEXT_OFF, 8);
            }
        }

        // Update routing in place; overflow forces a snapshot rebuild.
        // The globally-first leaf absorbs underflow keys (routing clamps
        // to the first entry), so after a recovery-recomputed separator
        // its live minimum can undercut `sep_old`; lower the separator
        // to keep PLN order strict.
        let sep_left = live.first().map_or(sep_old, |&(k, _)| k.min(sep_old));
        pln.replace_at(idx, sep_left, first);
        if let Some((sep_right, right)) = second {
            if !pln.insert_sorted(sep_right, right) {
                let mut entries = snap.all_entries();
                // `replace_at` already swapped old→first in `entries`.
                let pos = entries
                    .iter()
                    .position(|&(s, l)| s == sep_left && l == first)
                    .expect("replaced entry present");
                entries.insert(pos + 1, (sep_right, right));
                let new_snap = Owned::new(Snapshot::build(&entries, snap.pln_cap()));
                let old_snap = self.snap.swap(new_snap, Ordering::AcqRel, guard);
                // SAFETY: no new readers can obtain `old_snap`; retire it.
                unsafe { guard.defer_destroy(old_snap) };
            }
        }

        // Retire the old leaf once concurrent readers have moved on.
        // Weak handle: if a simulated crash already dropped this tree
        // and recovered a new allocator on the same pool, the straggler
        // callback must not clear the successor's bitmaps; recovery GC
        // reclaims the block instead.
        let alloc = Arc::downgrade(&self.alloc);
        guard.defer(move || {
            if let Some(a) = alloc.upgrade() {
                a.free(old);
            }
        });
    }

    /// Allocate and fully persist a compacted leaf.
    fn build_leaf(&self, records: &[(Key, Value)], next: u64) -> u64 {
        let pool = self.pool();
        let leaf = self
            .alloc
            .alloc(self.leaf_size)
            .expect("PM pool exhausted during NV-Tree split");
        self.init_leaf_header(leaf, next);
        let mut flags = vec![0u64; self.flag_words as usize];
        for (i, &(k, v)) in records.iter().enumerate() {
            pool.write_u64(self.key_off(leaf, i), k);
            pool.write_u64(self.val_off(leaf, i), v);
            flags[i / 64] |= 1 << (i % 64);
        }
        for (w, &f) in flags.iter().enumerate() {
            pool.write_u64(leaf + FLAGS_OFF + w as u64 * 8, f);
        }
        pool.write_u64(leaf + COUNT_OFF, records.len() as u64);
        pool.persist(leaf, self.leaf_size);
        leaf
    }

    /// SMO statistics (rebuild/abort analysis in experiments).
    pub fn smo_stats(&self) -> htm::HtmStats {
        self.smo.stats()
    }

    /// Shared implementation of the three write paths.
    fn write_op(&self, key: Key, value: Value, kind: WriteKind) -> bool {
        let _site = obs::site(match kind {
            WriteKind::Insert => "nvtree_insert",
            WriteKind::Update => "nvtree_update",
            WriteKind::Remove => "nvtree_remove",
        });
        let guard = epoch::pin();
        {
            let leaf = self.locate_and_lock(key, &guard);
            let latest = self.read_latest(leaf, key).flatten();
            let proceed = match kind {
                WriteKind::Insert => latest.is_none(),
                WriteKind::Update | WriteKind::Remove => latest.is_some(),
            };
            if !proceed {
                self.leaf_unlock(leaf);
                return false;
            }
            if self.leaf_count(leaf) < self.cfg.leaf_entries {
                match kind {
                    WriteKind::Insert | WriteKind::Update => self.append(leaf, key, value, true),
                    WriteKind::Remove => self.append(leaf, key, 0, false),
                }
                self.leaf_unlock(leaf);
                return true;
            }
            // Full: fold the op into a replace-split.
            let pending = match kind {
                WriteKind::Insert | WriteKind::Update => Pending::Put(key, value),
                WriteKind::Remove => Pending::Del(key),
            };
            self.smo
                .write_txn(|| self.replace_split(leaf, key, pending, &guard));
            self.leaf_unlock(leaf); // stale readers may still spin on it
            true
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum WriteKind {
    Insert,
    Update,
    Remove,
}

impl RangeIndex for NvTree {
    fn insert(&self, key: Key, value: Value) -> bool {
        self.write_op(key, value, WriteKind::Insert)
    }

    fn lookup(&self, key: Key) -> Option<Value> {
        let _site = obs::site("nvtree_lookup");
        let guard = epoch::pin();
        self.smo.speculative_read(|_| {
            let leaf = self.route(key, &guard)?;
            let v1 = self.pool().load_u64(leaf + VLOCK_OFF, Ordering::Acquire);
            if v1 & 1 == 1 {
                return Err(Abort);
            }
            let r = self.read_latest(leaf, key).flatten();
            if self.pool().load_u64(leaf + VLOCK_OFF, Ordering::Acquire) != v1 {
                return Err(Abort);
            }
            Ok(r)
        })
    }

    fn update(&self, key: Key, value: Value) -> bool {
        self.write_op(key, value, WriteKind::Update)
    }

    fn remove(&self, key: Key) -> bool {
        self.write_op(key, 0, WriteKind::Remove)
    }

    fn scan(&self, start: Key, count: usize, out: &mut Vec<(Key, Value)>) -> usize {
        let _site = obs::site("nvtree_scan");
        out.clear();
        if count == 0 {
            return 0;
        }
        let guard = epoch::pin();
        let pool = self.pool();
        let mut leaf = self.smo.speculative_read(|_| self.route(start, &guard));
        while leaf != 0 && out.len() < count {
            // Optimistic per-leaf snapshot: version-validated copy.
            let (batch, next) = loop {
                let v1 = pool.load_u64(leaf + VLOCK_OFF, Ordering::Acquire);
                if v1 & 1 == 1 {
                    std::hint::spin_loop();
                    continue;
                }
                let mut batch = self.live_records(leaf);
                batch.retain(|&(k, _)| k >= start);
                let next = pool.read_u64(leaf + NEXT_OFF);
                if pool.load_u64(leaf + VLOCK_OFF, Ordering::Acquire) == v1 {
                    break (batch, next);
                }
            };
            out.extend(batch);
            leaf = next;
        }
        out.truncate(count);
        out.len()
    }

    fn name(&self) -> &'static str {
        "nvtree"
    }

    fn footprint(&self) -> Footprint {
        let guard = epoch::pin();
        let shared = self.snap.load(Ordering::Acquire, &guard);
        let dram = unsafe { shared.as_ref() }
            .map(|s| s.dram_bytes())
            .unwrap_or(0);
        Footprint {
            pm_bytes: self.alloc.live_bytes(),
            dram_bytes: dram,
        }
    }
}

impl Drop for NvTree {
    fn drop(&mut self) {
        // Reclaim the final snapshot.
        let s = self
            .snap
            .swap(epoch::Shared::null(), Ordering::AcqRel, unsafe {
                epoch::unprotected()
            });
        if !s.is_null() {
            // SAFETY: exclusive access in drop.
            drop(unsafe { s.into_owned() });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use index_api::oracle;
    use pmalloc::AllocMode;
    use pmem::PmConfig;

    fn fresh(pool_mib: usize, cfg: NvTreeConfig) -> Arc<NvTree> {
        let pool = Arc::new(PmPool::new(pool_mib << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool, AllocMode::General);
        NvTree::create(alloc, cfg)
    }

    fn small_cfg() -> NvTreeConfig {
        NvTreeConfig {
            leaf_entries: 8,
            pln_entries: 8,
        }
    }

    #[test]
    fn basic_ops() {
        let t = fresh(4, NvTreeConfig::default());
        assert!(t.insert(1, 10));
        assert!(!t.insert(1, 11));
        assert_eq!(t.lookup(1), Some(10));
        assert!(t.update(1, 12));
        assert_eq!(t.lookup(1), Some(12));
        assert!(t.remove(1));
        assert!(!t.remove(1));
        assert_eq!(t.lookup(1), None);
        // Re-insert after tombstone.
        assert!(t.insert(1, 13));
        assert_eq!(t.lookup(1), Some(13));
    }

    #[test]
    fn appends_fill_then_replace_split() {
        let t = fresh(8, small_cfg());
        for k in 0..200u64 {
            assert!(t.insert(k, k * 3));
        }
        for k in 0..200u64 {
            assert_eq!(t.lookup(k), Some(k * 3), "key {k}");
        }
    }

    #[test]
    fn update_heavy_leaf_compacts_to_single_replacement() {
        let t = fresh(8, small_cfg());
        t.insert(5, 0);
        // 8-slot leaf: updates fill the append area repeatedly, forcing
        // single-leaf replacements rather than splits.
        for i in 1..100u64 {
            assert!(t.update(5, i));
        }
        assert_eq!(t.lookup(5), Some(99));
    }

    #[test]
    fn conformance_against_oracle() {
        let t = fresh(32, small_cfg());
        oracle::check_conformance(&*t, 0xBEEF, 20_000, 3_000);
    }

    #[test]
    fn scan_across_replacements() {
        let t = fresh(16, small_cfg());
        for k in (0..500u64).rev() {
            t.insert(k, k + 7);
        }
        let mut out = Vec::new();
        assert_eq!(t.scan(100, 50, &mut out), 50);
        let want: Vec<(u64, u64)> = (100..150).map(|k| (k, k + 7)).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn recovery_restores_persisted_state() {
        let pool = Arc::new(PmPool::new(32 << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        let cfg = small_cfg();
        let t = NvTree::create(alloc, cfg);
        for k in 0..1_000u64 {
            t.insert(k, k);
        }
        for k in 0..1_000u64 {
            if k % 3 == 0 {
                t.remove(k);
            }
        }
        drop(t);
        pool.crash();
        let alloc = PmAllocator::recover(pool, AllocMode::General);
        let t = NvTree::recover(alloc, cfg);
        for k in 0..1_000u64 {
            let want = if k % 3 == 0 { None } else { Some(k) };
            assert_eq!(t.lookup(k), want, "key {k}");
        }
    }

    #[test]
    fn recovery_gc_reclaims_unreachable_leaves() {
        let pool = Arc::new(PmPool::new(32 << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        let cfg = small_cfg();
        let t = NvTree::create(alloc.clone(), cfg);
        for k in 0..2_000u64 {
            t.insert(k, k);
        }
        // Deliberately leak: allocate blocks that nothing references
        // (simulates replaced leaves whose deferred free never ran).
        for _ in 0..10 {
            alloc.alloc(256).unwrap();
        }
        let live_with_leaks = alloc.live_bytes();
        drop(t);
        pool.crash();
        let alloc = PmAllocator::recover(pool, AllocMode::General);
        let t = NvTree::recover(alloc.clone(), cfg);
        assert!(
            alloc.live_bytes() < live_with_leaks,
            "GC should reclaim leaked blocks"
        );
        for k in 0..2_000u64 {
            assert_eq!(t.lookup(k), Some(k));
        }
    }

    #[test]
    fn concurrent_inserts_disjoint_ranges() {
        let t = fresh(64, NvTreeConfig::default());
        std::thread::scope(|s| {
            for tid in 0..8u64 {
                let t = &t;
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        let k = tid * 10_000 + i;
                        assert!(t.insert(k, k));
                    }
                });
            }
        });
        for tid in 0..8u64 {
            for i in 0..2_000u64 {
                let k = tid * 10_000 + i;
                assert_eq!(t.lookup(k), Some(k), "key {k}");
            }
        }
    }

    #[test]
    fn concurrent_mixed_ops_stay_consistent() {
        let t = fresh(64, small_cfg());
        std::thread::scope(|s| {
            for tid in 0..6u64 {
                let t = &t;
                s.spawn(move || {
                    let mut x = tid + 99;
                    for i in 0..2_000u64 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let k = x % 2_048;
                        match i % 5 {
                            0 | 1 => {
                                t.insert(k, i);
                            }
                            2 => {
                                t.lookup(k);
                            }
                            3 => {
                                t.update(k, i);
                            }
                            _ => {
                                let mut out = Vec::new();
                                t.scan(k, 8, &mut out);
                                assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
                            }
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn footprint_nonzero() {
        let t = fresh(8, small_cfg());
        for k in 0..100u64 {
            t.insert(k, k);
        }
        let f = t.footprint();
        assert!(f.pm_bytes > 0);
        assert!(f.dram_bytes > 0);
    }
}
