//! # obs — low-overhead PM observability
//!
//! Three layers, all behind one near-zero-cost [`enabled`] check so the
//! disabled path stays off the hot path (a single relaxed load + branch
//! per PM access):
//!
//! 1. **Event tracer** ([`ring`]): per-thread lock-free ring buffers
//!    recording PM events (clwb / ntstore / fence / read / write with
//!    offset + length) and op-lifecycle spans, tapped at the `PmPool`
//!    stats choke point. The rings double as the *flight recorder*: a
//!    bounded tail of the most recent events, dumpable when a crash
//!    oracle trips.
//! 2. **Site attribution** ([`site`]): a scoped tag API
//!    (`obs::site("leaf_split")`) the index crates, allocator and
//!    PMwCAS layer annotate, so every traced event — and the per-site
//!    aggregate counters — are attributed to the code path that issued
//!    it (leaf split, log append, alloc, …).
//! 3. **Time-series sampler** ([`sampler`]): a background thread
//!    snapshotting counter deltas at a fixed interval into throughput /
//!    bandwidth / fence-rate series, with a steady-state detector so
//!    reported numbers can exclude warmup.
//!
//! The crate sits *below* `pmem` in the dependency graph (it is the
//! only thing `pmem` taps into), so it depends on nothing but `std`.
//! Exporters (Chrome-trace JSON, CSV) live in the `pibench` core crate,
//! which owns the shared JSON/CSV machinery.

mod ring;
mod sampler;
mod site;

pub use ring::{Event, EventKind, MAX_TRACE_LEN, OP_LABELS};
pub use sampler::{PmCounters, SamplePoint, Sampler, TimeSeries};
pub use site::{SiteAgg, SiteGuard, MAX_SITES, SITE_OTHER};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether tracing/attribution is currently on. This is the fast gate:
/// every tap checks it first and returns immediately when off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the whole subsystem on or off. Cheap; flip around the measured
/// phase so prefill/teardown traffic is not attributed.
pub fn set_enabled(on: bool) {
    epoch(); // pin the epoch before the first event can be stamped
    ENABLED.store(on, Ordering::SeqCst);
}

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch (the first [`set_enabled`] call).
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Reset all rings, site aggregates and op counters (the interned site
/// names survive). Call between runs when no traced worker threads are
/// live — benchmark workers are scoped threads, so between `run()`
/// calls is safe.
pub fn reset() {
    ring::reset_rings();
}

// ----- taps (called by pmem / the benchmark runner) ------------------------

/// Tap: a software read of `len` bytes at `off` that moved
/// `media_bytes` from the emulated media (0 = served from cache).
#[inline]
pub fn pm_read(off: u64, len: usize, media_bytes: u64) {
    if !enabled() {
        return;
    }
    ring::record_pm(EventKind::Read, off, len as u64, media_bytes, |c| {
        c.events += 1;
        c.read_bytes += len as u64;
        c.media_read_bytes += media_bytes;
    });
}

/// Tap: a software write of `len` bytes at `off` (store-buffer level;
/// media traffic is attributed at flush time).
#[inline]
pub fn pm_write(off: u64, len: usize) {
    if !enabled() {
        return;
    }
    ring::record_pm(EventKind::Write, off, len as u64, 0, |c| {
        c.events += 1;
        c.write_bytes += len as u64;
    });
}

/// Tap: a `clwb`/`clflushopt` covering `len` bytes at `off`, writing
/// `media_bytes` back at media granularity. `redundant` marks flushes
/// whose covered lines were all already clean.
#[inline]
pub fn pm_clwb(off: u64, len: usize, media_bytes: u64, redundant: bool) {
    if !enabled() {
        return;
    }
    let kind = if redundant {
        EventKind::ClwbRedundant
    } else {
        EventKind::Clwb
    };
    ring::record_pm(kind, off, len as u64, media_bytes, |c| {
        c.events += 1;
        c.clwb += 1;
        c.clwb_redundant += redundant as u64;
        c.media_write_bytes += media_bytes;
    });
}

/// Tap: a non-temporal store at `off` writing `media_bytes` to media.
/// (The software-write bytes are accounted by the separate write tap
/// the store itself hits; this records only the nt-store + media side.)
#[inline]
pub fn pm_ntstore(off: u64, media_bytes: u64) {
    if !enabled() {
        return;
    }
    ring::record_pm(EventKind::Ntstore, off, 8, media_bytes, |c| {
        c.events += 1;
        c.ntstore += 1;
        c.media_write_bytes += media_bytes;
    });
}

/// Tap: a store fence.
#[inline]
pub fn pm_fence() {
    if !enabled() {
        return;
    }
    ring::record_pm(EventKind::Fence, 0, 0, 0, |c| {
        c.events += 1;
        c.fence += 1;
    });
}

/// Tap: one completed benchmark operation (for the throughput series).
#[inline]
pub fn count_op() {
    if !enabled() {
        return;
    }
    ring::count_op();
}

/// Tap: a latency-sampled operation completed. `op_kind` indexes the
/// workload op table (lookup/insert/update/remove/scan); the span is
/// recorded as one ring event with its start time and duration so the
/// exporter can emit a Chrome-trace complete event.
#[inline]
pub fn op_complete(op_kind: u8, dur_ns: u64) {
    if !enabled() {
        return;
    }
    ring::record_op_span(op_kind, dur_ns);
}

// ----- site tagging --------------------------------------------------------

/// Enter a scoped attribution site: until the returned guard drops,
/// every traced PM event on this thread is attributed to `name`.
/// Scopes nest (the innermost wins) and the guard restores the outer
/// site on drop. When tracing is disabled this is a single load+branch.
#[inline]
pub fn site(name: &'static str) -> SiteGuard {
    site::enter(name)
}

/// Per-site aggregate counters, one row per interned site that saw
/// traffic, ordered by media write bytes (descending). Site
/// [`SITE_OTHER`] collects everything outside any scope.
pub fn site_table() -> Vec<SiteAgg> {
    site::table()
}

/// Names of all interned sites, indexed by site id (for exporters).
pub fn site_names() -> Vec<String> {
    site::names()
}

// ----- flight recorder -----------------------------------------------------

/// The merged flight-recorder tail: the last `max` traced events across
/// all thread rings, in timestamp order. The rings are bounded
/// ([`MAX_TRACE_LEN`] events per thread), so this is the last-N-events
/// context leading up to a crash or oracle violation.
pub fn flight_events(max: usize) -> Vec<Event> {
    ring::collect_events(max)
}

/// Total benchmark ops counted via [`count_op`] since the last
/// [`reset`].
pub fn total_ops() -> u64 {
    ring::total_ops()
}

/// Human-readable flight-recorder tail (for crash harness dumps).
pub fn flight_tail_text(max: usize) -> String {
    let events = flight_events(max);
    if events.is_empty() {
        return "  (flight recorder empty — tracing disabled?)\n".to_string();
    }
    let names = site_names();
    let mut out = String::new();
    for e in &events {
        out.push_str(&e.render(&names));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// obs state is process-global; serialize the tests that flip it.
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_taps_are_noops() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(false);
        reset();
        pm_read(64, 8, 256);
        pm_clwb(64, 8, 256, false);
        pm_fence();
        count_op();
        assert!(flight_events(16).is_empty());
        assert_eq!(total_ops(), 0);
        assert!(site_table().iter().all(|s| s.events == 0));
    }

    #[test]
    fn events_flow_into_ring_and_sites() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        set_enabled(true);
        {
            let _s = site("unit_test_site");
            pm_write(128, 16);
            pm_clwb(128, 16, 256, false);
            pm_fence();
        }
        pm_read(4096, 8, 256); // outside any scope -> SITE_OTHER
        count_op();
        op_complete(1, 1234);
        set_enabled(false);

        let events = flight_events(64);
        assert!(events.len() >= 5, "events: {events:?}");
        // Timestamps are monotone in the merged tail.
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::Clwb));
        assert!(kinds.contains(&EventKind::Fence));
        assert!(kinds.contains(&EventKind::OpSpan));

        let table = site_table();
        let test_site = table
            .iter()
            .find(|s| s.name == "unit_test_site")
            .expect("site interned");
        assert_eq!(test_site.clwb, 1);
        assert_eq!(test_site.media_write_bytes, 256);
        assert_eq!(test_site.fence, 1);
        let other = table.iter().find(|s| s.name == SITE_OTHER).unwrap();
        assert_eq!(other.media_read_bytes, 256);
        assert_eq!(total_ops(), 1);

        let text = flight_tail_text(8);
        assert!(text.contains("clwb"), "{text}");
        reset();
        assert_eq!(total_ops(), 0);
        assert!(flight_events(8).is_empty());
    }

    #[test]
    fn nested_sites_restore_outer_scope() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        set_enabled(true);
        {
            let _outer = site("outer_site");
            pm_fence();
            {
                let _inner = site("inner_site");
                pm_fence();
            }
            pm_fence();
        }
        set_enabled(false);
        let table = site_table();
        let get = |n: &str| table.iter().find(|s| s.name == n).map(|s| s.fence);
        assert_eq!(get("outer_site"), Some(2));
        assert_eq!(get("inner_site"), Some(1));
        reset();
    }
}
