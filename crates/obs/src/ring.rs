//! Per-thread lock-free event rings (the tracer + flight recorder).
//!
//! Each traced thread owns one ring of [`MAX_TRACE_LEN`] slots. The
//! owning thread is the only writer, so the write path is two relaxed
//! stores per word plus a release publish of the slot sequence — no
//! CAS, no sharing. Readers (exporters, the flight-recorder dump) scan
//! all registered rings and validate each slot's sequence word before
//! and after reading the payload, seqlock-style, discarding slots that
//! were concurrently overwritten.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::site;

/// Events retained per thread ring (power of two). The rings double as
/// the flight recorder, so this bounds the "last N events" context a
/// crash dump can show per thread.
pub const MAX_TRACE_LEN: usize = 8192;

/// What a traced event was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A software load (`len` bytes at `off`; `media_bytes` moved).
    Read,
    /// A software store (`len` bytes at `off`; volatile until flushed).
    Write,
    /// A write-back that had dirty lines to persist.
    Clwb,
    /// A write-back whose covered lines were all already clean.
    ClwbRedundant,
    /// A non-temporal store.
    Ntstore,
    /// A store fence.
    Fence,
    /// A completed benchmark operation (latency-sampled span).
    OpSpan,
}

impl EventKind {
    fn from_u8(v: u8) -> EventKind {
        match v {
            0 => EventKind::Read,
            1 => EventKind::Write,
            2 => EventKind::Clwb,
            3 => EventKind::ClwbRedundant,
            4 => EventKind::Ntstore,
            5 => EventKind::Fence,
            _ => EventKind::OpSpan,
        }
    }

    /// Short label used by text dumps and the Chrome-trace exporter.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Read => "read",
            EventKind::Write => "write",
            EventKind::Clwb => "clwb",
            EventKind::ClwbRedundant => "clwb_redundant",
            EventKind::Ntstore => "ntstore",
            EventKind::Fence => "fence",
            EventKind::OpSpan => "op",
        }
    }
}

/// Labels for the `op_kind` carried by [`EventKind::OpSpan`] events
/// (mirrors the workload op table in the benchmark core).
pub const OP_LABELS: [&str; 5] = ["lookup", "insert", "update", "remove", "scan"];

/// One decoded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the trace epoch (for spans: the start time).
    pub ts_ns: u64,
    /// Ring id of the recording thread (registration order).
    pub thread: u32,
    /// Attribution site id (index into [`crate::site_names`]).
    pub site: u8,
    /// Event kind.
    pub kind: EventKind,
    /// Pool offset (0 for fences and spans).
    pub off: u64,
    /// Software length in bytes; for spans, the op-kind index.
    pub len: u32,
    /// Media traffic of this event in bytes (256 B granularity).
    pub media_bytes: u32,
    /// Span duration (0 for plain PM events).
    pub dur_ns: u64,
}

impl Event {
    /// One-line rendering for flight-recorder dumps.
    pub fn render(&self, site_names: &[String]) -> String {
        let site = site_names
            .get(self.site as usize)
            .map(|s| s.as_str())
            .unwrap_or("?");
        let t_us = self.ts_ns as f64 / 1e3;
        match self.kind {
            EventKind::OpSpan => {
                let op = OP_LABELS.get(self.len as usize).unwrap_or(&"?");
                format!(
                    "  [{t_us:>12.1}us t{} {site}] op {op} dur={}ns",
                    self.thread, self.dur_ns
                )
            }
            EventKind::Fence => {
                format!("  [{t_us:>12.1}us t{} {site}] fence", self.thread)
            }
            k => format!(
                "  [{t_us:>12.1}us t{} {site}] {} off={:#x} len={} media={}B",
                self.thread,
                k.label(),
                self.off,
                self.len,
                self.media_bytes
            ),
        }
    }
}

/// Per-site counter deltas a tap accumulates (see `record_pm`).
#[derive(Default)]
pub(crate) struct SiteCounts {
    pub events: u64,
    pub read_bytes: u64,
    pub write_bytes: u64,
    pub media_read_bytes: u64,
    pub media_write_bytes: u64,
    pub clwb: u64,
    pub clwb_redundant: u64,
    pub ntstore: u64,
    pub fence: u64,
}

/// Per-thread per-site aggregate cell. Only the owning thread writes,
/// so relaxed atomics cost a plain add; readers sum across threads.
#[derive(Default)]
pub(crate) struct SiteCell {
    pub events: AtomicU64,
    pub read_bytes: AtomicU64,
    pub write_bytes: AtomicU64,
    pub media_read_bytes: AtomicU64,
    pub media_write_bytes: AtomicU64,
    pub clwb: AtomicU64,
    pub clwb_redundant: AtomicU64,
    pub ntstore: AtomicU64,
    pub fence: AtomicU64,
}

impl SiteCell {
    fn add(&self, c: &SiteCounts) {
        // Uncontended (thread-private writer): each relaxed fetch_add
        // compiles to an ordinary add on x86.
        if c.events != 0 {
            self.events.fetch_add(c.events, Ordering::Relaxed);
        }
        if c.read_bytes != 0 {
            self.read_bytes.fetch_add(c.read_bytes, Ordering::Relaxed);
        }
        if c.write_bytes != 0 {
            self.write_bytes.fetch_add(c.write_bytes, Ordering::Relaxed);
        }
        if c.media_read_bytes != 0 {
            self.media_read_bytes
                .fetch_add(c.media_read_bytes, Ordering::Relaxed);
        }
        if c.media_write_bytes != 0 {
            self.media_write_bytes
                .fetch_add(c.media_write_bytes, Ordering::Relaxed);
        }
        if c.clwb != 0 {
            self.clwb.fetch_add(c.clwb, Ordering::Relaxed);
        }
        if c.clwb_redundant != 0 {
            self.clwb_redundant
                .fetch_add(c.clwb_redundant, Ordering::Relaxed);
        }
        if c.ntstore != 0 {
            self.ntstore.fetch_add(c.ntstore, Ordering::Relaxed);
        }
        if c.fence != 0 {
            self.fence.fetch_add(c.fence, Ordering::Relaxed);
        }
    }

    fn clear(&self) {
        self.events.store(0, Ordering::Relaxed);
        self.read_bytes.store(0, Ordering::Relaxed);
        self.write_bytes.store(0, Ordering::Relaxed);
        self.media_read_bytes.store(0, Ordering::Relaxed);
        self.media_write_bytes.store(0, Ordering::Relaxed);
        self.clwb.store(0, Ordering::Relaxed);
        self.clwb_redundant.store(0, Ordering::Relaxed);
        self.ntstore.store(0, Ordering::Relaxed);
        self.fence.store(0, Ordering::Relaxed);
    }
}

/// One ring slot: `w[0]` is the seqlock word (absolute event index + 1,
/// 0 = empty/in-progress), `w[1..4]` the payload.
struct Slot {
    w: [AtomicU64; 4],
}

impl Default for Slot {
    fn default() -> Self {
        Slot {
            w: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

pub(crate) struct ThreadRing {
    tid: u32,
    /// Next absolute event index; only the owning thread stores it.
    head: AtomicU64,
    slots: Box<[Slot]>,
    pub(crate) sites: Box<[SiteCell]>,
    ops: AtomicU64,
}

impl ThreadRing {
    fn new(tid: u32) -> ThreadRing {
        ThreadRing {
            tid,
            head: AtomicU64::new(0),
            slots: (0..MAX_TRACE_LEN).map(|_| Slot::default()).collect(),
            sites: (0..site::MAX_SITES).map(|_| SiteCell::default()).collect(),
            ops: AtomicU64::new(0),
        }
    }

    #[inline]
    fn push(&self, ts_ns: u64, off: u64, packed: u64) {
        let i = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(i as usize) & (MAX_TRACE_LEN - 1)];
        slot.w[0].store(0, Ordering::Release); // invalidate for readers
        slot.w[1].store(ts_ns, Ordering::Relaxed);
        slot.w[2].store(off, Ordering::Relaxed);
        slot.w[3].store(packed, Ordering::Relaxed);
        slot.w[0].store(i + 1, Ordering::Release); // publish
        self.head.store(i + 1, Ordering::Relaxed);
    }

    fn reset(&self) {
        self.head.store(0, Ordering::Relaxed);
        for s in self.slots.iter() {
            s.w[0].store(0, Ordering::Relaxed);
        }
        for c in self.sites.iter() {
            c.clear();
        }
        self.ops.store(0, Ordering::Relaxed);
    }
}

// Payload word 3 layout: kind(0..8) | site(8..16) | media_blocks(16..36)
// | len(36..56). len and media are saturated into their fields — trace
// fidelity, not accounting (the counters carry exact values).
#[inline]
fn pack(kind: u8, site: u8, media_bytes: u64, len: u64) -> u64 {
    let blocks = (media_bytes / crate::site::MEDIA_BLOCK_BYTES).min((1 << 20) - 1);
    let len = len.min((1 << 20) - 1);
    kind as u64 | (site as u64) << 8 | blocks << 16 | len << 36
}

fn registry() -> MutexGuard<'static, Vec<Arc<ThreadRing>>> {
    static REGISTRY: Mutex<Vec<Arc<ThreadRing>>> = Mutex::new(Vec::new());
    REGISTRY.lock().unwrap_or_else(|p| p.into_inner())
}

/// Thread-local tracing state: this thread's ring, its current
/// attribution site, and a per-thread site-name cache (keyed by the
/// `&'static str` data pointer) so scope entry never takes the global
/// interner lock after the first use of a name.
pub(crate) struct Handle {
    pub(crate) ring: Arc<ThreadRing>,
    pub(crate) current_site: Cell<u8>,
    pub(crate) site_cache: RefCell<HashMap<usize, u8>>,
}

thread_local! {
    static HANDLE: Handle = {
        let mut reg = registry();
        let ring = Arc::new(ThreadRing::new(reg.len() as u32));
        reg.push(ring.clone());
        Handle {
            ring,
            current_site: Cell::new(site::SITE_OTHER_ID),
            site_cache: RefCell::new(HashMap::new()),
        }
    };
}

#[inline]
pub(crate) fn with_handle<R>(f: impl FnOnce(&Handle) -> R) -> R {
    HANDLE.with(f)
}

/// Record one PM event: ring entry + per-site counter update.
#[inline]
pub(crate) fn record_pm(
    kind: EventKind,
    off: u64,
    len: u64,
    media_bytes: u64,
    fill: impl FnOnce(&mut SiteCounts),
) {
    let mut c = SiteCounts::default();
    fill(&mut c);
    let ts = crate::now_ns();
    with_handle(|h| {
        let site = h.current_site.get();
        h.ring.sites[site as usize].add(&c);
        h.ring
            .push(ts, off, pack(kind as u8, site, media_bytes, len));
    });
}

/// Record a completed-operation span (ts = start, `off` word = dur).
#[inline]
pub(crate) fn record_op_span(op_kind: u8, dur_ns: u64) {
    let end = crate::now_ns();
    let start = end.saturating_sub(dur_ns);
    with_handle(|h| {
        let site = h.current_site.get();
        h.ring.push(
            start,
            dur_ns,
            pack(EventKind::OpSpan as u8, site, 0, op_kind as u64),
        );
    });
}

#[inline]
pub(crate) fn count_op() {
    with_handle(|h| h.ring.ops.fetch_add(1, Ordering::Relaxed));
}

pub(crate) fn total_ops() -> u64 {
    registry()
        .iter()
        .map(|r| r.ops.load(Ordering::Relaxed))
        .sum()
}

pub(crate) fn reset_rings() {
    for r in registry().iter() {
        r.reset();
    }
}

/// Sum the per-thread per-site cells across every registered ring into
/// one [`SiteCounts`] per site id (first `n` sites).
pub(crate) fn site_sums(n: usize) -> Vec<SiteCounts> {
    let mut sums: Vec<SiteCounts> = (0..n).map(|_| SiteCounts::default()).collect();
    for ring in registry().iter() {
        for (i, cell) in ring.sites.iter().take(n).enumerate() {
            let s = &mut sums[i];
            s.events += cell.events.load(Ordering::Relaxed);
            s.read_bytes += cell.read_bytes.load(Ordering::Relaxed);
            s.write_bytes += cell.write_bytes.load(Ordering::Relaxed);
            s.media_read_bytes += cell.media_read_bytes.load(Ordering::Relaxed);
            s.media_write_bytes += cell.media_write_bytes.load(Ordering::Relaxed);
            s.clwb += cell.clwb.load(Ordering::Relaxed);
            s.clwb_redundant += cell.clwb_redundant.load(Ordering::Relaxed);
            s.ntstore += cell.ntstore.load(Ordering::Relaxed);
            s.fence += cell.fence.load(Ordering::Relaxed);
        }
    }
    sums
}

/// Snapshot every ring, seqlock-validate each slot, merge by timestamp
/// and keep the last `max` events.
pub(crate) fn collect_events(max: usize) -> Vec<Event> {
    let mut out = Vec::new();
    for ring in registry().iter() {
        let head = ring.head.load(Ordering::Acquire);
        let first = head.saturating_sub(MAX_TRACE_LEN as u64);
        for i in first..head {
            let slot = &ring.slots[(i as usize) & (MAX_TRACE_LEN - 1)];
            let seq = slot.w[0].load(Ordering::Acquire);
            if seq != i + 1 {
                continue; // overwritten or in-progress
            }
            let ts = slot.w[1].load(Ordering::Relaxed);
            let off = slot.w[2].load(Ordering::Relaxed);
            let packed = slot.w[3].load(Ordering::Relaxed);
            if slot.w[0].load(Ordering::Acquire) != seq {
                continue; // torn by a concurrent writer lap
            }
            let kind = EventKind::from_u8((packed & 0xFF) as u8);
            let (off, dur_ns) = match kind {
                EventKind::OpSpan => (0, off),
                _ => (off, 0),
            };
            out.push(Event {
                ts_ns: ts,
                thread: ring.tid,
                site: ((packed >> 8) & 0xFF) as u8,
                kind,
                off,
                len: ((packed >> 36) & ((1 << 20) - 1)) as u32,
                media_bytes: (((packed >> 16) & ((1 << 20) - 1)) * crate::site::MEDIA_BLOCK_BYTES)
                    as u32,
                dur_ns,
            });
        }
    }
    out.sort_by_key(|e| e.ts_ns);
    if out.len() > max {
        out.drain(..out.len() - max);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrips_fields() {
        let p = pack(EventKind::Clwb as u8, 7, 512, 64);
        assert_eq!(p & 0xFF, EventKind::Clwb as u8 as u64);
        assert_eq!((p >> 8) & 0xFF, 7);
        assert_eq!(((p >> 16) & ((1 << 20) - 1)) * 256, 512);
        assert_eq!((p >> 36) & ((1 << 20) - 1), 64);
    }

    #[test]
    fn pack_saturates_oversized_fields() {
        let p = pack(0, 0, u64::MAX, u64::MAX);
        assert_eq!((p >> 16) & ((1 << 20) - 1), (1 << 20) - 1);
        assert_eq!((p >> 36) & ((1 << 20) - 1), (1 << 20) - 1);
    }

    #[test]
    fn ring_overwrites_oldest_and_keeps_tail() {
        let _g = crate::tests::TEST_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        crate::reset();
        crate::set_enabled(true);
        // Overfill the ring: only the most recent MAX_TRACE_LEN survive.
        for i in 0..(MAX_TRACE_LEN as u64 + 100) {
            crate::pm_fence();
            let _ = i;
        }
        crate::set_enabled(false);
        let events = collect_events(usize::MAX);
        let mine: Vec<&Event> = events
            .iter()
            .filter(|e| e.kind == EventKind::Fence)
            .collect();
        assert!(mine.len() <= MAX_TRACE_LEN);
        assert!(mine.len() >= MAX_TRACE_LEN - 1, "len={}", mine.len());
        crate::reset();
    }
}
