//! Background time-series sampler.
//!
//! A sampler thread wakes every `interval_ms`, reads a caller-supplied
//! cumulative [`PmCounters`] source (obs cannot depend on `pmem`, so
//! the caller closes over its pools and merges their snapshots) plus
//! the global op counter, and appends the *delta* since the previous
//! wake as one [`SamplePoint`]. The result is a [`TimeSeries`] of
//! throughput / bandwidth / flush-rate over the run, with a simple
//! steady-state detector so reports can exclude warmup.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Cumulative PM counters at one instant (typically a merged
/// `PmStatsSnapshot` across all pools of the index under test).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PmCounters {
    pub read_bytes: u64,
    pub write_bytes: u64,
    pub media_read_bytes: u64,
    pub media_write_bytes: u64,
    pub clwb: u64,
    pub ntstore: u64,
    pub fence: u64,
}

/// One sampling interval: all fields are deltas over `dt_ms`, except
/// `t_ms` (milliseconds from sampler start to the interval's *end*).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SamplePoint {
    pub t_ms: u64,
    pub dt_ms: u64,
    pub ops: u64,
    pub read_bytes: u64,
    pub write_bytes: u64,
    pub media_read_bytes: u64,
    pub media_write_bytes: u64,
    pub clwb: u64,
    pub ntstore: u64,
    pub fence: u64,
}

impl SamplePoint {
    fn dt_s(&self) -> f64 {
        (self.dt_ms.max(1)) as f64 / 1e3
    }

    /// Throughput over this interval, Mops/s.
    pub fn mops(&self) -> f64 {
        self.ops as f64 / self.dt_s() / 1e6
    }

    /// Media read / write bandwidth over this interval, GiB/s.
    pub fn read_gibps(&self) -> f64 {
        self.media_read_bytes as f64 / self.dt_s() / (1u64 << 30) as f64
    }

    pub fn write_gibps(&self) -> f64 {
        self.media_write_bytes as f64 / self.dt_s() / (1u64 << 30) as f64
    }

    /// Fences per second over this interval.
    pub fn fence_rate(&self) -> f64 {
        self.fence as f64 / self.dt_s()
    }

    /// Media write amplification over this interval (media bytes per
    /// software byte written); 0 when nothing was written.
    pub fn write_amplification(&self) -> f64 {
        if self.write_bytes == 0 {
            0.0
        } else {
            self.media_write_bytes as f64 / self.write_bytes as f64
        }
    }
}

/// The sampled series for one run.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    pub interval_ms: u64,
    pub points: Vec<SamplePoint>,
}

impl TimeSeries {
    /// Index of the first steady-state sample: the first point whose
    /// op rate reaches 80% of the median rate over the second half of
    /// the series (the second half is taken as "warmed up"). Returns 0
    /// for short or flat series, so callers can use it unconditionally.
    pub fn steady_start(&self) -> usize {
        let n = self.points.len();
        if n < 4 {
            return 0;
        }
        let mut tail: Vec<f64> = self.points[n / 2..].iter().map(|p| p.mops()).collect();
        tail.sort_by(|a, b| a.total_cmp(b));
        let median = tail[tail.len() / 2];
        let threshold = 0.8 * median;
        self.points
            .iter()
            .position(|p| p.mops() >= threshold)
            .unwrap_or(0)
    }

    /// Mean throughput (Mops/s) over `points[from..]`, time-weighted.
    pub fn mops_from(&self, from: usize) -> f64 {
        let pts = &self.points[from.min(self.points.len())..];
        let ops: u64 = pts.iter().map(|p| p.ops).sum();
        let ms: u64 = pts.iter().map(|p| p.dt_ms).sum();
        if ms == 0 {
            0.0
        } else {
            ops as f64 / (ms as f64 / 1e3) / 1e6
        }
    }
}

/// Handle for the background sampling thread. `stop()` joins it and
/// returns the collected series; dropping without `stop()` detaches
/// and stops the thread without collecting.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<Vec<SamplePoint>>>,
    interval_ms: u64,
}

impl Sampler {
    /// Start sampling every `interval_ms` (clamped to ≥ 1 ms).
    /// `source` returns the *cumulative* counters at each wake.
    pub fn start(interval_ms: u64, source: impl Fn() -> PmCounters + Send + 'static) -> Sampler {
        let interval_ms = interval_ms.max(1);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name("obs-sampler".into())
            .spawn(move || sample_loop(interval_ms, &stop2, &source))
            .expect("spawn obs-sampler");
        Sampler {
            stop,
            handle: Some(handle),
            interval_ms,
        }
    }

    /// Stop the thread (taking one final partial sample) and return
    /// the series.
    pub fn stop(mut self) -> TimeSeries {
        self.stop.store(true, Ordering::SeqCst);
        let points = self
            .handle
            .take()
            .and_then(|h| h.join().ok())
            .unwrap_or_default();
        TimeSeries {
            interval_ms: self.interval_ms,
            points,
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn sample_loop(
    interval_ms: u64,
    stop: &AtomicBool,
    source: &dyn Fn() -> PmCounters,
) -> Vec<SamplePoint> {
    let t0 = Instant::now();
    let mut prev = source();
    let mut prev_ops = crate::total_ops();
    let mut prev_t = t0;
    let mut points = Vec::new();
    loop {
        let stopping = stop.load(Ordering::Relaxed);
        if !stopping {
            std::thread::sleep(Duration::from_millis(interval_ms));
        }
        let now = Instant::now();
        let cur = source();
        let ops = crate::total_ops();
        let dt_ms = now.duration_since(prev_t).as_millis() as u64;
        // Skip empty final partials (stop raced the last regular wake).
        if dt_ms > 0 || !stopping {
            points.push(SamplePoint {
                t_ms: now.duration_since(t0).as_millis() as u64,
                dt_ms,
                ops: ops.saturating_sub(prev_ops),
                read_bytes: cur.read_bytes.saturating_sub(prev.read_bytes),
                write_bytes: cur.write_bytes.saturating_sub(prev.write_bytes),
                media_read_bytes: cur.media_read_bytes.saturating_sub(prev.media_read_bytes),
                media_write_bytes: cur.media_write_bytes.saturating_sub(prev.media_write_bytes),
                clwb: cur.clwb.saturating_sub(prev.clwb),
                ntstore: cur.ntstore.saturating_sub(prev.ntstore),
                fence: cur.fence.saturating_sub(prev.fence),
            });
        }
        if stopping {
            return points;
        }
        prev = cur;
        prev_ops = ops;
        prev_t = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn ramp_series(rates: &[u64]) -> TimeSeries {
        TimeSeries {
            interval_ms: 100,
            points: rates
                .iter()
                .enumerate()
                .map(|(i, &ops)| SamplePoint {
                    t_ms: (i as u64 + 1) * 100,
                    dt_ms: 100,
                    ops,
                    ..SamplePoint::default()
                })
                .collect(),
        }
    }

    #[test]
    fn steady_start_skips_warmup_ramp() {
        let ts = ramp_series(&[10, 50, 90, 100, 100, 100, 100, 100]);
        // Median of the second half is 100; first point at ≥ 80 is idx 2.
        assert_eq!(ts.steady_start(), 2);
        // Flat series: steady from the start.
        assert_eq!(ramp_series(&[100; 8]).steady_start(), 0);
        // Too short to judge: start at 0.
        assert_eq!(ramp_series(&[1, 100]).steady_start(), 0);
    }

    #[test]
    fn mops_from_is_time_weighted() {
        let ts = ramp_series(&[0, 100_000, 100_000]);
        // Over all 300 ms: 200k ops -> ~0.667 Mops/s.
        assert!((ts.mops_from(0) - 0.6667).abs() < 1e-3);
        // Excluding warmup: 1.0 Mops/s.
        assert!((ts.mops_from(1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampler_collects_counter_deltas() {
        let counter = Arc::new(AtomicU64::new(0));
        let src = counter.clone();
        let sampler = Sampler::start(5, move || PmCounters {
            media_write_bytes: src.load(Ordering::Relaxed),
            ..PmCounters::default()
        });
        for _ in 0..10 {
            counter.fetch_add(1024, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(3));
        }
        let ts = sampler.stop();
        assert!(!ts.points.is_empty());
        let total: u64 = ts.points.iter().map(|p| p.media_write_bytes).sum();
        // All increments that happened between the first and last wake
        // are accounted; allow the first pre-start increment to be lost.
        assert!(total >= 1024 * 8, "total={total}");
        assert!(total <= 1024 * 10);
        assert!(ts.points.iter().all(|p| p.write_amplification() == 0.0));
    }
}
