//! Scoped site attribution: `obs::site("leaf_split")` tags every PM
//! event the current thread issues until the guard drops.
//!
//! Site names are interned once into a small global table (the hot
//! path hits a per-thread pointer-keyed cache, not the interner lock);
//! per-thread per-site counters live next to each thread's event ring
//! and are summed on demand into the [`SiteAgg`] report table.

use std::sync::Mutex;

use crate::ring;

/// Maximum distinct sites; names interned beyond this fold into
/// [`SITE_OTHER`]. 64 is far above the current taxonomy (~25 sites).
pub const MAX_SITES: usize = 64;

/// The catch-all site: traffic issued outside any `obs::site` scope.
pub const SITE_OTHER: &str = "other";

/// Site id of [`SITE_OTHER`] (always the first interned entry).
pub(crate) const SITE_OTHER_ID: u8 = 0;

/// Media access granularity of the emulated device (kept in sync with
/// `pmem::MEDIA_BLOCK`; obs cannot depend on pmem).
pub(crate) const MEDIA_BLOCK_BYTES: u64 = 256;

fn interner() -> std::sync::MutexGuard<'static, Vec<&'static str>> {
    static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut g = NAMES.lock().unwrap_or_else(|p| p.into_inner());
    if g.is_empty() {
        g.push(SITE_OTHER);
    }
    g
}

/// Intern `name`, returning its site id. Deduplicates by content, so
/// the same literal in two crates maps to one site.
fn intern(name: &'static str) -> u8 {
    let mut names = interner();
    if let Some(i) = names.iter().position(|n| *n == name) {
        return i as u8;
    }
    if names.len() >= MAX_SITES {
        return SITE_OTHER_ID;
    }
    names.push(name);
    (names.len() - 1) as u8
}

/// RAII guard restoring the previous site scope on drop.
/// `None` means tracing was off at entry and there is nothing to undo.
#[must_use = "the site scope ends when this guard drops"]
pub struct SiteGuard {
    prev: Option<u8>,
}

impl Drop for SiteGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some(prev) = self.prev {
            ring::with_handle(|h| h.current_site.set(prev));
        }
    }
}

#[inline]
pub(crate) fn enter(name: &'static str) -> SiteGuard {
    if !crate::enabled() {
        return SiteGuard { prev: None };
    }
    let prev = ring::with_handle(|h| {
        // Per-thread cache keyed by the string's data pointer: one
        // interner lock per (thread, site) pair, ever.
        let key = name.as_ptr() as usize;
        let cached = h.site_cache.borrow().get(&key).copied();
        let id = cached.unwrap_or_else(|| {
            let id = intern(name);
            h.site_cache.borrow_mut().insert(key, id);
            id
        });
        h.current_site.replace(id)
    });
    SiteGuard { prev: Some(prev) }
}

/// One row of the per-site traffic table (counters summed over all
/// threads since the last `obs::reset`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteAgg {
    pub name: String,
    /// Traced PM events attributed to this site.
    pub events: u64,
    /// Software bytes read / written under this site.
    pub read_bytes: u64,
    pub write_bytes: u64,
    /// Media traffic (256 B granularity) under this site.
    pub media_read_bytes: u64,
    pub media_write_bytes: u64,
    /// Flush / ordering primitives issued under this site.
    pub clwb: u64,
    pub clwb_redundant: u64,
    pub ntstore: u64,
    pub fence: u64,
}

pub(crate) fn names() -> Vec<String> {
    interner().iter().map(|s| s.to_string()).collect()
}

/// Aggregate table: one row per interned site, media-write-heavy rows
/// first so reports lead with the dominant write paths.
pub(crate) fn table() -> Vec<SiteAgg> {
    let names = names();
    let sums = ring::site_sums(names.len());
    let mut rows: Vec<SiteAgg> = names
        .into_iter()
        .zip(sums)
        .map(|(name, c)| SiteAgg {
            name,
            events: c.events,
            read_bytes: c.read_bytes,
            write_bytes: c.write_bytes,
            media_read_bytes: c.media_read_bytes,
            media_write_bytes: c.media_write_bytes,
            clwb: c.clwb,
            clwb_redundant: c.clwb_redundant,
            ntstore: c.ntstore,
            fence: c.fence,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.media_write_bytes
            .cmp(&a.media_write_bytes)
            .then_with(|| b.events.cmp(&a.events))
            .then_with(|| a.name.cmp(&b.name))
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_content_deduped() {
        let a = intern("site_test_alpha");
        let b = intern("site_test_alpha");
        assert_eq!(a, b);
        let other = intern(SITE_OTHER);
        assert_eq!(other, SITE_OTHER_ID);
        let names = names();
        assert_eq!(names[SITE_OTHER_ID as usize], SITE_OTHER);
        assert_eq!(names[a as usize], "site_test_alpha");
    }

    #[test]
    fn guard_is_noop_when_disabled() {
        let _g = crate::tests::TEST_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        crate::set_enabled(false);
        let before = ring::with_handle(|h| h.current_site.get());
        {
            let _s = enter("site_test_disabled");
            let during = ring::with_handle(|h| h.current_site.get());
            assert_eq!(before, during);
        }
    }
}
