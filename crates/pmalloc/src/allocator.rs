//! The allocator proper: persistent chunk/bitmap layout, volatile
//! per-class state, magazine caches and crash recovery.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use pmem::{align_up, MediaError, PmPool, MEDIA_BLOCK, ROOT_AREA};

use crate::classes::{class_for_size, class_size, CLASS_SIZES, NUM_CLASSES};
use crate::AllocError;

/// Chunk payload size. Every chunk serves exactly one size class.
const CHUNK_SIZE: usize = 64 * 1024;
/// Persistent bitmap bytes per chunk (4096 bits covers the smallest class).
const BITMAP_BYTES: u64 = 512;
/// Number of in-flight (redo) slots; threads stripe across them.
const INFLIGHT_SLOTS: usize = 64;
/// Bytes per in-flight slot: `[block, dest, op, pad]`.
const INFLIGHT_SLOT_BYTES: u64 = 32;
/// Magazine capacity per (stripe, class) in `Striped` mode.
const MAGAZINE_CAP: usize = 64;

const MAGIC: u64 = 0x504D_414C_4C4F_4331; // "PMALLOC1"

/// In-flight op codes (persisted in the slot's third word).
const OP_ALLOC: u64 = 1;
const OP_FREE: u64 = 2;

/// Allocation strategy, the subject of the E10 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocMode {
    /// PMDK-like: every request takes the shared per-class lock and
    /// touches the persistent bitmap.
    General,
    /// Slab/magazine design: threads stripe across volatile caches of
    /// pre-allocated blocks; the persistent bitmap is touched only on
    /// refill/drain. Crashing with full magazines leaks those blocks.
    Striped,
}

/// Point-in-time allocator statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct AllocStats {
    /// Completed allocations.
    pub allocs: u64,
    /// Completed frees.
    pub frees: u64,
    /// Bytes currently marked allocated in persistent bitmaps
    /// (includes magazine-cached blocks).
    pub live_bytes: u64,
    /// Bytes sitting in volatile magazines (these would leak on crash).
    pub magazine_bytes: u64,
    /// Chunks bound to a class.
    pub bound_chunks: u64,
    /// Total chunks in the pool.
    pub total_chunks: u64,
}

/// Volatile cursor over one size class.
struct ClassState {
    /// Chunk ids bound to this class that may still have free blocks.
    avail: Vec<u32>,
}

struct Layout {
    n_chunks: u64,
    chunk_headers_off: u64,
    bitmaps_off: u64,
    heap_off: u64,
}

impl Layout {
    fn compute(pool_len: usize) -> Layout {
        let base = ROOT_AREA + 256 + INFLIGHT_SLOTS as u64 * INFLIGHT_SLOT_BYTES;
        let per_chunk = 8 + BITMAP_BYTES + CHUNK_SIZE as u64;
        let budget = (pool_len as u64).saturating_sub(base + MEDIA_BLOCK as u64);
        let n_chunks = budget / per_chunk;
        let chunk_headers_off = base;
        let bitmaps_off = chunk_headers_off + n_chunks * 8;
        let heap_off = align_up(bitmaps_off + n_chunks * BITMAP_BYTES, MEDIA_BLOCK as u64);
        Layout {
            n_chunks,
            chunk_headers_off,
            bitmaps_off,
            heap_off,
        }
    }
}

/// Persistent-memory allocator over a [`PmPool`]. See the crate docs.
pub struct PmAllocator {
    pool: Arc<PmPool>,
    mode: AllocMode,
    layout: Layout,
    classes: Vec<Mutex<ClassState>>,
    free_chunks: Mutex<Vec<u32>>,
    /// Volatile free-block counts per chunk (rebuilt on recovery).
    free_counts: Vec<AtomicU32>,
    /// Volatile next-free-bit hints per chunk.
    scan_hints: Vec<AtomicU32>,
    inflight_locks: Vec<Mutex<()>>,
    magazines: Vec<Mutex<Vec<u64>>>, // stripe * NUM_CLASSES + class
    allocs: AtomicU64,
    frees: AtomicU64,
    live_bytes: AtomicU64,
}

fn stripe_of_thread() -> usize {
    use std::cell::Cell;
    use std::sync::atomic::AtomicUsize;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    STRIPE.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Ordering::Relaxed) % INFLIGHT_SLOTS;
            s.set(v);
        }
        v
    })
}

impl PmAllocator {
    /// Format a fresh pool: writes allocator metadata and returns the
    /// allocator. The first [`ROOT_AREA`] bytes remain application-owned.
    pub fn format(pool: Arc<PmPool>, mode: AllocMode) -> Arc<PmAllocator> {
        let layout = Layout::compute(pool.len());
        assert!(layout.n_chunks > 0, "pool too small for even one chunk");
        // Persist the header.
        pool.write_u64(ROOT_AREA, MAGIC);
        pool.write_u64(ROOT_AREA + 8, layout.n_chunks);
        pool.write_u64(ROOT_AREA + 16, layout.chunk_headers_off);
        pool.write_u64(ROOT_AREA + 24, layout.bitmaps_off);
        pool.write_u64(ROOT_AREA + 32, layout.heap_off);
        pool.persist(ROOT_AREA, 40);
        // Zero chunk headers, bitmaps and in-flight slots.
        for c in 0..layout.n_chunks {
            pool.write_u64(layout.chunk_headers_off + c * 8, 0);
            for w in 0..BITMAP_BYTES / 8 {
                pool.write_u64(layout.bitmaps_off + c * BITMAP_BYTES + w * 8, 0);
            }
        }
        for s in 0..INFLIGHT_SLOTS as u64 {
            let off = Self::inflight_off_static(s);
            pool.write_u64(off, 0);
            pool.write_u64(off + 8, 0);
            pool.write_u64(off + 16, 0);
        }
        pool.persist(
            layout.chunk_headers_off,
            (layout.bitmaps_off + layout.n_chunks * BITMAP_BYTES - layout.chunk_headers_off)
                as usize,
        );
        Self::build(pool, mode, layout, true).expect("format never replays in-flight slots")
    }

    /// Open a previously formatted pool after a (simulated) crash or
    /// clean shutdown: replays in-flight slots and rebuilds all volatile
    /// state from persistent metadata. Panics on a media error; use
    /// [`PmAllocator::try_recover`] to handle poisoned metadata.
    pub fn recover(pool: Arc<PmPool>, mode: AllocMode) -> Arc<PmAllocator> {
        Self::try_recover(pool, mode).unwrap_or_else(|e| panic!("allocator recovery failed: {e}"))
    }

    /// Fallible recovery: probes every persistent structure the
    /// allocator must interpret (header, in-flight slots, chunk headers,
    /// bitmaps, publication targets) for media errors before reading it,
    /// so a poisoned line surfaces as a reported [`MediaError`] instead
    /// of an emulated machine-check or silently consumed garbage.
    pub fn try_recover(pool: Arc<PmPool>, mode: AllocMode) -> Result<Arc<PmAllocator>, MediaError> {
        pool.check_readable(ROOT_AREA, 40)
            .map_err(|e| e.context("allocator header"))?;
        assert_eq!(pool.read_u64(ROOT_AREA), MAGIC, "pool is not formatted");
        let layout = Layout {
            n_chunks: pool.read_u64(ROOT_AREA + 8),
            chunk_headers_off: pool.read_u64(ROOT_AREA + 16),
            bitmaps_off: pool.read_u64(ROOT_AREA + 24),
            heap_off: pool.read_u64(ROOT_AREA + 32),
        };
        pool.check_readable(
            Self::inflight_off_static(0),
            INFLIGHT_SLOTS * INFLIGHT_SLOT_BYTES as usize,
        )
        .map_err(|e| e.context("allocator in-flight slots"))?;
        pool.check_readable(
            layout.chunk_headers_off,
            (layout.bitmaps_off + layout.n_chunks * BITMAP_BYTES - layout.chunk_headers_off)
                as usize,
        )
        .map_err(|e| e.context("allocator chunk metadata"))?;
        Self::build(pool, mode, layout, false)
    }

    fn build(
        pool: Arc<PmPool>,
        mode: AllocMode,
        layout: Layout,
        fresh: bool,
    ) -> Result<Arc<PmAllocator>, MediaError> {
        let n = layout.n_chunks as usize;
        let a = PmAllocator {
            classes: (0..NUM_CLASSES)
                .map(|_| Mutex::new(ClassState { avail: Vec::new() }))
                .collect(),
            free_chunks: Mutex::new(Vec::with_capacity(n)),
            free_counts: (0..n).map(|_| AtomicU32::new(0)).collect(),
            scan_hints: (0..n).map(|_| AtomicU32::new(0)).collect(),
            inflight_locks: (0..INFLIGHT_SLOTS).map(|_| Mutex::new(())).collect(),
            magazines: (0..INFLIGHT_SLOTS * NUM_CLASSES)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            allocs: AtomicU64::new(0),
            frees: AtomicU64::new(0),
            live_bytes: AtomicU64::new(0),
            pool,
            mode,
            layout,
        };
        if !fresh {
            a.replay_inflight()?;
        }
        a.rebuild_volatile(fresh);
        Ok(Arc::new(a))
    }

    /// Apply the recovery rule to every in-flight slot: a completed
    /// publication (dest points at the block) is kept, anything else is
    /// rolled back.
    fn replay_inflight(&self) -> Result<(), MediaError> {
        for s in 0..INFLIGHT_SLOTS as u64 {
            let off = Self::inflight_off_static(s);
            let block = self.pool.read_u64(off);
            if block == 0 {
                continue;
            }
            let dest = self.pool.read_u64(off + 8);
            let op = self.pool.read_u64(off + 16);
            // The publication target is an arbitrary application offset;
            // it may itself sit on a poisoned line.
            self.pool
                .check_readable(dest, 8)
                .map_err(|e| e.context("in-flight publication target"))?;
            let dest_val = self.pool.read_u64(dest);
            match op {
                OP_ALLOC => {
                    if dest_val != block {
                        // Publication did not complete: roll the
                        // allocation back (idempotent if the bit was
                        // never set).
                        self.clear_bit_persist(block);
                    }
                }
                OP_FREE => {
                    if dest_val == 0 {
                        // Unlink completed: finish the free.
                        self.clear_bit_persist(block);
                    }
                    // Otherwise the free never took effect; keep the block.
                }
                _ => panic!("corrupt in-flight slot op {op}"),
            }
            self.pool.write_u64(off, 0);
            self.pool.persist(off, 8);
        }
        Ok(())
    }

    /// Rebuild free lists, free counts and live-byte accounting by
    /// scanning persistent chunk headers and bitmaps.
    fn rebuild_volatile(&self, fresh: bool) {
        let mut free_chunks = self.free_chunks.lock();
        let mut live = 0u64;
        for c in 0..self.layout.n_chunks {
            let class_word = self.pool.read_u64(self.layout.chunk_headers_off + c * 8);
            if class_word == 0 {
                free_chunks.push(c as u32);
                continue;
            }
            let class = (class_word - 1) as usize;
            assert!(class < NUM_CLASSES, "corrupt chunk header");
            let nblocks = (CHUNK_SIZE / class_size(class)) as u32;
            let mut used = 0u32;
            if !fresh {
                for w in 0..(nblocks as u64).div_ceil(64) {
                    let bits = self
                        .pool
                        .read_u64(self.layout.bitmaps_off + c * BITMAP_BYTES + w * 8);
                    used += bits.count_ones();
                }
            }
            self.free_counts[c as usize].store(nblocks - used, Ordering::Relaxed);
            self.scan_hints[c as usize].store(0, Ordering::Relaxed);
            live += used as u64 * class_size(class) as u64;
            if used < nblocks {
                self.classes[class].lock().avail.push(c as u32);
            }
        }
        self.live_bytes.store(live, Ordering::Relaxed);
    }

    fn inflight_off_static(slot: u64) -> u64 {
        ROOT_AREA + 256 + slot * INFLIGHT_SLOT_BYTES
    }

    #[inline]
    fn bitmap_word_off(&self, chunk: u32, word: u64) -> u64 {
        self.layout.bitmaps_off + chunk as u64 * BITMAP_BYTES + word * 8
    }

    #[inline]
    fn block_off(&self, chunk: u32, class: usize, bit: u32) -> u64 {
        self.layout.heap_off
            + chunk as u64 * CHUNK_SIZE as u64
            + bit as u64 * class_size(class) as u64
    }

    /// Map a heap offset back to (chunk, class, bit).
    fn locate(&self, off: u64) -> (u32, usize, u32) {
        assert!(off >= self.layout.heap_off, "not a heap offset: {off:#x}");
        let rel = off - self.layout.heap_off;
        let chunk = (rel / CHUNK_SIZE as u64) as u32;
        assert!((chunk as u64) < self.layout.n_chunks, "offset past heap");
        let class_word = self
            .pool
            .read_u64(self.layout.chunk_headers_off + chunk as u64 * 8);
        assert!(class_word != 0, "free of block in unbound chunk");
        let class = (class_word - 1) as usize;
        let inner = rel % CHUNK_SIZE as u64;
        let bs = class_size(class) as u64;
        assert_eq!(inner % bs, 0, "free of misaligned block");
        (chunk, class, (inner / bs) as u32)
    }

    /// Set the allocation bit for `off` and persist the bitmap word.
    fn set_bit_persist(&self, chunk: u32, class: usize, bit: u32) {
        let word = self.bitmap_word_off(chunk, bit as u64 / 64);
        self.pool
            .fetch_or_u64(word, 1u64 << (bit % 64), Ordering::AcqRel);
        self.pool.persist(word, 8);
        self.live_bytes
            .fetch_add(class_size(class) as u64, Ordering::Relaxed);
    }

    /// Clear the allocation bit for heap offset `off` and persist.
    fn clear_bit_persist(&self, off: u64) {
        let (chunk, class, bit) = self.locate(off);
        let word = self.bitmap_word_off(chunk, bit as u64 / 64);
        let prev = self
            .pool
            .fetch_and_u64(word, !(1u64 << (bit % 64)), Ordering::AcqRel);
        self.pool.persist(word, 8);
        if prev & (1u64 << (bit % 64)) != 0 {
            self.live_bytes
                .fetch_sub(class_size(class) as u64, Ordering::Relaxed);
            let was = self.free_counts[chunk as usize].fetch_add(1, Ordering::Relaxed);
            if was == 0 {
                self.classes[class].lock().avail.push(chunk);
            }
        }
    }

    /// Grab a block from the shared per-class state. Sets and persists
    /// the bitmap bit.
    fn alloc_from_class(&self, class: usize) -> Result<u64, AllocError> {
        let nblocks = (CHUNK_SIZE / class_size(class)) as u32;
        let mut st = self.classes[class].lock();
        loop {
            let &chunk = match st.avail.last() {
                Some(c) => c,
                None => {
                    // Bind a fresh chunk to this class.
                    let c = self
                        .free_chunks
                        .lock()
                        .pop()
                        .ok_or(AllocError::OutOfMemory)?;
                    let hdr = self.layout.chunk_headers_off + c as u64 * 8;
                    self.pool.write_u64(hdr, class as u64 + 1);
                    self.pool.persist(hdr, 8);
                    self.free_counts[c as usize].store(nblocks, Ordering::Relaxed);
                    self.scan_hints[c as usize].store(0, Ordering::Relaxed);
                    st.avail.push(c);
                    st.avail.last().unwrap()
                }
            };
            // Scan the persistent bitmap from the hint for a zero bit.
            let hint = self.scan_hints[chunk as usize].load(Ordering::Relaxed);
            let mut found = None;
            for i in 0..nblocks {
                let bit = (hint + i) % nblocks;
                let word = self.bitmap_word_off(chunk, bit as u64 / 64);
                let bits = self.pool.read_u64(word);
                if bits & (1u64 << (bit % 64)) == 0 {
                    found = Some(bit);
                    break;
                }
            }
            match found {
                Some(bit) => {
                    self.set_bit_persist(chunk, class, bit);
                    self.free_counts[chunk as usize].fetch_sub(1, Ordering::Relaxed);
                    self.scan_hints[chunk as usize].store((bit + 1) % nblocks, Ordering::Relaxed);
                    if self.free_counts[chunk as usize].load(Ordering::Relaxed) == 0 {
                        st.avail.pop();
                    }
                    return Ok(self.block_off(chunk, class, bit));
                }
                None => {
                    // Chunk actually full (stale availability info).
                    self.free_counts[chunk as usize].store(0, Ordering::Relaxed);
                    st.avail.pop();
                }
            }
        }
    }

    /// Allocate `size` bytes, returning the pool offset of the block.
    ///
    /// The block is marked allocated in persistent metadata, but the
    /// *caller* is responsible for making it reachable before a crash,
    /// or it will leak (see [`PmAllocator::alloc_linked`]).
    pub fn alloc(&self, size: usize) -> Result<u64, AllocError> {
        let _site = obs::site("pmalloc_alloc");
        let class = class_for_size(size).ok_or(AllocError::TooLarge(size))?;
        self.allocs.fetch_add(1, Ordering::Relaxed);
        let off = match self.mode {
            AllocMode::General => self.alloc_from_class(class)?,
            AllocMode::Striped => {
                let stripe = stripe_of_thread();
                let mag = &self.magazines[stripe * NUM_CLASSES + class];
                // Bind the pop so the guard drops here: `match
                // mag.lock().pop()` would keep the magazine locked
                // through the refill arm, which locks it again.
                let popped = mag.lock().pop();
                match popped {
                    Some(off) => off,
                    None => {
                        // Refill: move a batch into the magazine, return one.
                        let mut batch = Vec::with_capacity(MAGAZINE_CAP / 2);
                        for _ in 0..MAGAZINE_CAP / 2 {
                            match self.alloc_from_class(class) {
                                Ok(off) => batch.push(off),
                                Err(e) if batch.is_empty() => return Err(e),
                                Err(_) => break,
                            }
                        }
                        let first = batch.pop().expect("batch non-empty");
                        mag.lock().extend(batch);
                        first
                    }
                }
            }
        };
        // A crash can leave a *free* block's lines poisoned. Like a real
        // allocator consulting the bad-block list, re-initialize the
        // block before handing it out: the old contents are dead anyway.
        self.pool.scrub_poison(off, class_size(class));
        Ok(off)
    }

    /// Allocate `size` bytes zeroed (zeroes are written but not flushed;
    /// persist them with the rest of your initialization).
    pub fn alloc_zeroed(&self, size: usize) -> Result<u64, AllocError> {
        let off = self.alloc(size)?;
        let class = class_for_size(size).expect("checked by alloc");
        static ZEROS: [u8; 32768] = [0; 32768];
        self.pool.write_bytes(off, &ZEROS[..class_size(class)]);
        Ok(off)
    }

    /// Atomically allocate and publish: on success, the 8-byte word at
    /// `dest` holds the new block's offset, durably. A crash at any
    /// point either completes the publication or frees the block on
    /// recovery — no leak, no dangling pointer.
    pub fn alloc_linked(&self, size: usize, dest: u64) -> Result<u64, AllocError> {
        let _site = obs::site("pmalloc_alloc_linked");
        let stripe = stripe_of_thread();
        let _guard = self.inflight_locks[stripe].lock();
        let slot = Self::inflight_off_static(stripe as u64);
        // Record intent before the allocation becomes visible in the
        // bitmap so recovery can always roll back.
        // (For Striped mode the bit may long be set; rollback then
        // simply returns the block to the free pool, which is correct.)
        let off = self.alloc(size)?;
        self.pool.write_u64(slot + 8, dest);
        self.pool.write_u64(slot + 16, OP_ALLOC);
        self.pool.write_u64(slot, off);
        self.pool.persist(slot, 24);
        // Publish.
        self.pool.write_u64(dest, off);
        self.pool.persist(dest, 8);
        // Retire the slot.
        self.pool.write_u64(slot, 0);
        self.pool.persist(slot, 8);
        Ok(off)
    }

    /// Atomically unlink and free the block whose offset is stored at
    /// `dest`: after recovery, either `dest` still holds the block and
    /// it remains allocated, or `dest` is zero and the block is free.
    pub fn free_linked(&self, dest: u64) {
        let _site = obs::site("pmalloc_free_linked");
        let stripe = stripe_of_thread();
        let _guard = self.inflight_locks[stripe].lock();
        let block = self.pool.read_u64(dest);
        assert!(block != 0, "free_linked of null link");
        let slot = Self::inflight_off_static(stripe as u64);
        self.pool.write_u64(slot + 8, dest);
        self.pool.write_u64(slot + 16, OP_FREE);
        self.pool.write_u64(slot, block);
        self.pool.persist(slot, 24);
        self.pool.write_u64(dest, 0);
        self.pool.persist(dest, 8);
        self.free(block);
        self.pool.write_u64(slot, 0);
        self.pool.persist(slot, 8);
    }

    /// Return a block to the allocator.
    pub fn free(&self, off: u64) {
        let _site = obs::site("pmalloc_free");
        self.frees.fetch_add(1, Ordering::Relaxed);
        match self.mode {
            AllocMode::General => self.clear_bit_persist(off),
            AllocMode::Striped => {
                let (_, class, _) = self.locate(off);
                let stripe = stripe_of_thread();
                let mag = &self.magazines[stripe * NUM_CLASSES + class];
                let mut m = mag.lock();
                m.push(off);
                if m.len() > MAGAZINE_CAP {
                    // Drain half back to the shared state.
                    let drain: Vec<u64> = m.drain(..MAGAZINE_CAP / 2).collect();
                    drop(m);
                    for b in drain {
                        self.clear_bit_persist(b);
                    }
                }
            }
        }
    }

    /// Whether `off` is a currently allocated block (tolerant: returns
    /// `false` for offsets outside the heap or in unbound chunks).
    /// Used by index recovery code to make rollback idempotent.
    pub fn is_allocated(&self, off: u64) -> bool {
        if off < self.layout.heap_off {
            return false;
        }
        let rel = off - self.layout.heap_off;
        let chunk = rel / CHUNK_SIZE as u64;
        if chunk >= self.layout.n_chunks {
            return false;
        }
        let class_word = self
            .pool
            .read_u64(self.layout.chunk_headers_off + chunk * 8);
        if class_word == 0 {
            return false;
        }
        let class = (class_word - 1) as usize;
        let bs = class_size(class) as u64;
        let inner = rel % CHUNK_SIZE as u64;
        if !inner.is_multiple_of(bs) {
            return false;
        }
        let bit = inner / bs;
        let bits = self
            .pool
            .read_u64(self.bitmap_word_off(chunk as u32, bit / 64));
        bits & (1u64 << (bit % 64)) != 0
    }

    /// Enumerate every currently allocated block offset. Used by index
    /// recovery to garbage-collect blocks that a crash made unreachable
    /// (e.g. a node replaced by a split whose free never persisted).
    pub fn for_each_allocated(&self, mut f: impl FnMut(u64)) {
        for c in 0..self.layout.n_chunks {
            let class_word = self.pool.read_u64(self.layout.chunk_headers_off + c * 8);
            if class_word == 0 {
                continue;
            }
            let class = (class_word - 1) as usize;
            let nblocks = (CHUNK_SIZE / class_size(class)) as u64;
            for w in 0..nblocks.div_ceil(64) {
                let mut bits = self.pool.read_u64(self.bitmap_word_off(c as u32, w));
                if w == nblocks / 64 && !nblocks.is_multiple_of(64) {
                    bits &= (1u64 << (nblocks % 64)) - 1;
                }
                while bits != 0 {
                    let bit = (w * 64 + bits.trailing_zeros() as u64) as u32;
                    bits &= bits - 1;
                    f(self.block_off(c as u32, class, bit));
                }
            }
        }
    }

    /// Allocator statistics.
    pub fn stats(&self) -> AllocStats {
        let magazine_bytes: u64 = self
            .magazines
            .iter()
            .enumerate()
            .map(|(i, m)| m.lock().len() as u64 * class_size(i % NUM_CLASSES) as u64)
            .sum();
        let bound = (0..self.layout.n_chunks)
            .filter(|&c| self.pool.read_u64(self.layout.chunk_headers_off + c * 8) != 0)
            .count() as u64;
        AllocStats {
            allocs: self.allocs.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            live_bytes: self.live_bytes.load(Ordering::Relaxed),
            magazine_bytes,
            bound_chunks: bound,
            total_chunks: self.layout.n_chunks,
        }
    }

    /// Bytes that would leak if the process crashed right now (blocks
    /// held in volatile magazines).
    pub fn leaked_bytes_estimate(&self) -> u64 {
        self.stats().magazine_bytes
    }

    /// Bytes currently marked allocated (the index's PM footprint plus
    /// magazine stock).
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes.load(Ordering::Relaxed)
    }

    /// The pool this allocator manages.
    pub fn pool(&self) -> &Arc<PmPool> {
        &self.pool
    }

    /// Largest allocatable size.
    pub fn max_alloc_size(&self) -> usize {
        *CLASS_SIZES.last().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmConfig;

    fn fresh(len: usize, mode: AllocMode) -> Arc<PmAllocator> {
        PmAllocator::format(Arc::new(PmPool::new(len, PmConfig::real())), mode)
    }

    #[test]
    fn alloc_free_roundtrip() {
        let a = fresh(1 << 20, AllocMode::General);
        let x = a.alloc(64).unwrap();
        let y = a.alloc(64).unwrap();
        assert_ne!(x, y);
        assert_eq!(x % 64, 0);
        a.free(x);
        let z = a.alloc(64).unwrap();
        // Freed block is reusable (not necessarily immediately the same).
        a.free(y);
        a.free(z);
        assert_eq!(a.live_bytes(), 0);
    }

    #[test]
    fn distinct_blocks_until_oom() {
        let a = fresh(512 * 1024, AllocMode::General);
        let mut seen = std::collections::HashSet::new();
        let mut n = 0u64;
        loop {
            match a.alloc(256) {
                Ok(off) => {
                    assert!(seen.insert(off), "double allocation of {off:#x}");
                    n += 1;
                }
                Err(AllocError::OutOfMemory) => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert!(n > 100, "expected many blocks, got {n}");
    }

    #[test]
    fn too_large_is_rejected() {
        let a = fresh(1 << 20, AllocMode::General);
        assert_eq!(a.alloc(40_000), Err(AllocError::TooLarge(40_000)));
    }

    #[test]
    fn zeroed_allocation() {
        let a = fresh(1 << 20, AllocMode::General);
        let off = a.alloc(128).unwrap();
        a.pool().write_bytes(off, &[0xAB; 128]);
        a.free(off);
        let off2 = a.alloc_zeroed(128).unwrap();
        let mut buf = [0u8; 128];
        a.pool().read_bytes(off2, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn recovery_preserves_allocations() {
        let pool = Arc::new(PmPool::new(1 << 20, PmConfig::real()));
        let a = PmAllocator::format(pool.clone(), AllocMode::General);
        let x = a.alloc(1024).unwrap();
        let y = a.alloc(1024).unwrap();
        a.free(y);
        let live_before = a.live_bytes();
        drop(a);
        pool.crash();
        let a2 = PmAllocator::recover(pool, AllocMode::General);
        assert_eq!(a2.live_bytes(), live_before);
        // x must not be handed out again.
        let mut got = Vec::new();
        for _ in 0..10 {
            got.push(a2.alloc(1024).unwrap());
        }
        assert!(!got.contains(&x));
    }

    #[test]
    fn alloc_linked_publishes_durably() {
        let pool = Arc::new(PmPool::new(1 << 20, PmConfig::real()));
        let a = PmAllocator::format(pool.clone(), AllocMode::General);
        let dest = 64; // root-area slot 8
        let off = a.alloc_linked(256, dest).unwrap();
        drop(a);
        pool.crash();
        let a2 = PmAllocator::recover(pool.clone(), AllocMode::General);
        assert_eq!(pool.read_u64(dest), off, "publication must survive crash");
        let live = a2.live_bytes();
        assert_eq!(live, 256);
    }

    #[test]
    fn free_linked_is_atomic() {
        let pool = Arc::new(PmPool::new(1 << 20, PmConfig::real()));
        let a = PmAllocator::format(pool.clone(), AllocMode::General);
        let dest = 64;
        a.alloc_linked(256, dest).unwrap();
        a.free_linked(dest);
        assert_eq!(pool.read_u64(dest), 0);
        assert_eq!(a.live_bytes(), 0);
        drop(a);
        pool.crash();
        let a2 = PmAllocator::recover(pool.clone(), AllocMode::General);
        assert_eq!(a2.live_bytes(), 0);
        assert_eq!(pool.read_u64(dest), 0);
    }

    #[test]
    fn unpublished_alloc_rolls_back_on_recovery() {
        // Simulate a crash between allocation and publication: do a bare
        // alloc (bitmap persisted), never link it, crash.
        let pool = Arc::new(PmPool::new(1 << 20, PmConfig::real()));
        let a = PmAllocator::format(pool.clone(), AllocMode::General);
        let _leak = a.alloc(256).unwrap();
        drop(a);
        pool.crash();
        let a2 = PmAllocator::recover(pool, AllocMode::General);
        // The bare alloc leaks (that's the point alloc_linked exists).
        assert_eq!(a2.live_bytes(), 256);
    }

    #[test]
    fn striped_mode_reuses_magazines() {
        let a = fresh(1 << 20, AllocMode::Striped);
        let x = a.alloc(64).unwrap();
        a.free(x);
        let y = a.alloc(64).unwrap();
        assert_eq!(x, y, "magazine should return the hot block");
        assert!(a.leaked_bytes_estimate() > 0, "refill stocked the magazine");
    }

    #[test]
    fn striped_magazine_drains_back() {
        let a = fresh(1 << 20, AllocMode::Striped);
        let blocks: Vec<u64> = (0..MAGAZINE_CAP * 2)
            .map(|_| a.alloc(64).unwrap())
            .collect();
        for b in blocks {
            a.free(b);
        }
        let s = a.stats();
        assert!(
            s.magazine_bytes <= (MAGAZINE_CAP as u64 + 1) * 64,
            "magazine over capacity: {}",
            s.magazine_bytes
        );
    }

    #[test]
    fn concurrent_allocs_are_disjoint() {
        let a = fresh(8 << 20, AllocMode::Striped);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let a = a.clone();
            handles.push(std::thread::spawn(move || {
                (0..500).map(|_| a.alloc(128).unwrap()).collect::<Vec<_>>()
            }));
        }
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate blocks handed out concurrently");
    }

    #[test]
    fn class_binding_is_persistent() {
        let pool = Arc::new(PmPool::new(1 << 20, PmConfig::real()));
        let a = PmAllocator::format(pool.clone(), AllocMode::General);
        let x = a.alloc(4096).unwrap();
        drop(a);
        pool.crash();
        let a2 = PmAllocator::recover(pool, AllocMode::General);
        // Freeing x after recovery must find the right class.
        a2.free(x);
        assert_eq!(a2.live_bytes(), 0);
    }

    #[test]
    fn for_each_allocated_enumerates_exactly_live_blocks() {
        let a = fresh(1 << 20, AllocMode::General);
        let mut live: Vec<u64> = (0..20).map(|_| a.alloc(128).unwrap()).collect();
        let dead = live.split_off(10);
        for b in dead {
            a.free(b);
        }
        let mut seen = Vec::new();
        a.for_each_allocated(|off| seen.push(off));
        seen.sort_unstable();
        live.sort_unstable();
        assert_eq!(seen, live);
    }

    #[test]
    fn is_allocated_tracks_alloc_free() {
        let a = fresh(1 << 20, AllocMode::General);
        assert!(!a.is_allocated(0));
        assert!(!a.is_allocated(a.layout.heap_off));
        let x = a.alloc(64).unwrap();
        assert!(a.is_allocated(x));
        a.free(x);
        assert!(!a.is_allocated(x));
    }

    #[test]
    fn recovery_across_alloc_modes() {
        // A pool formatted in Striped mode must recover in General mode
        // (the mode is volatile policy, not persistent state).
        let pool = Arc::new(PmPool::new(1 << 20, PmConfig::real()));
        let a = PmAllocator::format(pool.clone(), AllocMode::Striped);
        let kept = a.alloc_linked(512, 64).unwrap();
        drop(a);
        pool.crash();
        let a2 = PmAllocator::recover(pool.clone(), AllocMode::General);
        assert!(a2.is_allocated(kept));
        assert_eq!(pool.read_u64(64), kept);
    }

    #[test]
    fn alloc_zeroed_every_class() {
        let a = fresh(8 << 20, AllocMode::General);
        for &size in crate::classes::CLASS_SIZES.iter() {
            let off = a.alloc_zeroed(size).unwrap();
            let mut buf = vec![1u8; size.min(512)];
            a.pool().read_bytes(off, &mut buf);
            assert!(buf.iter().all(|&b| b == 0), "class {size} not zeroed");
        }
    }

    #[test]
    fn alignment_of_large_classes() {
        let a = fresh(4 << 20, AllocMode::General);
        for _ in 0..16 {
            let off = a.alloc(256).unwrap();
            assert_eq!(off % 256, 0, "256-byte class must be 256-aligned");
        }
        let off = a.alloc(4096).unwrap();
        assert_eq!(off % 4096 % 256, 0);
    }
}
