//! Size classes.
//!
//! Classes from 16 bytes to 32 KiB: powers of two below 256 bytes, then
//! multiples of 256 bytes (jemalloc-style spacing) so that every class
//! of at least one media block stays 256-byte aligned — the alignment
//! the evaluated indexes want for their nodes. Index nodes are at most
//! a few KiB, so this range is sufficient; anything larger is an error
//! rather than a silent fallback.

/// Block sizes of each class, in bytes.
pub const CLASS_SIZES: [usize; 17] = [
    16, 32, 64, 128, 256, 512, 768, 1024, 1280, 1536, 2048, 2560, 3072, 4096, 8192, 16384, 32768,
];

/// Number of size classes.
pub const NUM_CLASSES: usize = CLASS_SIZES.len();

/// Smallest class covering `size`, or `None` if too large.
#[inline]
pub fn class_for_size(size: usize) -> Option<usize> {
    CLASS_SIZES.iter().position(|&c| c >= size)
}

/// Block size of class `class`.
#[inline]
pub fn class_size(class: usize) -> usize {
    CLASS_SIZES[class]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_selection() {
        assert_eq!(class_for_size(1), Some(0));
        assert_eq!(class_for_size(16), Some(0));
        assert_eq!(class_for_size(17), Some(1));
        assert_eq!(class_for_size(256), Some(4));
        assert_eq!(class_for_size(257), Some(5));
        assert_eq!(class_for_size(1112), Some(8)); // FPTree 64-entry leaf
        assert_eq!(class_for_size(32768), Some(16));
        assert_eq!(class_for_size(32769), None);
    }

    #[test]
    fn classes_are_sorted_and_aligned() {
        for w in CLASS_SIZES.windows(2) {
            assert!(w[0] < w[1]);
        }
        for &c in &CLASS_SIZES {
            // Below a media block: power of two (divides 256 evenly).
            // At or above: multiple of 256 so blocks stay 256-aligned.
            if c < 256 {
                assert!(c.is_power_of_two());
            } else {
                assert_eq!(c % 256, 0);
            }
        }
    }
}
