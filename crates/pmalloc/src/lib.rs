//! # pmalloc — a persistent-memory allocator
//!
//! A from-scratch stand-in for PMDK's `libpmemobj` allocator, sized for
//! the needs of persistent range indexes and for the paper's allocator
//! experiments:
//!
//! * **Persistent metadata.** The heap is carved into fixed-size chunks;
//!   each chunk is bound to one size class and tracks its blocks in a
//!   persistent bitmap. After a crash, [`PmAllocator::recover`] rebuilds
//!   all volatile state from chunk headers and bitmaps alone.
//! * **Atomic allocate-and-publish.** A bare `alloc` followed by linking
//!   the block into a data structure leaves a crash window that leaks
//!   PM. [`PmAllocator::alloc_linked`] closes it with a per-slot
//!   in-flight record (a miniature redo log), the same pattern as
//!   PMDK's reserve/publish: recovery either completes the publication
//!   or rolls the allocation back.
//! * **Two allocation modes** for the paper's allocator ablation (E10):
//!   [`AllocMode::General`] funnels every request through the shared
//!   per-class state (PMDK-like), while [`AllocMode::Striped`] adds
//!   magazine caches striped across threads (the "customized slab"
//!   design FPTree and ROART resort to). Magazine-cached blocks are
//!   volatile; a crash leaks them until the next format, which mirrors
//!   the real trade-off those designs make and is reported by
//!   [`PmAllocator::leaked_bytes_estimate`].
//!
//! The allocator deliberately pays its metadata maintenance *through the
//! emulated PM device* (persistent bitmap updates are flushed and
//! fenced), so with the latency model enabled, allocation is expensive —
//! reproducing the paper's finding that PM allocation is a first-order
//! bottleneck for index inserts.

mod allocator;
mod classes;

pub use allocator::{AllocMode, AllocStats, PmAllocator};
pub use classes::{class_for_size, class_size, NUM_CLASSES};

/// Errors returned by allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The pool has no free chunk/block able to satisfy the request.
    OutOfMemory,
    /// Requested size exceeds the largest supported size class.
    TooLarge(usize),
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory => write!(f, "persistent pool exhausted"),
            AllocError::TooLarge(s) => write!(f, "allocation of {s} bytes exceeds max class"),
        }
    }
}

impl std::error::Error for AllocError {}
