//! Pool configuration.

use crate::latency::LatencyModel;

/// How persistence instructions behave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistenceMode {
    /// Full emulation: `clwb`/`ntstore` copy data into the persisted
    /// image, fences order and count, crashes discard unflushed data.
    Real,
    /// Persistence instructions are no-ops (beyond being counted). This
    /// turns the pool into plain DRAM and is used by the "PM index on
    /// DRAM" experiment (E13). Crash simulation is not meaningful in
    /// this mode.
    Elided,
}

/// Configuration for a [`crate::PmPool`].
#[derive(Debug, Clone)]
pub struct PmConfig {
    /// Persistence behaviour, see [`PersistenceMode`].
    pub persistence: PersistenceMode,
    /// Latency charged per media access; `LatencyModel::off()` by default
    /// so unit tests run at full speed.
    pub latency: LatencyModel,
    /// When `Some(seed)`, every unflushed store is immediately persisted
    /// with probability 1/4, deterministically derived from the seed,
    /// the offset and a per-pool counter. This models spontaneous cache
    /// evictions: correct recovery code must tolerate unflushed data
    /// both reaching and not reaching the media.
    pub eviction_chaos: Option<u64>,
}

impl Default for PmConfig {
    fn default() -> Self {
        Self {
            persistence: PersistenceMode::Real,
            latency: LatencyModel::off(),
            eviction_chaos: None,
        }
    }
}

impl PmConfig {
    /// Full emulation with latency disabled (the default).
    pub fn real() -> Self {
        Self::default()
    }

    /// DRAM mode: persistence elided, no latency.
    pub fn dram() -> Self {
        Self {
            persistence: PersistenceMode::Elided,
            ..Self::default()
        }
    }

    /// Full emulation with the calibrated Optane-like latency model —
    /// what the benchmark harness uses.
    pub fn optane_like() -> Self {
        Self {
            latency: LatencyModel::optane_like(),
            ..Self::default()
        }
    }

    /// Enable eviction chaos with the given seed (crash tests).
    pub fn with_eviction_chaos(mut self, seed: u64) -> Self {
        self.eviction_chaos = Some(seed);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_real_without_latency() {
        let c = PmConfig::default();
        assert_eq!(c.persistence, PersistenceMode::Real);
        assert!(!c.latency.enabled());
        assert!(c.eviction_chaos.is_none());
    }

    #[test]
    fn dram_mode_elides_persistence() {
        assert_eq!(PmConfig::dram().persistence, PersistenceMode::Elided);
    }

    #[test]
    fn optane_like_enables_latency() {
        assert!(PmConfig::optane_like().latency.enabled());
    }
}
