//! Crash-point injection: power failure at the N-th persistence event,
//! with a configurable post-crash residual image and media errors.
//!
//! The emulator's [`crate::PmPool::crash`] models power loss *between*
//! operations; the interleavings that actually break PM indexes are the
//! ones *inside* an operation, between one `clwb`/`sfence` and the
//! next (RECIPE, SOSP 2019). This module provides the machinery to
//! explore those windows:
//!
//! * [`crate::PmPool::arm_crash_after`]`(n)` arms the pool so the n-th
//!   subsequent *persistence event* — a [`crate::PmPool::clwb`],
//!   [`crate::PmPool::ntstore_u64`] or [`crate::PmPool::sfence`] call —
//!   does **not** take effect. Instead the pool freezes its persisted
//!   image (as if power was cut just before the instruction retired)
//!   and unwinds out of the in-flight operation by panicking with a
//!   [`CrashPointHit`] payload.
//! * The harness catches the unwind (`std::panic::catch_unwind`),
//!   drops the index and allocator front-ends, calls
//!   [`crate::PmPool::crash`] to discard the volatile image, and runs
//!   recovery exactly as it would after a real power cycle.
//! * While frozen, every later persistence primitive is a no-op and
//!   eviction chaos is disabled, so destructors and deferred frees that
//!   run during unwinding cannot retroactively persist anything.
//!
//! Arming also snapshots a pmemcheck-style **durability audit** at the
//! moment of the crash: how many dirty (written but unflushed) words
//! and cache lines existed, and how many redundant flushes (a `clwb`
//! covering only already-clean lines) had been issued.
//!
//! Event counting is exact only when one thread drives the pool, which
//! is what a deterministic boundary sweep needs. Multi-threaded crash
//! runs use [`crate::PmPool::set_halt_on_crash`]: once the armed crash
//! fires, every other thread's next PM access unwinds with
//! [`CrashPointHit`] too — the device is gone, so no thread can keep
//! executing (and in particular no thread can spin forever on a lock
//! word the dead thread left set).
//!
//! # The residual image
//!
//! The frozen persisted image is only one of the legal post-crash
//! states. Real PM promises nothing stronger than *8-byte failure
//! atomicity*: at power loss, any subset of the dirty (written but
//! unflushed) cache lines may have been evicted to media, so a
//! multi-line structure can land torn, with each of its lines
//! independently present or absent. [`ResidualPolicy`] describes how to
//! pick that subset: keep the frozen image, sample each dirty line with
//! a seeded probability, or enumerate an explicit subset mask (the
//! exhaustive 2^k mode for small dirty sets). The candidate set — every
//! dirty line with its CPU contents — is captured at the instant the
//! crash fires, before unwinding code can dirty anything else.
//!
//! # Media errors
//!
//! A power cut mid-write can also leave a cache line *unreadable*: the
//! media reports poison (a machine-check on real hardware) instead of
//! data. [`crate::PmPool::poison_line`] models that. Reads of a
//! poisoned line panic with [`PoisonedRead`] (the emulator's MCE);
//! recovery code is expected to probe with
//! [`crate::PmPool::check_readable`] first and turn the [`MediaError`]
//! into a graceful "rebuild or report" path instead of ever surfacing
//! garbage.

/// Panic payload used by crash-point injection.
///
/// Harness code should `catch_unwind` and downcast the payload to this
/// type; any other payload is a genuine panic and must be propagated
/// with `std::panic::resume_unwind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPointHit;

/// Which primitive tripped the injected crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistEventKind {
    /// A cache-line write-back ([`crate::PmPool::clwb`]).
    Clwb,
    /// A non-temporal store ([`crate::PmPool::ntstore_u64`]).
    Ntstore,
    /// A store fence ([`crate::PmPool::sfence`]).
    Sfence,
}

impl std::fmt::Display for PersistEventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PersistEventKind::Clwb => "clwb",
            PersistEventKind::Ntstore => "ntstore",
            PersistEventKind::Sfence => "sfence",
        })
    }
}

/// Durability audit captured at the instant an injected crash fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashReport {
    /// Global persistence-event index (since pool creation) at which
    /// the crash fired; the event itself did not take effect.
    pub event_index: u64,
    /// The primitive that would have been the `event_index`-th event.
    pub trigger: PersistEventKind,
    /// Written-but-unflushed 8-byte words at crash time (lost data).
    pub dirty_words: u64,
    /// Cache lines containing at least one dirty word at crash time.
    pub dirty_lines: u64,
    /// Cumulative count of redundant flushes (a `clwb` whose covered
    /// lines were all already clean) up to the crash.
    pub redundant_clwb: u64,
}

/// One dirty cache line captured at a crash: the candidate unit of
/// residual-image sampling (lines persist or vanish independently;
/// words within a line are never torn).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidualLine {
    /// Cache-line-aligned pool offset.
    pub off: u64,
    /// The line's CPU-image contents at the instant of the crash.
    pub words: [u64; 8],
}

/// SplitMix64: the workspace's standard seeded mixer.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How the post-crash media image is constructed from the dirty lines
/// captured at the crash instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResidualPolicy {
    /// Deterministic: exactly the flushed data survives (the PR 1
    /// model — the most pessimistic legal execution).
    Frozen,
    /// Each dirty line survives independently with probability
    /// `p_per_256 / 256`, drawn from a SplitMix64 stream seeded with
    /// `seed`. The same `(seed, candidate set)` always yields the same
    /// subset, so any failure is replayable from its seed.
    Sampled {
        /// RNG seed (print it on failure; it is the whole repro).
        seed: u64,
        /// Survival probability numerator out of 256 (128 = 50 %).
        p_per_256: u32,
    },
    /// Explicit subset: candidate line `i` survives iff bit `i` of
    /// `mask` is set. Candidates are ordered most-recently-written
    /// first, so enumerating `0..2^j` masks visits every residual image
    /// of the `j`-line write frontier; with `k <= 64` total dirty lines
    /// and `j = k` the whole torn-write space is covered.
    Subset {
        /// Survival bitmask over the recency-ordered candidates.
        mask: u64,
    },
}

impl ResidualPolicy {
    /// Decide, per candidate line, whether it survives the crash.
    pub fn select(&self, n_candidates: usize) -> Vec<bool> {
        match *self {
            ResidualPolicy::Frozen => vec![false; n_candidates],
            ResidualPolicy::Sampled { seed, p_per_256 } => (0..n_candidates as u64)
                .map(|i| (splitmix64(seed ^ splitmix64(i)) & 0xFF) < p_per_256 as u64)
                .collect(),
            ResidualPolicy::Subset { mask } => (0..n_candidates)
                .map(|i| i < 64 && (mask >> i) & 1 == 1)
                .collect(),
        }
    }
}

/// Panic payload raised when a load touches a poisoned cache line —
/// the emulator's equivalent of the machine-check exception real PM
/// raises on consuming poisoned data. Recovery code must never let
/// this escape: probe with [`crate::PmPool::check_readable`] first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoisonedRead {
    /// Cache-line-aligned offset of the poisoned line.
    pub off: u64,
}

/// A detected media error: the byte range a recovery path asked about
/// contains an unreadable (poisoned) line. This is the graceful,
/// report-don't-crash counterpart of [`PoisonedRead`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MediaError {
    /// Cache-line-aligned offset of the first poisoned line found.
    pub off: u64,
    /// What the reader was trying to interpret (for diagnostics).
    pub context: &'static str,
}

impl MediaError {
    /// Attach a more specific context label ("fptree leaf", …).
    pub fn context(mut self, what: &'static str) -> Self {
        self.context = what;
        self
    }
}

impl std::fmt::Display for MediaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "media error: poisoned line at {:#x} while reading {}",
            self.off, self.context
        )
    }
}

impl std::error::Error for MediaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_kind_display() {
        assert_eq!(PersistEventKind::Clwb.to_string(), "clwb");
        assert_eq!(PersistEventKind::Ntstore.to_string(), "ntstore");
        assert_eq!(PersistEventKind::Sfence.to_string(), "sfence");
    }
}
