//! Crash-point injection: deterministic power failure at the N-th
//! persistence event.
//!
//! The emulator's [`crate::PmPool::crash`] models power loss *between*
//! operations; the interleavings that actually break PM indexes are the
//! ones *inside* an operation, between one `clwb`/`sfence` and the
//! next (RECIPE, SOSP 2019). This module provides the machinery to
//! explore those windows:
//!
//! * [`crate::PmPool::arm_crash_after`]`(n)` arms the pool so the n-th
//!   subsequent *persistence event* — a [`crate::PmPool::clwb`],
//!   [`crate::PmPool::ntstore_u64`] or [`crate::PmPool::sfence`] call —
//!   does **not** take effect. Instead the pool freezes its persisted
//!   image (as if power was cut just before the instruction retired)
//!   and unwinds out of the in-flight operation by panicking with a
//!   [`CrashPointHit`] payload.
//! * The harness catches the unwind (`std::panic::catch_unwind`),
//!   drops the index and allocator front-ends, calls
//!   [`crate::PmPool::crash`] to discard the volatile image, and runs
//!   recovery exactly as it would after a real power cycle.
//! * While frozen, every later persistence primitive is a no-op and
//!   eviction chaos is disabled, so destructors and deferred frees that
//!   run during unwinding cannot retroactively persist anything.
//!
//! Arming also snapshots a pmemcheck-style **durability audit** at the
//! moment of the crash: how many dirty (written but unflushed) words
//! and cache lines existed, and how many redundant flushes (a `clwb`
//! covering only already-clean lines) had been issued.
//!
//! The whole facility is designed for single-threaded exploration
//! runs: event counting is exact only when one thread drives the pool,
//! which is what a deterministic boundary sweep needs anyway.

/// Panic payload used by crash-point injection.
///
/// Harness code should `catch_unwind` and downcast the payload to this
/// type; any other payload is a genuine panic and must be propagated
/// with `std::panic::resume_unwind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPointHit;

/// Which primitive tripped the injected crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistEventKind {
    /// A cache-line write-back ([`crate::PmPool::clwb`]).
    Clwb,
    /// A non-temporal store ([`crate::PmPool::ntstore_u64`]).
    Ntstore,
    /// A store fence ([`crate::PmPool::sfence`]).
    Sfence,
}

impl std::fmt::Display for PersistEventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PersistEventKind::Clwb => "clwb",
            PersistEventKind::Ntstore => "ntstore",
            PersistEventKind::Sfence => "sfence",
        })
    }
}

/// Durability audit captured at the instant an injected crash fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashReport {
    /// Global persistence-event index (since pool creation) at which
    /// the crash fired; the event itself did not take effect.
    pub event_index: u64,
    /// The primitive that would have been the `event_index`-th event.
    pub trigger: PersistEventKind,
    /// Written-but-unflushed 8-byte words at crash time (lost data).
    pub dirty_words: u64,
    /// Cache lines containing at least one dirty word at crash time.
    pub dirty_lines: u64,
    /// Cumulative count of redundant flushes (a `clwb` whose covered
    /// lines were all already clean) up to the crash.
    pub redundant_clwb: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_kind_display() {
        assert_eq!(PersistEventKind::Clwb.to_string(), "clwb");
        assert_eq!(PersistEventKind::Ntstore.to_string(), "ntstore");
        assert_eq!(PersistEventKind::Sfence.to_string(), "sfence");
    }
}
