//! Calibrated latency injection.
//!
//! Real Optane DCPMM sits between DRAM and flash: ~300 ns random-read
//! latency, writes complete into the ADR domain quickly but are
//! bandwidth-bound at the media, and sequential access is noticeably
//! cheaper than random access. The emulator cannot reproduce absolute
//! numbers, but it can reproduce the *ordering* of costs (PM read >
//! DRAM read, PM flush > plain store, random > sequential) which is
//! what determines the shape of every figure in the paper.
//!
//! Latency is charged by busy-waiting; the penalties are per 256-byte
//! media block touched, so a 64-byte access and a 256-byte access cost
//! the same, exactly like DCPMM's internal granularity.

use std::time::{Duration, Instant};

/// Per-media-block latency penalties, in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Charged per media block on a load that misses the (modelled)
    /// CPU cache, i.e. on every counted PM read.
    pub read_ns: u32,
    /// Charged per media block written back by `clwb`/`clflushopt`
    /// at the next fence, or by `ntstore`.
    pub write_ns: u32,
    /// Multiplier numerator applied when an access hits the same media
    /// block as the previous access from the same thread (sequential
    /// pattern); the charged cost is `ns * seq_discount_pct / 100`.
    pub seq_discount_pct: u32,
}

impl LatencyModel {
    /// No latency injection (unit tests, functional runs).
    pub const fn off() -> Self {
        Self {
            read_ns: 0,
            write_ns: 0,
            seq_discount_pct: 100,
        }
    }

    /// Rough Optane shape: reads ~170 ns/block, persisted writes
    /// ~90 ns/block, sequential accesses at 40 % of the random cost.
    /// These values were chosen so that on the development machine the
    /// PM:DRAM single-thread lookup ratio lands near the paper's ~2×.
    pub const fn optane_like() -> Self {
        Self {
            read_ns: 170,
            write_ns: 90,
            seq_discount_pct: 40,
        }
    }

    /// Whether any penalty is configured.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.read_ns != 0 || self.write_ns != 0
    }

    /// Busy-wait `blocks` read penalties. `sequential` selects the
    /// discounted rate.
    #[inline]
    pub fn charge_read(&self, blocks: u64, sequential: bool) {
        if self.read_ns != 0 {
            spin_for(self.cost(self.read_ns, blocks, sequential));
        }
    }

    /// Busy-wait `blocks` write penalties.
    #[inline]
    pub fn charge_write(&self, blocks: u64, sequential: bool) {
        if self.write_ns != 0 {
            spin_for(self.cost(self.write_ns, blocks, sequential));
        }
    }

    #[inline]
    fn cost(&self, ns_per_block: u32, blocks: u64, sequential: bool) -> Duration {
        let base = ns_per_block as u64 * blocks;
        let ns = if sequential {
            base * self.seq_discount_pct as u64 / 100
        } else {
            base
        };
        Duration::from_nanos(ns)
    }
}

/// Busy-wait for `d`. `thread::sleep` is far too coarse (µs–ms) for
/// nanosecond-scale penalties, so we spin on `Instant`.
#[inline]
fn spin_for(d: Duration) {
    if d.is_zero() {
        return;
    }
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_charges_nothing() {
        let m = LatencyModel::off();
        assert!(!m.enabled());
        let t = Instant::now();
        m.charge_read(1_000_000, false);
        m.charge_write(1_000_000, false);
        // A million blocks at zero cost must return ~instantly.
        assert!(t.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn read_penalty_is_observable() {
        let m = LatencyModel {
            read_ns: 1_000,
            write_ns: 0,
            seq_discount_pct: 100,
        };
        let t = Instant::now();
        m.charge_read(1_000, false); // 1 ms total
        assert!(t.elapsed() >= Duration::from_micros(900));
    }

    #[test]
    fn sequential_discount_reduces_cost() {
        let m = LatencyModel {
            read_ns: 1_000,
            write_ns: 0,
            seq_discount_pct: 10,
        };
        let t = Instant::now();
        m.charge_read(1_000, true); // 0.1 ms total
        let seq = t.elapsed();
        assert!(seq < Duration::from_micros(800), "seq took {seq:?}");
    }
}
