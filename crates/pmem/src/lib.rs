//! # pmem — an emulated persistent-memory device
//!
//! This crate is the hardware substrate for the whole workspace: a
//! software stand-in for Intel Optane DCPMM in App Direct mode. Real PM
//! is unavailable (and discontinued), so the device is emulated with a
//! model that preserves exactly the properties the evaluated indexes are
//! designed around:
//!
//! * **Volatile caches in front of durable media.** A [`PmPool`] keeps two
//!   images of its address space: the *CPU image* that loads and stores
//!   observe, and the *persisted image* that survives a simulated crash.
//!   Data moves from the CPU image to the persisted image only through
//!   the persistence primitives ([`PmPool::clwb`], [`PmPool::ntstore_u64`]).
//! * **8-byte failure atomicity.** The persisted image is updated in
//!   aligned 8-byte words, never smaller, so torn words are impossible —
//!   matching the atomicity guarantee PM indexes rely on for pointer and
//!   bitmap publication.
//! * **256-byte media granularity.** Like DCPMM's internal XPLine, every
//!   media access is accounted at 256-byte granularity, which powers the
//!   read/write-amplification and bandwidth experiments.
//! * **Asymmetric latency.** An optional calibrated [`LatencyModel`]
//!   charges reads and (flushed) writes per touched media block, so the
//!   DRAM-vs-PM performance shape of the paper is reproduced.
//! * **Crash simulation.** [`PmPool::crash`] discards everything that was
//!   not explicitly persisted, after which each index runs its recovery
//!   procedure. An optional *eviction chaos* mode additionally persists
//!   random unflushed words, modelling cache evictions: recovery code
//!   must tolerate both the presence and the absence of unflushed data.
//!
//! All counters are striped across cache-padded cells so that statistics
//! collection does not serialize multi-threaded benchmarks.

mod config;
mod inject;
mod latency;
mod off;
mod pool;
mod stats;

pub use config::{PersistenceMode, PmConfig};
pub use inject::{
    CrashPointHit, CrashReport, MediaError, PersistEventKind, PoisonedRead, ResidualLine,
    ResidualPolicy,
};
pub use latency::LatencyModel;
pub use off::{PmOff, NULL_OFF};
pub use pool::{PmPool, PmSafe, CACHELINE, MEDIA_BLOCK, ROOT_AREA};
pub use stats::PmStatsSnapshot;

/// Convenience: round `n` up to the next multiple of `align` (a power of two).
#[inline]
pub const fn align_up(n: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (n + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_up_basics() {
        assert_eq!(align_up(0, 8), 0);
        assert_eq!(align_up(1, 8), 8);
        assert_eq!(align_up(8, 8), 8);
        assert_eq!(align_up(9, 8), 16);
        assert_eq!(align_up(255, 256), 256);
        assert_eq!(align_up(257, 256), 512);
    }
}
