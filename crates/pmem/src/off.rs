//! Typed persistent offsets.
//!
//! Persistent data structures must not store virtual addresses: a pool
//! can be mapped at a different address after restart. Everything in PM
//! therefore refers to other PM locations by *offset from the pool
//! base*. [`PmOff<T>`] is a thin typed wrapper over such an offset, the
//! moral equivalent of PMDK's `PMEMoid` or an offset-based smart
//! pointer.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;

/// The null offset. Offset 0 is inside the reserved root area and is
/// never handed out by the allocator, so it is safe as a sentinel.
pub const NULL_OFF: u64 = 0;

/// A typed offset into a [`crate::PmPool`].
///
/// `PmOff<T>` does not borrow the pool and is freely `Copy`; it is the
/// caller's job to pair it with the right pool (all crates in this
/// workspace use a single pool per index instance).
pub struct PmOff<T> {
    raw: u64,
    _marker: PhantomData<fn() -> T>,
}

impl<T> PmOff<T> {
    /// The null (sentinel) offset.
    pub const NULL: Self = Self {
        raw: NULL_OFF,
        _marker: PhantomData,
    };

    /// Wrap a raw byte offset.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Self {
            raw,
            _marker: PhantomData,
        }
    }

    /// The raw byte offset.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.raw
    }

    /// Whether this is the null sentinel.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.raw == NULL_OFF
    }

    /// Reinterpret as an offset to a different type (same address).
    #[inline]
    pub const fn cast<U>(self) -> PmOff<U> {
        PmOff::new(self.raw)
    }

    /// Offset of a field / element at byte offset `delta` from this one.
    #[inline]
    pub const fn byte_add(self, delta: u64) -> u64 {
        self.raw + delta
    }
}

// Manual impls: `derive` would bound them on `T`, which is wrong for a
// pointer-like type.
impl<T> Clone for PmOff<T> {
    #[inline]
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for PmOff<T> {}
impl<T> PartialEq for PmOff<T> {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<T> Eq for PmOff<T> {}
impl<T> Hash for PmOff<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.raw.hash(state);
    }
}
impl<T> fmt::Debug for PmOff<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "PmOff(NULL)")
        } else {
            write!(f, "PmOff({:#x})", self.raw)
        }
    }
}
impl<T> Default for PmOff<T> {
    fn default() -> Self {
        Self::NULL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Node;

    #[test]
    fn null_roundtrip() {
        let n: PmOff<Node> = PmOff::NULL;
        assert!(n.is_null());
        assert_eq!(n.raw(), NULL_OFF);
        assert_eq!(n, PmOff::<Node>::default());
    }

    #[test]
    fn cast_preserves_raw() {
        let a: PmOff<u64> = PmOff::new(4096);
        let b: PmOff<Node> = a.cast();
        assert_eq!(b.raw(), 4096);
        assert!(!b.is_null());
    }

    #[test]
    fn byte_add() {
        let a: PmOff<Node> = PmOff::new(100);
        assert_eq!(a.byte_add(28), 128);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", PmOff::<Node>::NULL), "PmOff(NULL)");
        assert_eq!(format!("{:?}", PmOff::<Node>::new(255)), "PmOff(0xff)");
    }

    #[test]
    fn copy_and_eq_do_not_require_t_bounds() {
        // Node is neither Clone nor Eq; PmOff<Node> still is.
        let a: PmOff<Node> = PmOff::new(8);
        let b = a;
        assert_eq!(a, b);
    }
}
