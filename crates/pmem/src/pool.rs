//! The emulated PM device: a pool with a CPU image and a persisted image.

use std::cell::Cell;
use std::collections::HashMap;
use std::mem::{align_of, size_of, MaybeUninit};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::config::{PersistenceMode, PmConfig};
use crate::inject::{
    splitmix64, CrashPointHit, CrashReport, MediaError, PersistEventKind, PoisonedRead,
    ResidualLine, ResidualPolicy,
};
use crate::off::PmOff;
use crate::stats::{PmStats, PmStatsSnapshot};

/// CPU cache-line size; `clwb` operates at this granularity.
pub const CACHELINE: usize = 64;
/// DCPMM internal media granularity (the "XPLine"): every media access
/// moves this many bytes regardless of the request size.
pub const MEDIA_BLOCK: usize = 256;
/// First bytes of every pool reserved for application root pointers
/// (the moral equivalent of PMDK's root object).
pub const ROOT_AREA: u64 = 4096;

/// Marker for plain-old-data types that may live in persistent memory.
///
/// # Safety
///
/// Implementors must guarantee:
/// * `T` is `Copy` and has no padding bytes (every byte is initialized),
/// * `size_of::<T>()` is a multiple of 8 and `align_of::<T>() <= 8`,
/// * any bit pattern read back from PM is a valid `T` (no enums with
///   invalid discriminants, no references, no niches).
pub unsafe trait PmSafe: Copy {}

unsafe impl PmSafe for u64 {}
unsafe impl PmSafe for i64 {}
unsafe impl PmSafe for [u8; 8] {}
unsafe impl PmSafe for [u8; 16] {}
unsafe impl PmSafe for [u8; 32] {}
unsafe impl PmSafe for [u64; 2] {}
unsafe impl PmSafe for [u64; 4] {}

/// Number of entries in the per-thread direct-mapped media-block cache
/// that stands in for the CPU cache hierarchy when accounting media
/// reads. 512 blocks × 256 B = 128 KiB of modelled cache per thread.
const BLOCK_CACHE_SLOTS: usize = 512;

thread_local! {
    /// Direct-mapped cache of recently touched media blocks, tagged with
    /// the owning pool id so multiple pools do not alias. Entry format:
    /// `(pool_id << 40) | (block + 1)`; 0 means empty.
    static BLOCK_CACHE: Cell<[u64; BLOCK_CACHE_SLOTS]> = const { Cell::new([0; BLOCK_CACHE_SLOTS]) };
    /// Last media block touched by this thread (for the sequential-access
    /// latency discount), same tag format.
    static LAST_BLOCK: Cell<u64> = const { Cell::new(0) };
}

static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(1);

/// An emulated persistent-memory pool.
///
/// The pool address space is `[0, len)`, byte-addressed via offsets (see
/// [`PmOff`]). Loads and stores observe the *CPU image*; only data moved
/// to the *persisted image* by [`PmPool::clwb`] / [`PmPool::ntstore_u64`]
/// survives [`PmPool::crash`].
///
/// All accessors take `&self`: the images are arrays of `AtomicU64`, and
/// every access compiles to a plain load/store with the requested
/// ordering. Cross-thread visibility of `Relaxed` data accesses must be
/// established by the caller's own synchronization (locks, acquiring
/// version words, …), exactly as on real hardware.
pub struct PmPool {
    cpu: Box<[AtomicU64]>,
    persisted: Box<[AtomicU64]>,
    len: usize,
    cfg: PmConfig,
    stats: PmStats,
    id: u64,
    chaos_ctr: AtomicU64,
    /// One bit per 8-byte word: set when the CPU image has been written
    /// since the word was last persisted (the durability-audit bitmap).
    dirty: Box<[AtomicU64]>,
    /// Per cache line, the [`PmPool::write_clock`] value of the last
    /// store that touched it. Orders residual candidates by recency so
    /// exhaustive torn-write enumeration can focus on the write
    /// frontier (the lines the in-flight operation just dirtied).
    dirty_seq: Box<[AtomicU64]>,
    /// Monotonic store counter feeding [`PmPool::dirty_seq`].
    write_clock: AtomicU64,
    /// Persistence events (clwb/ntstore/sfence calls) since creation.
    events: AtomicU64,
    /// Crash-point injection: events remaining until the trip (0 = off).
    armed: AtomicU64,
    /// Set once an injected crash fired; freezes the persisted image
    /// until the next [`PmPool::crash`].
    crashed: AtomicBool,
    /// Durability audit captured when the injected crash fired.
    report: Mutex<Option<CrashReport>>,
    /// Multi-threaded crash mode: when the armed crash fires, also set
    /// [`PmPool::halted`] so other threads unwind (see
    /// [`PmPool::set_halt_on_crash`]).
    halt_on_crash: AtomicBool,
    /// Fast gate checked on every PM access: when set, any access from a
    /// non-panicking thread unwinds with [`CrashPointHit`].
    halted: AtomicBool,
    /// Dirty lines (offset + CPU contents) captured at the instant the
    /// armed crash fired — the residual-image candidate set, snapshotted
    /// before unwinding code can dirty anything else.
    residual: Mutex<Option<Vec<ResidualLine>>>,
    /// One bit per cache line: set when the line is poisoned (reads
    /// raise the emulated machine-check, [`PoisonedRead`]).
    poison: Box<[AtomicU64]>,
    /// Fast gate: number of currently poisoned lines.
    poison_lines: AtomicU64,
    /// Per poisoned line, which of its 8 words have been fully
    /// rewritten; at 0xFF the line's poison clears (real PM clears
    /// poison when the whole line is overwritten).
    poison_fill: Mutex<HashMap<u64, u8>>,
}

impl PmPool {
    /// Create a pool of `len` bytes (rounded up to a media block),
    /// zero-initialized and fully persisted (a fresh device).
    pub fn new(len: usize, cfg: PmConfig) -> Self {
        let len = crate::align_up(len.max(MEDIA_BLOCK) as u64, MEDIA_BLOCK as u64) as usize;
        let words = len / 8;
        let alloc = |n: usize| -> Box<[AtomicU64]> { (0..n).map(|_| AtomicU64::new(0)).collect() };
        Self {
            cpu: alloc(words),
            persisted: alloc(words),
            len,
            cfg,
            stats: PmStats::new(),
            id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            chaos_ctr: AtomicU64::new(0),
            dirty: alloc(words.div_ceil(64)),
            dirty_seq: alloc(len / CACHELINE),
            write_clock: AtomicU64::new(0),
            events: AtomicU64::new(0),
            armed: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            report: Mutex::new(None),
            halt_on_crash: AtomicBool::new(false),
            halted: AtomicBool::new(false),
            residual: Mutex::new(None),
            poison: alloc((len / CACHELINE).div_ceil(64)),
            poison_lines: AtomicU64::new(0),
            poison_fill: Mutex::new(HashMap::new()),
        }
    }

    /// Pool size in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the pool is empty (never true in practice; pools round up
    /// to at least one media block).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The pool configuration.
    #[inline]
    pub fn config(&self) -> &PmConfig {
        &self.cfg
    }

    #[inline]
    fn word(&self, off: u64) -> &AtomicU64 {
        debug_assert_eq!(off % 8, 0, "unaligned u64 access at {off:#x}");
        debug_assert!(
            (off as usize) + 8 <= self.len,
            "PM access out of bounds: {off:#x} + 8 > {:#x}",
            self.len
        );
        &self.cpu[(off / 8) as usize]
    }

    #[inline]
    fn media_block_of(off: u64) -> u64 {
        off / MEDIA_BLOCK as u64
    }

    #[inline]
    fn blocks_in(off: u64, len: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        let first = Self::media_block_of(off);
        let last = Self::media_block_of(off + len as u64 - 1);
        last - first + 1
    }

    #[inline]
    fn block_tag(&self, block: u64) -> u64 {
        (self.id << 40) | (block + 1)
    }

    /// Account (and charge latency for) a read of `len` bytes at `off`,
    /// consulting the modelled per-thread cache for media residency.
    #[inline]
    fn account_read(&self, off: u64, len: usize) {
        self.check_halt();
        if self.poison_lines.load(Ordering::Relaxed) != 0 {
            self.raise_on_poison(off, len);
        }
        let first = Self::media_block_of(off);
        let nblocks = Self::blocks_in(off, len);
        let mut missed = 0u64;
        let mut sequential = true;
        BLOCK_CACHE.with(|cache| {
            let mut c = cache.get();
            let last = LAST_BLOCK.with(|l| l.get());
            for b in first..first + nblocks {
                let tag = self.block_tag(b);
                let slot = (b as usize) & (BLOCK_CACHE_SLOTS - 1);
                if c[slot] != tag {
                    c[slot] = tag;
                    missed += 1;
                    if tag != last && tag != last + 1 {
                        sequential = false;
                    }
                }
            }
            LAST_BLOCK.with(|l| l.set(self.block_tag(first + nblocks - 1)));
            cache.set(c);
        });
        self.stats.count_read(len as u64, missed);
        obs::pm_read(off, len, missed * MEDIA_BLOCK as u64);
        if missed > 0 {
            self.cfg.latency.charge_read(missed, sequential);
        }
    }

    /// Account a write of `len` bytes (store-buffer level; media traffic
    /// is accounted at flush time). Populates the modelled cache
    /// (write-allocate).
    #[inline]
    fn account_write(&self, off: u64, len: usize) {
        self.check_halt();
        if self.poison_lines.load(Ordering::Relaxed) != 0 {
            self.note_poison_overwrite(off, len);
        }
        let first = Self::media_block_of(off);
        let nblocks = Self::blocks_in(off, len);
        BLOCK_CACHE.with(|cache| {
            let mut c = cache.get();
            for b in first..first + nblocks {
                c[(b as usize) & (BLOCK_CACHE_SLOTS - 1)] = self.block_tag(b);
            }
            cache.set(c);
        });
        self.stats.count_write(len as u64);
        obs::pm_write(off, len);
        self.mark_dirty(off, len);
    }

    // ----- durability audit (dirty-word tracking) --------------------------

    /// Mark the words covering `[off, off + len)` as written-but-unflushed.
    #[inline]
    fn mark_dirty(&self, off: u64, len: usize) {
        if len == 0 {
            return;
        }
        let clock = self.write_clock.fetch_add(1, Ordering::Relaxed);
        let lfirst = off / CACHELINE as u64;
        let llast = (off + len as u64 - 1) / CACHELINE as u64;
        for l in lfirst..=llast {
            self.dirty_seq[l as usize].store(clock, Ordering::Relaxed);
        }
        let first = off / 8;
        let last = (off + len as u64 - 1) / 8;
        if first / 64 == last / 64 {
            // Common case: all touched words live in one bitmap atom.
            let span = last - first + 1;
            let mask = if span >= 64 {
                u64::MAX
            } else {
                ((1u64 << span) - 1) << (first % 64)
            };
            self.dirty[(first / 64) as usize].fetch_or(mask, Ordering::Relaxed);
        } else {
            for w in first..=last {
                self.dirty[(w / 64) as usize].fetch_or(1 << (w % 64), Ordering::Relaxed);
            }
        }
    }

    /// Dirty bits of the 8 words in the cache line at `line_off`
    /// (64-aligned). A cache line never straddles a bitmap atom.
    #[inline]
    fn line_dirty_bits(&self, line_off: u64) -> u64 {
        let w0 = line_off / 8;
        let shift = w0 % 64;
        self.dirty[(w0 / 64) as usize].load(Ordering::Relaxed) & (0xFF << shift)
    }

    /// Whether any cache line in `[start, end)` (both 64-aligned) has a
    /// written-but-unflushed word.
    #[inline]
    fn range_has_dirty_line(&self, start: u64, end: u64) -> bool {
        let mut line = start;
        while line < end {
            if self.line_dirty_bits(line) != 0 {
                return true;
            }
            line += CACHELINE as u64;
        }
        false
    }

    /// Written-but-unflushed 8-byte words (durability-audit bitmap
    /// population count). Only meaningful in `Real` persistence mode.
    pub fn dirty_word_count(&self) -> u64 {
        self.dirty
            .iter()
            .map(|a| a.load(Ordering::Relaxed).count_ones() as u64)
            .sum()
    }

    /// Cache lines containing at least one dirty word.
    pub fn dirty_line_count(&self) -> u64 {
        let mut lines = 0u64;
        for a in self.dirty.iter() {
            let mut bits = a.load(Ordering::Relaxed);
            while bits != 0 {
                // Consume one 8-bit (one cache line) group at a time.
                let line = (bits.trailing_zeros() / 8) as u64;
                lines += 1;
                bits &= !(0xFFu64 << (line * 8));
            }
        }
        lines
    }

    /// Pool offsets of the first `limit` dirty cache lines, for
    /// diagnostics in the crash-point explorer.
    pub fn dirty_line_offsets(&self, limit: usize) -> Vec<u64> {
        let mut out = Vec::new();
        'outer: for (i, a) in self.dirty.iter().enumerate() {
            let mut bits = a.load(Ordering::Relaxed);
            while bits != 0 {
                let line = (bits.trailing_zeros() / 8) as u64;
                out.push((i as u64 * 64 + line * 8) * 8);
                if out.len() >= limit {
                    break 'outer;
                }
                bits &= !(0xFFu64 << (line * 8));
            }
        }
        out
    }

    fn clear_all_dirty(&self) {
        for a in self.dirty.iter() {
            a.store(0, Ordering::Relaxed);
        }
    }

    // ----- crash-point injection -------------------------------------------

    /// Count one persistence event and trip the injected crash when the
    /// pool is armed and the countdown reaches it. Returns `true` when
    /// the pool has already crashed (callers must suppress the
    /// persistence effect). Panics with [`CrashPointHit`] at the trip.
    #[inline]
    fn persistence_event(&self, kind: PersistEventKind) -> bool {
        self.check_halt();
        let index = self.events.fetch_add(1, Ordering::Relaxed) + 1;
        if self.crashed.load(Ordering::Relaxed) {
            return true;
        }
        if self.armed.load(Ordering::Relaxed) == 0 {
            return false;
        }
        self.persistence_event_armed(kind, index)
    }

    /// Cold path of [`PmPool::persistence_event`]: decrement the armed
    /// countdown and fire when it reaches zero.
    #[cold]
    fn persistence_event_armed(&self, kind: PersistEventKind, index: u64) -> bool {
        loop {
            let cur = self.armed.load(Ordering::Relaxed);
            if cur == 0 {
                return false; // lost a race with a concurrent trip/disarm
            }
            if self
                .armed
                .compare_exchange(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            if cur > 1 {
                return false;
            }
            // This is the fatal event. Halt the device FIRST: once the
            // image freezes, a sibling thread's flushes would be
            // silently suppressed, so if this thread is preempted
            // between freezing and halting, siblings could complete and
            // acknowledge operations that never became durable. Halting
            // first makes every concurrent PM access unwind before it
            // can witness the frozen world; anything a sibling fully
            // flushed before this instant is genuinely durable.
            if self.halt_on_crash.load(Ordering::Relaxed) {
                self.halted.store(true, Ordering::Relaxed);
            }
            // Now freeze the persisted image so nothing that runs
            // during unwinding can persist data, then capture the
            // durability audit and the residual-image candidate set
            // (dirty lines + their CPU contents) before unwinding code
            // can dirty anything else, and unwind.
            self.crashed.store(true, Ordering::Relaxed);
            let report = CrashReport {
                event_index: index,
                trigger: kind,
                dirty_words: self.dirty_word_count(),
                dirty_lines: self.dirty_line_count(),
                redundant_clwb: self.stats.snapshot().clwb_redundant,
            };
            *self.report_slot() = Some(report);
            *self.residual_slot() = Some(self.collect_residual_candidates());
            std::panic::panic_any(CrashPointHit);
        }
    }

    #[inline]
    fn report_slot(&self) -> std::sync::MutexGuard<'_, Option<CrashReport>> {
        self.report.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Arm the pool to simulate a power failure at the `events`-th
    /// subsequent persistence event (a [`PmPool::clwb`],
    /// [`PmPool::ntstore_u64`] or [`PmPool::sfence`] call; 1-based).
    ///
    /// The fatal event does not take effect: the persisted image is
    /// frozen as of the instant *before* it, and the in-flight
    /// operation is unwound via a panic carrying [`CrashPointHit`].
    /// Catch it with `std::panic::catch_unwind`, then call
    /// [`PmPool::crash`] and run recovery. `arm_crash_after(0)` disarms.
    ///
    /// Event counting is exact for single-threaded exploration runs;
    /// with concurrent writers the trip point is racy but exactly one
    /// event still trips (enable [`PmPool::set_halt_on_crash`] so the
    /// surviving threads unwind too).
    pub fn arm_crash_after(&self, events: u64) {
        *self.report_slot() = None;
        *self.residual_slot() = None;
        self.crashed.store(false, Ordering::Relaxed);
        self.halted.store(false, Ordering::Relaxed);
        self.armed.store(events, Ordering::Relaxed);
    }

    /// Disarm a pending injected crash (no-op if none is armed).
    pub fn disarm_crash(&self) {
        self.armed.store(0, Ordering::Relaxed);
    }

    /// Events remaining until the armed crash fires (0 = disarmed).
    pub fn crash_events_remaining(&self) -> u64 {
        self.armed.load(Ordering::Relaxed)
    }

    /// Whether an injected crash has fired and the persisted image is
    /// currently frozen (cleared by [`PmPool::crash`]).
    pub fn crash_fired(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    /// The durability audit captured when the last injected crash
    /// fired. Survives [`PmPool::crash`]; cleared by the next
    /// [`PmPool::arm_crash_after`].
    pub fn crash_report(&self) -> Option<CrashReport> {
        *self.report_slot()
    }

    /// Total persistence events (clwb/ntstore/sfence calls) since pool
    /// creation. Used by probe runs to size a boundary sweep.
    pub fn persist_event_count(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    // ----- multi-threaded crash (halt-on-crash) ----------------------------

    /// In multi-threaded crash runs, make the device disappear for
    /// *every* thread when the armed crash fires: each surviving
    /// thread's next PM access (load, store, or persistence primitive)
    /// panics with [`CrashPointHit`] too, so no thread can keep
    /// computing against a dead device — and in particular no thread
    /// can spin forever on a lock word the crashed thread left set.
    ///
    /// Threads already unwinding (`std::thread::panicking()`) are
    /// exempt, so destructors that touch the pool during the unwind do
    /// not double-panic and abort.
    ///
    /// The harness must call `set_halt_on_crash(false)` once every
    /// worker has been joined and **before** dropping index/allocator
    /// front-ends: their destructors access the pool from a
    /// non-panicking thread. Disabled by default; disabling also clears
    /// an active halt.
    pub fn set_halt_on_crash(&self, enabled: bool) {
        self.halt_on_crash.store(enabled, Ordering::Relaxed);
        if !enabled {
            self.halted.store(false, Ordering::Relaxed);
        }
    }

    /// Whether the device is currently halted (armed crash fired with
    /// halt-on-crash enabled; every PM access unwinds).
    pub fn is_halted(&self) -> bool {
        self.halted.load(Ordering::Relaxed)
    }

    #[inline]
    fn check_halt(&self) {
        if self.halted.load(Ordering::Relaxed) {
            self.halt_slow();
        }
    }

    #[cold]
    fn halt_slow(&self) {
        if !std::thread::panicking() {
            std::panic::panic_any(CrashPointHit);
        }
    }

    // ----- residual image --------------------------------------------------

    #[inline]
    fn residual_slot(&self) -> std::sync::MutexGuard<'_, Option<Vec<ResidualLine>>> {
        self.residual.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Walk the dirty bitmap and capture every dirty line with its
    /// current CPU contents, ordered most-recently-written first (ties
    /// broken by offset). Recency ordering lets subset enumeration
    /// cover the write frontier even when long-lived unflushed lines
    /// (volatile locks, runtime counters living in PM) inflate the
    /// total candidate count.
    fn collect_residual_candidates(&self) -> Vec<ResidualLine> {
        let mut out = Vec::new();
        for (i, a) in self.dirty.iter().enumerate() {
            let mut bits = a.load(Ordering::Relaxed);
            while bits != 0 {
                let line = (bits.trailing_zeros() / 8) as u64;
                let off = (i as u64 * 64 + line * 8) * 8;
                let w0 = (off / 8) as usize;
                let mut words = [0u64; 8];
                for (j, w) in words.iter_mut().enumerate() {
                    *w = self.cpu[w0 + j].load(Ordering::Relaxed);
                }
                let seq = self.dirty_seq[(off / CACHELINE as u64) as usize].load(Ordering::Relaxed);
                out.push((seq, ResidualLine { off, words }));
                bits &= !(0xFFu64 << (line * 8));
            }
        }
        out.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.off.cmp(&b.1.off)));
        out.into_iter().map(|(_, l)| l).collect()
    }

    /// The residual-image candidate set: every dirty (written but
    /// unflushed) cache line that *could* have made it to media at a
    /// power cut, with the contents it would land with. Candidates are
    /// ordered most-recently-written first, so [`ResidualPolicy::Subset`]
    /// mask bit `i` addresses the `i`-th most recent line — enumerating
    /// small masks exhaustively covers the write frontier.
    ///
    /// After an armed crash fired this returns the set captured at the
    /// trip instant (unwinding may have dirtied more lines since — those
    /// stores never happened in the crashed execution). On a live pool
    /// it is computed from the current dirty bitmap, which is what a
    /// torture-style [`PmPool::crash_with`] needs.
    pub fn residual_candidates(&self) -> Vec<ResidualLine> {
        if self.crashed.load(Ordering::Relaxed) {
            if let Some(c) = self.residual_slot().as_ref() {
                return c.clone();
            }
        }
        self.collect_residual_candidates()
    }

    /// Snapshot the persisted image, so a harness can run several
    /// residual samples (restore → apply → recover) per crash without
    /// replaying the workload.
    pub fn snapshot_persisted(&self) -> Vec<u64> {
        self.persisted
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }

    /// Reset both images to a snapshot taken by
    /// [`PmPool::snapshot_persisted`], discarding all volatile state,
    /// injection state, and poison — a fresh power-on of that image.
    pub fn restore_persisted(&self, img: &[u64]) {
        assert_eq!(img.len(), self.persisted.len(), "snapshot size mismatch");
        for (i, &w) in img.iter().enumerate() {
            self.persisted[i].store(w, Ordering::Relaxed);
            self.cpu[i].store(w, Ordering::Relaxed);
        }
        self.armed.store(0, Ordering::Relaxed);
        self.crashed.store(false, Ordering::Relaxed);
        self.halted.store(false, Ordering::Relaxed);
        *self.residual_slot() = None;
        self.clear_all_dirty();
        self.clear_all_poison();
        std::sync::atomic::fence(Ordering::SeqCst);
    }

    /// Write the given lines into both images: these lines *did* reach
    /// media at the power cut. Call after [`PmPool::crash`] or
    /// [`PmPool::restore_persisted`] with the subset a
    /// [`ResidualPolicy`] selected.
    pub fn apply_residual_lines(&self, lines: &[ResidualLine]) {
        for l in lines {
            debug_assert_eq!(l.off % CACHELINE as u64, 0);
            let w0 = (l.off / 8) as usize;
            for (j, &w) in l.words.iter().enumerate() {
                self.cpu[w0 + j].store(w, Ordering::Relaxed);
                self.persisted[w0 + j].store(w, Ordering::Relaxed);
            }
        }
        std::sync::atomic::fence(Ordering::SeqCst);
    }

    /// [`PmPool::crash`], but with a configurable residual image: the
    /// dirty lines at the crash instant each persist or vanish according
    /// to `policy` instead of all vanishing. `ResidualPolicy::Frozen`
    /// is exactly `crash()`.
    ///
    /// Returns the number of residual candidates, so callers can log
    /// how large the sampled space was.
    pub fn crash_with(&self, policy: ResidualPolicy) -> usize {
        let cands = self.residual_candidates();
        let keep = policy.select(cands.len());
        self.crash();
        let kept: Vec<ResidualLine> = cands
            .iter()
            .zip(keep.iter())
            .filter(|(_, &k)| k)
            .map(|(l, _)| *l)
            .collect();
        self.apply_residual_lines(&kept);
        cands.len()
    }

    // ----- media errors (poison) -------------------------------------------

    #[inline]
    fn line_poisoned(&self, line_off: u64) -> bool {
        let l = line_off / CACHELINE as u64;
        self.poison[(l / 64) as usize].load(Ordering::Relaxed) & (1u64 << (l % 64)) != 0
    }

    #[inline]
    fn poison_fill_slot(&self) -> std::sync::MutexGuard<'_, HashMap<u64, u8>> {
        self.poison_fill.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Poison the cache line containing `off`: the media can no longer
    /// return its data. Any read touching the line panics with
    /// [`PoisonedRead`] (the emulated machine-check) until the whole
    /// line has been rewritten (word-granularity stores covering all 8
    /// words) or scrubbed via [`PmPool::scrub_poison`]. The line's
    /// contents are scrambled in both images so partially recovered
    /// lines can never silently read back plausible stale data.
    ///
    /// Poison is a media property: it survives [`PmPool::crash`] /
    /// power cycles, like a real bad block.
    pub fn poison_line(&self, off: u64) {
        let line = off & !(CACHELINE as u64 - 1);
        assert!(
            (line as usize) + CACHELINE <= self.len,
            "poison out of bounds"
        );
        let l = line / CACHELINE as u64;
        let prev = self.poison[(l / 64) as usize].fetch_or(1u64 << (l % 64), Ordering::Relaxed);
        if prev & (1u64 << (l % 64)) == 0 {
            self.poison_lines.fetch_add(1, Ordering::Relaxed);
        }
        self.poison_fill_slot().remove(&line);
        let w0 = (line / 8) as usize;
        for j in 0..8 {
            let junk = splitmix64(0xBAD0_BAD0_0000_0000 ^ line ^ j as u64);
            self.cpu[w0 + j].store(junk, Ordering::Relaxed);
            self.persisted[w0 + j].store(junk, Ordering::Relaxed);
        }
    }

    /// Currently poisoned cache lines.
    pub fn poisoned_line_count(&self) -> u64 {
        self.poison_lines.load(Ordering::Relaxed)
    }

    /// Clear all poison without touching data (testing/reset helper).
    pub fn clear_all_poison(&self) {
        if self.poison_lines.swap(0, Ordering::Relaxed) != 0 {
            for a in self.poison.iter() {
                a.store(0, Ordering::Relaxed);
            }
        }
        self.poison_fill_slot().clear();
    }

    /// Probe whether `[off, off + len)` is readable without raising the
    /// emulated machine-check. Recovery paths call this before
    /// interpreting any structure so a media error becomes a graceful
    /// [`MediaError`] ("rebuild or report") instead of consumed garbage.
    pub fn check_readable(&self, off: u64, len: usize) -> Result<(), MediaError> {
        if self.poison_lines.load(Ordering::Relaxed) == 0 || len == 0 {
            return Ok(());
        }
        match self.first_poisoned_line(off, len) {
            None => Ok(()),
            Some(line) => Err(MediaError {
                off: line,
                context: "pm range",
            }),
        }
    }

    fn first_poisoned_line(&self, off: u64, len: usize) -> Option<u64> {
        if len == 0 {
            return None;
        }
        let mut line = off & !(CACHELINE as u64 - 1);
        let end = (off + len as u64).min(self.len as u64);
        while line < end {
            if self.line_poisoned(line) {
                return Some(line);
            }
            line += CACHELINE as u64;
        }
        None
    }

    #[cold]
    fn raise_on_poison(&self, off: u64, len: usize) {
        if let Some(line) = self.first_poisoned_line(off, len) {
            std::panic::panic_any(PoisonedRead { off: line });
        }
    }

    /// Atomic RMW ops consume the old value, so they count as reads for
    /// poison purposes even though they account as writes.
    #[inline]
    fn check_rmw_poison(&self, off: u64) {
        if self.poison_lines.load(Ordering::Relaxed) != 0 {
            self.raise_on_poison(off, 8);
        }
    }

    /// Record word-granularity overwrites of poisoned lines; once all 8
    /// words of a line have been fully rewritten its poison clears.
    /// Only words *fully covered* by the write count — a partial-word
    /// write merges with unreadable bytes and cannot clear anything.
    #[cold]
    fn note_poison_overwrite(&self, off: u64, len: usize) {
        if len == 0 {
            return;
        }
        let first = off.div_ceil(8);
        let last_excl = (off + len as u64) / 8;
        if first >= last_excl {
            return;
        }
        let mut fill = self.poison_fill_slot();
        for w in first..last_excl {
            let line = (w * 8) & !(CACHELINE as u64 - 1);
            if !self.line_poisoned(line) {
                continue;
            }
            let entry = fill.entry(line).or_insert(0u8);
            *entry |= 1 << ((w * 8 - line) / 8);
            if *entry == 0xFF {
                fill.remove(&line);
                self.clear_poison_bit(line);
            }
        }
    }

    fn clear_poison_bit(&self, line: u64) {
        let l = line / CACHELINE as u64;
        let prev = self.poison[(l / 64) as usize].fetch_and(!(1u64 << (l % 64)), Ordering::Relaxed);
        if prev & (1u64 << (l % 64)) != 0 {
            self.poison_lines.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Scrub the lines covering `[off, off + len)`: zero-fill any
    /// poisoned line in both images and clear its poison. This is what
    /// an allocator does when it consults the bad-block list and
    /// re-initializes a block before handing it out — the old contents
    /// are gone, but the media is usable again.
    pub fn scrub_poison(&self, off: u64, len: usize) {
        if self.poison_lines.load(Ordering::Relaxed) == 0 || len == 0 {
            return;
        }
        let mut line = off & !(CACHELINE as u64 - 1);
        let end = (off + len as u64).min(self.len as u64);
        while line < end {
            if self.line_poisoned(line) {
                let w0 = (line / 8) as usize;
                for j in 0..8 {
                    self.cpu[w0 + j].store(0, Ordering::Relaxed);
                    self.persisted[w0 + j].store(0, Ordering::Relaxed);
                }
                self.poison_fill_slot().remove(&line);
                self.clear_poison_bit(line);
            }
            line += CACHELINE as u64;
        }
    }

    /// Persist one aligned word into the persisted image (8-byte failure
    /// atomicity: words are never torn).
    #[inline]
    fn persist_word(&self, off: u64) {
        let w = (off / 8) as usize;
        self.dirty[w / 64].fetch_and(!(1u64 << (w % 64)), Ordering::Relaxed);
        let v = self.cpu[w].load(Ordering::Relaxed);
        self.persisted[w].store(v, Ordering::Relaxed);
    }

    /// Eviction chaos: maybe spontaneously persist the word just written.
    #[inline]
    fn maybe_evict(&self, off: u64) {
        if self.crashed.load(Ordering::Relaxed) {
            return;
        }
        if let Some(seed) = self.cfg.eviction_chaos {
            let n = self.chaos_ctr.fetch_add(1, Ordering::Relaxed);
            // SplitMix64-style mix of (seed, off, n).
            let mut x = seed ^ off.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ n;
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            if x & 3 == 0 {
                self.persist_word(off & !7);
            }
        }
    }

    // ----- plain data accesses -------------------------------------------

    /// Load an aligned `u64` (relaxed; pair with your own synchronization).
    #[inline]
    pub fn read_u64(&self, off: u64) -> u64 {
        self.account_read(off, 8);
        self.word(off).load(Ordering::Relaxed)
    }

    /// Store an aligned `u64` (relaxed). Volatile until flushed.
    #[inline]
    pub fn write_u64(&self, off: u64, v: u64) {
        self.account_write(off, 8);
        self.word(off).store(v, Ordering::Relaxed);
        self.maybe_evict(off);
    }

    /// Load an aligned `u64` with an explicit memory ordering.
    #[inline]
    pub fn load_u64(&self, off: u64, order: Ordering) -> u64 {
        self.account_read(off, 8);
        self.word(off).load(order)
    }

    /// Store an aligned `u64` with an explicit memory ordering.
    #[inline]
    pub fn store_u64(&self, off: u64, v: u64, order: Ordering) {
        self.account_write(off, 8);
        self.word(off).store(v, order);
        self.maybe_evict(off);
    }

    /// Compare-and-exchange on an aligned `u64`.
    #[inline]
    pub fn cas_u64(&self, off: u64, current: u64, new: u64) -> Result<u64, u64> {
        self.check_rmw_poison(off);
        self.account_write(off, 8);
        let r = self
            .word(off)
            .compare_exchange(current, new, Ordering::AcqRel, Ordering::Acquire);
        if r.is_ok() {
            self.maybe_evict(off);
        }
        r
    }

    /// Atomic fetch-or on an aligned `u64`.
    #[inline]
    pub fn fetch_or_u64(&self, off: u64, bits: u64, order: Ordering) -> u64 {
        self.check_rmw_poison(off);
        self.account_write(off, 8);
        let r = self.word(off).fetch_or(bits, order);
        self.maybe_evict(off);
        r
    }

    /// Atomic fetch-and on an aligned `u64`.
    #[inline]
    pub fn fetch_and_u64(&self, off: u64, bits: u64, order: Ordering) -> u64 {
        self.check_rmw_poison(off);
        self.account_write(off, 8);
        let r = self.word(off).fetch_and(bits, order);
        self.maybe_evict(off);
        r
    }

    /// Atomic fetch-add on an aligned `u64`.
    #[inline]
    pub fn fetch_add_u64(&self, off: u64, v: u64, order: Ordering) -> u64 {
        self.check_rmw_poison(off);
        self.account_write(off, 8);
        let r = self.word(off).fetch_add(v, order);
        self.maybe_evict(off);
        r
    }

    /// Read `dst.len()` bytes starting at `off` (any alignment).
    pub fn read_bytes(&self, off: u64, dst: &mut [u8]) {
        if dst.is_empty() {
            return;
        }
        self.account_read(off, dst.len());
        for (o, byte) in (off..).zip(dst.iter_mut()) {
            let w = self.cpu[(o / 8) as usize].load(Ordering::Relaxed);
            *byte = (w >> ((o % 8) * 8)) as u8;
        }
    }

    /// Write `src` starting at `off` (any alignment). Volatile until
    /// flushed. Unaligned edges use word read-modify-write; concurrent
    /// writers must not share a word, as on real hardware.
    pub fn write_bytes(&self, off: u64, src: &[u8]) {
        if src.is_empty() {
            return;
        }
        self.account_write(off, src.len());
        debug_assert!(
            (off as usize) + src.len() <= self.len,
            "PM write out of bounds"
        );
        let mut o = off;
        let mut i = 0usize;
        // Leading partial word.
        while i < src.len() && !o.is_multiple_of(8) {
            self.rmw_byte(o, src[i]);
            o += 1;
            i += 1;
        }
        // Aligned middle.
        while i + 8 <= src.len() {
            let w = u64::from_le_bytes(src[i..i + 8].try_into().unwrap());
            self.cpu[(o / 8) as usize].store(w, Ordering::Relaxed);
            self.maybe_evict(o);
            o += 8;
            i += 8;
        }
        // Trailing partial word.
        while i < src.len() {
            self.rmw_byte(o, src[i]);
            o += 1;
            i += 1;
        }
    }

    #[inline]
    fn rmw_byte(&self, off: u64, b: u8) {
        let idx = (off / 8) as usize;
        let shift = (off % 8) * 8;
        let w = self.cpu[idx].load(Ordering::Relaxed);
        let w = (w & !(0xffu64 << shift)) | ((b as u64) << shift);
        self.cpu[idx].store(w, Ordering::Relaxed);
        self.maybe_evict(off & !7);
    }

    /// Typed read of a [`PmSafe`] value at an 8-aligned offset.
    pub fn read<T: PmSafe>(&self, off: PmOff<T>) -> T {
        let size = size_of::<T>();
        debug_assert_eq!(size % 8, 0, "PmSafe types must be a multiple of 8 bytes");
        debug_assert!(align_of::<T>() <= 8);
        debug_assert_eq!(off.raw() % 8, 0);
        self.account_read(off.raw(), size);
        let mut buf = MaybeUninit::<T>::uninit();
        let dst = buf.as_mut_ptr() as *mut u64;
        let base = (off.raw() / 8) as usize;
        for i in 0..size / 8 {
            let w = self.cpu[base + i].load(Ordering::Relaxed);
            // SAFETY: dst points at size/8 u64 slots inside `buf`.
            unsafe { dst.add(i).write_unaligned(w) };
        }
        // SAFETY: PmSafe guarantees every bit pattern is a valid T.
        unsafe { buf.assume_init() }
    }

    /// Typed write of a [`PmSafe`] value at an 8-aligned offset.
    /// Volatile until flushed.
    pub fn write<T: PmSafe>(&self, off: PmOff<T>, v: &T) {
        let size = size_of::<T>();
        debug_assert_eq!(size % 8, 0);
        debug_assert_eq!(off.raw() % 8, 0);
        self.account_write(off.raw(), size);
        let src = v as *const T as *const u64;
        let base = (off.raw() / 8) as usize;
        for i in 0..size / 8 {
            // SAFETY: PmSafe guarantees T has no padding, so all bytes
            // are initialized and readable as u64 words.
            let w = unsafe { src.add(i).read_unaligned() };
            self.cpu[base + i].store(w, Ordering::Relaxed);
        }
        self.maybe_evict(off.raw());
    }

    // ----- persistence primitives ----------------------------------------

    /// Write back the cachelines covering `[off, off + len)` to the
    /// persisted image (models `clwb`/`clflushopt` followed by the next
    /// fence; the emulator persists eagerly, which is one of the legal
    /// executions).
    pub fn clwb(&self, off: u64, len: usize) {
        if len == 0 {
            return;
        }
        self.stats.count_clwb();
        if obs::enabled() {
            // Trace before the persistence event so an injected crash
            // still leaves this flush in the flight-recorder tail.
            let start = off & !(CACHELINE as u64 - 1);
            let end = crate::align_up(off + len as u64, CACHELINE as u64).min(self.len as u64);
            let media = if self.cfg.persistence == PersistenceMode::Elided {
                0
            } else {
                Self::blocks_in(start, (end - start) as usize) * MEDIA_BLOCK as u64
            };
            obs::pm_clwb(off, len, media, !self.range_has_dirty_line(start, end));
        }
        if self.persistence_event(PersistEventKind::Clwb) {
            return; // injected crash fired earlier: persisted image frozen
        }
        if self.cfg.persistence == PersistenceMode::Elided {
            return;
        }
        let start = off & !(CACHELINE as u64 - 1);
        let end = crate::align_up(off + len as u64, CACHELINE as u64).min(self.len as u64);
        // Durability audit: a write-back whose lines are all already
        // clean did no useful work (pmemcheck's "redundant flush").
        if !self.range_has_dirty_line(start, end) {
            self.stats.count_clwb_redundant();
        }
        let mut o = start;
        while o < end {
            self.persist_word(o);
            o += 8;
        }
        let blocks = Self::blocks_in(start, (end - start) as usize);
        self.stats.count_media_write(blocks);
        self.cfg.latency.charge_write(blocks, false);
    }

    /// `clwb` + `sfence`: the common "persist this range" idiom.
    #[inline]
    pub fn persist(&self, off: u64, len: usize) {
        self.clwb(off, len);
        self.sfence();
    }

    /// Non-temporal store of an aligned `u64`: reaches both the CPU image
    /// and the persisted image (durable at the next fence; persisted
    /// eagerly here).
    pub fn ntstore_u64(&self, off: u64, v: u64) {
        self.stats.count_ntstore();
        obs::pm_ntstore(
            off,
            if self.cfg.persistence == PersistenceMode::Real {
                MEDIA_BLOCK as u64
            } else {
                0
            },
        );
        // Trip before the store: at a power cut the instruction never
        // retired, so neither image sees the value.
        let frozen = self.persistence_event(PersistEventKind::Ntstore);
        self.account_write(off, 8);
        self.word(off).store(v, Ordering::Relaxed);
        if frozen {
            return;
        }
        if self.cfg.persistence == PersistenceMode::Real {
            self.persist_word(off);
            self.stats.count_media_write(1);
            self.cfg.latency.charge_write(1, true);
        }
    }

    /// Store fence. Ordering is inherent in the emulator's eager
    /// persistence, so this only counts (and compiles to a real fence so
    /// cross-thread orderings hold).
    #[inline]
    pub fn sfence(&self) {
        self.stats.count_fence();
        obs::pm_fence();
        self.persistence_event(PersistEventKind::Sfence);
        std::sync::atomic::fence(Ordering::SeqCst);
    }

    /// Group-durability commit point for batched serving layers: issue
    /// one store fence and return the pool's persistence-event epoch at
    /// the commit, so callers can correlate an ack batch with the
    /// boundary sweep (`arm_crash_after` counts the same events).
    #[inline]
    pub fn fence_epoch(&self) -> u64 {
        self.sfence();
        self.persist_event_count()
    }

    // ----- root area -------------------------------------------------------

    /// Read root-area slot `slot` (8 bytes each, `slot < 512`).
    #[inline]
    pub fn read_root(&self, slot: u64) -> u64 {
        assert!(slot * 8 < ROOT_AREA, "root slot out of range");
        self.read_u64(slot * 8)
    }

    /// Write and persist root-area slot `slot`.
    pub fn write_root(&self, slot: u64, v: u64) {
        assert!(slot * 8 < ROOT_AREA, "root slot out of range");
        self.write_u64(slot * 8, v);
        self.persist(slot * 8, 8);
    }

    // ----- crash simulation ------------------------------------------------

    /// Simulate a power failure: the CPU image is replaced by the
    /// persisted image, discarding every store that was not flushed.
    ///
    /// The pool must be quiesced (no concurrent accesses); this is a
    /// testing facility, mirroring how one would power-cycle a machine,
    /// not something a live workload can race with.
    pub fn crash(&self) {
        for i in 0..self.cpu.len() {
            let v = self.persisted[i].load(Ordering::Relaxed);
            self.cpu[i].store(v, Ordering::Relaxed);
        }
        // Power-cycle semantics: the injection state dies with the CPU
        // image. The captured crash report survives for inspection, and
        // poison survives too — media errors outlive power cycles.
        self.armed.store(0, Ordering::Relaxed);
        self.crashed.store(false, Ordering::Relaxed);
        self.halted.store(false, Ordering::Relaxed);
        *self.residual_slot() = None;
        self.clear_all_dirty();
        std::sync::atomic::fence(Ordering::SeqCst);
    }

    /// Testing helper: force the entire CPU image to be persisted, as if
    /// every line had been flushed. Useful to establish a clean durable
    /// baseline after a prefill without paying per-line flush costs.
    pub fn persist_all(&self) {
        for i in 0..self.cpu.len() {
            let v = self.cpu[i].load(Ordering::Relaxed);
            self.persisted[i].store(v, Ordering::Relaxed);
        }
        self.clear_all_dirty();
        std::sync::atomic::fence(Ordering::SeqCst);
    }

    // ----- statistics --------------------------------------------------------

    /// Aggregate counters since creation or the last [`PmPool::reset_stats`].
    pub fn stats(&self) -> PmStatsSnapshot {
        self.stats.snapshot()
    }

    /// Zero all counters.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }
}

impl std::fmt::Debug for PmPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmPool")
            .field("len", &self.len)
            .field("persistence", &self.cfg.persistence)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PmConfig;

    fn pool(len: usize) -> PmPool {
        PmPool::new(len, PmConfig::real())
    }

    #[test]
    fn u64_roundtrip() {
        let p = pool(4096 + 1024);
        p.write_u64(ROOT_AREA, 0xDEAD_BEEF);
        assert_eq!(p.read_u64(ROOT_AREA), 0xDEAD_BEEF);
    }

    #[test]
    fn bytes_roundtrip_unaligned() {
        let p = pool(8192);
        let src: Vec<u8> = (0..100).collect();
        p.write_bytes(ROOT_AREA + 3, &src);
        let mut dst = vec![0u8; 100];
        p.read_bytes(ROOT_AREA + 3, &mut dst);
        assert_eq!(src, dst);
        // Neighbouring bytes untouched.
        let mut edge = [0u8; 1];
        p.read_bytes(ROOT_AREA + 2, &mut edge);
        assert_eq!(edge[0], 0);
    }

    #[test]
    fn typed_roundtrip() {
        #[repr(C)]
        #[derive(Copy, Clone, PartialEq, Debug)]
        struct Rec {
            k: u64,
            v: u64,
        }
        unsafe impl PmSafe for Rec {}
        let p = pool(8192);
        let off: PmOff<Rec> = PmOff::new(ROOT_AREA + 64);
        p.write(off, &Rec { k: 7, v: 9 });
        assert_eq!(p.read(off), Rec { k: 7, v: 9 });
    }

    #[test]
    fn unflushed_data_does_not_survive_crash() {
        let p = pool(8192);
        // Distinct cachelines: clwb of the first must not persist the second.
        p.write_u64(ROOT_AREA, 1);
        p.write_u64(ROOT_AREA + CACHELINE as u64, 2);
        p.persist(ROOT_AREA, 8); // only the first line
        p.crash();
        assert_eq!(p.read_u64(ROOT_AREA), 1);
        assert_eq!(
            p.read_u64(ROOT_AREA + CACHELINE as u64),
            0,
            "unflushed store must vanish"
        );
    }

    #[test]
    fn clwb_persists_whole_cachelines() {
        let p = pool(8192);
        // Two words in the same cacheline; flushing a 1-byte range still
        // writes back the whole line.
        p.write_u64(ROOT_AREA, 10);
        p.write_u64(ROOT_AREA + 8, 20);
        p.persist(ROOT_AREA + 8, 1);
        p.crash();
        assert_eq!(p.read_u64(ROOT_AREA), 10);
        assert_eq!(p.read_u64(ROOT_AREA + 8), 20);
    }

    #[test]
    fn ntstore_is_durable() {
        let p = pool(8192);
        p.ntstore_u64(ROOT_AREA, 42);
        p.sfence();
        p.crash();
        assert_eq!(p.read_u64(ROOT_AREA), 42);
    }

    #[test]
    fn crash_is_idempotent_and_repeatable() {
        let p = pool(8192);
        p.write_u64(ROOT_AREA, 5);
        p.persist(ROOT_AREA, 8);
        p.write_u64(ROOT_AREA, 6); // not persisted
        p.crash();
        assert_eq!(p.read_u64(ROOT_AREA), 5);
        p.crash();
        assert_eq!(p.read_u64(ROOT_AREA), 5);
    }

    #[test]
    fn elided_mode_skips_shadow() {
        let p = PmPool::new(8192, PmConfig::dram());
        p.write_u64(ROOT_AREA, 9);
        p.persist(ROOT_AREA, 8);
        // In DRAM mode the persisted image is never updated...
        p.crash();
        // ...so a crash wipes even "persisted" data back to zero.
        assert_eq!(p.read_u64(ROOT_AREA), 0);
        // But stats still counted the instructions.
        let s = p.stats();
        assert_eq!(s.clwb, 1);
        assert_eq!(s.fence, 1);
    }

    #[test]
    fn stats_media_granularity() {
        let p = pool(1 << 20);
        p.reset_stats();
        // Read one u64: one media block (cold cache).
        let target = 512 * 1024;
        p.read_u64(target);
        let s = p.stats();
        assert_eq!(s.read_ops, 1);
        assert_eq!(s.read_bytes, 8);
        assert_eq!(s.media_read_bytes, MEDIA_BLOCK as u64);
        // Second read of the same block: cache hit, no extra media traffic.
        p.read_u64(target + 8);
        let s2 = p.stats();
        assert_eq!(s2.media_read_bytes, MEDIA_BLOCK as u64);
        assert_eq!(s2.read_bytes, 16);
    }

    #[test]
    fn flush_media_write_accounting() {
        let p = pool(1 << 20);
        p.reset_stats();
        p.write_u64(ROOT_AREA, 1);
        p.persist(ROOT_AREA, 8);
        let s = p.stats();
        assert_eq!(s.media_write_bytes, MEDIA_BLOCK as u64);
        // A flush spanning two media blocks counts both.
        p.write_bytes(MEDIA_BLOCK as u64 * 8 - 4, &[1u8; 8]);
        p.persist(MEDIA_BLOCK as u64 * 8 - 4, 8);
        let s2 = p.stats();
        assert_eq!(s2.media_write_bytes, 3 * MEDIA_BLOCK as u64);
    }

    #[test]
    fn root_slots() {
        let p = pool(8192);
        p.write_root(3, 777);
        p.crash();
        assert_eq!(p.read_root(3), 777);
    }

    #[test]
    #[should_panic(expected = "root slot out of range")]
    fn root_slot_bounds() {
        let p = pool(8192);
        p.write_root(512, 1);
    }

    #[test]
    fn eviction_chaos_persists_some_unflushed_words() {
        let p = PmPool::new(1 << 16, PmConfig::real().with_eviction_chaos(42));
        for i in 0..1000u64 {
            p.write_u64(ROOT_AREA + i * 8, i + 1);
        }
        p.crash();
        let survived = (0..1000u64)
            .filter(|&i| p.read_u64(ROOT_AREA + i * 8) != 0)
            .count();
        // Roughly a quarter should have been spontaneously evicted:
        // definitely some, definitely not all.
        assert!(survived > 50, "survived={survived}");
        assert!(survived < 950, "survived={survived}");
    }

    #[test]
    fn concurrent_counting_and_access() {
        let p = std::sync::Arc::new(pool(1 << 20));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let p = p.clone();
                std::thread::spawn(move || {
                    let base = ROOT_AREA + t * 65536;
                    for i in 0..1000u64 {
                        p.write_u64(base + i * 8, i);
                        p.persist(base + i * 8, 8);
                    }
                    for i in 0..1000u64 {
                        assert_eq!(p.read_u64(base + i * 8), i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = p.stats();
        assert_eq!(s.write_ops, 4000);
        assert_eq!(s.read_ops, 4000);
        assert_eq!(s.clwb, 4000);
    }

    #[test]
    fn clwb_clamps_at_pool_end() {
        let p = pool(4096 + 256);
        let last = p.len() as u64 - 8;
        p.write_u64(last, 77);
        // Flush range extends past the end; must clamp, not panic.
        p.persist(last, 8);
        p.crash();
        assert_eq!(p.read_u64(last), 77);
    }

    #[test]
    fn empty_byte_ops_are_noops() {
        let p = pool(8192);
        p.write_bytes(ROOT_AREA, &[]);
        let mut buf = [0u8; 0];
        p.read_bytes(ROOT_AREA, &mut buf);
        p.clwb(ROOT_AREA, 0);
        assert_eq!(p.stats().clwb, 0, "zero-length clwb not counted");
    }

    #[test]
    fn persist_all_snapshots_everything() {
        let p = pool(8192);
        for i in 0..64u64 {
            p.write_u64(ROOT_AREA + i * 8, i + 1);
        }
        p.persist_all();
        p.write_u64(ROOT_AREA, 999); // unflushed overwrite
        p.crash();
        assert_eq!(p.read_u64(ROOT_AREA), 1);
        assert_eq!(p.read_u64(ROOT_AREA + 63 * 8), 64);
    }

    #[test]
    fn pool_len_rounds_to_media_block() {
        let p = PmPool::new(1000, PmConfig::real());
        assert_eq!(p.len() % MEDIA_BLOCK, 0);
        assert!(p.len() >= 1000);
        assert!(!p.is_empty());
    }

    #[test]
    fn dirty_tracking_counts_unflushed_words() {
        let p = pool(8192);
        assert_eq!(p.dirty_word_count(), 0);
        p.write_u64(ROOT_AREA, 1);
        p.write_u64(ROOT_AREA + 8, 2); // same cache line
        p.write_u64(ROOT_AREA + 128, 3); // different line
        assert_eq!(p.dirty_word_count(), 3);
        assert_eq!(p.dirty_line_count(), 2);
        assert_eq!(p.dirty_line_offsets(8), vec![ROOT_AREA, ROOT_AREA + 128]);
        p.persist(ROOT_AREA, 8); // flushes the whole first line
        assert_eq!(p.dirty_word_count(), 1);
        assert_eq!(p.dirty_line_count(), 1);
        p.crash();
        assert_eq!(p.dirty_word_count(), 0, "crash discards dirty state");
    }

    #[test]
    fn redundant_clwb_is_audited() {
        let p = pool(8192);
        p.write_u64(ROOT_AREA, 1);
        p.persist(ROOT_AREA, 8);
        assert_eq!(p.stats().clwb_redundant, 0);
        p.persist(ROOT_AREA, 8); // nothing dirty: redundant
        let s = p.stats();
        assert_eq!(s.clwb, 2);
        assert_eq!(s.clwb_redundant, 1);
        // A new store makes the next flush useful again.
        p.write_u64(ROOT_AREA, 2);
        p.persist(ROOT_AREA, 8);
        assert_eq!(p.stats().clwb_redundant, 1);
    }

    #[test]
    fn ntstore_leaves_no_dirt() {
        let p = pool(8192);
        p.ntstore_u64(ROOT_AREA, 42);
        assert_eq!(p.dirty_word_count(), 0);
    }

    #[test]
    fn armed_crash_fires_at_exact_event_and_freezes_pool() {
        let p = pool(8192);
        // Three persistence events per loop iteration: clwb + sfence
        // (via persist) on distinct lines, then an ntstore.
        p.arm_crash_after(5);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for i in 0..10u64 {
                let off = ROOT_AREA + i * 64;
                p.write_u64(off, i + 1);
                p.persist(off, 8); // events 1+2, 4+5, ...
                p.ntstore_u64(off + 8, 100 + i); // events 3, 6, ...
            }
        }));
        let payload = result.expect_err("crash point must fire");
        assert!(
            payload.downcast_ref::<crate::CrashPointHit>().is_some(),
            "panic payload must be CrashPointHit"
        );
        assert!(p.crash_fired());
        let report = p.crash_report().expect("report captured");
        assert_eq!(report.event_index, 5);
        assert_eq!(report.trigger, crate::PersistEventKind::Sfence);
        // Iteration 0 fully persisted; iteration 1's clwb (event 4)
        // persisted its line but the fence (event 5) was the trip; the
        // second iteration's ntstore never ran.
        assert_eq!(report.dirty_words, 0, "clwb already cleaned the line");
        // While frozen, persistence is suppressed.
        p.write_u64(ROOT_AREA + 1024, 7);
        p.persist(ROOT_AREA + 1024, 8);
        p.ntstore_u64(ROOT_AREA + 1032, 8);
        p.crash();
        assert_eq!(
            p.read_u64(ROOT_AREA + 1024),
            0,
            "frozen clwb must not persist"
        );
        assert_eq!(
            p.read_u64(ROOT_AREA + 1032),
            0,
            "frozen ntstore must not persist"
        );
        // Pre-crash durable state survived; post-trip events did not.
        assert_eq!(p.read_u64(ROOT_AREA), 1);
        assert_eq!(p.read_u64(ROOT_AREA + 8), 100);
        assert_eq!(
            p.read_u64(ROOT_AREA + 64),
            2,
            "clwb before the fatal fence persisted"
        );
        assert!(!p.crash_fired(), "crash() clears the frozen state");
        assert!(p.crash_report().is_some(), "report survives crash()");
    }

    #[test]
    fn crash_on_ntstore_suppresses_the_store() {
        let p = pool(8192);
        p.arm_crash_after(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.ntstore_u64(ROOT_AREA, 99);
        }));
        assert!(result.is_err());
        assert_eq!(
            p.crash_report().unwrap().trigger,
            crate::PersistEventKind::Ntstore
        );
        p.crash();
        assert_eq!(p.read_u64(ROOT_AREA), 0, "fatal ntstore never retired");
    }

    #[test]
    fn disarm_cancels_pending_crash() {
        let p = pool(8192);
        p.arm_crash_after(3);
        p.write_u64(ROOT_AREA, 1);
        p.persist(ROOT_AREA, 8); // events 1, 2
        assert_eq!(p.crash_events_remaining(), 1);
        p.disarm_crash();
        p.persist(ROOT_AREA, 8); // would have been the fatal event
        assert!(!p.crash_fired());
        assert!(p.crash_report().is_none());
    }

    #[test]
    fn chaos_eviction_is_disabled_while_frozen() {
        let p = PmPool::new(1 << 16, PmConfig::real().with_eviction_chaos(7));
        p.arm_crash_after(1);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.sfence()));
        assert!(p.crash_fired());
        // A storm of unflushed writes while frozen: none may persist.
        for i in 0..1000u64 {
            p.write_u64(ROOT_AREA + i * 8, i + 1);
        }
        p.crash();
        for i in 0..1000u64 {
            assert_eq!(p.read_u64(ROOT_AREA + i * 8), 0);
        }
    }

    #[test]
    fn event_counter_is_monotonic_and_probe_friendly() {
        let p = pool(8192);
        let base = p.persist_event_count();
        p.write_u64(ROOT_AREA, 1);
        p.persist(ROOT_AREA, 8);
        p.ntstore_u64(ROOT_AREA + 64, 2);
        p.sfence();
        assert_eq!(p.persist_event_count() - base, 4);
    }

    #[test]
    fn cas_and_fetch_ops() {
        let p = pool(8192);
        p.write_u64(ROOT_AREA, 10);
        assert_eq!(p.cas_u64(ROOT_AREA, 10, 11), Ok(10));
        assert_eq!(p.cas_u64(ROOT_AREA, 10, 12), Err(11));
        assert_eq!(p.fetch_or_u64(ROOT_AREA, 0x100, Ordering::AcqRel), 11);
        assert_eq!(p.fetch_and_u64(ROOT_AREA, 0xff, Ordering::AcqRel), 0x10b);
        assert_eq!(p.fetch_add_u64(ROOT_AREA, 1, Ordering::AcqRel), 0x0b);
        assert_eq!(p.read_u64(ROOT_AREA), 0x0c);
    }

    #[test]
    fn crash_with_subset_keeps_exactly_the_masked_lines() {
        let p = pool(8192);
        // Three dirty lines, none flushed.
        p.write_u64(ROOT_AREA, 1);
        p.write_u64(ROOT_AREA + 64, 2);
        p.write_u64(ROOT_AREA + 128, 3);
        assert_eq!(p.residual_candidates().len(), 3);
        // Keep only the middle line (candidates are recency-ordered,
        // so bit 1 is the second-most-recent write: ROOT_AREA + 64).
        let n = p.crash_with(crate::ResidualPolicy::Subset { mask: 0b010 });
        assert_eq!(n, 3);
        assert_eq!(p.read_u64(ROOT_AREA), 0, "unselected line vanished");
        assert_eq!(p.read_u64(ROOT_AREA + 64), 2, "selected line persisted");
        assert_eq!(p.read_u64(ROOT_AREA + 128), 0);
        // The applied line is durable: a second plain crash keeps it.
        p.crash();
        assert_eq!(p.read_u64(ROOT_AREA + 64), 2);
    }

    #[test]
    fn crash_with_frozen_matches_plain_crash() {
        let p = pool(8192);
        p.write_u64(ROOT_AREA, 7);
        p.persist(ROOT_AREA, 8);
        p.write_u64(ROOT_AREA + 64, 8); // dirty, unflushed
        p.crash_with(crate::ResidualPolicy::Frozen);
        assert_eq!(p.read_u64(ROOT_AREA), 7);
        assert_eq!(p.read_u64(ROOT_AREA + 64), 0);
    }

    #[test]
    fn sampled_residual_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<u64> {
            let p = pool(1 << 16);
            for i in 0..64u64 {
                p.write_u64(ROOT_AREA + i * 64, i + 1);
            }
            p.crash_with(crate::ResidualPolicy::Sampled {
                seed,
                p_per_256: 128,
            });
            (0..64u64).map(|i| p.read_u64(ROOT_AREA + i * 64)).collect()
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed, same residual image");
        assert_ne!(a, c, "different seed, different subset");
        let survived = a.iter().filter(|&&v| v != 0).count();
        assert!(survived > 8 && survived < 56, "p=50%: survived={survived}");
    }

    #[test]
    fn residual_candidates_are_ordered_most_recent_first() {
        let p = pool(8192);
        p.write_u64(ROOT_AREA, 1); // line A, oldest write...
        p.write_u64(ROOT_AREA + 64, 2); // line B
        p.write_u64(ROOT_AREA + 128, 3); // line C
        p.write_u64(ROOT_AREA + 8, 4); // ...but A is rewritten last
        let offs: Vec<u64> = p.residual_candidates().iter().map(|l| l.off).collect();
        assert_eq!(offs, vec![ROOT_AREA, ROOT_AREA + 128, ROOT_AREA + 64]);
        // Flushing a line removes it without disturbing the order.
        p.persist(ROOT_AREA + 128, 8);
        let offs: Vec<u64> = p.residual_candidates().iter().map(|l| l.off).collect();
        assert_eq!(offs, vec![ROOT_AREA, ROOT_AREA + 64]);
    }

    #[test]
    fn residual_candidates_are_frozen_at_the_trip_instant() {
        let p = pool(8192);
        p.write_u64(ROOT_AREA, 1); // dirty at trip time
        p.arm_crash_after(1);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.sfence()));
        assert!(p.crash_fired());
        // Post-trip stores (e.g. from unwinding destructors) must not
        // enter the candidate set: they never happened.
        p.write_u64(ROOT_AREA + 512, 99);
        let cands = p.residual_candidates();
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].off, ROOT_AREA);
        assert_eq!(cands[0].words[0], 1);
    }

    #[test]
    fn snapshot_restore_roundtrip_resets_everything() {
        let p = pool(8192);
        p.write_u64(ROOT_AREA, 5);
        p.persist(ROOT_AREA, 8);
        let img = p.snapshot_persisted();
        p.write_u64(ROOT_AREA, 6);
        p.persist(ROOT_AREA, 8);
        p.write_u64(ROOT_AREA + 64, 7); // leave dirt
        p.poison_line(ROOT_AREA + 128);
        p.restore_persisted(&img);
        assert_eq!(p.read_u64(ROOT_AREA), 5, "snapshot image restored");
        assert_eq!(p.dirty_word_count(), 0, "restore clears dirt");
        assert_eq!(p.poisoned_line_count(), 0, "restore clears poison");
        p.crash();
        assert_eq!(p.read_u64(ROOT_AREA), 5, "restored image is durable");
    }

    #[test]
    fn poisoned_read_raises_and_check_readable_reports() {
        let p = pool(8192);
        p.write_u64(ROOT_AREA + 256, 11);
        p.persist(ROOT_AREA + 256, 8);
        p.poison_line(ROOT_AREA + 256);
        assert_eq!(p.poisoned_line_count(), 1);
        let err = p
            .check_readable(ROOT_AREA, 1024)
            .expect_err("range covers the poisoned line");
        assert_eq!(err.off, ROOT_AREA + 256);
        assert!(p.check_readable(ROOT_AREA, 64).is_ok());
        let r =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.read_u64(ROOT_AREA + 256)));
        let payload = r.expect_err("read of poisoned line must raise");
        let mce = payload
            .downcast_ref::<crate::PoisonedRead>()
            .expect("payload is PoisonedRead");
        assert_eq!(mce.off, ROOT_AREA + 256);
        // CAS is a consuming read too.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = p.cas_u64(ROOT_AREA + 256, 0, 1);
        }));
        assert!(r.is_err(), "RMW on poisoned line must raise");
    }

    #[test]
    fn poison_survives_crash_and_clears_on_full_rewrite() {
        let p = pool(8192);
        p.poison_line(ROOT_AREA + 64);
        p.crash();
        assert_eq!(
            p.poisoned_line_count(),
            1,
            "media errors outlive power cycles"
        );
        // Partial rewrite: still poisoned.
        for j in 0..7u64 {
            p.write_u64(ROOT_AREA + 64 + j * 8, j);
        }
        assert_eq!(p.poisoned_line_count(), 1);
        assert!(p.check_readable(ROOT_AREA + 64, 64).is_err());
        // Final word completes the line: poison clears, data readable.
        p.write_u64(ROOT_AREA + 64 + 56, 7);
        assert_eq!(p.poisoned_line_count(), 0);
        assert!(p.check_readable(ROOT_AREA + 64, 64).is_ok());
        assert_eq!(p.read_u64(ROOT_AREA + 64), 0);
    }

    #[test]
    fn scrub_poison_zero_fills_and_clears() {
        let p = pool(8192);
        p.write_u64(ROOT_AREA + 128, 33);
        p.persist(ROOT_AREA + 128, 8);
        p.poison_line(ROOT_AREA + 128);
        p.scrub_poison(ROOT_AREA + 128, 8);
        assert_eq!(p.poisoned_line_count(), 0);
        assert_eq!(p.read_u64(ROOT_AREA + 128), 0, "scrub zero-fills");
        p.crash();
        assert_eq!(p.read_u64(ROOT_AREA + 128), 0, "scrub reaches media");
    }

    #[test]
    fn halt_on_crash_unwinds_later_accesses() {
        let p = pool(8192);
        p.set_halt_on_crash(true);
        p.arm_crash_after(1);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.sfence()));
        assert!(p.is_halted());
        // Any PM access from a non-panicking thread now unwinds: the
        // device is gone.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.read_u64(ROOT_AREA)));
        assert!(
            r.unwrap_err()
                .downcast_ref::<crate::CrashPointHit>()
                .is_some(),
            "halted access unwinds with CrashPointHit"
        );
        let r =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.write_u64(ROOT_AREA, 1)));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.sfence()));
        assert!(r.is_err());
        // The harness lifts the halt before dropping front-ends.
        p.set_halt_on_crash(false);
        assert!(!p.is_halted());
        p.crash();
        assert_eq!(p.read_u64(ROOT_AREA), 0);
    }
}
