//! Access statistics with striped, cache-padded counters.
//!
//! Every PM access is counted twice: once at *software* granularity (the
//! bytes the program asked for) and once at *media* granularity (the
//! 256-byte blocks the device actually touches, like DCPMM's XPLine).
//! The ratio of the two is the read/write amplification the paper
//! reports; the media totals divided by wall time give the bandwidth
//! figures.
//!
//! A single shared `AtomicU64` per counter would serialize a 40-thread
//! benchmark on counter cache lines, so counters are striped: each
//! thread hashes to one of [`N_STRIPES`] cache-padded cells and updates
//! it with relaxed ordering. Snapshots sum the stripes.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crossbeam_utils::CachePadded;

/// Number of counter stripes. More than any realistic thread count on
/// the target machines; power of two for cheap masking.
const N_STRIPES: usize = 64;

/// One stripe worth of counters.
#[derive(Default)]
struct Stripe {
    read_ops: AtomicU64,
    read_bytes: AtomicU64,
    write_ops: AtomicU64,
    write_bytes: AtomicU64,
    media_read_bytes: AtomicU64,
    media_write_bytes: AtomicU64,
    clwb: AtomicU64,
    clwb_redundant: AtomicU64,
    ntstore: AtomicU64,
    fence: AtomicU64,
}

/// Striped counter set owned by a pool.
pub(crate) struct PmStats {
    stripes: Box<[CachePadded<Stripe>]>,
}

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Round-robin stripe assignment: consecutive threads get distinct
    /// stripes until the stripe count wraps.
    static THREAD_SLOT: usize =
        NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed) & (N_STRIPES - 1);
}

#[inline]
fn slot() -> usize {
    THREAD_SLOT.with(|s| *s)
}

impl PmStats {
    pub(crate) fn new() -> Self {
        let stripes = (0..N_STRIPES)
            .map(|_| CachePadded::new(Stripe::default()))
            .collect();
        Self { stripes }
    }

    #[inline]
    fn stripe(&self) -> &Stripe {
        &self.stripes[slot()]
    }

    #[inline]
    pub(crate) fn count_read(&self, bytes: u64, media_blocks: u64) {
        let s = self.stripe();
        s.read_ops.fetch_add(1, Ordering::Relaxed);
        s.read_bytes.fetch_add(bytes, Ordering::Relaxed);
        s.media_read_bytes
            .fetch_add(media_blocks * super::MEDIA_BLOCK as u64, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_write(&self, bytes: u64) {
        let s = self.stripe();
        s.write_ops.fetch_add(1, Ordering::Relaxed);
        s.write_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_media_write(&self, media_blocks: u64) {
        self.stripe()
            .media_write_bytes
            .fetch_add(media_blocks * super::MEDIA_BLOCK as u64, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_clwb(&self) {
        self.stripe().clwb.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_clwb_redundant(&self) {
        self.stripe().clwb_redundant.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_ntstore(&self) {
        self.stripe().ntstore.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_fence(&self) {
        self.stripe().fence.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> PmStatsSnapshot {
        let mut out = PmStatsSnapshot::default();
        for s in self.stripes.iter() {
            out.read_ops += s.read_ops.load(Ordering::Relaxed);
            out.read_bytes += s.read_bytes.load(Ordering::Relaxed);
            out.write_ops += s.write_ops.load(Ordering::Relaxed);
            out.write_bytes += s.write_bytes.load(Ordering::Relaxed);
            out.media_read_bytes += s.media_read_bytes.load(Ordering::Relaxed);
            out.media_write_bytes += s.media_write_bytes.load(Ordering::Relaxed);
            out.clwb += s.clwb.load(Ordering::Relaxed);
            out.clwb_redundant += s.clwb_redundant.load(Ordering::Relaxed);
            out.ntstore += s.ntstore.load(Ordering::Relaxed);
            out.fence += s.fence.load(Ordering::Relaxed);
        }
        out
    }

    pub(crate) fn reset(&self) {
        for s in self.stripes.iter() {
            s.read_ops.store(0, Ordering::Relaxed);
            s.read_bytes.store(0, Ordering::Relaxed);
            s.write_ops.store(0, Ordering::Relaxed);
            s.write_bytes.store(0, Ordering::Relaxed);
            s.media_read_bytes.store(0, Ordering::Relaxed);
            s.media_write_bytes.store(0, Ordering::Relaxed);
            s.clwb.store(0, Ordering::Relaxed);
            s.clwb_redundant.store(0, Ordering::Relaxed);
            s.ntstore.store(0, Ordering::Relaxed);
            s.fence.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time aggregate of a pool's counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PmStatsSnapshot {
    /// Number of load operations issued against PM.
    pub read_ops: u64,
    /// Bytes the software asked to read.
    pub read_bytes: u64,
    /// Number of store operations issued against PM.
    pub write_ops: u64,
    /// Bytes the software asked to write.
    pub write_bytes: u64,
    /// Bytes the emulated media served for reads (256 B granularity).
    pub media_read_bytes: u64,
    /// Bytes the emulated media absorbed from write-backs (256 B granularity).
    pub media_write_bytes: u64,
    /// `clwb`/`clflushopt` instructions issued.
    pub clwb: u64,
    /// Redundant write-backs: `clwb` calls whose covered cache lines
    /// were all already clean (pmemcheck-style durability audit).
    pub clwb_redundant: u64,
    /// Non-temporal stores issued.
    pub ntstore: u64,
    /// Store fences issued.
    pub fence: u64,
}

impl PmStatsSnapshot {
    /// Counter-wise difference `self - earlier` (saturating, so a
    /// concurrent reset cannot panic).
    pub fn since(&self, earlier: &PmStatsSnapshot) -> PmStatsSnapshot {
        PmStatsSnapshot {
            read_ops: self.read_ops.saturating_sub(earlier.read_ops),
            read_bytes: self.read_bytes.saturating_sub(earlier.read_bytes),
            write_ops: self.write_ops.saturating_sub(earlier.write_ops),
            write_bytes: self.write_bytes.saturating_sub(earlier.write_bytes),
            media_read_bytes: self
                .media_read_bytes
                .saturating_sub(earlier.media_read_bytes),
            media_write_bytes: self
                .media_write_bytes
                .saturating_sub(earlier.media_write_bytes),
            clwb: self.clwb.saturating_sub(earlier.clwb),
            clwb_redundant: self.clwb_redundant.saturating_sub(earlier.clwb_redundant),
            ntstore: self.ntstore.saturating_sub(earlier.ntstore),
            fence: self.fence.saturating_sub(earlier.fence),
        }
    }

    /// Counter-wise sum `self + other`, for aggregating the pools of a
    /// multi-shard index into one set of amplification/bandwidth figures.
    pub fn merge(&mut self, other: &PmStatsSnapshot) {
        self.read_ops += other.read_ops;
        self.read_bytes += other.read_bytes;
        self.write_ops += other.write_ops;
        self.write_bytes += other.write_bytes;
        self.media_read_bytes += other.media_read_bytes;
        self.media_write_bytes += other.media_write_bytes;
        self.clwb += other.clwb;
        self.clwb_redundant += other.clwb_redundant;
        self.ntstore += other.ntstore;
        self.fence += other.fence;
    }

    /// Sum an iterator of snapshots (one per shard pool).
    pub fn merged<'a, I: IntoIterator<Item = &'a PmStatsSnapshot>>(iter: I) -> PmStatsSnapshot {
        let mut out = PmStatsSnapshot::default();
        for s in iter {
            out.merge(s);
        }
        out
    }

    /// Read amplification: media bytes per software byte read.
    pub fn read_amplification(&self) -> f64 {
        if self.read_bytes == 0 {
            0.0
        } else {
            self.media_read_bytes as f64 / self.read_bytes as f64
        }
    }

    /// Write amplification: media bytes per software byte written.
    pub fn write_amplification(&self) -> f64 {
        if self.write_bytes == 0 {
            0.0
        } else {
            self.media_write_bytes as f64 / self.write_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_sums_and_resets() {
        let st = PmStats::new();
        st.count_read(8, 1);
        st.count_read(16, 2);
        st.count_write(8);
        st.count_media_write(1);
        st.count_clwb();
        st.count_fence();
        st.count_ntstore();
        let s = st.snapshot();
        assert_eq!(s.read_ops, 2);
        assert_eq!(s.read_bytes, 24);
        assert_eq!(s.media_read_bytes, 3 * 256);
        assert_eq!(s.write_ops, 1);
        assert_eq!(s.write_bytes, 8);
        assert_eq!(s.media_write_bytes, 256);
        assert_eq!(s.clwb, 1);
        assert_eq!(s.fence, 1);
        assert_eq!(s.ntstore, 1);
        st.reset();
        assert_eq!(st.snapshot(), PmStatsSnapshot::default());
    }

    #[test]
    fn since_subtracts() {
        let st = PmStats::new();
        st.count_read(8, 1);
        let a = st.snapshot();
        st.count_read(8, 1);
        let b = st.snapshot();
        let d = b.since(&a);
        assert_eq!(d.read_ops, 1);
        assert_eq!(d.read_bytes, 8);
    }

    #[test]
    fn amplification_ratios() {
        let s = PmStatsSnapshot {
            read_bytes: 64,
            media_read_bytes: 256,
            write_bytes: 8,
            media_write_bytes: 256,
            ..Default::default()
        };
        assert_eq!(s.read_amplification(), 4.0);
        assert_eq!(s.write_amplification(), 32.0);
        assert_eq!(PmStatsSnapshot::default().read_amplification(), 0.0);
    }

    #[test]
    fn merge_sums_counterwise() {
        let a = PmStatsSnapshot {
            read_ops: 1,
            read_bytes: 8,
            media_read_bytes: 256,
            clwb: 2,
            ..Default::default()
        };
        let b = PmStatsSnapshot {
            read_ops: 3,
            read_bytes: 24,
            media_read_bytes: 512,
            fence: 1,
            ..Default::default()
        };
        let m = PmStatsSnapshot::merged([&a, &b]);
        assert_eq!(m.read_ops, 4);
        assert_eq!(m.read_bytes, 32);
        assert_eq!(m.media_read_bytes, 768);
        assert_eq!(m.clwb, 2);
        assert_eq!(m.fence, 1);
        assert_eq!(
            PmStatsSnapshot::merged(std::iter::empty()),
            PmStatsSnapshot::default()
        );
    }

    mod algebra {
        //! `PmStatsSnapshot` forms a commutative monoid under `merge`
        //! with `default()` as identity, and `since` is its counter-wise
        //! inverse. Sharded aggregation and the time-series sampler both
        //! lean on these laws, so pin them down with property tests.

        use super::*;
        use proptest::collection::vec;
        use proptest::prelude::*;

        /// Arbitrary snapshot with counters bounded so that merging a
        /// handful can never overflow `u64` (merge uses plain `+=`).
        fn arb_snapshot() -> impl Strategy<Value = PmStatsSnapshot> {
            vec(any::<u32>(), 10..11).prop_map(|v| PmStatsSnapshot {
                read_ops: v[0] as u64,
                read_bytes: v[1] as u64,
                write_ops: v[2] as u64,
                write_bytes: v[3] as u64,
                media_read_bytes: v[4] as u64,
                media_write_bytes: v[5] as u64,
                clwb: v[6] as u64,
                clwb_redundant: v[7] as u64,
                ntstore: v[8] as u64,
                fence: v[9] as u64,
            })
        }

        fn plus(a: &PmStatsSnapshot, b: &PmStatsSnapshot) -> PmStatsSnapshot {
            let mut m = *a;
            m.merge(b);
            m
        }

        proptest! {
            #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

            #[test]
            fn merge_is_commutative(a in arb_snapshot(), b in arb_snapshot()) {
                prop_assert_eq!(plus(&a, &b), plus(&b, &a));
            }

            #[test]
            fn merge_is_associative(
                a in arb_snapshot(),
                b in arb_snapshot(),
                c in arb_snapshot(),
            ) {
                prop_assert_eq!(plus(&plus(&a, &b), &c), plus(&a, &plus(&b, &c)));
            }

            #[test]
            fn default_is_merge_identity(a in arb_snapshot()) {
                let id = PmStatsSnapshot::default();
                prop_assert_eq!(plus(&a, &id), a);
                prop_assert_eq!(plus(&id, &a), a);
            }

            #[test]
            fn since_inverts_merge(a in arb_snapshot(), b in arb_snapshot()) {
                // (a ⊕ b).since(a) == b, counter-wise.
                prop_assert_eq!(plus(&a, &b).since(&a), b);
                prop_assert_eq!(a.since(&a), PmStatsSnapshot::default());
                // since never underflows even when "earlier" is larger.
                prop_assert_eq!(
                    PmStatsSnapshot::default().since(&a),
                    PmStatsSnapshot::default()
                );
            }
        }
    }

    #[test]
    fn counting_from_many_threads_is_complete() {
        let st = std::sync::Arc::new(PmStats::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let st = st.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        st.count_read(8, 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(st.snapshot().read_ops, 8000);
    }
}
