//! # pmwcas — persistent multi-word compare-and-swap
//!
//! A from-scratch implementation of PMwCAS (Wang, Levandoski, Larson,
//! ICDE 2018): the lock-free building block BzTree is written against.
//! It atomically — and durably — swaps up to [`MAX_WORDS`] 8-byte words,
//! surviving crashes at any point.
//!
//! ## Protocol
//!
//! 1. **Describe.** The operation records `(address, expected, new)`
//!    for each word in a persistent *descriptor*, then publishes the
//!    descriptor by persisting its status word (sequence + `Undecided`).
//! 2. **Phase 1 — install.** For every word in address order, CAS
//!    `expected → descriptor pointer` (a tagged sentinel with bit 63
//!    set). Any thread that reads a descriptor pointer *helps* complete
//!    the operation instead of blocking. A mismatch decides `Failed`.
//! 3. **Decide.** CAS the status to `Succeeded`/`Failed` and persist it
//!    — the linearization and durability point.
//! 4. **Phase 2 — propagate.** Replace descriptor pointers with the new
//!    (or, on failure, old) values, marked *dirty* until flushed;
//!    readers that encounter a dirty word flush it and clear the bit
//!    before use, guaranteeing no one depends on unpersisted data.
//!
//! Recovery scans the descriptor pool: `Succeeded` descriptors roll
//! forward, anything else rolls back, and dirty bits are scrubbed.
//!
//! ## Reserved bits
//!
//! Managed words reserve **bit 63** (descriptor pointer flag) and
//! **bit 62** (dirty). Values stored through PMwCAS must fit in 62
//! bits — BzTree only stores node offsets and small metadata in managed
//! words, so this costs nothing.

use std::sync::Arc;

use parking_lot::Mutex;
use pmalloc::PmAllocator;
use pmem::{MediaError, PmPool};

/// Maximum words per operation (BzTree needs at most 3).
pub const MAX_WORDS: usize = 4;

/// Bit 63: the word currently holds a descriptor pointer.
pub const DESC_FLAG: u64 = 1 << 63;
/// Bit 62: the word's value may not have been persisted yet.
pub const DIRTY: u64 = 1 << 62;

const ST_FREE: u64 = 0;
const ST_UNDECIDED: u64 = 1;
const ST_SUCCEEDED: u64 = 2;
const ST_FAILED: u64 = 3;
const ST_MASK: u64 = 7;

/// Descriptors per pool: one per claim stripe.
const N_DESC: usize = 64;
/// Bytes per descriptor: status_seq, count, 4 × (addr, old, new).
const DESC_BYTES: u64 = 128;

/// Root-area slot where the descriptor area offset is published.
const SLOT_DESC_AREA: u64 = 32;

#[inline]
fn desc_ptr(idx: usize, seq: u64) -> u64 {
    DESC_FLAG | ((idx as u64) << 48) | (seq & 0xFFFF_FFFF_FFFF)
}

#[inline]
fn ptr_idx(ptr: u64) -> usize {
    ((ptr >> 48) & 0x3FFF) as usize
}

#[inline]
fn ptr_seq(ptr: u64) -> u64 {
    ptr & 0xFFFF_FFFF_FFFF
}

/// One word of an operation.
#[derive(Debug, Clone, Copy)]
pub struct WordDescriptor {
    /// Pool offset of the target word (8-aligned).
    pub addr: u64,
    /// Expected current value.
    pub old: u64,
    /// Value to install.
    pub new: u64,
}

/// The PMwCAS runtime: a persistent descriptor pool bound to a
/// [`PmPool`].
pub struct PmwCas {
    pool: Arc<PmPool>,
    /// Pool offset of the descriptor area.
    base: u64,
    /// Volatile claim locks, one per descriptor.
    claims: Vec<Mutex<()>>,
}

impl PmwCas {
    /// Create a fresh descriptor area on a formatted allocator.
    pub fn create(alloc: &PmAllocator) -> Arc<PmwCas> {
        let pool = alloc.pool().clone();
        let base = alloc
            .alloc(N_DESC * DESC_BYTES as usize)
            .expect("pool too small for PMwCAS descriptors");
        for i in 0..N_DESC as u64 {
            for w in 0..DESC_BYTES / 8 {
                pool.write_u64(base + i * DESC_BYTES + w * 8, 0);
            }
        }
        pool.persist(base, (N_DESC as u64 * DESC_BYTES) as usize);
        pool.write_u64(SLOT_DESC_AREA * 8, base);
        pool.persist(SLOT_DESC_AREA * 8, 8);
        Arc::new(Self::shell(pool, base))
    }

    /// Reopen after a crash: complete or roll back every in-flight
    /// descriptor, then scrub dirty bits from their target words.
    /// Panics on a media error; use [`PmwCas::try_recover`] to handle
    /// poisoned descriptors gracefully.
    pub fn recover(alloc: &PmAllocator) -> Arc<PmwCas> {
        Self::try_recover(alloc).unwrap_or_else(|e| panic!("PMwCAS recovery failed: {e}"))
    }

    /// Fallible recovery: probes the descriptor area and every in-flight
    /// target word for media errors before interpreting them, so a
    /// poisoned line surfaces as a reported [`MediaError`] instead of an
    /// emulated machine-check.
    pub fn try_recover(alloc: &PmAllocator) -> Result<Arc<PmwCas>, MediaError> {
        let pool = alloc.pool().clone();
        pool.check_readable(SLOT_DESC_AREA * 8, 8)
            .map_err(|e| e.context("PMwCAS descriptor-area slot"))?;
        let base = pool.read_u64(SLOT_DESC_AREA * 8);
        assert!(base != 0, "recover() without a descriptor area");
        pool.check_readable(base, N_DESC * DESC_BYTES as usize)
            .map_err(|e| e.context("PMwCAS descriptor area"))?;
        let s = Self::shell(pool, base);
        for idx in 0..N_DESC {
            s.recover_descriptor(idx)?;
        }
        Ok(Arc::new(s))
    }

    fn shell(pool: Arc<PmPool>, base: u64) -> PmwCas {
        PmwCas {
            pool,
            base,
            claims: (0..N_DESC).map(|_| Mutex::new(())).collect(),
        }
    }

    #[inline]
    fn d_off(&self, idx: usize) -> u64 {
        self.base + idx as u64 * DESC_BYTES
    }

    #[inline]
    fn status_seq(&self, idx: usize) -> u64 {
        self.pool
            .load_u64(self.d_off(idx), std::sync::atomic::Ordering::Acquire)
    }

    fn word_of(&self, idx: usize, w: usize) -> WordDescriptor {
        let o = self.d_off(idx) + 16 + w as u64 * 24;
        WordDescriptor {
            addr: self.pool.read_u64(o),
            old: self.pool.read_u64(o + 8),
            new: self.pool.read_u64(o + 16),
        }
    }

    fn count_of(&self, idx: usize) -> usize {
        (self.pool.read_u64(self.d_off(idx) + 8) as usize).min(MAX_WORDS)
    }

    fn stripe() -> usize {
        use std::cell::Cell;
        use std::sync::atomic::{AtomicUsize, Ordering};
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        thread_local! {
            static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
        }
        SLOT.with(|s| {
            let mut v = s.get();
            if v == usize::MAX {
                v = NEXT.fetch_add(1, Ordering::Relaxed) % N_DESC;
                s.set(v);
            }
            v
        })
    }

    /// Atomically (and durably) swap `entries`. Returns `true` when all
    /// expected values matched and the new values are installed.
    ///
    /// Every word named here must be managed exclusively through
    /// [`PmwCas::mwcas`] / [`PmwCas::read`].
    pub fn mwcas(&self, entries: &[WordDescriptor]) -> bool {
        let _site = obs::site("pmwcas_mwcas");
        assert!(!entries.is_empty() && entries.len() <= MAX_WORDS);
        debug_assert!(entries
            .iter()
            .all(|e| e.old & (DESC_FLAG | DIRTY) == 0 && e.new & (DESC_FLAG | DIRTY) == 0));
        let idx = Self::stripe();
        let _claim = self.claims[idx].lock();
        let pool = &*self.pool;
        let d = self.d_off(idx);

        // Describe: fields first, then the status word that makes the
        // descriptor live.
        let mut sorted: Vec<WordDescriptor> = entries.to_vec();
        sorted.sort_unstable_by_key(|e| e.addr);
        pool.write_u64(d + 8, sorted.len() as u64);
        for (w, e) in sorted.iter().enumerate() {
            let o = d + 16 + w as u64 * 24;
            pool.write_u64(o, e.addr);
            pool.write_u64(o + 8, e.old);
            pool.write_u64(o + 16, e.new);
        }
        pool.persist(d + 8, 8 + sorted.len() * 24);
        let seq = (self.status_seq(idx) >> 3) + 1;
        let status = seq << 3 | ST_UNDECIDED;
        pool.store_u64(d, status, std::sync::atomic::Ordering::Release);
        pool.persist(d, 8);

        let ptr = desc_ptr(idx, seq);
        let ok = self.run_phase1(idx, seq, ptr);
        // Decide + persist (linearization point). A concurrent helper
        // may have decided differently (it can observe a word become
        // installable after we saw a mismatch, or vice versa), so the
        // authoritative outcome is the *decided status*, never our
        // local phase-1 result.
        let decided = seq << 3 | if ok { ST_SUCCEEDED } else { ST_FAILED };
        let _ = pool.cas_u64(d, status, decided);
        pool.persist(d, 8);
        let final_status = self.status_seq(idx);
        debug_assert_eq!(final_status >> 3, seq, "claimed descriptor reused");
        let ok = final_status & ST_MASK == ST_SUCCEEDED;
        // Propagate.
        self.run_phase2(idx, seq, ptr);
        // Retire.
        pool.store_u64(d, seq << 3 | ST_FREE, std::sync::atomic::Ordering::Release);
        pool.persist(d, 8);
        ok
    }

    /// Install descriptor pointers (phase 1). Returns whether all
    /// words matched.
    fn run_phase1(&self, idx: usize, seq: u64, ptr: u64) -> bool {
        let pool = &*self.pool;
        let count = self.count_of(idx);
        for w in 0..count {
            let e = self.word_of(idx, w);
            loop {
                // Stop if another helper already decided us.
                let st = self.status_seq(idx);
                if st >> 3 != seq || st & ST_MASK != ST_UNDECIDED {
                    return st & ST_MASK == ST_SUCCEEDED || st >> 3 != seq;
                }
                let cur = pool.load_u64(e.addr, std::sync::atomic::Ordering::Acquire);
                if cur == ptr {
                    break; // already installed (by a helper)
                }
                if cur & DESC_FLAG != 0 {
                    self.help(cur);
                    continue;
                }
                if cur & DIRTY != 0 {
                    self.flush_word(e.addr, cur);
                    continue;
                }
                if cur != e.old {
                    return false;
                }
                if pool.cas_u64(e.addr, cur, ptr).is_ok() {
                    pool.persist(e.addr, 8);
                    break;
                }
            }
        }
        true
    }

    /// Replace descriptor pointers with final values (phase 2).
    fn run_phase2(&self, idx: usize, seq: u64, ptr: u64) {
        let pool = &*self.pool;
        let st = self.status_seq(idx);
        if st >> 3 != seq {
            return; // descriptor reused; someone finished for us
        }
        let succeeded = st & ST_MASK == ST_SUCCEEDED;
        let count = self.count_of(idx);
        for w in 0..count {
            let e = self.word_of(idx, w);
            let val = if succeeded { e.new } else { e.old };
            if pool.cas_u64(e.addr, ptr, val | DIRTY).is_ok() {
                self.flush_word(e.addr, val | DIRTY);
            }
        }
    }

    /// Persist a dirty word and clear its dirty bit.
    fn flush_word(&self, addr: u64, observed: u64) {
        debug_assert!(observed & DIRTY != 0);
        self.pool.persist(addr, 8);
        let _ = self.pool.cas_u64(addr, observed, observed & !DIRTY);
    }

    /// Help complete the operation behind a descriptor pointer.
    fn help(&self, ptr: u64) {
        let idx = ptr_idx(ptr);
        let seq = ptr_seq(ptr);
        if idx >= N_DESC {
            return;
        }
        let st = self.status_seq(idx);
        if st >> 3 != seq {
            return; // already completed and reused
        }
        if st & ST_MASK == ST_UNDECIDED {
            let ok = self.run_phase1(idx, seq, ptr);
            let decided = seq << 3 | if ok { ST_SUCCEEDED } else { ST_FAILED };
            let _ = self.pool.cas_u64(self.d_off(idx), st, decided);
            self.pool.persist(self.d_off(idx), 8);
        }
        self.run_phase2(idx, seq, ptr);
    }

    /// Read a PMwCAS-managed word, resolving descriptor pointers and
    /// dirty bits. This is the only legal way to read managed words.
    pub fn read(&self, addr: u64) -> u64 {
        loop {
            let v = self
                .pool
                .load_u64(addr, std::sync::atomic::Ordering::Acquire);
            if v & DESC_FLAG != 0 {
                self.help(v);
                continue;
            }
            if v & DIRTY != 0 {
                self.flush_word(addr, v);
                return v & !DIRTY;
            }
            return v;
        }
    }

    /// Initialize a managed word (the word must not be shared yet).
    pub fn init_word(&self, addr: u64, value: u64) {
        debug_assert_eq!(value & (DESC_FLAG | DIRTY), 0);
        self.pool.write_u64(addr, value);
        self.pool.persist(addr, 8);
    }

    /// Recovery for one descriptor slot. Probes each in-flight target
    /// word before reading it — the descriptor names arbitrary
    /// application offsets that may sit on poisoned lines.
    fn recover_descriptor(&self, idx: usize) -> Result<(), MediaError> {
        let pool = &*self.pool;
        let st = self.status_seq(idx);
        let state = st & ST_MASK;
        if state == ST_FREE {
            return Ok(());
        }
        let seq = st >> 3;
        let ptr = desc_ptr(idx, seq);
        let succeeded = state == ST_SUCCEEDED;
        for w in 0..self.count_of(idx) {
            let e = self.word_of(idx, w);
            pool.check_readable(e.addr, 8)
                .map_err(|err| err.context("PMwCAS in-flight target word"))?;
            let cur = pool.read_u64(e.addr);
            if cur == ptr {
                let val = if succeeded { e.new } else { e.old };
                pool.write_u64(e.addr, val);
                pool.persist(e.addr, 8);
            } else if cur & DIRTY != 0 && cur & DESC_FLAG == 0 {
                pool.write_u64(e.addr, cur & !DIRTY);
                pool.persist(e.addr, 8);
            }
        }
        pool.write_u64(self.d_off(idx), seq << 3 | ST_FREE);
        pool.persist(self.d_off(idx), 8);
        Ok(())
    }

    /// The underlying pool.
    pub fn pool(&self) -> &Arc<PmPool> {
        &self.pool
    }

    /// Pool offset of the descriptor area block (so reachability GC in
    /// index recovery does not reclaim it).
    pub fn descriptor_area(&self) -> u64 {
        self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmalloc::AllocMode;
    use pmem::PmConfig;

    fn setup() -> (Arc<PmPool>, Arc<PmAllocator>, Arc<PmwCas>) {
        let pool = Arc::new(PmPool::new(4 << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        let mw = PmwCas::create(&alloc);
        (pool, alloc, mw)
    }

    #[test]
    fn single_word_success_and_failure() {
        let (_, alloc, mw) = setup();
        let a = alloc.alloc(64).unwrap();
        mw.init_word(a, 5);
        assert!(mw.mwcas(&[WordDescriptor {
            addr: a,
            old: 5,
            new: 6
        }]));
        assert_eq!(mw.read(a), 6);
        assert!(!mw.mwcas(&[WordDescriptor {
            addr: a,
            old: 5,
            new: 7
        }]));
        assert_eq!(mw.read(a), 6);
    }

    #[test]
    fn multi_word_is_all_or_nothing() {
        let (_, alloc, mw) = setup();
        let a = alloc.alloc(64).unwrap();
        let b = a + 8;
        mw.init_word(a, 1);
        mw.init_word(b, 2);
        // Second word mismatches: nothing may change.
        assert!(!mw.mwcas(&[
            WordDescriptor {
                addr: a,
                old: 1,
                new: 10
            },
            WordDescriptor {
                addr: b,
                old: 99,
                new: 20
            },
        ]));
        assert_eq!(mw.read(a), 1);
        assert_eq!(mw.read(b), 2);
        assert!(mw.mwcas(&[
            WordDescriptor {
                addr: a,
                old: 1,
                new: 10
            },
            WordDescriptor {
                addr: b,
                old: 2,
                new: 20
            },
        ]));
        assert_eq!(mw.read(a), 10);
        assert_eq!(mw.read(b), 20);
    }

    #[test]
    fn concurrent_transfers_conserve_sum() {
        // Two "accounts"; threads move one unit with 2-word PMwCAS.
        let (_, alloc, mw) = setup();
        let a = alloc.alloc(64).unwrap();
        let b = a + 8;
        mw.init_word(a, 1_000);
        mw.init_word(b, 1_000);
        std::thread::scope(|s| {
            for t in 0..8 {
                let mw = mw.clone();
                s.spawn(move || {
                    let (from, to) = if t % 2 == 0 { (a, b) } else { (b, a) };
                    let mut done = 0;
                    while done < 200 {
                        let f = mw.read(from);
                        let g = mw.read(to);
                        if f == 0 {
                            break;
                        }
                        if mw.mwcas(&[
                            WordDescriptor {
                                addr: from,
                                old: f,
                                new: f - 1,
                            },
                            WordDescriptor {
                                addr: to,
                                old: g,
                                new: g + 1,
                            },
                        ]) {
                            done += 1;
                        }
                    }
                });
            }
        });
        assert_eq!(mw.read(a) + mw.read(b), 2_000, "sum must be conserved");
    }

    #[test]
    fn concurrent_same_word_cas_once_each() {
        let (_, alloc, mw) = setup();
        let a = alloc.alloc(64).unwrap();
        mw.init_word(a, 0);
        // 8 threads increment 500 times each via 1-word mwcas.
        std::thread::scope(|s| {
            for _ in 0..8 {
                let mw = mw.clone();
                s.spawn(move || {
                    for _ in 0..500 {
                        loop {
                            let v = mw.read(a);
                            if mw.mwcas(&[WordDescriptor {
                                addr: a,
                                old: v,
                                new: v + 1,
                            }]) {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(mw.read(a), 4_000);
    }

    #[test]
    fn recovery_rolls_forward_succeeded_descriptor() {
        let (pool, alloc, mw) = setup();
        let a = alloc.alloc(64).unwrap();
        mw.init_word(a, 7);
        // Manually stage a crashed phase-2: descriptor decided
        // Succeeded, word still holds the descriptor pointer.
        let base = pool.read_u64(SLOT_DESC_AREA * 8);
        let seq = 41u64;
        pool.write_u64(base + 8, 1);
        pool.write_u64(base + 16, a);
        pool.write_u64(base + 24, 7);
        pool.write_u64(base + 32, 9);
        pool.write_u64(base, seq << 3 | ST_SUCCEEDED);
        pool.write_u64(a, desc_ptr(0, seq));
        pool.persist_all();
        pool.crash();
        let alloc = PmAllocator::recover(pool.clone(), AllocMode::General);
        let mw = PmwCas::recover(&alloc);
        assert_eq!(mw.read(a), 9, "succeeded mwcas must roll forward");
    }

    #[test]
    fn recovery_rolls_back_undecided_descriptor() {
        let (pool, alloc, mw) = setup();
        let a = alloc.alloc(64).unwrap();
        mw.init_word(a, 7);
        let base = pool.read_u64(SLOT_DESC_AREA * 8);
        let seq = 17u64;
        pool.write_u64(base + 8, 1);
        pool.write_u64(base + 16, a);
        pool.write_u64(base + 24, 7);
        pool.write_u64(base + 32, 9);
        pool.write_u64(base, seq << 3 | ST_UNDECIDED);
        pool.write_u64(a, desc_ptr(0, seq));
        pool.persist_all();
        pool.crash();
        let alloc = PmAllocator::recover(pool.clone(), AllocMode::General);
        let mw = PmwCas::recover(&alloc);
        assert_eq!(mw.read(a), 7, "undecided mwcas must roll back");
    }

    #[test]
    fn read_scrubs_dirty_bits() {
        let (pool, alloc, mw) = setup();
        let a = alloc.alloc(64).unwrap();
        // init_word rejects dirty values; stage one through the pool.
        pool.write_u64(a, 3 | DIRTY);
        pool.persist(a, 8);
        assert_eq!(mw.read(a), 3);
        assert_eq!(pool.read_u64(a), 3, "dirty bit cleared in place");
    }
}
