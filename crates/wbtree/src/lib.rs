//! # wbtree — wB+Tree (Chen & Jin, PVLDB 2015)
//!
//! A write-atomic, PM-only B+-tree. Its signature idea is avoiding the
//! key-shifting writes of a sorted node while keeping binary search:
//!
//! * **Slot-array indirection + bitmap.** Node entries are unsorted; a
//!   small *slot array* stores the sorted order of entry indices, and a
//!   one-word *bitmap* holds an entry-validity bit per slot plus one
//!   *slot-array-valid* flag bit. Binary search runs through the slot
//!   array.
//! * **Write-atomic node updates.** An insert (1) writes the record to
//!   a free entry and persists it, (2) atomically clears the
//!   slot-array-valid bit, (3) rewrites the slot array, (4) atomically
//!   publishes the new bitmap (entry bit + valid flag) — four
//!   flush/fence rounds, which is exactly why wB+Tree pays more PM
//!   writes per insert than FPTree in the evaluation. A crash leaves
//!   either the old state or a node whose slot array is marked invalid
//!   and is reconstructed from the bitmap and keys.
//! * **PM-only architecture.** Inner nodes live in PM too (same node
//!   format with child pointers), so traversals pay PM latency at every
//!   level — the main reason the hybrid FPTree outruns it for lookups.
//! * **Single-threaded.** As in the original paper and the evaluation,
//!   wB+Tree has no concurrency control of its own; [`WbTree`] wraps
//!   the core in a mutex so the common harness can drive it, and the
//!   benchmarks run it single-threaded.
//!
//! **Recovery deviation (documented in DESIGN.md):** the original paper
//! logs split operations; this implementation instead rebuilds inner
//! nodes from the persistent leaf chain on recovery (and garbage-
//! collects unreachable nodes), trading a longer recovery for a much
//! simpler multi-level SMO story. Runtime write amplification — the
//! property the evaluation measures — is unaffected.

mod node;
mod tree;

pub use node::WbLayout;
pub use tree::WbTree;

/// Tuning knobs. Default 31 entries per node (~544-byte nodes, in the
/// several-cacheline range the original paper evaluates).
#[derive(Debug, Clone, Copy)]
pub struct WbTreeConfig {
    /// Entries per node (leaf and inner), max 62.
    pub node_entries: usize,
    /// Maintain the slot array (the paper's *slot+bitmap* variant,
    /// binary search, 4 fence rounds per insert). `false` selects the
    /// *bitmap-only* variant: linear search, 2 fence rounds — the
    /// original paper's own ablation, reproduced as experiment E15.
    pub use_slot_array: bool,
}

impl Default for WbTreeConfig {
    fn default() -> Self {
        Self {
            node_entries: 31,
            use_slot_array: true,
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_config() {
        assert_eq!(super::WbTreeConfig::default().node_entries, 31);
    }
}
