//! wB+Tree node format and the write-atomic node protocols.
//!
//! Node layout (leaf and inner share it):
//!
//! ```text
//! +0   bitmap  u64   bit 0: slot-array valid; bit i+1: entry i valid;
//!                    bit 63: node is a leaf
//! +8   link    u64   leaf: next sibling; inner: leftmost child
//! +16  slots   [u8]  slots[0] = count, slots[1..=count] = entry indices
//!                    in ascending key order (padded to 8 bytes)
//! +K   keys    [u64] unsorted entry keys
//! +V   vals    [u64] leaf: values; inner: right child of the entry key
//! ```

use pmem::{align_up, PmPool};

/// Bit 0 of the bitmap: the slot array reflects the bitmap.
pub const SLOTS_VALID: u64 = 1;
/// Bit 63 of the bitmap: this node is a leaf.
pub const IS_LEAF: u64 = 1 << 63;

const BITMAP_OFF: u64 = 0;
const LINK_OFF: u64 = 8;
const SLOTS_OFF: u64 = 16;

/// Runtime node layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WbLayout {
    /// Entries per node (≤ 62: bitmap reserves bits 0 and 63).
    pub entries: usize,
    /// Offset of the key array.
    pub keys_off: u64,
    /// Offset of the value/child array.
    pub vals_off: u64,
    /// Node size in bytes.
    pub size: usize,
    /// Whether the slot array is maintained (slot+bitmap variant) or
    /// skipped (bitmap-only variant, linear search, fewer fences).
    pub use_slots: bool,
}

impl WbLayout {
    /// Layout for `entries` per node (slot+bitmap variant).
    pub fn new(entries: usize) -> WbLayout {
        Self::with_slots(entries, true)
    }

    /// Layout selecting the slot+bitmap or bitmap-only variant.
    pub fn with_slots(entries: usize, use_slots: bool) -> WbLayout {
        assert!((2..=62).contains(&entries), "node entries must be 2..=62");
        let keys_off = align_up(SLOTS_OFF + entries as u64 + 1, 8);
        let vals_off = keys_off + 8 * entries as u64;
        let size = (vals_off + 8 * entries as u64) as usize;
        WbLayout {
            entries,
            keys_off,
            vals_off,
            size,
            use_slots,
        }
    }

    #[inline]
    fn entry_bit(i: usize) -> u64 {
        1u64 << (i + 1)
    }

    /// Mask of all entry bits.
    #[inline]
    pub fn entries_mask(&self) -> u64 {
        ((1u64 << self.entries) - 1) << 1
    }

    #[inline]
    pub(crate) fn key_off(&self, node: u64, i: usize) -> u64 {
        node + self.keys_off + 8 * i as u64
    }

    #[inline]
    pub(crate) fn val_off(&self, node: u64, i: usize) -> u64 {
        node + self.vals_off + 8 * i as u64
    }
}

/// A node handle: pool + layout + offset. All the write-atomic
/// protocols live here. Single-threaded by contract (the tree wraps
/// everything in a mutex).
pub struct Node<'a> {
    pub pool: &'a PmPool,
    pub layout: &'a WbLayout,
    pub off: u64,
}

impl<'a> Node<'a> {
    /// Wrap an existing node.
    pub fn at(pool: &'a PmPool, layout: &'a WbLayout, off: u64) -> Node<'a> {
        Node { pool, layout, off }
    }

    /// Initialize a fresh node (not yet persisted; callers persist the
    /// whole node once filled).
    pub fn init(&self, is_leaf: bool, link: u64) {
        let flags = if is_leaf { IS_LEAF } else { 0 };
        self.pool
            .write_u64(self.off + BITMAP_OFF, flags | SLOTS_VALID);
        self.pool.write_u64(self.off + LINK_OFF, link);
        self.write_slots(&[]);
    }

    #[inline]
    pub fn bitmap(&self) -> u64 {
        self.pool.read_u64(self.off + BITMAP_OFF)
    }

    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.bitmap() & IS_LEAF != 0
    }

    #[inline]
    pub fn link(&self) -> u64 {
        self.pool.read_u64(self.off + LINK_OFF)
    }

    /// Set the leaf `next` / inner `child0` link and persist it.
    pub fn set_link(&self, link: u64) {
        self.pool.write_u64(self.off + LINK_OFF, link);
        self.pool.persist(self.off + LINK_OFF, 8);
    }

    #[inline]
    pub fn key(&self, i: usize) -> u64 {
        self.pool.read_u64(self.layout.key_off(self.off, i))
    }

    #[inline]
    pub fn val(&self, i: usize) -> u64 {
        self.pool.read_u64(self.layout.val_off(self.off, i))
    }

    /// The slot array as (count, indices).
    pub fn slots(&self) -> Vec<u8> {
        let mut buf = vec![0u8; self.layout.entries + 1];
        self.pool.read_bytes(self.off + SLOTS_OFF, &mut buf);
        let count = (buf[0] as usize).min(self.layout.entries);
        buf[1..=count].to_vec()
    }

    /// Number of live entries.
    pub fn count(&self) -> usize {
        if self.layout.use_slots && self.bitmap() & SLOTS_VALID != 0 {
            let mut b = [0u8; 1];
            self.pool.read_bytes(self.off + SLOTS_OFF, &mut b);
            (b[0] as usize).min(self.layout.entries)
        } else {
            ((self.bitmap() & self.layout.entries_mask()).count_ones()) as usize
        }
    }

    /// Whether the node is full.
    pub fn is_full(&self) -> bool {
        self.count() == self.layout.entries
    }

    /// Rewrite the slot array wholesale (count + indices), persisting it.
    fn write_slots(&self, sorted: &[u8]) {
        let mut buf = vec![0u8; self.layout.entries + 1];
        buf[0] = sorted.len() as u8;
        buf[1..=sorted.len()].copy_from_slice(sorted);
        self.pool.write_bytes(self.off + SLOTS_OFF, &buf);
        self.pool.persist(self.off + SLOTS_OFF, buf.len());
    }

    /// Sorted `(key, entry_index)` pairs, via the slot array when valid,
    /// else reconstructed from the bitmap (post-crash path).
    pub fn sorted_entries(&self) -> Vec<(u64, usize)> {
        let bitmap = self.bitmap();
        if self.layout.use_slots && bitmap & SLOTS_VALID != 0 {
            self.slots()
                .into_iter()
                .map(|s| (self.key(s as usize), s as usize))
                .collect()
        } else {
            let mut v: Vec<(u64, usize)> = (0..self.layout.entries)
                .filter(|&i| bitmap & WbLayout::entry_bit(i) != 0)
                .map(|i| (self.key(i), i))
                .collect();
            v.sort_unstable();
            v
        }
    }

    /// Rebuild and persist the slot array from the bitmap (recovery).
    pub fn rebuild_slots(&self) {
        let sorted: Vec<u8> = self
            .sorted_entries()
            .iter()
            .map(|&(_, i)| i as u8)
            .collect();
        let bitmap = self.bitmap();
        self.write_slots(&sorted);
        self.publish_bitmap(bitmap | SLOTS_VALID);
    }

    /// Atomic bitmap publication (8-byte write + persist).
    fn publish_bitmap(&self, bitmap: u64) {
        self.pool.write_u64(self.off + BITMAP_OFF, bitmap);
        self.pool.persist(self.off + BITMAP_OFF, 8);
    }

    /// Binary search for `key` through the slot array. Returns
    /// `Ok(rank)` if present (rank = position in sorted order), else
    /// `Err(rank)` of the insertion point.
    pub fn search(&self, key: u64) -> Result<(usize, usize), usize> {
        if !self.layout.use_slots {
            // Bitmap-only variant: linear probe of valid entries.
            let bitmap = self.bitmap() & self.layout.entries_mask();
            let mut bits = bitmap;
            while bits != 0 {
                let e = bits.trailing_zeros() as usize - 1;
                bits &= bits - 1;
                if self.key(e) == key {
                    return Ok((0, e));
                }
            }
            return Err(0);
        }
        let slots = self.slots();
        let mut lo = 0usize;
        let mut hi = slots.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            let mk = self.key(slots[mid] as usize);
            match mk.cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok((mid, slots[mid] as usize)),
            }
        }
        Err(lo)
    }

    /// Inner-node routing: the child covering `key`.
    pub fn route(&self, key: u64) -> u64 {
        debug_assert!(!self.is_leaf());
        if !self.layout.use_slots {
            // Linear scan for the greatest separator ≤ key.
            let bitmap = self.bitmap() & self.layout.entries_mask();
            let mut best: Option<(u64, usize)> = None;
            let mut bits = bitmap;
            while bits != 0 {
                let e = bits.trailing_zeros() as usize - 1;
                bits &= bits - 1;
                let k = self.key(e);
                if k <= key && best.is_none_or(|(bk, _)| k > bk) {
                    best = Some((k, e));
                }
            }
            return match best {
                Some((_, e)) => self.val(e),
                None => self.link(),
            };
        }
        let slots = self.slots();
        // Last entry with key ≤ target → its right child; none → child0.
        let mut lo = 0usize;
        let mut hi = slots.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.key(slots[mid] as usize) <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo == 0 {
            self.link()
        } else {
            self.val(slots[lo - 1] as usize)
        }
    }

    /// First free entry index, if any.
    fn free_entry(&self) -> Option<usize> {
        let bitmap = self.bitmap();
        (0..self.layout.entries).find(|&i| bitmap & WbLayout::entry_bit(i) == 0)
    }

    /// The write-atomic insert protocol (see crate docs). The caller
    /// guarantees the node is not full and the key absent.
    pub fn insert(&self, key: u64, val: u64) {
        let e = self.free_entry().expect("insert into full node");
        // (1) entry write + persist.
        self.pool.write_u64(self.layout.key_off(self.off, e), key);
        self.pool.write_u64(self.layout.val_off(self.off, e), val);
        self.pool.clwb(self.layout.key_off(self.off, e), 8);
        self.pool.clwb(self.layout.val_off(self.off, e), 8);
        self.pool.sfence();
        if !self.layout.use_slots {
            // Bitmap-only variant: one atomic publication, done.
            self.publish_bitmap(self.bitmap() | WbLayout::entry_bit(e));
            return;
        }
        // (2) invalidate the slot array.
        let bitmap = self.bitmap();
        self.publish_bitmap(bitmap & !SLOTS_VALID);
        // (3) rewrite the slot array with the new entry in place.
        let mut slots = self.slots();
        let rank = match self.search_slots(&slots, key) {
            Err(r) => r,
            Ok(_) => unreachable!("insert of existing key"),
        };
        slots.insert(rank, e as u8);
        self.write_slots(&slots);
        // (4) atomic publication: entry bit + valid flag.
        self.publish_bitmap(bitmap | WbLayout::entry_bit(e) | SLOTS_VALID);
    }

    fn search_slots(&self, slots: &[u8], key: u64) -> Result<usize, usize> {
        let mut lo = 0usize;
        let mut hi = slots.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            let mk = self.key(slots[mid] as usize);
            match mk.cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Write-atomic delete of the entry at sorted `rank` / index `e`.
    pub fn delete(&self, rank: usize, e: usize) {
        if !self.layout.use_slots {
            self.publish_bitmap(self.bitmap() & !WbLayout::entry_bit(e));
            return;
        }
        let bitmap = self.bitmap();
        self.publish_bitmap(bitmap & !SLOTS_VALID);
        let mut slots = self.slots();
        debug_assert_eq!(slots[rank] as usize, e);
        slots.remove(rank);
        self.write_slots(&slots);
        self.publish_bitmap((bitmap & !WbLayout::entry_bit(e)) | SLOTS_VALID);
    }

    /// Write-atomic out-of-place update of entry `e` (sorted `rank`)
    /// with a new value. The caller guarantees a free entry exists.
    pub fn update(&self, rank: usize, e: usize, key: u64, val: u64) {
        let f = self.free_entry().expect("update without spare entry");
        self.pool.write_u64(self.layout.key_off(self.off, f), key);
        self.pool.write_u64(self.layout.val_off(self.off, f), val);
        self.pool.clwb(self.layout.key_off(self.off, f), 8);
        self.pool.clwb(self.layout.val_off(self.off, f), 8);
        self.pool.sfence();
        if !self.layout.use_slots {
            self.publish_bitmap((self.bitmap() & !WbLayout::entry_bit(e)) | WbLayout::entry_bit(f));
            return;
        }
        let bitmap = self.bitmap();
        self.publish_bitmap(bitmap & !SLOTS_VALID);
        let mut slots = self.slots();
        debug_assert_eq!(slots[rank] as usize, e);
        slots[rank] = f as u8;
        self.write_slots(&slots);
        self.publish_bitmap(
            (bitmap & !WbLayout::entry_bit(e)) | WbLayout::entry_bit(f) | SLOTS_VALID,
        );
    }

    /// Bulk-fill a fresh node with sorted records and persist it fully.
    pub fn fill(&self, records: &[(u64, u64)]) {
        debug_assert!(records.len() <= self.layout.entries);
        let mut bitmap = self.bitmap() & (IS_LEAF | SLOTS_VALID);
        let mut slots = Vec::with_capacity(records.len());
        for (i, &(k, v)) in records.iter().enumerate() {
            self.pool.write_u64(self.layout.key_off(self.off, i), k);
            self.pool.write_u64(self.layout.val_off(self.off, i), v);
            bitmap |= WbLayout::entry_bit(i);
            slots.push(i as u8);
        }
        if self.layout.use_slots {
            self.write_slots(&slots);
        }
        self.pool.write_u64(self.off + BITMAP_OFF, bitmap);
        self.pool.persist(self.off, self.layout.size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmConfig;
    use std::sync::Arc;

    fn setup() -> (Arc<PmPool>, WbLayout, u64) {
        let pool = Arc::new(PmPool::new(1 << 20, PmConfig::real()));
        let layout = WbLayout::new(8);
        (pool, layout, 8192)
    }

    #[test]
    fn layout_sizes() {
        let l = WbLayout::new(31);
        assert_eq!(l.keys_off, 48); // 16 + 32 (31+1 slot bytes padded)
        assert_eq!(l.size, 48 + 248 + 248);
        assert_eq!(l.entries_mask().count_ones(), 31);
    }

    #[test]
    fn insert_search_ordering() {
        let (pool, layout, off) = setup();
        let n = Node::at(&pool, &layout, off);
        n.init(true, 0);
        for k in [50u64, 10, 30, 70, 20] {
            n.insert(k, k * 2);
        }
        assert_eq!(n.count(), 5);
        let sorted: Vec<u64> = n.sorted_entries().iter().map(|&(k, _)| k).collect();
        assert_eq!(sorted, vec![10, 20, 30, 50, 70]);
        let (rank, e) = n.search(30).unwrap();
        assert_eq!(rank, 2);
        assert_eq!(n.val(e), 60);
        assert_eq!(n.search(31), Err(3));
    }

    #[test]
    fn delete_and_update() {
        let (pool, layout, off) = setup();
        let n = Node::at(&pool, &layout, off);
        n.init(true, 0);
        for k in [1u64, 2, 3] {
            n.insert(k, k);
        }
        let (rank, e) = n.search(2).unwrap();
        n.delete(rank, e);
        assert_eq!(n.count(), 2);
        assert!(n.search(2).is_err());
        let (rank, e) = n.search(3).unwrap();
        n.update(rank, e, 3, 33);
        let (_, e) = n.search(3).unwrap();
        assert_eq!(n.val(e), 33);
    }

    #[test]
    fn crash_mid_insert_leaves_node_recoverable() {
        // Simulate the torn window: entry persisted, slot array
        // invalidated, but the final bitmap publication lost.
        let (pool, layout, off) = setup();
        let n = Node::at(&pool, &layout, off);
        n.init(true, 0);
        n.insert(10, 100);
        n.insert(20, 200);
        pool.persist_all();
        // Manually mimic a crash after step (3) of inserting 15: the
        // bitmap on media still has the valid flag cleared.
        let bitmap = n.bitmap();
        pool.write_u64(off, bitmap & !SLOTS_VALID);
        pool.persist(off, 8);
        pool.crash();
        let n = Node::at(&pool, &layout, off);
        // Slot array untrusted; sorted_entries falls back to the bitmap.
        assert_eq!(n.bitmap() & SLOTS_VALID, 0);
        let keys: Vec<u64> = n.sorted_entries().iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, vec![10, 20]);
        n.rebuild_slots();
        assert_eq!(n.search(20).map(|(r, _)| r), Ok(1));
    }

    #[test]
    fn inner_routing() {
        let (pool, layout, off) = setup();
        let n = Node::at(&pool, &layout, off);
        n.init(false, 111); // child0
        n.insert(10, 222);
        n.insert(20, 333);
        assert!(!n.is_leaf());
        assert_eq!(n.route(5), 111);
        assert_eq!(n.route(10), 222);
        assert_eq!(n.route(15), 222);
        assert_eq!(n.route(25), 333);
    }

    #[test]
    fn fill_bulk() {
        let (pool, layout, off) = setup();
        let n = Node::at(&pool, &layout, off);
        n.init(true, 0);
        n.fill(&[(1, 10), (2, 20), (3, 30)]);
        assert_eq!(n.count(), 3);
        assert_eq!(n.search(2).map(|(r, _)| r), Ok(1));
        // Fully persisted: survives a crash.
        pool.crash();
        assert_eq!(n.count(), 3);
        let (_, e) = n.search(3).unwrap();
        assert_eq!(n.val(e), 30);
    }
}
