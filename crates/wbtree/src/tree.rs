//! The wB+Tree proper: traversal, splits, recovery.

use std::sync::Arc;

use index_api::{Footprint, Key, RangeIndex, Value};
use parking_lot::Mutex;
use pmalloc::PmAllocator;
use pmem::{MediaError, PmPool};

use crate::node::{Node, WbLayout, SLOTS_VALID};
use crate::WbTreeConfig;

// Root-area slots owned by wB+Tree.
const SLOT_ROOT: u64 = 24;
const SLOT_HEAD: u64 = 25;
const SLOT_CFG: u64 = 26;

struct Core {
    alloc: Arc<PmAllocator>,
    layout: WbLayout,
    /// Cached copy of the persistent root pointer.
    root: u64,
}

/// wB+Tree: write-atomic PM-only B+-tree (see crate docs). The core is
/// single-threaded, as in the original paper; a mutex adapts it to the
/// shared [`RangeIndex`] interface.
pub struct WbTree {
    core: Mutex<Core>,
}

impl Core {
    fn pool(&self) -> &PmPool {
        self.alloc.pool()
    }

    fn node(&self, off: u64) -> Node<'_> {
        Node::at(self.pool(), &self.layout, off)
    }

    fn alloc_node(&self, is_leaf: bool, link: u64) -> u64 {
        let off = self
            .alloc
            .alloc(self.layout.size)
            .expect("PM pool exhausted");
        self.node(off).init(is_leaf, link);
        off
    }

    /// Root-to-leaf traversal; returns the leaf and the inner path.
    fn find_leaf(&self, key: Key) -> (u64, Vec<u64>) {
        let mut path = Vec::new();
        let mut off = self.root;
        loop {
            let n = self.node(off);
            if n.is_leaf() {
                return (off, path);
            }
            path.push(off);
            off = n.route(key);
        }
    }

    /// Split `off` into itself + a new right sibling. Returns
    /// `(separator, new_node)`.
    fn split_node(&self, off: u64) -> (Key, u64) {
        let _site = obs::site("wbtree_node_split");
        let n = self.node(off);
        let entries = n.sorted_entries();
        let mid = entries.len() / 2;
        let is_leaf = n.is_leaf();
        if is_leaf {
            let sep = entries[mid].0;
            let new_off = self.alloc_node(true, n.link());
            let upper: Vec<(Key, Value)> =
                entries[mid..].iter().map(|&(k, e)| (k, n.val(e))).collect();
            self.node(new_off).fill(&upper);
            // Publish into the chain, then shrink the old leaf. A crash
            // in between leaves duplicate upper-half records, which
            // recovery repairs (overlap check).
            n.set_link(new_off);
            let lower: Vec<(Key, Value)> =
                entries[..mid].iter().map(|&(k, e)| (k, n.val(e))).collect();
            self.shrink_to(off, &lower);
            (sep, new_off)
        } else {
            // Promote the middle key; its right child becomes the new
            // node's leftmost child.
            let sep = entries[mid].0;
            let new_off = self.alloc_node(false, n.val(entries[mid].1));
            let upper: Vec<(Key, u64)> = entries[mid + 1..]
                .iter()
                .map(|&(k, e)| (k, n.val(e)))
                .collect();
            self.node(new_off).fill(&upper);
            let lower: Vec<(Key, u64)> =
                entries[..mid].iter().map(|&(k, e)| (k, n.val(e))).collect();
            self.shrink_to(off, &lower);
            (sep, new_off)
        }
    }

    /// Rewrite a node's live set to exactly `records` using the
    /// slot-invalidate / rewrite / publish protocol.
    fn shrink_to(&self, off: u64, records: &[(Key, u64)]) {
        let n = self.node(off);
        let keep: std::collections::HashSet<Key> = records.iter().map(|&(k, _)| k).collect();
        let entries = n.sorted_entries();
        let bitmap = n.bitmap();
        let mut new_bitmap = bitmap & !((1u64 << 63) - 2); // clear all entry bits
        new_bitmap |= bitmap & (1 << 63); // keep IS_LEAF
        let mut slots = Vec::new();
        for &(k, e) in &entries {
            if keep.contains(&k) {
                new_bitmap |= 1u64 << (e + 1);
                slots.push(e as u8);
            }
        }
        // Invalidate, rewrite, publish.
        self.pool().write_u64(off, bitmap & !SLOTS_VALID);
        self.pool().persist(off, 8);
        self.rewrite_slots(off, &slots);
        self.pool().write_u64(off, new_bitmap | SLOTS_VALID);
        self.pool().persist(off, 8);
    }

    fn rewrite_slots(&self, off: u64, slots: &[u8]) {
        let mut buf = vec![0u8; self.layout.entries + 1];
        buf[0] = slots.len() as u8;
        buf[1..=slots.len()].copy_from_slice(slots);
        self.pool().write_bytes(off + 16, &buf);
        self.pool().persist(off + 16, buf.len());
    }

    /// Split a full node and propagate separators up to the root.
    fn split_and_propagate(&mut self, off: u64, mut path: Vec<u64>) {
        let (mut sep, mut new_off) = self.split_node(off);
        loop {
            match path.pop() {
                None => {
                    let new_root = self.alloc_node(false, self.root);
                    self.node(new_root).fill(&[(sep, new_off)]);
                    self.pool().write_u64(SLOT_ROOT * 8, new_root);
                    self.pool().persist(SLOT_ROOT * 8, 8);
                    self.root = new_root;
                    return;
                }
                Some(parent) => {
                    let p = self.node(parent);
                    if !p.is_full() {
                        p.insert(sep, new_off);
                        return;
                    }
                    let (psep, pnew) = self.split_node(parent);
                    let target = if sep >= psep { pnew } else { parent };
                    self.node(target).insert(sep, new_off);
                    sep = psep;
                    new_off = pnew;
                }
            }
        }
    }

    fn insert(&mut self, key: Key, value: Value) -> bool {
        loop {
            let (leaf, path) = self.find_leaf(key);
            let n = self.node(leaf);
            if n.search(key).is_ok() {
                return false;
            }
            if n.is_full() {
                self.split_and_propagate(leaf, path);
                continue;
            }
            n.insert(key, value);
            return true;
        }
    }

    fn lookup(&self, key: Key) -> Option<Value> {
        let (leaf, _) = self.find_leaf(key);
        let n = self.node(leaf);
        n.search(key).ok().map(|(_, e)| n.val(e))
    }

    fn update(&mut self, key: Key, value: Value) -> bool {
        loop {
            let (leaf, path) = self.find_leaf(key);
            let n = self.node(leaf);
            let Ok((rank, e)) = n.search(key) else {
                return false;
            };
            if n.is_full() {
                // Out-of-place update needs a spare entry.
                self.split_and_propagate(leaf, path);
                continue;
            }
            n.update(rank, e, key, value);
            return true;
        }
    }

    fn remove(&mut self, key: Key) -> bool {
        let (leaf, _) = self.find_leaf(key);
        let n = self.node(leaf);
        match n.search(key) {
            Ok((rank, e)) => {
                n.delete(rank, e);
                true
            }
            Err(_) => false,
        }
    }

    fn scan(&self, start: Key, count: usize, out: &mut Vec<(Key, Value)>) -> usize {
        out.clear();
        if count == 0 {
            return 0;
        }
        let (mut leaf, _) = self.find_leaf(start);
        while leaf != 0 && out.len() < count {
            let n = self.node(leaf);
            for &(k, e) in &n.sorted_entries() {
                if k >= start {
                    out.push((k, n.val(e)));
                }
            }
            leaf = n.link();
        }
        out.truncate(count);
        out.len()
    }
}

impl WbTree {
    /// Create a fresh tree on a formatted allocator/pool.
    pub fn create(alloc: Arc<PmAllocator>, cfg: WbTreeConfig) -> Arc<WbTree> {
        let layout = WbLayout::with_slots(cfg.node_entries, cfg.use_slot_array);
        let pool = alloc.pool().clone();
        let head = alloc
            .alloc_linked(layout.size, SLOT_HEAD * 8)
            .expect("pool too small for wB+Tree head leaf");
        let core = Core {
            alloc,
            layout,
            root: head,
        };
        core.node(head).init(true, 0);
        pool.persist(head, layout.size);
        pool.write_u64(SLOT_ROOT * 8, head);
        pool.write_u64(
            SLOT_CFG * 8,
            cfg.node_entries as u64 | (cfg.use_slot_array as u64) << 32,
        );
        pool.persist(SLOT_ROOT * 8, 24);
        Arc::new(WbTree {
            core: Mutex::new(core),
        })
    }

    /// Reopen after a crash: repair half-finished splits (overlapping
    /// leaves), rebuild invalid slot arrays, garbage-collect
    /// unreachable nodes, and bulk-load fresh inner nodes. Panics on a
    /// media error; use [`WbTree::try_recover`] to handle poisoned
    /// lines gracefully.
    pub fn recover(alloc: Arc<PmAllocator>, cfg: WbTreeConfig) -> Arc<WbTree> {
        let _site = obs::site("wbtree_recovery");
        Self::try_recover(alloc, cfg).unwrap_or_else(|e| panic!("wB+Tree recovery failed: {e}"))
    }

    /// Fallible recovery: probes the root slots and every node in the
    /// leaf chain for media errors *before* interpreting (or mutating)
    /// them, so a poisoned line surfaces as a reported [`MediaError`] —
    /// never as garbage records.
    pub fn try_recover(
        alloc: Arc<PmAllocator>,
        cfg: WbTreeConfig,
    ) -> Result<Arc<WbTree>, MediaError> {
        let layout = WbLayout::with_slots(cfg.node_entries, cfg.use_slot_array);
        let pool = alloc.pool().clone();
        pool.check_readable(SLOT_ROOT * 8, 24)
            .map_err(|e| e.context("wB+Tree root slots"))?;
        assert_eq!(
            pool.read_u64(SLOT_CFG * 8),
            cfg.node_entries as u64 | (cfg.use_slot_array as u64) << 32,
            "config/layout mismatch"
        );
        let head = pool.read_u64(SLOT_HEAD * 8);
        assert!(head != 0, "recover() on an unformatted tree");
        let mut core = Core {
            alloc,
            layout,
            root: head,
        };
        // Pass 1: walk the chain, fixing slot arrays. Probe each node
        // before reading it — and before the slot rebuild writes to it,
        // since partial overwrites can mask the poison.
        let mut chain = Vec::new();
        let mut leaf = head;
        while leaf != 0 {
            core.pool()
                .check_readable(leaf, layout.size)
                .map_err(|e| e.context("wB+Tree leaf"))?;
            let n = core.node(leaf);
            if layout.use_slots && n.bitmap() & SLOTS_VALID == 0 {
                n.rebuild_slots();
            }
            chain.push(leaf);
            leaf = n.link();
        }
        // Pass 2: repair split overlap (old leaf still holding records
        // that moved to its new sibling).
        for w in chain.windows(2) {
            let (cur, next) = (w[0], w[1]);
            let next_entries = core.node(next).sorted_entries();
            let Some(&(next_min, _)) = next_entries.first() else {
                continue;
            };
            let n = core.node(cur);
            let records: Vec<(Key, u64)> = n
                .sorted_entries()
                .iter()
                .filter(|&&(k, _)| k < next_min)
                .map(|&(k, e)| (k, n.val(e)))
                .collect();
            if records.len() != n.count() {
                core.shrink_to(cur, &records);
            }
        }
        // Pass 3: GC everything not in the chain (stale inner nodes,
        // leaked split siblings).
        let reachable: std::collections::HashSet<u64> = chain.iter().copied().collect();
        let mut stale = Vec::new();
        core.alloc.for_each_allocated(|off| {
            if !reachable.contains(&off) {
                stale.push(off);
            }
        });
        for off in stale {
            core.alloc.free(off);
        }
        // Pass 4: bulk-load PM inner nodes over the leaves.
        let mut level: Vec<(Key, u64)> = Vec::new();
        for &l in &chain {
            if let Some(&(min, _)) = core.node(l).sorted_entries().first() {
                level.push((min, l));
            }
        }
        let root = if level.len() <= 1 {
            level.first().map(|&(_, l)| l).unwrap_or(head)
        } else {
            let fan = layout.entries + 1;
            while level.len() > 1 {
                let mut next_level = Vec::with_capacity(level.len() / fan + 1);
                for group in level.chunks(fan) {
                    let node = core.alloc_node(false, group[0].1);
                    let entries: Vec<(Key, u64)> =
                        group[1..].iter().map(|&(k, l)| (k, l)).collect();
                    core.node(node).fill(&entries);
                    next_level.push((group[0].0, node));
                }
                level = next_level;
            }
            level[0].1
        };
        pool.write_u64(SLOT_ROOT * 8, root);
        pool.persist(SLOT_ROOT * 8, 8);
        core.root = root;
        Ok(Arc::new(WbTree {
            core: Mutex::new(core),
        }))
    }
}

impl RangeIndex for WbTree {
    fn insert(&self, key: Key, value: Value) -> bool {
        let _site = obs::site("wbtree_insert");
        self.core.lock().insert(key, value)
    }

    fn lookup(&self, key: Key) -> Option<Value> {
        let _site = obs::site("wbtree_lookup");
        self.core.lock().lookup(key)
    }

    fn update(&self, key: Key, value: Value) -> bool {
        let _site = obs::site("wbtree_update");
        self.core.lock().update(key, value)
    }

    fn remove(&self, key: Key) -> bool {
        let _site = obs::site("wbtree_remove");
        self.core.lock().remove(key)
    }

    fn scan(&self, start: Key, count: usize, out: &mut Vec<(Key, Value)>) -> usize {
        let _site = obs::site("wbtree_scan");
        self.core.lock().scan(start, count, out)
    }

    fn name(&self) -> &'static str {
        "wbtree"
    }

    fn footprint(&self) -> Footprint {
        Footprint {
            pm_bytes: self.core.lock().alloc.live_bytes(),
            dram_bytes: 0, // PM-only design
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use index_api::oracle;
    use pmalloc::AllocMode;
    use pmem::PmConfig;

    fn fresh(pool_mib: usize, cfg: WbTreeConfig) -> Arc<WbTree> {
        let pool = Arc::new(PmPool::new(pool_mib << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool, AllocMode::General);
        WbTree::create(alloc, cfg)
    }

    fn small_cfg() -> WbTreeConfig {
        WbTreeConfig {
            node_entries: 4,
            use_slot_array: true,
        }
    }

    #[test]
    fn basic_ops() {
        let t = fresh(4, WbTreeConfig::default());
        assert!(t.insert(5, 50));
        assert!(!t.insert(5, 51));
        assert_eq!(t.lookup(5), Some(50));
        assert!(t.update(5, 55));
        assert_eq!(t.lookup(5), Some(55));
        assert!(t.remove(5));
        assert!(!t.remove(5));
        assert_eq!(t.lookup(5), None);
    }

    #[test]
    fn multi_level_splits() {
        let t = fresh(16, small_cfg());
        for k in 0..3_000u64 {
            assert!(t.insert((k * 997) % 3_000, k));
        }
        for k in 0..3_000u64 {
            assert!(t.lookup(k).is_some(), "key {k}");
        }
    }

    #[test]
    fn conformance_against_oracle() {
        let t = fresh(32, small_cfg());
        oracle::check_conformance(&*t, 0x5B, 20_000, 3_000);
    }

    #[test]
    fn scan_sorted_across_leaves() {
        let t = fresh(16, small_cfg());
        for k in (0..800u64).rev() {
            t.insert(k, k * 2);
        }
        let mut out = Vec::new();
        assert_eq!(t.scan(200, 100, &mut out), 100);
        let want: Vec<(u64, u64)> = (200..300).map(|k| (k, k * 2)).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn recovery_restores_everything() {
        let pool = Arc::new(PmPool::new(32 << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        let cfg = small_cfg();
        let t = WbTree::create(alloc, cfg);
        for k in 0..2_000u64 {
            t.insert(k, k + 1);
        }
        for k in (0..2_000u64).step_by(5) {
            t.remove(k);
        }
        drop(t);
        pool.crash();
        let alloc = PmAllocator::recover(pool, AllocMode::General);
        let t = WbTree::recover(alloc, cfg);
        for k in 0..2_000u64 {
            let want = if k % 5 == 0 { None } else { Some(k + 1) };
            assert_eq!(t.lookup(k), want, "key {k}");
        }
        let mut out = Vec::new();
        t.scan(0, 3_000, &mut out);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(out.len(), 1600);
    }

    #[test]
    fn recovery_with_eviction_chaos() {
        let pool = Arc::new(PmPool::new(
            32 << 20,
            PmConfig::real().with_eviction_chaos(11),
        ));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        let cfg = small_cfg();
        let t = WbTree::create(alloc, cfg);
        for k in 0..1_500u64 {
            t.insert(k, k);
        }
        drop(t);
        pool.crash();
        let alloc = PmAllocator::recover(pool, AllocMode::General);
        let t = WbTree::recover(alloc, cfg);
        for k in 0..1_500u64 {
            assert_eq!(t.lookup(k), Some(k), "key {k}");
        }
    }

    #[test]
    fn updates_and_deletes_survive_crash() {
        let pool = Arc::new(PmPool::new(32 << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        let cfg = small_cfg();
        let t = WbTree::create(alloc, cfg);
        for k in 0..1_000u64 {
            t.insert(k, 1);
        }
        for k in 0..1_000u64 {
            t.update(k, 2);
        }
        for k in (0..1_000u64).step_by(2) {
            t.remove(k);
        }
        drop(t);
        pool.crash();
        let alloc = PmAllocator::recover(pool, AllocMode::General);
        let t = WbTree::recover(alloc, cfg);
        for k in 0..1_000u64 {
            let want = if k % 2 == 0 { None } else { Some(2) };
            assert_eq!(t.lookup(k), want, "key {k}");
        }
    }

    #[test]
    fn mutex_wrapper_is_thread_safe() {
        // The paper runs wB+Tree single-threaded; the wrapper must still
        // be sound when misused concurrently.
        let t = fresh(32, WbTreeConfig::default());
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = &t;
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        let k = tid * 10_000 + i;
                        assert!(t.insert(k, k));
                        assert_eq!(t.lookup(k), Some(k));
                    }
                });
            }
        });
        for tid in 0..4u64 {
            for i in 0..1_000u64 {
                assert_eq!(t.lookup(tid * 10_000 + i), Some(tid * 10_000 + i));
            }
        }
    }

    #[test]
    fn bitmap_only_variant_conformance() {
        let pool = Arc::new(PmPool::new(32 << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool, AllocMode::General);
        let t = WbTree::create(
            alloc,
            WbTreeConfig {
                node_entries: 4,
                use_slot_array: false,
            },
        );
        oracle::check_conformance(&*t, 0xB1AA, 15_000, 2_000);
    }

    #[test]
    fn bitmap_only_variant_survives_crash() {
        let pool = Arc::new(PmPool::new(32 << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        let cfg = WbTreeConfig {
            node_entries: 4,
            use_slot_array: false,
        };
        let t = WbTree::create(alloc, cfg);
        for k in 0..1_200u64 {
            t.insert(k, k + 5);
        }
        drop(t);
        pool.crash();
        let alloc = PmAllocator::recover(pool, AllocMode::General);
        let t = WbTree::recover(alloc, cfg);
        for k in 0..1_200u64 {
            assert_eq!(t.lookup(k), Some(k + 5), "key {k}");
        }
    }

    #[test]
    fn bitmap_only_variant_issues_fewer_fences() {
        let count_fences = |use_slots: bool| {
            let pool = Arc::new(PmPool::new(32 << 20, PmConfig::real()));
            let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
            let t = WbTree::create(
                alloc,
                WbTreeConfig {
                    node_entries: 31,
                    use_slot_array: use_slots,
                },
            );
            pool.reset_stats();
            for k in 0..5_000u64 {
                t.insert(k * 17 % 5_000, k);
            }
            pool.stats().fence
        };
        let with_slots = count_fences(true);
        let without = count_fences(false);
        assert!(
            without * 3 < with_slots * 2,
            "bitmap-only must fence less: with={with_slots} without={without}"
        );
    }

    #[test]
    fn footprint_is_pm_only() {
        let t = fresh(8, small_cfg());
        for k in 0..500u64 {
            t.insert(k, k);
        }
        let f = t.footprint();
        assert!(f.pm_bytes > 0);
        assert_eq!(f.dram_bytes, 0);
    }
}
