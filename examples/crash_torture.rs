//! Crash-consistency torture: repeatedly run a random workload against
//! every PM index, pull the plug at a random point (with eviction
//! chaos enabled so unflushed lines sometimes persist anyway), recover,
//! and verify that exactly the acknowledged operations survived.
//!
//! ```sh
//! cargo run --release --example crash_torture [rounds]
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use pm_index_bench::bztree::{BzTree, BzTreeConfig};
use pm_index_bench::fptree::{FpTree, FpTreeConfig};
use pm_index_bench::index_api::RangeIndex;
use pm_index_bench::nvtree::{NvTree, NvTreeConfig};
use pm_index_bench::pmalloc::{AllocMode, PmAllocator};
use pm_index_bench::pmem::{PmConfig, PmPool};
use pm_index_bench::wbtree::{WbTree, WbTreeConfig};

fn create(kind: &str, alloc: Arc<PmAllocator>) -> Arc<dyn RangeIndex> {
    match kind {
        "fptree" => FpTree::create(alloc, FpTreeConfig::default()),
        "nvtree" => NvTree::create(alloc, NvTreeConfig::default()),
        "wbtree" => WbTree::create(alloc, WbTreeConfig::default()),
        "bztree" => BzTree::create(alloc, BzTreeConfig::default()),
        _ => unreachable!(),
    }
}

fn recover(kind: &str, alloc: Arc<PmAllocator>) -> Arc<dyn RangeIndex> {
    match kind {
        "fptree" => FpTree::recover(alloc, FpTreeConfig::default()),
        "nvtree" => NvTree::recover(alloc, NvTreeConfig::default()),
        "wbtree" => WbTree::recover(alloc, WbTreeConfig::default()),
        "bztree" => BzTree::recover(alloc, BzTreeConfig::default()),
        _ => unreachable!(),
    }
}

fn torture(kind: &str, round: u64) {
    let seed = round.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let pool = Arc::new(PmPool::new(
        64 << 20,
        PmConfig::real().with_eviction_chaos(seed),
    ));
    let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
    let idx = create(kind, alloc);

    // Apply a random op stream; remember every acknowledged effect.
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut x = seed | 1;
    let n_ops = 2_000 + (seed % 3_000);
    for i in 0..n_ops {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let k = (x >> 16) % 4_096;
        match x % 10 {
            0..=5 => {
                if idx.insert(k, i) {
                    model.insert(k, i);
                }
            }
            6..=7 => {
                if idx.update(k, i + 1_000_000) {
                    *model.get_mut(&k).expect("update ack implies present") = i + 1_000_000;
                }
            }
            _ => {
                if idx.remove(k) {
                    model.remove(&k).expect("remove ack implies present");
                }
            }
        }
    }

    // Pull the plug and recover.
    drop(idx);
    pool.crash();
    let alloc = PmAllocator::recover(pool, AllocMode::General);
    let idx = recover(kind, alloc);

    // Every acknowledged op must have survived, nothing else.
    for (&k, &v) in &model {
        assert_eq!(idx.lookup(k), Some(v), "{kind}: key {k} lost or stale");
    }
    let mut out = Vec::new();
    idx.scan(0, 100_000, &mut out);
    assert_eq!(out.len(), model.len(), "{kind}: ghost records after crash");
    assert!(
        out.windows(2).all(|w| w[0].0 < w[1].0),
        "{kind}: scan order"
    );
}

fn main() {
    let rounds: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    for kind in ["fptree", "nvtree", "wbtree", "bztree"] {
        for round in 0..rounds {
            torture(kind, round);
        }
        println!("{kind}: {rounds} crash rounds survived ✓");
    }
    println!("all indexes crash-consistent across {rounds} random workloads");
}
