//! Crash-consistency torture: repeatedly run a random workload against
//! every PM index and kill it two different ways per round:
//!
//! 1. **Mid-operation power loss** via the `pmem` crash-point injection
//!    API — the pool is armed to fail at a pseudo-random persistence
//!    event, so the plug is pulled *inside* an insert/update/remove,
//!    between two flushes. Recovery must keep every acknowledged op and
//!    leave the in-flight op atomic (fully applied or fully absent).
//! 2. **End-of-workload power loss** (the classic torture): run to
//!    completion, `crash()`, recover, verify exact equality.
//!
//! Eviction chaos stays enabled throughout, so unflushed lines
//! sometimes persist anyway and recovery sees both worlds. Both plug
//! pulls use the sampled torn-write model: each dirty line left at the
//! cut independently persists with p = 1/2 (seeded, replayable).
//!
//! ```sh
//! cargo run --release --example crash_torture [rounds] [--kind <name>] [--seed N]
//! ```
//!
//! `--kind` filters to one of fptree / nvtree / wbtree / bztree /
//! learned (default: all five). `--seed` offsets the per-round seed
//! stream;
//! on failure the tool prints the exact command that replays the
//! failing round.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use pm_index_bench::bztree::{BzTree, BzTreeConfig};
use pm_index_bench::crashpoint::{install_quiet_crash_hook, InflightAllowance, WorkloadOp};
use pm_index_bench::fptree::{FpTree, FpTreeConfig};
use pm_index_bench::index_api::RangeIndex;
use pm_index_bench::learned::{LearnedConfig, LearnedIndex};
use pm_index_bench::nvtree::{NvTree, NvTreeConfig};
use pm_index_bench::pmalloc::{AllocMode, PmAllocator};
use pm_index_bench::pmem::{CrashPointHit, PmConfig, PmPool, ResidualPolicy};
use pm_index_bench::wbtree::{WbTree, WbTreeConfig};

const KINDS: [&str; 5] = ["fptree", "nvtree", "wbtree", "bztree", "learned"];

fn create(kind: &str, alloc: Arc<PmAllocator>) -> Arc<dyn RangeIndex> {
    match kind {
        "fptree" => FpTree::create(alloc, FpTreeConfig::default()),
        "nvtree" => NvTree::create(alloc, NvTreeConfig::default()),
        "wbtree" => WbTree::create(alloc, WbTreeConfig::default()),
        "bztree" => BzTree::create(alloc, BzTreeConfig::default()),
        "learned" => LearnedIndex::create(alloc, LearnedConfig::default()),
        _ => unreachable!(),
    }
}

fn recover(kind: &str, alloc: Arc<PmAllocator>) -> Arc<dyn RangeIndex> {
    match kind {
        "fptree" => FpTree::recover(alloc, FpTreeConfig::default()),
        "nvtree" => NvTree::recover(alloc, NvTreeConfig::default()),
        "wbtree" => WbTree::recover(alloc, WbTreeConfig::default()),
        "bztree" => BzTree::recover(alloc, BzTreeConfig::default()),
        "learned" => LearnedIndex::recover(alloc, LearnedConfig::default()),
        _ => unreachable!(),
    }
}

fn gen_ops(seed: u64, n_ops: u64) -> Vec<WorkloadOp> {
    let mut ops = Vec::with_capacity(n_ops as usize);
    let mut x = seed | 1;
    for i in 0..n_ops {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let k = (x >> 16) % 4_096;
        ops.push(match x % 10 {
            0..=5 => WorkloadOp::Insert(k, i),
            6..=7 => WorkloadOp::Update(k, i + 1_000_000),
            _ => WorkloadOp::Remove(k),
        });
    }
    ops
}

fn apply(idx: &dyn RangeIndex, model: &mut BTreeMap<u64, u64>, op: WorkloadOp) {
    match op {
        WorkloadOp::Insert(k, v) => {
            if idx.insert(k, v) {
                model.insert(k, v);
            }
        }
        WorkloadOp::Update(k, v) => {
            if idx.update(k, v) {
                *model.get_mut(&k).expect("update ack implies present") = v;
            }
        }
        WorkloadOp::Remove(k) => {
            if idx.remove(k) {
                model.remove(&k).expect("remove ack implies present");
            }
        }
    }
}

fn verify(
    kind: &str,
    idx: &dyn RangeIndex,
    model: &BTreeMap<u64, u64>,
    inflight: Option<InflightAllowance>,
) {
    for (&k, &v) in model {
        if inflight.map(|a| a.key) == Some(k) {
            continue;
        }
        assert_eq!(idx.lookup(k), Some(v), "{kind}: key {k} lost or stale");
    }
    if let Some(a) = inflight {
        assert!(
            a.allows(idx.lookup(a.key)),
            "{kind}: in-flight key {} not atomic (found {:?}, allowed {:?}/{:?})",
            a.key,
            idx.lookup(a.key),
            a.pre,
            a.post
        );
    }
    let mut out = Vec::new();
    idx.scan(0, 100_000, &mut out);
    assert!(
        out.windows(2).all(|w| w[0].0 < w[1].0),
        "{kind}: scan order"
    );
    for (k, v) in out {
        match inflight {
            Some(a) if a.key == k => assert!(a.allows(Some(v)), "{kind}: in-flight ghost {k}"),
            _ => assert_eq!(
                model.get(&k),
                Some(&v),
                "{kind}: ghost record {k} after crash"
            ),
        }
    }
}

fn torture(kind: &str, round_seed: u64) {
    let seed = round_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let pool = Arc::new(PmPool::new(
        64 << 20,
        PmConfig::real().with_eviction_chaos(seed),
    ));
    let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
    let idx = create(kind, alloc);

    let n_ops = 2_000 + (seed % 3_000);
    let ops = gen_ops(seed, n_ops);

    // Phase 1: arm a mid-operation power failure at a pseudo-random
    // persistence event, then replay; the armed event count is small
    // enough that the crash reliably fires inside the stream.
    pool.arm_crash_after(1 + (seed.rotate_left(17) % (n_ops * 2)));
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut inflight = None;
    for &op in &ops {
        let allowance = InflightAllowance::for_op(op, &model);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| apply(&*idx, &mut model, op))) {
            if payload.downcast_ref::<CrashPointHit>().is_none() {
                resume_unwind(payload);
            }
            inflight = Some(allowance);
            break;
        }
    }
    if inflight.is_none() {
        pool.disarm_crash();
    }

    // Pull the plug and recover. The sampled policy persists each
    // dirty line left at the cut with p = 1/2 — a different torn image
    // every round, replayable from the seed.
    drop(idx);
    pool.crash_with(ResidualPolicy::Sampled {
        seed: seed ^ 0x7061_7274_6961_6c31,
        p_per_256: 128,
    });
    let alloc = PmAllocator::recover(pool.clone(), AllocMode::General);
    let idx = recover(kind, alloc);
    verify(kind, &*idx, &model, inflight);

    // The in-flight op may have landed either way; sync the model with
    // whichever atomic outcome the recovered tree kept.
    if let Some(a) = inflight {
        match idx.lookup(a.key) {
            Some(v) => model.insert(a.key, v),
            None => model.remove(&a.key),
        };
    }

    // Phase 2: finish the remaining workload on the recovered tree,
    // then the classic end-of-workload plug pull with exact verify.
    for &op in &ops {
        apply(&*idx, &mut model, op);
    }
    drop(idx);
    pool.crash_with(ResidualPolicy::Sampled {
        seed: seed ^ 0x7061_7274_6961_6c32,
        p_per_256: 128,
    });
    let alloc = PmAllocator::recover(pool, AllocMode::General);
    let idx = recover(kind, alloc);
    verify(kind, &*idx, &model, None);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // First positional arg = rounds; skip flag values so `--seed 7`
    // is never misread as a round count.
    let mut rounds: u64 = 5;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--kind" || args[i] == "--seed" {
            i += 2;
            continue;
        }
        if let Ok(r) = args[i].parse() {
            rounds = r;
            break;
        }
        i += 1;
    }
    let kinds: Vec<&str> = match args.iter().position(|a| a == "--kind") {
        Some(i) => {
            let kind = args.get(i + 1).map(String::as_str).unwrap_or("");
            match KINDS.iter().find(|k| **k == kind) {
                Some(k) => vec![*k],
                None => {
                    eprintln!("--kind expects one of {KINDS:?}, got {kind:?}");
                    std::process::exit(2);
                }
            }
        }
        None => KINDS.to_vec(),
    };

    // `--seed` offsets the round-seed stream; round r of base seed S
    // is exactly round 0 of base seed S + r, so a failure replays as a
    // single round.
    let base_seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--seed expects an integer, got {v:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(0u64);

    install_quiet_crash_hook();
    // Flight recorder: keep the last PM events of every round so an
    // oracle violation can show what the index did right before (and
    // after) the cut, alongside the reproduce line.
    pm_index_bench::obs::set_enabled(true);
    for kind in &kinds {
        for round in 0..rounds {
            let round_seed = base_seed.wrapping_add(round);
            pm_index_bench::obs::reset();
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| torture(kind, round_seed))) {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("non-string panic payload");
                eprintln!("{kind}: round {round} FAILED: {msg}");
                eprintln!("flight recorder (last PM events of the failing round):");
                for line in pm_index_bench::obs::flight_tail_text(16).lines() {
                    eprintln!("    {line}");
                }
                eprintln!(
                    "REPRODUCE: cargo run --release --example crash_torture -- 1 \
                     --kind {kind} --seed {round_seed}"
                );
                std::process::exit(1);
            }
        }
        println!(
            "{kind}: {rounds} crash rounds survived ✓ (mid-op injection + sampled plug pull, \
             seeds {base_seed}..{})",
            base_seed.wrapping_add(rounds)
        );
    }
    println!(
        "{} crash-consistent across {rounds} random workloads",
        kinds.join(", ")
    );
}
