//! Head-to-head comparison of all five indexes using the PiBench API:
//! the scenario from the paper's introduction — an OLTP-ish mixed
//! workload over a prefilled table, on emulated Optane-like PM.
//!
//! ```sh
//! cargo run --release --example index_shootout
//! ```

use std::sync::Arc;

use pm_index_bench::bztree::{BzTree, BzTreeConfig};
use pm_index_bench::dram_index::DramTree;
use pm_index_bench::fptree::{FpTree, FpTreeConfig};
use pm_index_bench::index_api::RangeIndex;
use pm_index_bench::nvtree::{NvTree, NvTreeConfig};
use pm_index_bench::pibench::report::Table;
use pm_index_bench::pibench::{prefill, run, BenchConfig, Distribution, KeySpace, OpMix};
use pm_index_bench::pmalloc::{AllocMode, PmAllocator};
use pm_index_bench::pmem::{PmConfig, PmPool};
use pm_index_bench::wbtree::{WbTree, WbTreeConfig};

const RECORDS: u64 = 200_000;
const OPS: u64 = 200_000;

fn build(kind: &str) -> (Arc<dyn RangeIndex>, Option<Arc<PmPool>>) {
    if kind == "dram-btree" {
        return (Arc::new(DramTree::new()), None);
    }
    let pool = Arc::new(PmPool::new(256 << 20, PmConfig::optane_like()));
    let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
    let idx: Arc<dyn RangeIndex> = match kind {
        "fptree" => FpTree::create(alloc, FpTreeConfig::default()),
        "nvtree" => NvTree::create(alloc, NvTreeConfig::default()),
        "wbtree" => WbTree::create(alloc, WbTreeConfig::default()),
        "bztree" => BzTree::create(alloc, BzTreeConfig::default()),
        _ => unreachable!(),
    };
    (idx, Some(pool))
}

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4);
    println!("OLTP-ish mixed workload: 70% lookup / 20% insert / 5% update / 5% scan");
    println!("{RECORDS} records prefilled, {OPS} ops, {threads} threads, Optane-like latency\n");

    let mix = OpMix {
        lookup: 70,
        insert: 20,
        update: 5,
        remove: 0,
        scan: 5,
    };
    let mut table = Table::new(vec![
        "index",
        "Mops/s",
        "p99 lookup",
        "p99 insert",
        "PM writeB/op",
    ]);
    for kind in ["fptree", "nvtree", "wbtree", "bztree", "dram-btree"] {
        let (idx, pool) = build(kind);
        let ks = KeySpace::new(RECORDS);
        prefill(&*idx, &ks, threads);
        let cfg = BenchConfig {
            threads,
            records: RECORDS,
            ops_per_thread: Some(OPS / threads as u64),
            duration: None,
            mix,
            distribution: Distribution::Uniform,
            scan_len: 100,
            latency_sample_shift: 3,
            seed: 1,
            negative_lookups: false,
        };
        let r = run(&*idx, &ks, pool.as_slice(), &cfg);
        table.row(vec![
            kind.to_string(),
            format!("{:.3}", r.mops()),
            format!(
                "{}ns",
                r.latency[pm_index_bench::pibench::OpKind::Lookup as usize].percentile(99.0)
            ),
            format!(
                "{}ns",
                r.latency[pm_index_bench::pibench::OpKind::Insert as usize].percentile(99.0)
            ),
            format!("{:.0}", r.pm_write_bytes_per_op()),
        ]);
    }
    print!("{}", table.to_text());
}
