//! Inspect what an index actually does to the device.
//!
//! Subcommands:
//!
//! * `footprint` (default) — run one operation of each kind against an
//!   index (`--kind <name|all>`, default `fptree`) and print the exact
//!   PM read/write/flush/fence footprint, including redundant flushes —
//!   the per-operation cost model the paper's analysis sections reason
//!   about. For `--kind learned` the trained model's shape (segment
//!   count, ε, delta-log occupancy, merges) is printed alongside.
//! * `crashpoints` — systematic crash-point exploration: count the
//!   persistence events of a mixed workload, crash at every boundary,
//!   recover, and verify the oracle invariant (see `crates/crashpoint`).
//!   Beyond the frozen image, `--samples` turns on the torn-write model
//!   (seeded residual images per boundary), `--exhaustive` enumerates
//!   all subsets of the write frontier, and `--poison` injects a media
//!   error into one lost line per sampled image.
//! * `mtcrash` — multi-threaded crash consistency: crash while 2–8
//!   threads hammer one index, then recover sampled residual images and
//!   check the relaxed concurrent oracle.
//! * `shardcrash` — sharded crash consistency: run the workload through
//!   a range-partitioned `engine::ShardedIndex`, arm one shard's pool at
//!   a time, and verify the cross-shard oracle plus byte-level shard
//!   isolation (untouched shards bit-identical through recovery).
//! * `netcrash` — crash-through-the-server durability: drive the write
//!   workload over real TCP against a `net::Server` with group
//!   durability, arm one shard's pool at every persistence boundary,
//!   and verify after each cut that every **acked** write survives
//!   recovery and the unacked pipeline reconciles as a clean prefix
//!   (at most one torn in-flight op). `--cache [--cache-mb N]` fronts
//!   the served index with the DRAM hot-key tier; recovery still reads
//!   the raw pools, so a green sweep proves the cache never serves an
//!   acked-but-lost write.
//! * `migcrash` — crash-mid-migration consistency: run the workload
//!   over a sharded engine while a shard-range migration (copy →
//!   publish → GC) is in flight, arm each pool at every persistence
//!   boundary, and verify the routing table is never half-copied and
//!   every acked write survives whichever side of the publish the cut
//!   landed on.
//! * `cachestat` — run a skewed read-mostly workload through the DRAM
//!   hot-key tier over an FPTree and print hit/miss/eviction counters;
//!   exits non-zero if the cache never hits (CI smoke for the tier).
//!
//! ```sh
//! cargo run --release --example pm_inspector
//! cargo run --release --example pm_inspector -- footprint --kind learned
//! cargo run --release --example pm_inspector -- crashpoints --kind wbtree --ops 200
//! cargo run --release --example pm_inspector -- crashpoints --kind all --samples 4 --poison
//! cargo run --release --example pm_inspector -- mtcrash --kind all --threads 4
//! cargo run --release --example pm_inspector -- shardcrash --kind all --shards 4 --stride 17
//! cargo run --release --example pm_inspector -- netcrash --kind all --ops 1000 --stride 1
//! cargo run --release --example pm_inspector -- netcrash --kind fptree --stride 101 --cache
//! cargo run --release --example pm_inspector -- migcrash --kind wbtree --stride 131
//! cargo run --release --example pm_inspector -- cachestat --records 50000 --cache-mb 16
//! ```
//!
//! `crashpoints` flags: `--kind <name|all>`, `--ops N`, `--key-range N`,
//! `--seed N`, `--chaos`, `--stride N`, `--max-boundaries N`,
//! `--samples N`, `--p-per-256 N`, `--exhaustive LINES`, `--poison`,
//! `--trace` (arm the `obs` flight recorder: every fired crash
//! snapshots the last PM events before the cut, printed on any oracle
//! violation and once per kind for the first crash).
//!
//! `mtcrash` flags: `--kind <name|all>`, `--threads N`, `--ops N` (per
//! thread), `--boundaries N`, `--seed N`, `--samples N`, `--p-per-256 N`,
//! `--poison`.
//!
//! `shardcrash` flags: `--kind <name|all>`, `--shards N`, `--ops N`,
//! `--key-range N`, `--seed N`, `--stride N`, `--max-boundaries N` (per
//! armed shard).
//!
//! `netcrash` flags: `--kind <name|all>`, `--shards N`, `--ops N`,
//! `--key-range N`, `--seed N`, `--stride N`, `--max-boundaries N`,
//! `--batch-max N`, `--window N`, `--cache`, `--cache-mb N` (each
//! shard's pool is armed in turn).
//!
//! `migcrash` flags: `--kind <name|all>`, `--shards N` (base shards),
//! `--ops N`, `--key-range N`, `--seed N`, `--stride N`,
//! `--max-boundaries N` (per armed pool).
//!
//! `cachestat` flags: `--records N`, `--ops N`, `--cache-mb N`.
//!
//! Every run prints its seed; any failure is exactly reproducible by
//! re-running with the printed flags.

use std::sync::Arc;

use pm_index_bench::bztree::{BzTree, BzTreeConfig};
use pm_index_bench::crashpoint::{self, ExploreOptions, ResidualConfig, PM_KINDS};
use pm_index_bench::fptree::{FpTree, FpTreeConfig};
use pm_index_bench::index_api::RangeIndex;
use pm_index_bench::learned::{LearnedConfig, LearnedIndex};
use pm_index_bench::nvtree::{NvTree, NvTreeConfig};
use pm_index_bench::pibench::report::Table;
use pm_index_bench::pmalloc::{AllocMode, PmAllocator};
use pm_index_bench::pmem::{PmConfig, PmPool};
use pm_index_bench::wbtree::{WbTree, WbTreeConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("footprint") => footprint(if args.is_empty() { &[] } else { &args[1..] }),
        Some("crashpoints") => crashpoints(&args[1..]),
        Some("mtcrash") => mtcrash(&args[1..]),
        Some("shardcrash") => shardcrash(&args[1..]),
        Some("netcrash") => netcrash(&args[1..]),
        Some("migcrash") => migcrash(&args[1..]),
        Some("cachestat") => cachestat(&args[1..]),
        Some(other) => {
            eprintln!(
                "unknown subcommand {other:?}; expected `footprint`, `crashpoints`, `mtcrash`, \
                 `shardcrash`, `netcrash`, `migcrash` or `cachestat`"
            );
            std::process::exit(2);
        }
    }
}

fn footprint(args: &[String]) {
    let kind_arg = args
        .iter()
        .position(|a| a == "--kind")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "fptree".to_string());
    let kinds: Vec<&'static str> = if kind_arg == "all" {
        PM_KINDS.to_vec()
    } else if let Some(k) = PM_KINDS.iter().find(|k| **k == kind_arg) {
        vec![*k]
    } else {
        eprintln!("--kind expects one of {PM_KINDS:?} or `all`, got {kind_arg:?}");
        std::process::exit(2);
    };
    for kind in kinds {
        footprint_one(kind);
    }
}

/// Default-config instance of `kind`; the learned index additionally
/// hands back its concrete handle so the model stats stay reachable
/// behind the type-erased probe loop.
fn footprint_index(
    kind: &str,
    alloc: Arc<PmAllocator>,
) -> (Arc<dyn RangeIndex>, Option<Arc<LearnedIndex>>) {
    match kind {
        "fptree" => (FpTree::create(alloc, FpTreeConfig::default()), None),
        "nvtree" => (NvTree::create(alloc, NvTreeConfig::default()), None),
        "wbtree" => (WbTree::create(alloc, WbTreeConfig::default()), None),
        "bztree" => (BzTree::create(alloc, BzTreeConfig::default()), None),
        "learned" => {
            let t = LearnedIndex::create(alloc, LearnedConfig::default());
            (t.clone(), Some(t))
        }
        other => panic!("not a PM index: {other}"),
    }
}

fn footprint_one(kind: &'static str) {
    let pool = Arc::new(PmPool::new(96 << 20, PmConfig::real()));
    let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
    let (tree, learned) = footprint_index(kind, alloc);
    for k in 0..100_000u64 {
        tree.insert(k * 2, k);
    }

    let mut table = Table::new(vec![
        "operation",
        "PM reads",
        "read B",
        "PM writes",
        "write B",
        "clwb",
        "clwb redundant",
        "fence",
        "media rd B",
        "media wr B",
    ]);
    let mut probe = |label: &str, f: &dyn Fn()| {
        pool.reset_stats();
        f();
        let s = pool.stats();
        table.row(vec![
            label.to_string(),
            s.read_ops.to_string(),
            s.read_bytes.to_string(),
            s.write_ops.to_string(),
            s.write_bytes.to_string(),
            s.clwb.to_string(),
            s.clwb_redundant.to_string(),
            s.fence.to_string(),
            s.media_read_bytes.to_string(),
            s.media_write_bytes.to_string(),
        ]);
    };

    probe("lookup (hit)", &|| {
        tree.lookup(50_000);
    });
    probe("lookup (miss)", &|| {
        tree.lookup(50_001);
    });
    probe("insert (no split)", &|| {
        tree.insert(50_001, 1);
    });
    probe("update", &|| {
        tree.update(50_000, 2);
    });
    probe("remove", &|| {
        tree.remove(50_001);
    });
    probe("scan 100", &|| {
        let mut out = Vec::new();
        tree.scan(10_000, 100, &mut out);
    });

    println!(
        "{} per-operation PM footprint (100k records prefilled):\n",
        tree.name()
    );
    print!("{}", table.to_text());
    if kind == "fptree" {
        println!(
            "\nNote the fingerprint effect: a miss touches almost no key words, \
             and the insert's cost is dominated by the record flush + the \
             atomic bitmap publication (2 fence rounds). A non-zero redundant \
             clwb count would flag lines flushed while already clean."
        );
    }
    if let Some(t) = learned {
        let s = t.model_stats();
        println!(
            "\nlearned model: epoch {}, {} keys in {} segments (ε = {}), \
             delta log {}/{} entries, {} merges so far",
            s.epoch, s.model_keys, s.segments, s.epsilon, s.delta_len, s.delta_cap, s.merges
        );
    }
    println!();
}

fn flag_value(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{name} expects an integer, got {v:?}");
                std::process::exit(2);
            })
        })
}

fn parse_kinds(args: &[String]) -> Vec<&'static str> {
    let kind_arg = args
        .iter()
        .position(|a| a == "--kind")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    if kind_arg == "all" {
        PM_KINDS.to_vec()
    } else if let Some(k) = PM_KINDS.iter().find(|k| **k == kind_arg) {
        vec![*k]
    } else {
        eprintln!("--kind expects one of {PM_KINDS:?} or `all`, got {kind_arg:?}");
        std::process::exit(2);
    }
}

/// The residual model selected by `--samples` / `--p-per-256` /
/// `--exhaustive` (`--poison` implies sampling so there are lost lines
/// to poison).
fn parse_residual(args: &[String], poison: bool) -> ResidualConfig {
    let samples = flag_value(args, "--samples");
    let p_per_256 = flag_value(args, "--p-per-256").unwrap_or(128) as u32;
    if let Some(max_lines) = flag_value(args, "--exhaustive") {
        ResidualConfig::Exhaustive {
            max_lines: max_lines as u32,
            fallback_samples: samples.unwrap_or(2) as u32,
        }
    } else if samples.is_some() || poison {
        ResidualConfig::Sampled {
            samples: samples.unwrap_or(4) as u32,
            p_per_256,
        }
    } else {
        ResidualConfig::Frozen
    }
}

fn crashpoints(args: &[String]) {
    let kinds = parse_kinds(args);
    let ops = flag_value(args, "--ops").unwrap_or(200);
    let key_range = flag_value(args, "--key-range").unwrap_or(128);
    let seed = flag_value(args, "--seed").unwrap_or(1);
    let stride = flag_value(args, "--stride").unwrap_or(1);
    let max_boundaries = flag_value(args, "--max-boundaries");
    let chaos = args.iter().any(|a| a == "--chaos");
    let poison = args.iter().any(|a| a == "--poison");
    let trace = args.iter().any(|a| a == "--trace");
    let residual = parse_residual(args, poison);
    if trace {
        // Flight recorder on: every crash snapshots the last PM events
        // before the cut, and any oracle violation prints that tail.
        pm_index_bench::obs::reset();
        pm_index_bench::obs::set_enabled(true);
    }
    println!(
        "crashpoints: seed {seed}, residual model {residual:?}, poison {poison}, trace {trace}"
    );

    let mut table = Table::new(vec![
        "index",
        "chaos",
        "events",
        "boundaries",
        "crashes",
        "samples",
        "exhaustive",
        "max cands",
        "poison inj/rep",
        "max dirty lines",
        "redundant clwb",
        "failures",
    ]);
    let mut any_failures = false;
    for kind in kinds {
        let opts = ExploreOptions {
            kind: kind.to_string(),
            ops,
            key_range,
            seed,
            chaos_seed: chaos.then_some(seed ^ 0x9e3779b97f4a7c15),
            stride,
            max_boundaries,
            residual,
            poison,
            ..ExploreOptions::default()
        };
        let s = crashpoint::explore(&opts);
        println!(
            "{kind}: {} events over {} ops; per-op windows: {}",
            s.total_events,
            ops,
            s.per_op
                .iter()
                .map(|(k, v)| format!("{k} {} ops / {} events", v.count, v.events))
                .collect::<Vec<_>>()
                .join(", ")
        );
        for f in &s.failures {
            any_failures = true;
            println!(
                "  FAIL at boundary {} ({}) under {:?}{}: {}",
                f.boundary,
                f.report
                    .map(|r| r.trigger.to_string())
                    .unwrap_or_else(|| "no trip".to_string()),
                f.policy,
                f.poisoned_off
                    .map(|o| format!(", poisoned line {o:#x}"))
                    .unwrap_or_default(),
                f.detail
            );
            if let Some(tail) = &f.flight_tail {
                println!("  flight recorder (last PM events before the cut):");
                for line in tail.lines() {
                    println!("    {line}");
                }
            }
        }
        if trace {
            match &s.first_crash_flight_tail {
                Some(tail) => {
                    println!("{kind}: flight recorder at the first fired crash:");
                    for line in tail.lines() {
                        println!("    {line}");
                    }
                }
                None => println!("{kind}: no crash fired, flight recorder empty"),
            }
        }
        table.row(vec![
            s.kind.clone(),
            s.chaos.to_string(),
            s.total_events.to_string(),
            s.boundaries_tested.to_string(),
            s.crashes_fired.to_string(),
            s.samples_run.to_string(),
            s.exhaustive_boundaries.to_string(),
            s.max_residual_candidates.to_string(),
            format!("{}/{}", s.poison_injected, s.poison_reported),
            s.max_dirty_lines.to_string(),
            s.probe_redundant_clwb.to_string(),
            s.failures.len().to_string(),
        ]);
    }
    println!("\nCrash-point exploration:\n");
    print!("{}", table.to_text());
    if any_failures {
        println!(
            "\nRESULT: oracle violations found (see FAIL lines above). \
             Reproduce with --seed {seed}."
        );
        std::process::exit(1);
    }
    println!(
        "\nRESULT: every explored crash image recovered correctly — no \
         acknowledged-but-unflushed state, no torn structure, no \
         garbage from poisoned lines."
    );
}

fn mtcrash(args: &[String]) {
    let kinds = parse_kinds(args);
    let threads = flag_value(args, "--threads").unwrap_or(4) as usize;
    let ops_per_thread = flag_value(args, "--ops").unwrap_or(200);
    let boundaries = flag_value(args, "--boundaries").unwrap_or(8);
    let seed = flag_value(args, "--seed").unwrap_or(1);
    let poison = args.iter().any(|a| a == "--poison");
    let residual = if poison
        || args
            .iter()
            .any(|a| a == "--samples" || a == "--exhaustive" || a == "--p-per-256")
    {
        parse_residual(args, poison)
    } else {
        crashpoint::mt::MtOptions::default().residual // sampled torn writes
    };
    println!(
        "mtcrash: seed {seed}, {threads} threads, residual model {residual:?}, poison {poison}"
    );

    let mut table = Table::new(vec![
        "index",
        "threads",
        "boundaries",
        "crashes",
        "threads cut",
        "samples",
        "max cands",
        "poison inj/rep",
        "failures",
    ]);
    let mut any_failures = false;
    for kind in kinds {
        let opts = crashpoint::mt::MtOptions {
            kind: kind.to_string(),
            threads,
            ops_per_thread,
            boundaries,
            seed,
            residual,
            poison,
            ..crashpoint::mt::MtOptions::default()
        };
        let s = crashpoint::mt::mt_crash_run(&opts);
        for f in &s.failures {
            any_failures = true;
            println!(
                "  {kind} FAIL at boundary {} under {:?}{}: {}",
                f.boundary,
                f.policy,
                f.poisoned_off
                    .map(|o| format!(", poisoned line {o:#x}"))
                    .unwrap_or_default(),
                f.detail
            );
        }
        table.row(vec![
            s.kind.clone(),
            s.threads.to_string(),
            s.boundaries_tested.to_string(),
            s.crashes_fired.to_string(),
            s.threads_cut.to_string(),
            s.samples_run.to_string(),
            s.max_residual_candidates.to_string(),
            format!("{}/{}", s.poison_injected, s.poison_reported),
            s.failures.len().to_string(),
        ]);
    }
    println!("\nMulti-threaded crash consistency:\n");
    print!("{}", table.to_text());
    if any_failures {
        println!(
            "\nRESULT: concurrent-crash violations found (see FAIL lines \
             above). Reproduce with --seed {seed}."
        );
        std::process::exit(1);
    }
    println!(
        "\nRESULT: every concurrent crash recovered to a state satisfying \
         the relaxed oracle — acknowledged operations survive, in-flight \
         operations are atomic, no torn values."
    );
}

fn shardcrash(args: &[String]) {
    let kinds = parse_kinds(args);
    let shards = flag_value(args, "--shards").unwrap_or(4).max(1) as usize;
    let ops = flag_value(args, "--ops").unwrap_or(400);
    let key_range = flag_value(args, "--key-range").unwrap_or(96);
    let seed = flag_value(args, "--seed").unwrap_or(1);
    let stride = flag_value(args, "--stride").unwrap_or(1);
    let max_boundaries = flag_value(args, "--max-boundaries").unwrap_or(0);
    println!("shardcrash: seed {seed}, {shards} shards (one pool + allocator each)");

    let mut table = Table::new(vec![
        "index",
        "shards",
        "probe events/shard",
        "boundaries",
        "crashes",
        "isolation checks",
        "failures",
    ]);
    let mut any_failures = false;
    for kind in kinds {
        let opts = crashpoint::sharded::ShardedExploreOptions {
            kind: kind.to_string(),
            shards,
            ops,
            key_range,
            seed,
            stride,
            max_boundaries,
            ..crashpoint::sharded::ShardedExploreOptions::default()
        };
        let s = crashpoint::sharded::explore_sharded(&opts);
        for f in &s.failures {
            any_failures = true;
            println!(
                "  {kind} FAIL: shard {} armed, boundary {}: {}",
                f.shard, f.boundary, f.detail
            );
        }
        table.row(vec![
            s.kind.clone(),
            s.shards.to_string(),
            s.probe_events
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join("/"),
            s.boundaries_tested.to_string(),
            s.crashes_fired.to_string(),
            s.isolation_checks.to_string(),
            s.failures.len().to_string(),
        ]);
    }
    println!("\nSharded crash consistency:\n");
    print!("{}", table.to_text());
    if any_failures {
        println!(
            "\nRESULT: cross-shard violations found (see FAIL lines above). \
             Reproduce with --seed {seed}."
        );
        std::process::exit(1);
    }
    println!(
        "\nRESULT: every armed-shard crash recovered correctly — \
         acknowledged operations on every shard survive, the in-flight \
         op is atomic, and untouched shards stay bit-identical through \
         the armed shard's recovery."
    );
}

fn netcrash(args: &[String]) {
    let kinds = parse_kinds(args);
    let shards = flag_value(args, "--shards").unwrap_or(2).max(1) as usize;
    let ops = flag_value(args, "--ops").unwrap_or(400);
    let key_range = flag_value(args, "--key-range").unwrap_or(96);
    let seed = flag_value(args, "--seed").unwrap_or(1);
    let stride = flag_value(args, "--stride").unwrap_or(1);
    let max_boundaries = flag_value(args, "--max-boundaries").unwrap_or(0);
    let batch_max = flag_value(args, "--batch-max").unwrap_or(8) as usize;
    let window = flag_value(args, "--window").unwrap_or(32) as usize;
    let cache_mb = match flag_value(args, "--cache-mb") {
        Some(mb) => mb as usize,
        None if args.iter().any(|a| a == "--cache") => 4,
        None => 0,
    };
    println!(
        "netcrash: seed {seed}, {shards} shards behind one TCP server \
         (batch-max {batch_max}, window {window}, cache {cache_mb} MiB), \
         arming each shard in turn"
    );

    let mut table = Table::new(vec![
        "index",
        "armed shard",
        "probe events",
        "boundaries",
        "crashes",
        "completed",
        "acks",
        "max unacked",
        "failures",
    ]);
    let mut any_failures = false;
    for kind in kinds {
        for armed_shard in 0..shards {
            let opts = pm_index_bench::net::NetExploreOptions {
                kind: kind.to_string(),
                shards,
                ops,
                key_range,
                seed,
                stride,
                max_boundaries,
                armed_shard,
                batch_max,
                window,
                cache_mb,
                ..pm_index_bench::net::NetExploreOptions::default()
            };
            let s = pm_index_bench::net::explore_net(&opts).unwrap_or_else(|e| {
                eprintln!("{kind}: server io error: {e}");
                std::process::exit(1);
            });
            for f in &s.failures {
                any_failures = true;
                println!(
                    "  {kind} FAIL: shard {armed_shard} armed, boundary {}: {}",
                    f.boundary, f.detail
                );
            }
            table.row(vec![
                s.kind.clone(),
                armed_shard.to_string(),
                s.probe_events.to_string(),
                s.boundaries_tested.to_string(),
                s.crashes_fired.to_string(),
                s.completed_runs.to_string(),
                s.acked_total.to_string(),
                s.max_unacked.to_string(),
                s.failures.len().to_string(),
            ]);
        }
    }
    println!("\nCrash-through-the-server durability:\n");
    print!("{}", table.to_text());
    if any_failures {
        println!(
            "\nRESULT: durable-ack violations found (see FAIL lines above). \
             Reproduce with --seed {seed}."
        );
        std::process::exit(1);
    }
    println!(
        "\nRESULT: every boundary cut behind the serving layer recovered \
         correctly — every acked write survives, the unacked pipeline \
         reconciles as a clean prefix, nothing is torn."
    );
}

fn migcrash(args: &[String]) {
    let kinds = parse_kinds(args);
    let base_shards = flag_value(args, "--shards").unwrap_or(2).max(1) as usize;
    let ops = flag_value(args, "--ops").unwrap_or(400);
    let key_range = flag_value(args, "--key-range").unwrap_or(96);
    let seed = flag_value(args, "--seed").unwrap_or(1);
    let stride = flag_value(args, "--stride").unwrap_or(1);
    let max_boundaries = flag_value(args, "--max-boundaries").unwrap_or(0);
    println!(
        "migcrash: seed {seed}, {base_shards} base shards + 1 migration \
         destination, arming each pool in turn"
    );

    let mut table = Table::new(vec![
        "index",
        "probe events",
        "boundaries",
        "crashes",
        "preparing rec",
        "claimed rec",
        "failures",
    ]);
    let mut any_failures = false;
    for kind in kinds {
        let opts = crashpoint::migration::MigrationExploreOptions {
            kind: kind.to_string(),
            base_shards,
            ops,
            key_range,
            seed,
            stride,
            max_boundaries,
            ..crashpoint::migration::MigrationExploreOptions::default()
        };
        let s = crashpoint::migration::explore_migration(&opts);
        for f in &s.failures {
            any_failures = true;
            println!(
                "  {kind} FAIL: pool {} armed, boundary {}: {}",
                f.pool, f.boundary, f.detail
            );
        }
        table.row(vec![
            s.kind.clone(),
            s.probe_events
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join("/"),
            s.boundaries_tested.to_string(),
            s.crashes_fired.to_string(),
            s.preparing_recoveries.to_string(),
            s.claimed_recoveries.to_string(),
            s.failures.len().to_string(),
        ]);
    }
    println!("\nCrash-mid-migration consistency:\n");
    print!("{}", table.to_text());
    if any_failures {
        println!(
            "\nRESULT: migration violations found (see FAIL lines above). \
             Reproduce with --seed {seed}."
        );
        std::process::exit(1);
    }
    println!(
        "\nRESULT: every mid-migration cut recovered correctly — the \
         routing table is never half-copied, acked writes survive on \
         whichever side of the publish the cut landed, and recovery is \
         idempotent."
    );
}

fn cachestat(args: &[String]) {
    use pm_index_bench::cache::CachedIndex;
    use pm_index_bench::pibench::dist::Distribution;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let records = flag_value(args, "--records").unwrap_or(50_000);
    let ops = flag_value(args, "--ops").unwrap_or(200_000);
    let cache_mb = flag_value(args, "--cache-mb").unwrap_or(16) as usize;

    let pool = Arc::new(PmPool::new(256 << 20, PmConfig::real()));
    let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
    let inner = FpTree::create(alloc, FpTreeConfig::default());
    for k in 0..records {
        inner.insert(k, k);
    }
    let cached = CachedIndex::new(inner as Arc<dyn RangeIndex>, cache_mb << 20);

    // 90/10 lookup/update under a hot-key storm: the worst case the
    // tier is built for, so the hit rate must be substantial.
    let sampler = Distribution::HotStorm {
        hot: (records / 100).max(1),
        frac: 0.9,
    }
    .sampler(records);
    let mut rng = SmallRng::seed_from_u64(0xCAC4E);
    pool.reset_stats();
    let t0 = std::time::Instant::now();
    for i in 0..ops {
        let k = sampler.sample(&mut rng);
        if i % 10 == 0 {
            cached.update(k, rng.gen());
        } else {
            cached.lookup(k);
        }
    }
    let dt = t0.elapsed().as_secs_f64();

    let cc = cached.counters();
    let pm = pool.stats();
    let mut t = Table::new(vec!["metric", "value"]);
    t.row(vec!["ops".to_string(), ops.to_string()]);
    t.row(vec![
        "Mops/s".to_string(),
        format!("{:.2}", ops as f64 / dt / 1e6),
    ]);
    t.row(vec![
        "cache slots".to_string(),
        cached.cache().capacity().to_string(),
    ]);
    t.row(vec!["hits".to_string(), cc.hits.to_string()]);
    t.row(vec!["misses".to_string(), cc.misses.to_string()]);
    t.row(vec![
        "hit rate".to_string(),
        format!("{:.1}%", cc.hit_rate() * 100.0),
    ]);
    t.row(vec!["fills".to_string(), cc.fills.to_string()]);
    t.row(vec!["evictions".to_string(), cc.evictions.to_string()]);
    t.row(vec![
        "invalidations".to_string(),
        cc.invalidations.to_string(),
    ]);
    t.row(vec!["PM read bytes".to_string(), pm.read_bytes.to_string()]);
    t.row(vec![
        "PM write bytes".to_string(),
        pm.write_bytes.to_string(),
    ]);
    println!(
        "cachestat: {records} records, {cache_mb} MiB tier, hot-storm 90/10 \
         lookup/update:\n"
    );
    print!("{}", t.to_text());
    if cc.hits == 0 {
        println!("\nRESULT: cache tier never hit — the DRAM tier is not working.");
        std::process::exit(1);
    }
    println!(
        "\nRESULT: cache tier serving — {:.1}% of lookups never touched PM.",
        cc.hit_rate() * 100.0
    );
}
